#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::service {

/// Thrown by IntakePipeline::submit when the bounded observation queue
/// is full.  The observation was counted as offered but was neither
/// logged nor applied — the producer owns the retry decision (back
/// off, shed, or surface to the client).
class BackpressureError : public std::runtime_error {
 public:
  explicit BackpressureError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown to callers blocked on (or submitting into) a pipeline or
/// service that is shutting down, instead of hanging them forever on
/// a condition that will never come true again.
class ShutdownError : public std::runtime_error {
 public:
  explicit ShutdownError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Cadence and capacity knobs of the intake pipeline (docs/serving.md).
struct IntakePolicy {
  /// Bound of the pending-observation queue; submit throws
  /// BackpressureError beyond it.  Must be >= 1.
  std::size_t queueCapacity = 1024;
  /// Publish a new WorldSnapshot after this many observations have
  /// been applied since the last publish.  Must be >= 1.
  std::uint64_t publishEveryRecords = 64;
  /// Publish at most this long after an applied-but-unpublished
  /// observation, even when the record trigger has not fired — bounds
  /// how stale the serving world can run behind the intake.  Must be
  /// positive.
  std::chrono::milliseconds maxStaleness{200};
};

/// The write side of the epoch-style serving split: a bounded MPSC
/// queue in front of one writer thread that owns every mutation of an
/// OnlineMotionDatabase.
///
/// Producers call submit(), which classifies the observation
/// synchronously (the accept/reject answer depends only on the floor
/// plan and sanitation config, so it needs no writer round-trip) and
/// enqueues accepted ones.  The writer dequeues in order and calls
/// applyAccepted — WAL write-ahead first, then the reservoir — so the
/// WAL order, the reservoir update order, and the reservoir's RNG draw
/// order are all the single thread's apply order.  On the cadence
/// policy (record count or staleness bound) the writer invokes the
/// publish hook, which freezes the database into an immutable
/// WorldSnapshot for the readers.
///
/// Durability window: submit() returning true means *admitted*, not
/// yet durably logged; the log write happens at apply time on the
/// writer.  flush() is the barrier — after it returns, everything
/// previously admitted has been applied (or counted in
/// Stats::applyFailures) and published.
class IntakePipeline {
 public:
  /// Runs on the writer thread when the cadence policy fires, with no
  /// pipeline lock held; `appliedRecords` is the cumulative applied
  /// count folded into the world being published.
  using PublishHook = std::function<void(std::uint64_t appliedRecords)>;
  /// Runs on the writer thread after each applied observation, with no
  /// pipeline lock held — the service's checkpoint trigger.  Because
  /// the writer is the database's sole mutator, state captured here
  /// (snapshot + WAL position) is mutually consistent without any
  /// global intake lock.
  using ApplyHook = std::function<void()>;

  /// Starts the writer thread.  `db` must outlive the pipeline.
  /// Throws std::invalid_argument on a degenerate policy.
  IntakePipeline(core::OnlineMotionDatabase& db, IntakePolicy policy,
                 PublishHook publish, ApplyHook afterApply,
                 obs::MetricsRegistry* metrics = nullptr);

  /// stop()s and joins the writer.
  ~IntakePipeline();

  IntakePipeline(const IntakePipeline&) = delete;
  IntakePipeline& operator=(const IntakePipeline&) = delete;

  /// Producer side.  Returns whether the observation was accepted by
  /// the sanitation filters (false = rejected, nothing enqueued).
  /// Throws the database's validation errors, BackpressureError when
  /// the queue is full, and ShutdownError after stop().
  bool submit(env::LocationId estimatedStart, env::LocationId estimatedEnd,
              double directionDeg, double offsetMeters);

  /// Blocks until every observation admitted before this call has been
  /// applied (or failed) and the world containing them has been
  /// published.  Throws ShutdownError if the pipeline stops while
  /// waiting with work still pending.
  void flush();

  /// Rejects further submits, drains the queue (every admitted
  /// observation is still applied and a final publish covers them),
  /// and joins the writer.  Idempotent; not safe to race with itself.
  void stop();

  const IntakePolicy& policy() const { return policy_; }

  struct Stats {
    std::uint64_t enqueued = 0;       ///< Admitted into the queue.
    std::uint64_t applied = 0;        ///< Applied by the writer.
    std::uint64_t applyFailures = 0;  ///< Lost to a sink/apply error.
    std::uint64_t publishes = 0;      ///< Publish-hook invocations.
    std::uint64_t backpressure = 0;   ///< Submits rejected queue-full.
    std::size_t queueDepth = 0;       ///< Pending right now.
  };
  Stats stats() const;

 private:
  struct PendingObservation {
    env::LocationId start = 0;
    env::LocationId end = 0;
    double directionDeg = 0.0;
    double offsetMeters = 0.0;
  };

  void writerLoop();

  core::OnlineMotionDatabase& db_;
  const IntakePolicy policy_;
  const PublishHook publish_;
  const ApplyHook afterApply_;

  mutable util::Mutex mu_;
  /// Wakes the writer: new work, a stop, or a flush that needs an
  /// early publish.
  util::CondVar readyCv_;
  /// Wakes flush() waiters on apply/publish progress.
  util::CondVar drainedCv_;
  std::deque<PendingObservation> queue_ MOLOC_GUARDED_BY(mu_);
  bool stopping_ MOLOC_GUARDED_BY(mu_) = false;
  /// Set by the writer as it exits; lets flush() tell "work still in
  /// flight" from "work that will never finish".
  bool writerExited_ MOLOC_GUARDED_BY(mu_) = false;
  std::uint64_t enqueued_ MOLOC_GUARDED_BY(mu_) = 0;
  std::uint64_t applied_ MOLOC_GUARDED_BY(mu_) = 0;
  std::uint64_t applyFailures_ MOLOC_GUARDED_BY(mu_) = 0;
  std::uint64_t publishes_ MOLOC_GUARDED_BY(mu_) = 0;
  std::uint64_t backpressure_ MOLOC_GUARDED_BY(mu_) = 0;
  /// Applied but not yet covered by a publish.
  std::uint64_t dirtySincePublish_ MOLOC_GUARDED_BY(mu_) = 0;
  int flushWaiters_ MOLOC_GUARDED_BY(mu_) = 0;

#if MOLOC_METRICS_ENABLED
  struct Metrics {
    obs::Gauge* queueDepth = nullptr;
    obs::Counter* backpressure = nullptr;
    obs::Counter* applyFailures = nullptr;
  };
  Metrics metrics_;
#endif

  /// Last member: started after everything above is initialized and
  /// joined (via stop()) before any of it is destroyed.
  std::thread writer_;
};

}  // namespace moloc::service
