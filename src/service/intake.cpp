#include "service/intake.hpp"

#include <utility>
#include <vector>

#include "util/error.hpp"

namespace moloc::service {

IntakePipeline::IntakePipeline(core::OnlineMotionDatabase& db,
                               IntakePolicy policy, PublishHook publish,
                               ApplyHook afterApply,
                               obs::MetricsRegistry* metrics)
    : db_(db),
      policy_(policy),
      publish_(std::move(publish)),
      afterApply_(std::move(afterApply)) {
  if (policy_.queueCapacity == 0)
    throw util::ConfigError(
        "IntakePipeline: queue capacity must be >= 1");
  if (policy_.publishEveryRecords == 0)
    throw util::ConfigError(
        "IntakePipeline: publishEveryRecords must be >= 1");
  if (policy_.maxStaleness <= std::chrono::milliseconds::zero())
    throw util::ConfigError(
        "IntakePipeline: maxStaleness must be positive");
#if MOLOC_METRICS_ENABLED
  if (metrics) {
    metrics_.queueDepth = &metrics->gauge(
        "moloc_intake_queue_depth",
        "Observations admitted but not yet applied by the writer");
    metrics_.backpressure = &metrics->counter(
        "moloc_intake_backpressure_total",
        "Submits rejected because the intake queue was full");
    metrics_.applyFailures = &metrics->counter(
        "moloc_intake_apply_failures_total",
        "Admitted observations lost to a write-ahead/apply error");
  }
#else
  (void)metrics;
#endif
  writer_ = std::thread([this] { writerLoop(); });
}

IntakePipeline::~IntakePipeline() { stop(); }

bool IntakePipeline::submit(env::LocationId estimatedStart,
                            env::LocationId estimatedEnd,
                            double directionDeg, double offsetMeters) {
  {
    const util::MutexLock lock(mu_);
    if (stopping_)
      throw ShutdownError("IntakePipeline: shutting down");
  }
  // Classify outside the queue lock: the decision is deterministic in
  // the sanitation config, so producers resolve accept/reject (and
  // validation errors) concurrently without a writer round-trip.
  if (!db_.classify(estimatedStart, estimatedEnd, directionDeg,
                    offsetMeters))
    return false;
  {
    const util::MutexLock lock(mu_);
    if (stopping_)
      throw ShutdownError("IntakePipeline: shutting down");
    if (queue_.size() >= policy_.queueCapacity) {
      ++backpressure_;
#if MOLOC_METRICS_ENABLED
      if (metrics_.backpressure) metrics_.backpressure->inc();
#endif
      throw BackpressureError(
          "IntakePipeline: observation queue is full (capacity " +
          std::to_string(policy_.queueCapacity) + ")");
    }
    queue_.push_back(
        {estimatedStart, estimatedEnd, directionDeg, offsetMeters});
    ++enqueued_;
#if MOLOC_METRICS_ENABLED
    if (metrics_.queueDepth)
      metrics_.queueDepth->set(static_cast<double>(queue_.size()));
#endif
  }
  readyCv_.notifyOne();
  return true;
}

void IntakePipeline::writerLoop() {
  std::vector<PendingObservation> batch;
  auto lastPublish = std::chrono::steady_clock::now();
  // Writer-private mirror of dirtySincePublish_ so cadence checks need
  // no lock.
  std::uint64_t sincePublish = 0;

  const auto publishNow = [&] {
    std::uint64_t appliedRecords = 0;
    {
      const util::MutexLock lock(mu_);
      appliedRecords = applied_;
    }
    // The hook runs with no pipeline lock held: freezing the database
    // copies it, and submitters must not stall behind that.
    if (publish_) publish_(appliedRecords);
    lastPublish = std::chrono::steady_clock::now();
    sincePublish = 0;
    {
      const util::MutexLock lock(mu_);
      ++publishes_;
      dirtySincePublish_ = 0;
    }
    drainedCv_.notifyAll();
  };

  while (true) {
    batch.clear();
    bool stopRequested = false;
    {
      const util::MutexLock lock(mu_);
      while (queue_.empty() && !stopping_ &&
             !(flushWaiters_ > 0 && dirtySincePublish_ > 0)) {
        if (sincePublish > 0) {
          // Dirty world: sleep at most to the staleness deadline, then
          // publish even if nothing new arrives.
          const auto now = std::chrono::steady_clock::now();
          const auto deadline = lastPublish + policy_.maxStaleness;
          if (now >= deadline) break;
          readyCv_.waitFor(mu_, deadline - now);
        } else {
          readyCv_.wait(mu_);
        }
      }
      stopRequested = stopping_;
      while (!queue_.empty()) {
        batch.push_back(queue_.front());
        queue_.pop_front();
      }
#if MOLOC_METRICS_ENABLED
      if (metrics_.queueDepth) metrics_.queueDepth->set(0.0);
#endif
    }

    for (const auto& obs : batch) {
      try {
        db_.applyAccepted(obs.start, obs.end, obs.directionDeg,
                          obs.offsetMeters);
        ++sincePublish;
        {
          const util::MutexLock lock(mu_);
          ++applied_;
          ++dirtySincePublish_;
        }
        // Checkpoint trigger: the writer is the database's sole
        // mutator, so state captured inside the hook is consistent
        // with the WAL position by construction.
        if (afterApply_) afterApply_();
      } catch (...) {
        // The write-ahead discipline already aborted the update (a
        // sink that throws logs nothing and applies nothing), so the
        // observation is simply lost; surface it through the counter
        // rather than tearing down the writer.
        const util::MutexLock lock(mu_);
        ++applyFailures_;
#if MOLOC_METRICS_ENABLED
        if (metrics_.applyFailures) metrics_.applyFailures->inc();
#endif
      }
      if (sincePublish >= policy_.publishEveryRecords) publishNow();
    }
    drainedCv_.notifyAll();

    bool flushPending = false;
    bool queueEmpty = false;
    {
      const util::MutexLock lock(mu_);
      flushPending = flushWaiters_ > 0;
      queueEmpty = queue_.empty();
    }
    const bool staleness =
        sincePublish > 0 && std::chrono::steady_clock::now() >=
                                lastPublish + policy_.maxStaleness;
    // Publish outside the record cadence when the world is dirty and
    // (a) the staleness bound expired, (b) a flush needs it, or
    // (c) this is the final drain before the writer exits.
    if (sincePublish > 0 &&
        (staleness || (flushPending && queueEmpty) || stopRequested))
      publishNow();

    if (stopRequested && queueEmpty) break;
  }
  {
    const util::MutexLock lock(mu_);
    writerExited_ = true;
  }
  drainedCv_.notifyAll();
}

void IntakePipeline::flush() {
  const util::MutexLock lock(mu_);
  const std::uint64_t target = enqueued_;
  ++flushWaiters_;
  readyCv_.notifyOne();  // The writer may be idle-sleeping on a clean
                         // world; wake it to publish for us.
  while (applied_ + applyFailures_ < target || dirtySincePublish_ > 0) {
    // A stop in progress is terminal for this wait even though the
    // writer may still be draining: the barrier below could otherwise
    // block until the writer's final apply — or forever, if the writer
    // is wedged in a slow sink while the destructor joins it.  Callers
    // racing shutdown get the typed error promptly instead.
    if (stopping_ || writerExited_) {
      --flushWaiters_;
      throw ShutdownError(
          "IntakePipeline::flush: pipeline stopped with work pending");
    }
    drainedCv_.wait(mu_);
  }
  --flushWaiters_;
}

void IntakePipeline::stop() {
  {
    const util::MutexLock lock(mu_);
    stopping_ = true;
  }
  readyCv_.notifyAll();
  // Wake flush() waiters *before* the join: they treat stopping_ as
  // terminal, and the join below can take arbitrarily long (the writer
  // finishes its in-flight apply first).
  drainedCv_.notifyAll();
  if (writer_.joinable()) writer_.join();
  drainedCv_.notifyAll();  // Unhang any flush() that raced the stop.
}

IntakePipeline::Stats IntakePipeline::stats() const {
  const util::MutexLock lock(mu_);
  Stats stats;
  stats.enqueued = enqueued_;
  stats.applied = applied_;
  stats.applyFailures = applyFailures_;
  stats.publishes = publishes_;
  stats.backpressure = backpressure_;
  stats.queueDepth = queue_.size();
  return stats;
}

}  // namespace moloc::service
