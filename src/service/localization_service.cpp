#include "service/localization_service.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "core/online_motion_database.hpp"
#include "store/state_store.hpp"
#include "util/error.hpp"

namespace moloc::service {

namespace {

std::size_t resolveThreadCount(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

std::size_t checkShardCount(std::size_t shardCount) {
  if (shardCount == 0)
    throw util::ConfigError(
        "LocalizationService: shard count must be >= 1");
  return shardCount;
}

/// Resolves the configured IndexMode against the actual radio map; an
/// empty map or k == 0 never gets an index (those configurations keep
/// the unprepared per-session path and its per-session errors).
bool wantTieredIndex(const ServiceConfig& config,
                     const radio::FingerprintDatabase& fingerprints) {
  if (fingerprints.empty() || config.engine.candidateCount == 0)
    return false;
  switch (config.indexMode) {
    case IndexMode::kOn:
      return true;
    case IndexMode::kOff:
      return false;
    case IndexMode::kAuto:
      break;
  }
  return fingerprints.size() >= config.indexAutoThreshold;
}

}  // namespace

core::LocalizationSession LocalizationService::makeSession(
    const radio::FingerprintDatabase& fingerprints,
    const index::TieredIndex* index, const core::MotionDatabase& motion,
    double stepLengthMeters, const core::MoLocConfig& engine,
    const sensors::MotionProcessorParams& motionParams) {
  if (index == nullptr)
    return core::LocalizationSession(fingerprints, motion,
                                     stepLengthMeters, engine,
                                     motionParams);
  // Index-backed candidate estimation: same contract as the radio-map
  // backend (TieredIndex::queryInto mirrors queryInto's validation and
  // — given full shortlist recall — its exact matches).
  return core::LocalizationSession(
      core::CandidateEstimator(
          [index](const radio::Fingerprint& query, std::size_t k,
                  std::vector<core::Candidate>& out) {
            index->queryInto(query, k, out);
          },
          engine.candidateCount),
      motion, stepLengthMeters, engine, motionParams);
}

LocalizationService::LocalizationService(
    radio::FingerprintDatabase fingerprints, core::MotionDatabase motion,
    ServiceConfig config)
    : config_(config),
      fingerprints_(std::make_shared<const radio::FingerprintDatabase>(
          std::move(fingerprints))),
      motion_(std::move(motion)),
      shards_(checkShardCount(config.shardCount)),
      pool_(resolveThreadCount(config.threadCount), config.metrics) {
  // The tiered index (when the policy wants one) is built exactly once,
  // here: the radio map never changes online, so every published
  // WorldSnapshot and every session backend shares this one object.
  if (wantTieredIndex(config_, *fingerprints_))
    index_ = std::make_shared<const index::TieredIndex>(
        fingerprints_, config_.index, config_.indexShardStarts);
  // The boot world: generation 0 over the construction-time databases.
  finishConstruction(std::make_shared<const core::WorldSnapshot>(
      fingerprints_, motion_, 0, 0, index_));
}

LocalizationService::LocalizationService(
    std::shared_ptr<const radio::FingerprintDatabase> fingerprints,
    std::shared_ptr<const kernel::MotionAdjacency> adjacency,
    std::shared_ptr<const index::TieredIndex> index,
    std::uint64_t generation, std::uint64_t intakeRecords,
    ServiceConfig config)
    : config_(config),
      fingerprints_(std::move(fingerprints)),
      index_(std::move(index)),
      shards_(checkShardCount(config.shardCount)),
      pool_(resolveThreadCount(config.threadCount), config.metrics) {
  if (!fingerprints_)
    throw util::ConfigError(
        "LocalizationService: null fingerprint database");
  // The image ships a prebuilt index when the world had one; when it
  // did not, the service's own policy still applies (e.g. a campus
  // image written before indexing existed, loaded by a serving binary
  // that wants the prefilter).
  if (!index_ && wantTieredIndex(config_, *fingerprints_))
    index_ = std::make_shared<const index::TieredIndex>(
        fingerprints_, config_.index, config_.indexShardStarts);
  // The boot world adopts the image's adjacency views and provenance;
  // motion_ stays empty (sessions rebind to the world's adjacency at
  // construction, so the empty boot database never scores a scan).
  finishConstruction(std::make_shared<const core::WorldSnapshot>(
      fingerprints_, std::move(adjacency), generation, intakeRecords,
      index_));
}

void LocalizationService::finishConstruction(
    std::shared_ptr<const core::WorldSnapshot> boot) {
  {
    const util::MutexLock lock(worldMu_);
    world_ = std::move(boot);
    worldHint_.store(&world_->adjacency(), std::memory_order_release);
    worldGeneration_.store(world_->generation(),
                           std::memory_order_relaxed);
  }
  // Sessions inherit the service's registry unless the caller wired
  // the engine to its own.
  if (!config_.engine.metrics) config_.engine.metrics = config_.metrics;
#if MOLOC_METRICS_ENABLED
  if (config_.metrics) {
    auto& registry = *config_.metrics;
    metrics_.scanLatency = &registry.histogram(
        "moloc_service_scan_latency_seconds",
        "Wall time of one localization round (motion processing + "
        "engine), including session-lock wait",
        obs::Histogram::exponentialBuckets(1e-5, 2.0, 20));
    metrics_.batchSize = &registry.histogram(
        "moloc_service_batch_size",
        "Requests per localizeBatch() call",
        obs::Histogram::exponentialBuckets(1.0, 2.0, 14));
    metrics_.batchMatch = &registry.histogram(
        "moloc_service_batch_match_seconds",
        "Wall time of the batched fingerprint-kernel invocation that "
        "matches every scan of a localizeBatch() up front (this work "
        "no longer appears in the per-round engine fingerprint stage)",
        obs::Histogram::exponentialBuckets(1e-6, 2.0, 20));
    metrics_.sessionsActive = &registry.gauge(
        "moloc_service_sessions_active", "Sessions currently tracked");
    metrics_.scansTotal = &registry.counter(
        "moloc_service_scans_total", "Localization rounds served");
    metrics_.scansNoFix = &registry.counter(
        "moloc_service_scans_nofix_total",
        "Rounds that produced no fix (empty candidate set)");
    metrics_.batchRequestsFailed = &registry.counter(
        "moloc_service_batch_requests_failed_total",
        "Batch requests that failed or were skipped after a failure "
        "in their session");
    metrics_.observationsReported = &registry.counter(
        "moloc_service_observations_reported_total",
        "Crowdsourced observations fed through reportObservation()");
    metrics_.backgroundCheckpoints = &registry.counter(
        "moloc_service_background_checkpoints_total",
        "Background checkpoints triggered by the intake record count");
    metrics_.checkpointFailures = &registry.counter(
        "moloc_service_checkpoint_failures_total",
        "Background checkpoints that failed with an exception");
    metrics_.worldPublishes = &registry.counter(
        "moloc_service_world_publishes_total",
        "Immutable WorldSnapshots published by the intake writer");
    metrics_.worldGeneration = &registry.gauge(
        "moloc_service_world_generation",
        "Generation number of the currently serving world");
  }
#endif
}

LocalizationService::~LocalizationService() {
  // Wake checkpoint waiters with a typed error and drain them, so no
  // thread is left blocked on a condition that can no longer change
  // (waitForCheckpoint used to hang shutdown if a checkpoint was in
  // flight when the service died).
  {
    const util::MutexLock lock(checkpointWaitMu_);
    shuttingDown_ = true;
  }
  checkpointCv_.notifyAll();
  {
    const util::MutexLock lock(checkpointWaitMu_);
    while (checkpointWaiters_ > 0) checkpointCv_.wait(checkpointWaitMu_);
  }

  // Stop the intake writer outside intakeMu_ (its hooks take service
  // locks).  stop() drains the queue — admitted observations are still
  // logged and applied — and runs a final publish.
  std::shared_ptr<IntakePipeline> pipeline;
  {
    const util::MutexLock lock(intakeMu_);
    intakeShutdown_ = true;
    pipeline = std::move(pipeline_);
  }
  if (pipeline) pipeline->stop();
  pipeline.reset();

  // Members now destroy in reverse declaration order; pool_ (declared
  // last) goes first and joins any in-flight background checkpoint
  // while everything its task touches is still alive.
}

LocalizationService::Shard& LocalizationService::shardFor(SessionId id) {
  return shards_[static_cast<std::size_t>(id) % shards_.size()];
}

const LocalizationService::Shard& LocalizationService::shardFor(
    SessionId id) const {
  return shards_[static_cast<std::size_t>(id) % shards_.size()];
}

std::shared_ptr<LocalizationService::SessionSlot>
LocalizationService::findOrCreate(SessionId id, double stepLengthMeters) {
  auto& shard = shardFor(id);
  const util::MutexLock lock(shard.mu);
  auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    it = shard.sessions
             .emplace(id, std::make_shared<SessionSlot>(
                              *fingerprints_, index_.get(), motion_,
                              stepLengthMeters, config_.engine,
                              config_.motion,
                              core::WorldSnapshot::adjacencyOf(
                                  currentWorld())))
             .first;
#if MOLOC_METRICS_ENABLED
    if (metrics_.sessionsActive) metrics_.sessionsActive->inc();
#endif
  }
  return it->second;
}

void LocalizationService::openSession(SessionId id,
                                      double stepLengthMeters) {
  auto& shard = shardFor(id);
  const util::MutexLock lock(shard.mu);
  if (shard.sessions.count(id) > 0)
    throw util::ConfigError("LocalizationService: session " +
                                std::to_string(id) + " already exists");
  shard.sessions.emplace(
      id, std::make_shared<SessionSlot>(
              *fingerprints_, index_.get(), motion_, stepLengthMeters,
              config_.engine, config_.motion,
              core::WorldSnapshot::adjacencyOf(currentWorld())));
#if MOLOC_METRICS_ENABLED
  if (metrics_.sessionsActive) metrics_.sessionsActive->inc();
#endif
}

void LocalizationService::adoptWorld(core::LocalizationSession& session) {
  // Steady state (no publish since this session's last scan): one
  // atomic load plus one pointer compare — no lock, no refcount
  // traffic.  The hint is compared, never dereferenced; the session
  // pins the adjacency it is bound to, so equal addresses always
  // mean the same live index (a freed one cannot be reused while
  // the session still holds it).
  const kernel::MotionAdjacency* hint =
      worldHint_.load(std::memory_order_acquire);
  if (hint == nullptr || session.motionAdjacency().get() == hint) return;
  // The world moved: copy the pinning handle under the brief world
  // mutex (possibly an even newer one than the hint we read) and
  // rebind.
  std::shared_ptr<const core::WorldSnapshot> world;
  {
    const util::MutexLock lock(worldMu_);
    world = world_;
  }
  if (world && session.motionAdjacency().get() != &world->adjacency())
    session.rebindMotion(
        core::WorldSnapshot::adjacencyOf(std::move(world)));
}

core::LocationEstimate LocalizationService::localizeLocked(
    core::LocalizationSession& session, const radio::Fingerprint& scan,
    const sensors::ImuTrace& imu) {
#if MOLOC_METRICS_ENABLED
  obs::ScopedTimer timer(metrics_.scanLatency);
#endif
  adoptWorld(session);
  core::LocationEstimate estimate = session.onScan(scan, imu);
#if MOLOC_METRICS_ENABLED
  if (metrics_.scansTotal) metrics_.scansTotal->inc();
  if (metrics_.scansNoFix && !estimate.hasFix())
    metrics_.scansNoFix->inc();
#endif
  return estimate;
}

core::LocationEstimate LocalizationService::localizePreparedLocked(
    core::LocalizationSession& session,
    std::span<const core::Candidate> candidates,
    std::exception_ptr scanError, const sensors::ImuTrace& imu) {
#if MOLOC_METRICS_ENABLED
  obs::ScopedTimer timer(metrics_.scanLatency);
#endif
  adoptWorld(session);
  core::LocationEstimate estimate =
      session.onScanWithCandidates(candidates, scanError, imu);
#if MOLOC_METRICS_ENABLED
  if (metrics_.scansTotal) metrics_.scansTotal->inc();
  if (metrics_.scansNoFix && !estimate.hasFix())
    metrics_.scansNoFix->inc();
#endif
  return estimate;
}

core::LocationEstimate LocalizationService::submitScan(
    SessionId id, const radio::Fingerprint& scan,
    const sensors::ImuTrace& imuSinceLastScan) {
  const auto slot = findOrCreate(id, config_.defaultStepLengthMeters);
  const util::MutexLock lock(slot->mu);
  return localizeLocked(slot->session, scan, imuSinceLastScan);
}

std::vector<core::LocationEstimate> LocalizationService::localizeBatch(
    const std::vector<ScanRequest>& batch) {
  std::vector<core::LocationEstimate> results(batch.size());
  if (batch.empty()) return results;
#if MOLOC_METRICS_ENABLED
  if (metrics_.batchSize)
    metrics_.batchSize->observe(static_cast<double>(batch.size()));
#endif

  // Batched fingerprint matching: every scan in the batch goes through
  // one fingerprint-kernel invocation up front, instead of each session
  // task running its own independent query.  Per-request errors are
  // captured and rethrown inside the owning session's task at the same
  // point the unbatched query would have thrown, so the documented
  // failure semantics are unchanged.  The degenerate configurations
  // (empty radio map, k == 0) keep the unbatched path because their
  // errors surface per session, not per batch.
  const bool prepared =
      !fingerprints_->empty() && config_.engine.candidateCount > 0;
  std::vector<std::vector<core::Candidate>> batchCandidates;
  std::vector<std::exception_ptr> batchErrors;
  if (prepared) {
#if MOLOC_METRICS_ENABLED
    obs::ScopedTimer matchTimer(metrics_.batchMatch);
#endif
    std::vector<const radio::Fingerprint*> scans;
    scans.reserve(batch.size());
    for (const auto& request : batch) scans.push_back(&request.scan);
    // The tiered index, when built, fronts the batched match too —
    // same validation and (given full shortlist recall) the same
    // bitwise matches as the exact kernel scan.
    if (index_)
      index_->queryBatchInto(scans, config_.engine.candidateCount,
                             batchCandidates, &batchErrors);
    else
      fingerprints_->queryBatchInto(scans, config_.engine.candidateCount,
                                    batchCandidates, &batchErrors);
  }

  // Group request indices by session, preserving each session's
  // request order.  One task per session keeps a session's scans
  // strictly ordered while distinct sessions run in parallel — which
  // is also why the batch result cannot depend on thread scheduling.
  std::unordered_map<SessionId, std::vector<std::size_t>> bySession;
  std::vector<SessionId> order;  // First-appearance order, for tasks.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto [it, inserted] = bySession.try_emplace(batch[i].session);
    if (inserted) order.push_back(batch[i].session);
    it->second.push_back(i);
  }

  // Failure bookkeeping shared by the tasks: tasks record failures
  // here instead of letting them escape through their futures, so the
  // failure rethrown below is deterministically the first *in batch
  // order* rather than whichever future happened to be inspected
  // first.
  util::Mutex failureMu;
  std::size_t firstFailedIndex = batch.size();
  std::exception_ptr firstFailure;
  const auto recordFailure = [&](std::size_t index,
                                 std::exception_ptr error) {
    const util::MutexLock lock(failureMu);
    if (index < firstFailedIndex) {
      firstFailedIndex = index;
      firstFailure = std::move(error);
    }
  };

  std::vector<std::future<void>> pending;
  pending.reserve(order.size());
  for (const SessionId id : order) {
    const auto* indices = &bySession.at(id);
    pending.push_back(pool_.submit([this, id, indices, prepared,
                                    &batchCandidates, &batchErrors, &batch,
                                    &results, &recordFailure] {
      std::size_t position = 0;
      try {
        const auto slot =
            findOrCreate(id, config_.defaultStepLengthMeters);
        const util::MutexLock lock(slot->mu);
        for (; position < indices->size(); ++position) {
          const std::size_t i = (*indices)[position];
          results[i] =
              prepared
                  ? localizePreparedLocked(slot->session,
                                           batchCandidates[i],
                                           batchErrors[i], batch[i].imu)
                  : localizeLocked(slot->session, batch[i].scan,
                                   batch[i].imu);
        }
      } catch (...) {
        // A session is a stateful Bayesian filter: once one of its
        // scans fails, applying the later ones would fuse motion
        // across a gap.  Skip the session's remaining requests (their
        // estimates stay default "no fix") and let other sessions
        // proceed.
        recordFailure((*indices)[std::min(position,
                                          indices->size() - 1)],
                      std::current_exception());
#if MOLOC_METRICS_ENABLED
        if (metrics_.batchRequestsFailed)
          metrics_.batchRequestsFailed->inc(
              static_cast<double>(indices->size() - position));
#endif
      }
    }));
  }

  // Settle the whole batch before rethrowing, so no task is left
  // touching `batch`/`results` after this frame unwinds.  Tasks catch
  // their own failures, so these futures normally deliver no
  // exception.
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      recordFailure(batch.size() - 1, std::current_exception());
    }
  }
  if (firstFailure) std::rethrow_exception(firstFailure);
  return results;
}

void LocalizationService::resetSession(SessionId id) {
  std::shared_ptr<SessionSlot> slot;
  {
    auto& shard = shardFor(id);
    const util::MutexLock lock(shard.mu);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) return;
    slot = it->second;
  }
  const util::MutexLock lock(slot->mu);
  slot->session.reset();
}

bool LocalizationService::endSession(SessionId id) {
  auto& shard = shardFor(id);
  const util::MutexLock lock(shard.mu);
  const bool erased = shard.sessions.erase(id) > 0;
#if MOLOC_METRICS_ENABLED
  if (erased && metrics_.sessionsActive) metrics_.sessionsActive->dec();
#endif
  return erased;
}

bool LocalizationService::hasSession(SessionId id) const {
  const auto& shard = shardFor(id);
  const util::MutexLock lock(shard.mu);
  return shard.sessions.count(id) > 0;
}

void LocalizationService::publishWorld(core::OnlineMotionDatabase& db) {
  // The accepted-record count folded into this world; totalSeen is
  // read under the database's state mutex, so this is race-free even
  // while producers classify concurrently.
  const std::uint64_t records = db.reservoirStats().totalSeen;
  const std::uint64_t generation =
      worldGeneration_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto next = std::make_shared<const core::WorldSnapshot>(
      fingerprints_, db.databaseCopy(), generation, records, index_);
  const kernel::MotionAdjacency* hint = &next->adjacency();
  {
    // Held only for the handle swap; the retired world is released
    // outside the lock (its refcount may be the last).
    const util::MutexLock lock(worldMu_);
    world_.swap(next);
  }
  next.reset();
  // Publish the identity last: a reader that sees the new hint is
  // guaranteed to find (at least) this world under worldMu_.
  worldHint_.store(hint, std::memory_order_release);
#if MOLOC_METRICS_ENABLED
  if (metrics_.worldPublishes) metrics_.worldPublishes->inc();
  if (metrics_.worldGeneration)
    metrics_.worldGeneration->set(static_cast<double>(generation));
#endif
}

void LocalizationService::attachIntake(core::OnlineMotionDatabase* db,
                                       store::StateStore* store,
                                       std::uint64_t checkpointEveryRecords,
                                       IntakePolicy policy) {
  if (db == nullptr)
    throw util::ConfigError(
        "LocalizationService::attachIntake: db must be non-null");
  if (checkpointEveryRecords > 0 && store == nullptr)
    throw util::ConfigError(
        "LocalizationService::attachIntake: a checkpoint trigger "
        "requires a store");

  // Stop a previous pipeline outside intakeMu_ (its writer's hooks
  // take service state); a racing reportObservation holds its own
  // shared_ptr and gets ShutdownError from the stopped pipeline.
  std::shared_ptr<IntakePipeline> previous;
  {
    const util::MutexLock lock(intakeMu_);
    previous = std::move(pipeline_);
  }
  if (previous) previous->stop();
  previous.reset();

  if (store != nullptr) db->setSink(store);
  auto pipeline = std::make_shared<IntakePipeline>(
      *db, policy,
      /*publish=*/[this, db](std::uint64_t) { publishWorld(*db); },
      /*afterApply=*/
      [this, db, store, checkpointEveryRecords] {
        maybeCheckpointFromWriter(db, store, checkpointEveryRecords);
      },
      config_.metrics);
  {
    const util::MutexLock lock(intakeMu_);
    intakeDb_ = db;
    pipeline_ = std::move(pipeline);
  }
  // Surface the database's current contents (e.g. state recovered
  // from a checkpoint + WAL replay) to readers right away instead of
  // waiting for the first cadence publish.
  publishWorld(*db);
}

bool LocalizationService::reportObservation(env::LocationId estimatedStart,
                                            env::LocationId estimatedEnd,
                                            double directionDeg,
                                            double offsetMeters) {
  std::shared_ptr<IntakePipeline> pipeline;
  {
    const util::MutexLock lock(intakeMu_);
    pipeline = pipeline_;
  }
  if (!pipeline)
    throw util::StateError(
        "LocalizationService::reportObservation: no intake attached "
        "(call attachIntake first)");
  const bool accepted = pipeline->submit(estimatedStart, estimatedEnd,
                                         directionDeg, offsetMeters);
#if MOLOC_METRICS_ENABLED
  if (metrics_.observationsReported) metrics_.observationsReported->inc();
#endif
  return accepted;
}

void LocalizationService::flushIntake() {
  std::shared_ptr<IntakePipeline> pipeline;
  {
    const util::MutexLock lock(intakeMu_);
    // Distinguish "never attached" (a caller bug, logic_error) from
    // "detached by the destructor" (a benign shutdown race that must
    // surface as the same typed error a stopping pipeline throws —
    // previously this fell through to the misleading logic_error).
    if (!pipeline_ && intakeShutdown_)
      throw ShutdownError(
          "LocalizationService::flushIntake: service shutting down");
    pipeline = pipeline_;
  }
  if (!pipeline)
    throw util::StateError(
        "LocalizationService::flushIntake: no intake attached");
  pipeline->flush();
}

IntakePipeline::Stats LocalizationService::intakeStats() const {
  std::shared_ptr<IntakePipeline> pipeline;
  {
    const util::MutexLock lock(intakeMu_);
    pipeline = pipeline_;
  }
  if (!pipeline)
    throw util::StateError(
        "LocalizationService::intakeStats: no intake attached");
  return pipeline->stats();
}

void LocalizationService::maybeCheckpointFromWriter(
    core::OnlineMotionDatabase* db, store::StateStore* store,
    std::uint64_t checkpointEveryRecords) {
  if (store == nullptr || checkpointEveryRecords == 0) return;
  if (store->recordsSinceCheckpoint() < checkpointEveryRecords) return;
  // One checkpoint at a time: a second trigger while one is being
  // written would snapshot redundantly and contend on the store.
  if (checkpointInFlight_.exchange(true)) return;

  // Snapshot and WAL position are captured here, on the intake writer
  // thread between applies.  The writer is the database's sole
  // mutator, so the pair is mutually consistent without any global
  // intake lock; only the (slow) serialize-and-publish runs on the
  // pool.
  auto snapshot = std::make_shared<core::OnlineMotionDatabase::Snapshot>(
      db->snapshot());
  const std::uint64_t throughSeq = store->lastSeq();
  try {
    pool_.submit([this, store, snapshot, throughSeq] {
      try {
        if (config_.checkpointTestHook) config_.checkpointTestHook();
        store->checkpoint(*snapshot, throughSeq);
#if MOLOC_METRICS_ENABLED
        if (metrics_.backgroundCheckpoints)
          metrics_.backgroundCheckpoints->inc();
      } catch (...) {
        // Durability degraded but serving is unaffected: the WAL still
        // holds everything.  Surface via metrics rather than tearing
        // down a worker.
        if (metrics_.checkpointFailures)
          metrics_.checkpointFailures->inc();
      }
#else
      } catch (...) {
      }
#endif
      {
        const util::MutexLock done(checkpointWaitMu_);
        checkpointInFlight_.store(false);
      }
      checkpointCv_.notifyAll();
    });
  } catch (...) {
    // submit itself failed (pool shutting down): without this reset the
    // flag would latch true forever, permanently disabling background
    // checkpoints and hanging waitForCheckpoint().
    {
      const util::MutexLock done(checkpointWaitMu_);
      checkpointInFlight_.store(false);
    }
    checkpointCv_.notifyAll();
#if MOLOC_METRICS_ENABLED
    if (metrics_.checkpointFailures) metrics_.checkpointFailures->inc();
#endif
  }
}

void LocalizationService::waitForCheckpoint() {
  const util::MutexLock lock(checkpointWaitMu_);
  ++checkpointWaiters_;
  while (checkpointInFlight_.load()) {
    if (shuttingDown_) {
      --checkpointWaiters_;
      checkpointCv_.notifyAll();  // Unblock the destructor's drain.
      throw ShutdownError(
          "LocalizationService::waitForCheckpoint: service shutting "
          "down");
    }
    checkpointCv_.wait(checkpointWaitMu_);
  }
  --checkpointWaiters_;
  checkpointCv_.notifyAll();  // Unblock the destructor's drain.
}

std::size_t LocalizationService::sessionCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const util::MutexLock lock(shard.mu);
    total += shard.sessions.size();
  }
  return total;
}

}  // namespace moloc::service
