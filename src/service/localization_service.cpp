#include "service/localization_service.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace moloc::service {

namespace {

std::size_t resolveThreadCount(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

std::size_t checkShardCount(std::size_t shardCount) {
  if (shardCount == 0)
    throw std::invalid_argument(
        "LocalizationService: shard count must be >= 1");
  return shardCount;
}

}  // namespace

LocalizationService::LocalizationService(
    radio::FingerprintDatabase fingerprints, core::MotionDatabase motion,
    ServiceConfig config)
    : config_(config),
      fingerprints_(std::move(fingerprints)),
      motion_(std::move(motion)),
      shards_(checkShardCount(config.shardCount)),
      pool_(resolveThreadCount(config.threadCount)) {}

LocalizationService::Shard& LocalizationService::shardFor(SessionId id) {
  return shards_[static_cast<std::size_t>(id) % shards_.size()];
}

const LocalizationService::Shard& LocalizationService::shardFor(
    SessionId id) const {
  return shards_[static_cast<std::size_t>(id) % shards_.size()];
}

std::shared_ptr<LocalizationService::SessionSlot>
LocalizationService::findOrCreate(SessionId id, double stepLengthMeters) {
  auto& shard = shardFor(id);
  const std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.sessions.find(id);
  if (it == shard.sessions.end()) {
    it = shard.sessions
             .emplace(id, std::make_shared<SessionSlot>(
                              fingerprints_, motion_, stepLengthMeters,
                              config_.engine, config_.motion))
             .first;
  }
  return it->second;
}

void LocalizationService::openSession(SessionId id,
                                      double stepLengthMeters) {
  auto& shard = shardFor(id);
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.sessions.count(id) > 0)
    throw std::invalid_argument("LocalizationService: session " +
                                std::to_string(id) + " already exists");
  shard.sessions.emplace(
      id, std::make_shared<SessionSlot>(fingerprints_, motion_,
                                        stepLengthMeters, config_.engine,
                                        config_.motion));
}

core::LocationEstimate LocalizationService::submitScan(
    SessionId id, const radio::Fingerprint& scan,
    const sensors::ImuTrace& imuSinceLastScan) {
  const auto slot = findOrCreate(id, config_.defaultStepLengthMeters);
  const std::lock_guard<std::mutex> lock(slot->mu);
  return slot->session.onScan(scan, imuSinceLastScan);
}

std::vector<core::LocationEstimate> LocalizationService::localizeBatch(
    const std::vector<ScanRequest>& batch) {
  std::vector<core::LocationEstimate> results(batch.size());
  if (batch.empty()) return results;

  // Group request indices by session, preserving each session's
  // request order.  One task per session keeps a session's scans
  // strictly ordered while distinct sessions run in parallel — which
  // is also why the batch result cannot depend on thread scheduling.
  std::unordered_map<SessionId, std::vector<std::size_t>> bySession;
  std::vector<SessionId> order;  // First-appearance order, for tasks.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto [it, inserted] = bySession.try_emplace(batch[i].session);
    if (inserted) order.push_back(batch[i].session);
    it->second.push_back(i);
  }

  std::vector<std::future<void>> pending;
  pending.reserve(order.size());
  for (const SessionId id : order) {
    const auto* indices = &bySession.at(id);
    pending.push_back(pool_.submit([this, id, indices, &batch, &results] {
      const auto slot = findOrCreate(id, config_.defaultStepLengthMeters);
      const std::lock_guard<std::mutex> lock(slot->mu);
      for (const std::size_t i : *indices)
        results[i] = slot->session.onScan(batch[i].scan, batch[i].imu);
    }));
  }

  // Settle the whole batch before rethrowing, so no task is left
  // touching `batch`/`results` after this frame unwinds.
  std::exception_ptr firstFailure;
  for (auto& future : pending) {
    try {
      future.get();
    } catch (...) {
      if (!firstFailure) firstFailure = std::current_exception();
    }
  }
  if (firstFailure) std::rethrow_exception(firstFailure);
  return results;
}

void LocalizationService::resetSession(SessionId id) {
  std::shared_ptr<SessionSlot> slot;
  {
    auto& shard = shardFor(id);
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.sessions.find(id);
    if (it == shard.sessions.end()) return;
    slot = it->second;
  }
  const std::lock_guard<std::mutex> lock(slot->mu);
  slot->session.reset();
}

bool LocalizationService::endSession(SessionId id) {
  auto& shard = shardFor(id);
  const std::lock_guard<std::mutex> lock(shard.mu);
  return shard.sessions.erase(id) > 0;
}

bool LocalizationService::hasSession(SessionId id) const {
  const auto& shard = shardFor(id);
  const std::lock_guard<std::mutex> lock(shard.mu);
  return shard.sessions.count(id) > 0;
}

std::size_t LocalizationService::sessionCount() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.sessions.size();
  }
  return total;
}

}  // namespace moloc::service
