#include "service/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace moloc::service {

ThreadPool::ThreadPool(std::size_t threadCount) {
  if (threadCount == 0)
    throw std::invalid_argument("ThreadPool: thread count must be >= 1");
  workers_.reserve(threadCount);
  for (std::size_t i = 0; i < threadCount; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wakeWorker_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
      throw std::runtime_error("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(packaged));
  }
  wakeWorker_.notify_one();
  return future;
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  allIdle_.wait(lock,
                [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wakeWorker_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();  // Exceptions land in the task's future.
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) allIdle_.notify_all();
    }
  }
}

}  // namespace moloc::service
