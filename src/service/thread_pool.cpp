#include "service/thread_pool.hpp"

#include <cstdint>
#include <stdexcept>
#include <utility>

#include "util/error.hpp"

namespace moloc::service {

ThreadPool::ThreadPool(std::size_t threadCount,
                       obs::MetricsRegistry* metrics) {
  if (threadCount == 0)
    throw util::ConfigError("ThreadPool: thread count must be >= 1");
#if MOLOC_METRICS_ENABLED
  if (metrics) {
    queueDepth_ = &metrics->gauge("moloc_pool_queue_depth",
                                  "Tasks queued but not yet running");
    tasksTotal_ = &metrics->counter("moloc_pool_tasks_total",
                                    "Tasks executed by the pool");
    busySeconds_ =
        &metrics->counter("moloc_pool_busy_seconds_total",
                          "Wall time workers spent executing tasks");
  }
#else
  (void)metrics;
#endif
  workers_.reserve(threadCount);
  for (std::size_t i = 0; i < threadCount; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mu_);
    stopping_ = true;
  }
  wakeWorker_.notifyAll();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const util::MutexLock lock(mu_);
    if (stopping_)
      throw util::StateError("ThreadPool: submit after shutdown");
    queue_.push_back(std::move(packaged));
    // set() under the queue lock (a relaxed store, vs two CAS adds for
    // inc/dec outside it) serializes depth updates with the queue
    // itself, so the gauge always ends at the true depth.
#if MOLOC_METRICS_ENABLED
    if (queueDepth_)
      queueDepth_->set(static_cast<double>(queue_.size()));
#endif
  }
  wakeWorker_.notifyOne();
  return future;
}

void ThreadPool::wait() {
  const util::MutexLock lock(mu_);
  while (!(queue_.empty() && running_ == 0)) allIdle_.wait(mu_);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      const util::MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) wakeWorker_.wait(mu_);
      if (queue_.empty()) return;  // stopping_ and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
#if MOLOC_METRICS_ENABLED
      if (queueDepth_)
        queueDepth_->set(static_cast<double>(queue_.size()));
#endif
    }
#if MOLOC_METRICS_ENABLED
    const std::uint64_t taskStart = obs::detail::ticksNow();
#endif
    task();  // Exceptions land in the task's future.
#if MOLOC_METRICS_ENABLED
    if (busySeconds_)
      busySeconds_->inc(
          obs::detail::ticksToSeconds(taskStart, obs::detail::ticksNow()));
    if (tasksTotal_) tasksTotal_->inc();
#endif
    {
      const util::MutexLock lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) allIdle_.notifyAll();
    }
  }
}

}  // namespace moloc::service
