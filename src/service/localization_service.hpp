#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/localization_session.hpp"
#include "core/motion_database.hpp"
#include "obs/metrics.hpp"
#include "radio/fingerprint_database.hpp"
#include "sensors/imu_trace.hpp"
#include "service/thread_pool.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::core {
class OnlineMotionDatabase;
}
namespace moloc::store {
class StateStore;
}

namespace moloc::service {

/// Identifies one tracked user across scans.
using SessionId = std::uint64_t;

/// Server-side tunables of the LocalizationService.
struct ServiceConfig {
  /// Worker threads for localizeBatch(); 0 selects the hardware
  /// concurrency (at least 1).
  std::size_t threadCount = 0;
  /// Shards of the session map; more shards = less lock contention on
  /// session lookup.  Must be >= 1 (throws std::invalid_argument).
  std::size_t shardCount = 16;
  /// Step length assigned to sessions auto-created by submitScan();
  /// openSession() can override per user.
  double defaultStepLengthMeters = 0.72;
  core::MoLocConfig engine;
  sensors::MotionProcessorParams motion;
  /// Registry receiving the service/pool/engine instruments (see
  /// docs/observability.md).  Defaults to the process-wide registry so
  /// a plain service is observable out of the box; point it at a
  /// private registry to isolate one service's series (as the tests
  /// and bench do), or set nullptr to opt out at runtime.  Inert when
  /// the build sets MOLOC_METRICS=OFF.
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();
};

/// One unit of batch work: a scan for one session, plus the IMU
/// recording since that session's previous scan (empty for a first
/// fix).
struct ScanRequest {
  SessionId session = 0;
  radio::Fingerprint scan;
  sensors::ImuTrace imu;
};

/// The concurrent serving layer: owns one immutable copy of the radio
/// map and the motion database, and manages any number of independent
/// per-user LocalizationSessions keyed by SessionId.
///
/// Concurrency model:
///   - The two databases are written only in the constructor and read
///     everywhere after — shared freely across threads without locks.
///   - The session map is sharded; each shard's mutex guards only
///     lookup/insert/erase, never localization work.
///   - Each session carries its own mutex, so concurrent scans for the
///     *same* session serialize (a session is a stateful Bayesian
///     filter; its scans must apply in order) while scans for
///     different sessions proceed in parallel.
///
/// Determinism: a session's estimate depends only on that session's
/// scan sequence, so localizeBatch() over the thread pool returns
/// results bitwise-identical to running each session serially,
/// regardless of thread count or scheduling.
class LocalizationService {
 public:
  /// Takes ownership of one immutable copy of each database.
  LocalizationService(radio::FingerprintDatabase fingerprints,
                      core::MotionDatabase motion,
                      ServiceConfig config = {});

  LocalizationService(const LocalizationService&) = delete;
  LocalizationService& operator=(const LocalizationService&) = delete;

  const ServiceConfig& config() const { return config_; }
  const radio::FingerprintDatabase& fingerprints() const {
    return fingerprints_;
  }
  const core::MotionDatabase& motion() const { return motion_; }
  std::size_t threadCount() const { return pool_.size(); }

  /// Creates the session for `id` with an explicit step length.
  /// Throws std::invalid_argument if the session already exists or the
  /// step length is not positive.
  void openSession(SessionId id, double stepLengthMeters);

  /// One synchronous localization round for `id`, creating the session
  /// on first use (with the default step length).  Thread-safe; calls
  /// for the same id serialize in arrival order.
  core::LocationEstimate submitScan(
      SessionId id, const radio::Fingerprint& scan,
      const sensors::ImuTrace& imuSinceLastScan);

  /// Localizes a batch over the thread pool and returns the estimates
  /// in request order.  Requests for the same session are applied in
  /// their order within `batch`; distinct sessions run in parallel.
  ///
  /// Failure semantics (enforced; see docs/serving.md): when a request
  /// throws (e.g. a NaN scan), that session's *remaining* requests in
  /// the batch are skipped — a stateful session must never apply scans
  /// across a gap — and their estimates stay "no fix".  Requests of
  /// that session *before* the failure remain applied, and every other
  /// session is processed normally.  After the whole batch has
  /// settled, the failure with the smallest batch index is rethrown.
  /// Because already-applied scans are not rolled back, callers must
  /// not blindly resubmit a failed batch (that would double-apply the
  /// successful scans); resubmit only the failed session's tail, or
  /// resetSession() it first.
  std::vector<core::LocationEstimate> localizeBatch(
      const std::vector<ScanRequest>& batch);

  /// Forgets the retained candidate set of `id` (start of a new walk).
  /// No-op for unknown sessions.
  void resetSession(SessionId id);

  /// Destroys the session for `id`; returns whether it existed.
  bool endSession(SessionId id);

  bool hasSession(SessionId id) const;
  std::size_t sessionCount() const;

  // ---- Crowdsourcing intake with durability -------------------------
  //
  // The serving databases above are immutable; the *intake* side is a
  // separate OnlineMotionDatabase that accumulates crowdsourced
  // observations for the next published generation.  The service
  // serializes intake (the WAL order must match the database's update
  // order) and, when a StateStore is attached, triggers background
  // checkpoints so recovery replays a bounded WAL tail.

  /// Wires the intake.  `db` must be non-null and outlive the service
  /// (as must `store`).  When `store` is non-null it is attached as
  /// `db`'s sink, so every accepted observation is durably logged
  /// before it mutates the reservoirs; `checkpointEveryRecords` > 0
  /// (requires a store) publishes a checkpoint on the thread pool
  /// whenever that many records accumulate past the newest checkpoint.
  /// Throws std::invalid_argument on a null db or on a trigger without
  /// a store.
  void attachIntake(core::OnlineMotionDatabase* db,
                    store::StateStore* store = nullptr,
                    std::uint64_t checkpointEveryRecords = 0);

  /// Feeds one crowdsourced observation through the attached intake
  /// database (sanitation filters, WAL, reservoirs).  Returns whether
  /// the observation was accepted.  Thread-safe: calls serialize on the
  /// intake mutex.  Throws std::logic_error when no intake is attached;
  /// propagates the database's validation errors and the store's
  /// StoreError (in which case the observation was not applied).
  bool reportObservation(env::LocationId estimatedStart,
                         env::LocationId estimatedEnd, double directionDeg,
                         double offsetMeters);

  /// Blocks until no background checkpoint is in flight (shutdown and
  /// test hook).  Does not prevent a later report from starting a new
  /// one.
  void waitForCheckpoint();

 private:
  /// Starts a background checkpoint when the trigger fires and none is
  /// already running.  Caller holds intakeMu_ — the snapshot and its
  /// WAL position are captured under the same lock that serializes
  /// reportObservation, which is what makes them consistent.
  void maybeCheckpointLocked() MOLOC_REQUIRES(intakeMu_);
  /// A session plus the mutex serializing its scans.
  struct SessionSlot {
    SessionSlot(const radio::FingerprintDatabase& fingerprints,
                const core::MotionDatabase& motion,
                double stepLengthMeters, const core::MoLocConfig& engine,
                const sensors::MotionProcessorParams& motionParams)
        : session(fingerprints, motion, stepLengthMeters, engine,
                  motionParams) {}
    util::Mutex mu;
    core::LocalizationSession session MOLOC_GUARDED_BY(mu);
  };

  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<SessionId, std::shared_ptr<SessionSlot>> sessions
        MOLOC_GUARDED_BY(mu);
  };

  Shard& shardFor(SessionId id);
  const Shard& shardFor(SessionId id) const;

  /// The slot for `id`, created with `stepLengthMeters` if absent.
  std::shared_ptr<SessionSlot> findOrCreate(SessionId id,
                                            double stepLengthMeters);

  /// One timed localization round on an already-locked slot; updates
  /// the scan counters.
  core::LocationEstimate localizeLocked(core::LocalizationSession& session,
                                        const radio::Fingerprint& scan,
                                        const sensors::ImuTrace& imu);

  /// localizeLocked for a scan whose fingerprint match was precomputed
  /// by the batch kernel path (see localizeBatch); `scanError` carries
  /// the scan's captured validation failure, if any.
  core::LocationEstimate localizePreparedLocked(
      core::LocalizationSession& session,
      std::span<const core::Candidate> candidates,
      std::exception_ptr scanError, const sensors::ImuTrace& imu);

  ServiceConfig config_;
  radio::FingerprintDatabase fingerprints_;
  core::MotionDatabase motion_;
  std::vector<Shard> shards_;

#if MOLOC_METRICS_ENABLED
  struct Metrics {
    obs::Histogram* scanLatency = nullptr;
    obs::Histogram* batchSize = nullptr;
    obs::Histogram* batchMatch = nullptr;
    obs::Gauge* sessionsActive = nullptr;
    obs::Counter* scansTotal = nullptr;
    obs::Counter* scansNoFix = nullptr;
    obs::Counter* batchRequestsFailed = nullptr;
    obs::Counter* observationsReported = nullptr;
    obs::Counter* backgroundCheckpoints = nullptr;
    obs::Counter* checkpointFailures = nullptr;
  };
  Metrics metrics_;
#endif

  // Intake state.  Declared before pool_ on purpose: the pool is the
  // last member, so its destructor joins any in-flight background
  // checkpoint while everything the task touches is still alive.
  util::Mutex intakeMu_;
  core::OnlineMotionDatabase* intakeDb_ MOLOC_GUARDED_BY(intakeMu_) =
      nullptr;
  store::StateStore* intakeStore_ MOLOC_GUARDED_BY(intakeMu_) = nullptr;
  std::uint64_t checkpointEveryRecords_ MOLOC_GUARDED_BY(intakeMu_) = 0;
  util::Mutex checkpointWaitMu_;
  util::CondVar checkpointCv_;
  /// Atomic rather than guarded: maybeCheckpointLocked() claims the
  /// in-flight slot with exchange() while holding intakeMu_ only, and
  /// the pool task clears it under checkpointWaitMu_ for the waiters.
  std::atomic<bool> checkpointInFlight_{false};

  ThreadPool pool_;
};

}  // namespace moloc::service
