#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/localization_session.hpp"
#include "core/motion_database.hpp"
#include "core/world_snapshot.hpp"
#include "index/tiered_index.hpp"
#include "obs/metrics.hpp"
#include "radio/fingerprint_database.hpp"
#include "sensors/imu_trace.hpp"
#include "service/intake.hpp"
#include "service/thread_pool.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::core {
class OnlineMotionDatabase;
}
namespace moloc::store {
class StateStore;
}

namespace moloc::service {

/// Identifies one tracked user across scans.
using SessionId = std::uint64_t;

/// Whether the service fronts the radio map with the tiered candidate
/// index (index::TieredIndex) on the localize path.
enum class IndexMode {
  /// Build the index when the radio map has at least
  /// ServiceConfig::indexAutoThreshold entries — small maps scan
  /// faster exactly than through a prefilter.
  kAuto,
  kOn,
  kOff,
};

/// Server-side tunables of the LocalizationService.
struct ServiceConfig {
  /// Worker threads for localizeBatch(); 0 selects the hardware
  /// concurrency (at least 1).
  std::size_t threadCount = 0;
  /// Shards of the session map; more shards = less lock contention on
  /// session lookup.  Must be >= 1 (throws std::invalid_argument).
  std::size_t shardCount = 16;
  /// Step length assigned to sessions auto-created by submitScan();
  /// openSession() can override per user.
  double defaultStepLengthMeters = 0.72;
  core::MoLocConfig engine;
  sensors::MotionProcessorParams motion;
  /// Tiered-index policy for the localize path (docs/scaling.md).  The
  /// index is built once at construction — the radio map never changes
  /// online — and shared by every published WorldSnapshot.
  IndexMode indexMode = IndexMode::kAuto;
  /// kAuto builds the index at or above this many radio-map entries.
  std::size_t indexAutoThreshold = 4096;
  index::IndexConfig index;
  /// Natural shard boundaries for the index (e.g. a generated venue's
  /// per-floor starts); empty lets the index split uniformly.
  std::vector<std::size_t> indexShardStarts;
  /// Registry receiving the service/pool/engine instruments (see
  /// docs/observability.md).  Defaults to the process-wide registry so
  /// a plain service is observable out of the box; point it at a
  /// private registry to isolate one service's series (as the tests
  /// and bench do), or set nullptr to opt out at runtime.  Inert when
  /// the build sets MOLOC_METRICS=OFF.
  obs::MetricsRegistry* metrics = &obs::MetricsRegistry::global();
  /// Test seam: when set, runs inside every background checkpoint's
  /// pool task before the store write — lets tests hold a checkpoint
  /// deterministically in flight (e.g. to race waitForCheckpoint
  /// against shutdown).  Leave unset in production.
  std::function<void()> checkpointTestHook;
};

/// One unit of batch work: a scan for one session, plus the IMU
/// recording since that session's previous scan (empty for a first
/// fix).
struct ScanRequest {
  SessionId session = 0;
  radio::Fingerprint scan;
  sensors::ImuTrace imu;
};

/// The concurrent serving layer: serves lock-free reads over published
/// immutable WorldSnapshots while a single writer thread folds
/// crowdsourced observations into the next generation, and manages any
/// number of independent per-user LocalizationSessions keyed by
/// SessionId.
///
/// Concurrency model (epoch/RCU-style split; see docs/serving.md):
///   - The serving world is an immutable core::WorldSnapshot behind an
///     atomic shared_ptr.  Readers load it with one atomic op and
///     never take a lock shared with the write side; a reader that
///     pinned an old generation keeps a bitwise-stable world until its
///     session drops the reference (reclamation = shared_ptr
///     refcount).
///   - Intake mutates a private OnlineMotionDatabase on one writer
///     thread behind a bounded MPSC queue (service::IntakePipeline)
///     and publishes a fresh snapshot on a record-count/staleness
///     cadence.  The localize path provably never touches the intake
///     or checkpoint mutexes (MOLOC_EXCLUDES below).
///   - The session map is sharded; each shard's mutex guards only
///     lookup/insert/erase, never localization work.
///   - Each session carries its own mutex, so concurrent scans for the
///     *same* session serialize (a session is a stateful Bayesian
///     filter; its scans must apply in order) while scans for
///     different sessions proceed in parallel.  A session adopts the
///     newest published world at the start of a scan, under that same
///     per-session lock.
///
/// Determinism: a session's estimate depends only on that session's
/// scan sequence and the worlds it adopted, so localizeBatch() over
/// the thread pool returns results bitwise-identical to running each
/// session serially, regardless of thread count or scheduling (worlds
/// only change when the intake publishes; with no publish in flight,
/// every interleaving scores the same snapshot).
class LocalizationService {
 public:
  /// Takes ownership of one immutable copy of each database; they form
  /// the boot world (generation 0).
  LocalizationService(radio::FingerprintDatabase fingerprints,
                      core::MotionDatabase motion,
                      ServiceConfig config = {});

  /// Image-backed construction (src/image): adopts the shared serving
  /// structures a loaded venue image hands out — typically zero-copy
  /// views pinned to an mmap — instead of copying databases and
  /// rebuilding the adjacency/index.  `fingerprints` and `adjacency`
  /// must be non-null (throws std::invalid_argument); `index` may be
  /// null, in which case the configured IndexMode decides whether to
  /// build one over `fingerprints` here.  The boot world carries the
  /// image's generation/intakeRecords provenance; motion() is empty
  /// for such a service (sessions only ever score through the world's
  /// adjacency, which every new session adopts at construction).
  LocalizationService(
      std::shared_ptr<const radio::FingerprintDatabase> fingerprints,
      std::shared_ptr<const kernel::MotionAdjacency> adjacency,
      std::shared_ptr<const index::TieredIndex> index,
      std::uint64_t generation, std::uint64_t intakeRecords,
      ServiceConfig config = {});

  LocalizationService(const LocalizationService&) = delete;
  LocalizationService& operator=(const LocalizationService&) = delete;

  /// Wakes any waitForCheckpoint() waiters with ShutdownError and
  /// drains them, stops the intake writer (admitted observations are
  /// still applied and covered by a final publish), then joins any
  /// in-flight background checkpoint via the pool.
  ~LocalizationService();

  const ServiceConfig& config() const { return config_; }
  const radio::FingerprintDatabase& fingerprints() const {
    return *fingerprints_;
  }
  /// The boot motion database (generation 0).  The *serving* motion
  /// world evolves past it as intake publishes; see currentWorld().
  const core::MotionDatabase& motion() const { return motion_; }
  std::size_t threadCount() const { return pool_.size(); }

  /// The tiered candidate index fronting the radio map, or null when
  /// the configured IndexMode resolved to off (small map under kAuto,
  /// or kOff).  Built once at construction, immutable, shared by every
  /// published WorldSnapshot.
  const std::shared_ptr<const index::TieredIndex>& tieredIndex() const {
    return index_;
  }

  /// The newest published world.  The returned shared_ptr pins the
  /// snapshot (and everything a session could score against) for as
  /// long as the caller holds it.  Takes the brief world mutex to
  /// copy the handle; the scan path itself only does so when the
  /// identity hint says the world actually moved (see adoptWorld).
  std::shared_ptr<const core::WorldSnapshot> currentWorld() const
      MOLOC_EXCLUDES(worldMu_) {
    const util::MutexLock lock(worldMu_);
    return world_;
  }

  /// Creates the session for `id` with an explicit step length.
  /// Throws std::invalid_argument if the session already exists or the
  /// step length is not positive.
  void openSession(SessionId id, double stepLengthMeters);

  /// One synchronous localization round for `id`, creating the session
  /// on first use (with the default step length).  Thread-safe; calls
  /// for the same id serialize in arrival order.
  core::LocationEstimate submitScan(
      SessionId id, const radio::Fingerprint& scan,
      const sensors::ImuTrace& imuSinceLastScan)
      MOLOC_EXCLUDES(intakeMu_, checkpointWaitMu_);

  /// Localizes a batch over the thread pool and returns the estimates
  /// in request order.  Requests for the same session are applied in
  /// their order within `batch`; distinct sessions run in parallel.
  ///
  /// Failure semantics (enforced; see docs/serving.md): when a request
  /// throws (e.g. a NaN scan), that session's *remaining* requests in
  /// the batch are skipped — a stateful session must never apply scans
  /// across a gap — and their estimates stay "no fix".  Requests of
  /// that session *before* the failure remain applied, and every other
  /// session is processed normally.  After the whole batch has
  /// settled, the failure with the smallest batch index is rethrown.
  /// Because already-applied scans are not rolled back, callers must
  /// not blindly resubmit a failed batch (that would double-apply the
  /// successful scans); resubmit only the failed session's tail, or
  /// resetSession() it first.
  std::vector<core::LocationEstimate> localizeBatch(
      const std::vector<ScanRequest>& batch)
      MOLOC_EXCLUDES(intakeMu_, checkpointWaitMu_);

  /// Forgets the retained candidate set of `id` (start of a new walk).
  /// No-op for unknown sessions.
  void resetSession(SessionId id);

  /// Destroys the session for `id`; returns whether it existed.
  bool endSession(SessionId id);

  bool hasSession(SessionId id) const;
  std::size_t sessionCount() const;

  // ---- Crowdsourcing intake with durability -------------------------
  //
  // The serving worlds above are immutable; the *intake* side is a
  // separate OnlineMotionDatabase mutated only by the pipeline's
  // writer thread, which preserves the WAL write-ahead discipline (the
  // WAL order, reservoir update order, and RNG draw order are all the
  // writer's apply order), triggers background checkpoints so recovery
  // replays a bounded WAL tail, and publishes each new generation of
  // the serving world.

  /// Wires the intake and starts its writer thread.  `db` must be
  /// non-null and outlive the service (as must `store`).  When `store`
  /// is non-null it is attached as `db`'s sink, so every applied
  /// observation is durably logged before it mutates the reservoirs;
  /// `checkpointEveryRecords` > 0 (requires a store) publishes a
  /// checkpoint on the thread pool whenever that many records
  /// accumulate past the newest checkpoint.  `policy` sets the queue
  /// bound and the publish cadence.  The database's current contents
  /// (e.g. recovered state) are published immediately.  Re-attaching
  /// stops and drains the previous pipeline first.  Throws
  /// std::invalid_argument on a null db or on a trigger without a
  /// store.
  void attachIntake(core::OnlineMotionDatabase* db,
                    store::StateStore* store = nullptr,
                    std::uint64_t checkpointEveryRecords = 0,
                    IntakePolicy policy = {});

  /// Feeds one crowdsourced observation into the intake pipeline.
  /// The sanitation verdict is computed synchronously (returns whether
  /// the observation was accepted); an accepted observation is
  /// *admitted* — durably logged and applied slightly later by the
  /// writer thread, in admission order.  flushIntake() is the barrier
  /// that makes admissions durable and published.  Throws
  /// std::logic_error when no intake is attached, the database's
  /// validation errors, BackpressureError when the queue is full (the
  /// observation is not admitted), and ShutdownError during shutdown.
  bool reportObservation(env::LocationId estimatedStart,
                         env::LocationId estimatedEnd, double directionDeg,
                         double offsetMeters);

  /// Blocks until every observation admitted before this call has been
  /// applied and the world containing them published (durability and
  /// visibility barrier; tests and orderly shutdown).  Throws
  /// std::logic_error when no intake is attached and ShutdownError if
  /// the pipeline stops mid-wait.
  void flushIntake();

  /// Counters of the intake pipeline (admissions, applies, publishes,
  /// backpressure rejections).  Throws std::logic_error when no intake
  /// is attached.
  IntakePipeline::Stats intakeStats() const;

  /// Blocks until no background checkpoint is in flight (shutdown and
  /// test hook).  Does not prevent a later report from starting a new
  /// one.  Throws ShutdownError instead of hanging when the service is
  /// destroyed while waiting.
  void waitForCheckpoint();

 private:
  /// Starts a background checkpoint when the trigger fires and none is
  /// already running.  Runs on the intake writer thread between
  /// applies — the writer is the database's sole mutator, so the
  /// snapshot and its WAL position are mutually consistent without any
  /// global intake lock.
  void maybeCheckpointFromWriter(core::OnlineMotionDatabase* db,
                                 store::StateStore* store,
                                 std::uint64_t checkpointEveryRecords);

  /// Freezes `db` into a new WorldSnapshot and publishes it (release
  /// store).  Runs on the intake writer thread, and once at attach.
  void publishWorld(core::OnlineMotionDatabase& db);

  /// Shared constructor tail: publishes `boot` as the serving world,
  /// inherits the metrics registry into the engine config, and
  /// registers the service instruments.
  void finishConstruction(std::shared_ptr<const core::WorldSnapshot> boot);

  /// Adopts the newest published world into `session` if it is still
  /// scoring an older generation.  Caller holds the session's slot
  /// lock; the load is lock-free.
  void adoptWorld(core::LocalizationSession& session);
  /// The session for a new slot: index-backed candidate estimation
  /// when the service built a tiered index, the plain radio-map
  /// backend otherwise.  The captured index pointer stays valid for
  /// the session's life (index_ is declared before shards_, so it
  /// outlives every slot).
  static core::LocalizationSession makeSession(
      const radio::FingerprintDatabase& fingerprints,
      const index::TieredIndex* index, const core::MotionDatabase& motion,
      double stepLengthMeters, const core::MoLocConfig& engine,
      const sensors::MotionProcessorParams& motionParams);

  /// A session plus the mutex serializing its scans.
  struct SessionSlot {
    SessionSlot(const radio::FingerprintDatabase& fingerprints,
                const index::TieredIndex* index,
                const core::MotionDatabase& motion,
                double stepLengthMeters, const core::MoLocConfig& engine,
                const sensors::MotionProcessorParams& motionParams,
                std::shared_ptr<const kernel::MotionAdjacency> worldAdjacency)
        : session(makeSession(fingerprints, index, motion,
                              stepLengthMeters, engine, motionParams)) {
      // Adopt the serving world up front so the first scan does not
      // pay a rebind.  Safe without the lock: constructors run before
      // the slot is visible to any other thread (and are outside the
      // thread-safety analysis).
      if (worldAdjacency) session.rebindMotion(std::move(worldAdjacency));
    }
    util::Mutex mu;
    core::LocalizationSession session MOLOC_GUARDED_BY(mu);
  };

  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<SessionId, std::shared_ptr<SessionSlot>> sessions
        MOLOC_GUARDED_BY(mu);
  };

  Shard& shardFor(SessionId id);
  const Shard& shardFor(SessionId id) const;

  /// The slot for `id`, created with `stepLengthMeters` if absent.
  std::shared_ptr<SessionSlot> findOrCreate(SessionId id,
                                            double stepLengthMeters);

  /// One timed localization round on an already-locked slot; updates
  /// the scan counters.
  core::LocationEstimate localizeLocked(core::LocalizationSession& session,
                                        const radio::Fingerprint& scan,
                                        const sensors::ImuTrace& imu);

  /// localizeLocked for a scan whose fingerprint match was precomputed
  /// by the batch kernel path (see localizeBatch); `scanError` carries
  /// the scan's captured validation failure, if any.
  core::LocationEstimate localizePreparedLocked(
      core::LocalizationSession& session,
      std::span<const core::Candidate> candidates,
      std::exception_ptr scanError, const sensors::ImuTrace& imu);

  ServiceConfig config_;
  /// Shared, never mutated after construction: every published
  /// WorldSnapshot holds a reference instead of a copy.
  std::shared_ptr<const radio::FingerprintDatabase> fingerprints_;
  /// The tiered candidate index over fingerprints_, or null (see
  /// IndexMode).  Built once here, before the boot world; published
  /// snapshots and session backends share it, never copy it.
  /// Declared before shards_ so it outlives every session that
  /// captured its address.
  std::shared_ptr<const index::TieredIndex> index_;
  /// The boot motion database (what motion() returns); the serving
  /// world evolves past it via published snapshots.
  core::MotionDatabase motion_;
  /// The serving world.  The pinning handle lives under worldMu_ —
  /// held only for the pointer copy, never across scoring — while
  /// worldHint_ carries the published adjacency's identity so the
  /// steady-state scan path can detect "world unchanged" with one
  /// atomic load and no lock.  The hint is only ever *compared*,
  /// never dereferenced: a session pins the adjacency it is bound
  /// to, so a matching address always means the same live object
  /// (no ABA), and a stale mismatch just takes the slow path.
  /// (libstdc++'s std::atomic<shared_ptr> is a spinlock whose load
  /// unlocks relaxed — both slower here and a TSan report.)
  /// Never null after construction.
  mutable util::Mutex worldMu_;
  std::shared_ptr<const core::WorldSnapshot> world_
      MOLOC_GUARDED_BY(worldMu_);
  std::atomic<const kernel::MotionAdjacency*> worldHint_{nullptr};
  /// Publish sequence; the boot world is generation 0.
  std::atomic<std::uint64_t> worldGeneration_{0};
  std::vector<Shard> shards_;

#if MOLOC_METRICS_ENABLED
  struct Metrics {
    obs::Histogram* scanLatency = nullptr;
    obs::Histogram* batchSize = nullptr;
    obs::Histogram* batchMatch = nullptr;
    obs::Gauge* sessionsActive = nullptr;
    obs::Counter* scansTotal = nullptr;
    obs::Counter* scansNoFix = nullptr;
    obs::Counter* batchRequestsFailed = nullptr;
    obs::Counter* observationsReported = nullptr;
    obs::Counter* backgroundCheckpoints = nullptr;
    obs::Counter* checkpointFailures = nullptr;
    obs::Counter* worldPublishes = nullptr;
    obs::Gauge* worldGeneration = nullptr;
  };
  Metrics metrics_;
#endif

  // Intake state.  Declared before pool_ on purpose: the pool is the
  // last member, so its destructor joins any in-flight background
  // checkpoint while everything the task touches is still alive.
  mutable util::Mutex intakeMu_;
  core::OnlineMotionDatabase* intakeDb_ MOLOC_GUARDED_BY(intakeMu_) =
      nullptr;
  /// Shared so reportObservation can hand a submit to a pipeline that
  /// a concurrent re-attach is replacing (a stopped pipeline throws
  /// ShutdownError; it is never destroyed mid-call).
  std::shared_ptr<IntakePipeline> pipeline_ MOLOC_GUARDED_BY(intakeMu_);
  /// Set by the destructor as it detaches the pipeline: tells
  /// flushIntake() arriving after that point to throw the typed
  /// ShutdownError rather than "no intake attached".
  bool intakeShutdown_ MOLOC_GUARDED_BY(intakeMu_) = false;
  util::Mutex checkpointWaitMu_;
  util::CondVar checkpointCv_;
  /// Set by the destructor (under checkpointWaitMu_) before it wakes
  /// and drains the checkpoint waiters.
  bool shuttingDown_ MOLOC_GUARDED_BY(checkpointWaitMu_) = false;
  /// Threads currently blocked in waitForCheckpoint(); the destructor
  /// drains this to zero before tearing anything down.
  int checkpointWaiters_ MOLOC_GUARDED_BY(checkpointWaitMu_) = 0;
  /// Atomic rather than guarded: maybeCheckpointFromWriter() claims
  /// the in-flight slot with exchange() on the writer thread, and the
  /// pool task clears it under checkpointWaitMu_ for the waiters.
  std::atomic<bool> checkpointInFlight_{false};

  ThreadPool pool_;
};

}  // namespace moloc::service
