#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::service {

/// A fixed-size pool of worker threads draining a FIFO task queue —
/// the dispatch substrate of the LocalizationService.
///
/// Tasks are type-erased void() callables; submit() returns a future
/// that becomes ready when the task has run (exceptions thrown by the
/// task are captured into the future).  The destructor drains every
/// task already submitted, then joins the workers.
class ThreadPool {
 public:
  /// Spawns `threadCount` workers; must be >= 1 (throws
  /// std::invalid_argument).  A non-null `metrics` registry receives
  /// `moloc_pool_queue_depth`, `moloc_pool_tasks_total`, and
  /// `moloc_pool_busy_seconds_total`; inert when the build sets
  /// MOLOC_METRICS=OFF.
  explicit ThreadPool(std::size_t threadCount,
                      obs::MetricsRegistry* metrics = nullptr);

  /// Drains the queue, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task.  Throws std::runtime_error if the pool is
  /// shutting down.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  util::Mutex mu_;
  std::deque<std::packaged_task<void()>> queue_ MOLOC_GUARDED_BY(mu_);
  util::CondVar wakeWorker_;
  util::CondVar allIdle_;
  /// Tasks currently executing.
  std::size_t running_ MOLOC_GUARDED_BY(mu_) = 0;
  bool stopping_ MOLOC_GUARDED_BY(mu_) = false;

#if MOLOC_METRICS_ENABLED
  obs::Gauge* queueDepth_ = nullptr;
  obs::Counter* tasksTotal_ = nullptr;
  obs::Counter* busySeconds_ = nullptr;
#endif
};

}  // namespace moloc::service
