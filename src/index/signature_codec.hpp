#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace moloc::index {

/// Maps an RSS reading to a few-bit bucket for the prefilter tier.
///
/// Bucket 0 is reserved for "not heard" (readings at or below the
/// detection floor), which makes AP absence first-class in the index:
/// the lowest thermometer plane of the bucket code *is* the presence
/// plane, so a location that does not hear an AP differs from every
/// location that does in at least that plane.
struct QuantizerConfig {
  /// Readings at or below this are "not heard" (bucket 0).  Matches
  /// radio::PropagationParams::detectionFloorDbm by default.
  double floorDbm = -100.0;
  /// Width in dB of each heard bucket above the floor.
  double bucketWidthDb = 8.0;
  /// Total buckets including bucket 0; the signature stores
  /// bucketCount - 1 thermometer planes per AP.  Must be in
  /// [2, kMaxBucketCount].
  int bucketCount = 8;
};

/// Entries per bit-sliced block: one machine word of candidates.
inline constexpr std::size_t kBlockEntries = 64;

/// Upper bound on QuantizerConfig::bucketCount (15 planes per AP).
inline constexpr int kMaxBucketCount = 16;

/// Throws std::invalid_argument when the config is unusable
/// (non-finite floor, non-positive width, bucketCount out of range).
void validateQuantizer(const QuantizerConfig& config);

/// The bucket of one RSS reading: 0 when not heard, else
/// 1 + floor((rss - floor) / width) clamped to bucketCount - 1.
///
/// The quantizer's contract with the prefilter: for any two readings
/// with buckets qa, qb, |rssA - rssB| > (|qa - qb| - 1) * width — so a
/// bucket-space L1 distance is, up to one bucket of slack per AP, a
/// lower bound on the dB-space L1 distance.
std::uint8_t quantizeRss(double rssDbm, const QuantizerConfig& config);

/// Packs up to kBlockEntries bucket values (each < bucketCount) into
/// bucketCount - 1 thermometer bit planes: bit e of planes[t] is set
/// iff buckets[e] > t.  Plane 0 is the presence plane.  planes must
/// have exactly bucketCount - 1 words.  Throws std::invalid_argument
/// on bad sizes or out-of-range bucket values.
void packThermometerPlanes(std::span<const std::uint8_t> buckets,
                           int bucketCount,
                           std::span<std::uint64_t> planes);

/// Inverse of packThermometerPlanes for the first `entryCount` entries.
/// Throws std::invalid_argument on bad sizes or non-thermometer planes
/// (a set bit in plane t+1 without the bit in plane t).
void unpackThermometerPlanes(std::span<const std::uint64_t> planes,
                             int bucketCount, std::size_t entryCount,
                             std::span<std::uint8_t> buckets);

/// A malformed serialized signature block (the typed rejection the
/// fuzz harness expects; anything else escaping decode is a bug).
class SignatureCodecError : public std::runtime_error {
 public:
  explicit SignatureCodecError(const std::string& what)
      : std::runtime_error("SignatureCodec: " + what) {}
};

/// Decoded form of one serialized signature block.
struct DecodedSignatureBlock {
  int bucketCount = 0;
  std::vector<std::uint8_t> buckets;  ///< One bucket per entry.
};

/// Serializes one block of bucket values:
///   byte 0: bucketCount, byte 1: entryCount,
///   then (bucketCount - 1) little-endian u64 thermometer planes.
/// This is the canonical on-the-wire/in-slab bit-slicing; the index
/// builds its shard slabs through packThermometerPlanes, so the fuzzed
/// decode path exercises the same bit layout queries scan.  Throws
/// std::invalid_argument on invalid buckets or bucketCount.
std::vector<std::uint8_t> encodeSignatureBlock(
    std::span<const std::uint8_t> buckets, int bucketCount);

/// Parses a serialized signature block, validating size, header
/// ranges, thermometer monotonicity, and that no bit is set past
/// entryCount.  Throws SignatureCodecError on any violation; a decoded
/// block re-encodes to byte-identical input (canonical form).
DecodedSignatureBlock decodeSignatureBlock(
    std::span<const std::uint8_t> bytes);

}  // namespace moloc::index
