#include "index/signature_codec.hpp"

#include <cmath>

#include "util/error.hpp"

namespace moloc::index {

namespace {

std::uint64_t entryMask(std::size_t entryCount) {
  return entryCount >= kBlockEntries
             ? ~std::uint64_t{0}
             : (std::uint64_t{1} << entryCount) - 1;
}

}  // namespace

void validateQuantizer(const QuantizerConfig& config) {
  if (!std::isfinite(config.floorDbm))
    throw util::ConfigError("QuantizerConfig: non-finite floorDbm");
  if (!(config.bucketWidthDb > 0.0) ||
      !std::isfinite(config.bucketWidthDb))
    throw util::ConfigError(
        "QuantizerConfig: bucketWidthDb must be positive and finite");
  if (config.bucketCount < 2 || config.bucketCount > kMaxBucketCount)
    throw util::ConfigError(
        "QuantizerConfig: bucketCount must be in [2, " +
        std::to_string(kMaxBucketCount) + "], got " +
        std::to_string(config.bucketCount));
}

std::uint8_t quantizeRss(double rssDbm, const QuantizerConfig& config) {
  // NaN compares false, landing in bucket 0 alongside "not heard" —
  // the callers validate finiteness before trusting a reading, but the
  // quantizer itself must be total for the fuzz surface.
  if (!(rssDbm > config.floorDbm)) return 0;
  const double above = (rssDbm - config.floorDbm) / config.bucketWidthDb;
  const double bucket = 1.0 + std::floor(above);
  const double top = static_cast<double>(config.bucketCount - 1);
  return static_cast<std::uint8_t>(bucket < top ? bucket : top);
}

void packThermometerPlanes(std::span<const std::uint8_t> buckets,
                           int bucketCount,
                           std::span<std::uint64_t> planes) {
  if (bucketCount < 2 || bucketCount > kMaxBucketCount)
    throw util::ConfigError("packThermometerPlanes: bad bucketCount");
  if (buckets.size() > kBlockEntries)
    throw util::ConfigError(
        "packThermometerPlanes: more than kBlockEntries buckets");
  if (planes.size() != static_cast<std::size_t>(bucketCount - 1))
    throw util::ConfigError(
        "packThermometerPlanes: planes span must hold bucketCount - 1 "
        "words");
  for (auto& plane : planes) plane = 0;
  for (std::size_t e = 0; e < buckets.size(); ++e) {
    if (buckets[e] >= bucketCount)
      throw util::ConfigError(
          "packThermometerPlanes: bucket value out of range");
    for (int t = 0; t < buckets[e]; ++t)
      planes[static_cast<std::size_t>(t)] |= std::uint64_t{1} << e;
  }
}

void unpackThermometerPlanes(std::span<const std::uint64_t> planes,
                             int bucketCount, std::size_t entryCount,
                             std::span<std::uint8_t> buckets) {
  if (bucketCount < 2 || bucketCount > kMaxBucketCount)
    throw util::ConfigError("unpackThermometerPlanes: bad bucketCount");
  if (planes.size() != static_cast<std::size_t>(bucketCount - 1))
    throw util::ConfigError(
        "unpackThermometerPlanes: planes span must hold bucketCount - 1 "
        "words");
  if (entryCount > kBlockEntries || buckets.size() != entryCount)
    throw util::ConfigError(
        "unpackThermometerPlanes: bad entry count");
  for (std::size_t t = 0; t + 1 < planes.size(); ++t)
    if ((planes[t + 1] & ~planes[t]) != 0)
      throw util::ConfigError(
          "unpackThermometerPlanes: non-thermometer planes");
  for (std::size_t e = 0; e < entryCount; ++e) {
    std::uint8_t bucket = 0;
    for (const std::uint64_t plane : planes)
      bucket += static_cast<std::uint8_t>((plane >> e) & 1u);
    buckets[e] = bucket;
  }
}

std::vector<std::uint8_t> encodeSignatureBlock(
    std::span<const std::uint8_t> buckets, int bucketCount) {
  std::vector<std::uint64_t> planes(
      bucketCount >= 2 ? static_cast<std::size_t>(bucketCount - 1) : 0);
  packThermometerPlanes(buckets, bucketCount, planes);
  std::vector<std::uint8_t> bytes;
  bytes.reserve(2 + planes.size() * 8);
  bytes.push_back(static_cast<std::uint8_t>(bucketCount));
  bytes.push_back(static_cast<std::uint8_t>(buckets.size()));
  for (const std::uint64_t plane : planes)
    for (int byte = 0; byte < 8; ++byte)
      bytes.push_back(static_cast<std::uint8_t>(plane >> (8 * byte)));
  return bytes;
}

DecodedSignatureBlock decodeSignatureBlock(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 2) throw SignatureCodecError("truncated header");
  const int bucketCount = bytes[0];
  const std::size_t entryCount = bytes[1];
  if (bucketCount < 2 || bucketCount > kMaxBucketCount)
    throw SignatureCodecError("bucketCount " +
                              std::to_string(bucketCount) +
                              " outside [2, " +
                              std::to_string(kMaxBucketCount) + "]");
  if (entryCount > kBlockEntries)
    throw SignatureCodecError("entryCount " + std::to_string(entryCount) +
                              " exceeds " +
                              std::to_string(kBlockEntries));
  const std::size_t planeCount = static_cast<std::size_t>(bucketCount - 1);
  if (bytes.size() != 2 + planeCount * 8)
    throw SignatureCodecError(
        "size " + std::to_string(bytes.size()) + " != expected " +
        std::to_string(2 + planeCount * 8));

  std::vector<std::uint64_t> planes(planeCount);
  for (std::size_t t = 0; t < planeCount; ++t) {
    std::uint64_t plane = 0;
    for (int byte = 0; byte < 8; ++byte)
      plane |= std::uint64_t{bytes[2 + t * 8 + byte]} << (8 * byte);
    planes[t] = plane;
  }

  const std::uint64_t mask = entryMask(entryCount);
  for (std::size_t t = 0; t < planeCount; ++t)
    if ((planes[t] & ~mask) != 0)
      throw SignatureCodecError("bit set past entryCount in plane " +
                                std::to_string(t));
  for (std::size_t t = 0; t + 1 < planeCount; ++t)
    if ((planes[t + 1] & ~planes[t]) != 0)
      throw SignatureCodecError(
          "non-thermometer planes (plane " + std::to_string(t + 1) +
          " not a subset of plane " + std::to_string(t) + ")");

  DecodedSignatureBlock block;
  block.bucketCount = bucketCount;
  block.buckets.resize(entryCount);
  unpackThermometerPlanes(planes, bucketCount, entryCount, block.buckets);
  return block;
}

}  // namespace moloc::index
