#include "index/tiered_index.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <future>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "service/thread_pool.hpp"
#include "util/error.hpp"

namespace moloc::index {

namespace {

/// Histogram bins for the running threshold selection.  Bucket-space
/// distances are clamped into the last bin; a threshold landing there
/// only enlarges the shortlist (never drops a candidate), so the cap
/// is overshoot-safe.
constexpr std::uint32_t kHistogramCap = 4096;

bool allFinite(const radio::Fingerprint& fp) {
  for (std::size_t i = 0; i < fp.size(); ++i)
    if (!std::isfinite(fp[i])) return false;
  return true;
}

}  // namespace

struct TieredIndex::ScanWorkspace {
  std::vector<std::uint8_t> qBuckets;
  std::vector<std::uint32_t> shardLb;
  std::vector<std::uint32_t> shardOffset;
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> rowDistance;  ///< Per global row, scanned only.
  std::vector<std::uint32_t> histogram;
  std::vector<std::uint32_t> scannedShards;
  std::vector<std::uint32_t> shortlist;
  kernel::FlatMatrix scratch;
  std::vector<double> distances;
  std::vector<kernel::TopKEntry> topk;
  std::vector<double> fullDistances;
  std::vector<kernel::TopKEntry> fullTopk;
};

TieredIndex::ScanWorkspace& TieredIndex::threadWorkspace() {
  // Per-thread scratch keeps concurrent queries lock-free and
  // allocation-free against a shared immutable index, mirroring
  // FingerprintDatabase's kernel workspace.
  static thread_local ScanWorkspace workspace;
  return workspace;
}

TieredIndex::TieredIndex(
    std::shared_ptr<const radio::FingerprintDatabase> database,
    IndexConfig config, std::span<const std::size_t> shardStarts)
    : db_(std::move(database)), config_(config) {
  if (!db_) throw util::ConfigError("TieredIndex: null database");
  validateQuantizer(config_.quantizer);
  if (config_.maxShardEntries == 0)
    throw util::ConfigError(
        "TieredIndex: maxShardEntries must be >= 1");

  const std::size_t n = db_->size();
  const std::size_t apCount = db_->apCount();
  const std::size_t planeCount =
      static_cast<std::size_t>(config_.quantizer.bucketCount - 1);
  if (apCount * planeCount >
      std::numeric_limits<std::uint16_t>::max())
    throw util::ConfigError(
        "TieredIndex: apCount * (bucketCount - 1) exceeds the scan "
        "counter range");

  locIds_ = db_->locationIds();
  rowValues_.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    rowValues_.push_back(db_->entryAt(r).values());

  // Segment boundaries: caller-provided natural volumes (per
  // building/floor), else one segment; each capped at maxShardEntries.
  std::vector<std::size_t> starts(shardStarts.begin(), shardStarts.end());
  if (starts.empty()) starts.push_back(0);
  if (starts.front() != 0)
    throw util::ConfigError(
        "TieredIndex: shardStarts must begin at row 0");
  for (std::size_t i = 1; i < starts.size(); ++i)
    if (starts[i] <= starts[i - 1] || starts[i] >= n)
      throw util::ConfigError(
          "TieredIndex: shardStarts must be strictly increasing and "
          "inside the database");

  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t i = 0; i < starts.size() && n > 0; ++i) {
    const std::size_t segmentEnd =
        i + 1 < starts.size() ? starts[i + 1] : n;
    for (std::size_t begin = starts[i]; begin < segmentEnd;
         begin += config_.maxShardEntries)
      ranges.emplace_back(
          begin, std::min(begin + config_.maxShardEntries, segmentEnd));
  }

  // Shards are built independently — each task quantizes and packs
  // only its own row range into its own slot — so the fan-out over the
  // thread pool produces planes bitwise-identical to the serial loop
  // at any worker count (the parallel/serial identity test holds the
  // proof).
  std::size_t workers =
      config_.buildThreads != 0
          ? config_.buildThreads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, ranges.size());
  shards_.resize(ranges.size());
  if (workers <= 1) {
    for (std::size_t s = 0; s < ranges.size(); ++s)
      shards_[s] = buildShard(ranges[s].first, ranges[s].second);
  } else {
    service::ThreadPool pool(workers);
    std::vector<std::future<void>> built;
    built.reserve(ranges.size());
    for (std::size_t s = 0; s < ranges.size(); ++s)
      built.push_back(pool.submit([this, &ranges, s] {
        shards_[s] = buildShard(ranges[s].first, ranges[s].second);
      }));
    // get() rethrows the first failed shard's exception; the pool
    // destructor then drains the rest before `ranges` unwinds.
    for (auto& b : built) b.get();
  }
}

TieredIndex::Shard TieredIndex::buildShard(std::size_t rowBegin,
                                           std::size_t rowEnd) const {
  const std::size_t count = rowEnd - rowBegin;
  const std::size_t apCount = db_->apCount();
  const int bucketCount = config_.quantizer.bucketCount;
  const std::size_t planeCount = static_cast<std::size_t>(bucketCount - 1);

  Shard shard;
  shard.rowBegin = rowBegin;
  shard.rowEnd = rowEnd;
  shard.words = (count + kBlockEntries - 1) / kBlockEntries;

  // Quantize the shard's entries once (row-major scratch).
  std::vector<std::uint8_t> buckets(count * apCount);
  for (std::size_t e = 0; e < count; ++e) {
    const std::span<const double> row = rowValues_[rowBegin + e];
    for (std::size_t c = 0; c < apCount; ++c)
      buckets[e * apCount + c] = quantizeRss(row[c], config_.quantizer);
  }

  // An AP silent across the whole shard carries no plane storage —
  // the query-time contribution of such APs is a per-shard constant.
  for (std::size_t c = 0; c < apCount; ++c) {
    std::uint8_t minBucket = std::numeric_limits<std::uint8_t>::max();
    std::uint8_t maxBucket = 0;
    for (std::size_t e = 0; e < count; ++e) {
      const std::uint8_t b = buckets[e * apCount + c];
      minBucket = std::min(minBucket, b);
      maxBucket = std::max(maxBucket, b);
    }
    if (maxBucket == 0) continue;
    shard.activeApStorage.push_back(static_cast<std::uint32_t>(c));
    shard.minBucketStorage.push_back(minBucket);
    shard.maxBucketStorage.push_back(maxBucket);
  }

  shard.slabStorage.assign(
      shard.activeApStorage.size() * planeCount * shard.words, 0);
  std::array<std::uint8_t, kBlockEntries> blockBuckets{};
  std::vector<std::uint64_t> planes(planeCount);
  for (std::size_t a = 0; a < shard.activeApStorage.size(); ++a) {
    const std::size_t c = shard.activeApStorage[a];
    for (std::size_t w = 0; w < shard.words; ++w) {
      const std::size_t blockCount =
          std::min(kBlockEntries, count - w * kBlockEntries);
      for (std::size_t e = 0; e < blockCount; ++e)
        blockBuckets[e] =
            buckets[(w * kBlockEntries + e) * apCount + c];
      packThermometerPlanes({blockBuckets.data(), blockCount},
                            bucketCount, planes);
      for (std::size_t t = 0; t < planeCount; ++t)
        shard.slabStorage[(a * planeCount + t) * shard.words + w] =
            planes[t];
    }
  }

  // The scan path reads only the spans; point them at the storage just
  // built (the heap buffers stay put across the Shard's moves).
  shard.activeAps = shard.activeApStorage;
  shard.minBucket = shard.minBucketStorage;
  shard.maxBucket = shard.maxBucketStorage;
  shard.slab = shard.slabStorage;

  const std::size_t maxDistance = shard.activeAps.size() * planeCount;
  shard.counterDepth =
      maxDistance == 0 ? 0 : static_cast<int>(std::bit_width(maxDistance));
  return shard;
}

TieredIndex TieredIndex::fromImageViews(
    std::shared_ptr<const radio::FingerprintDatabase> database,
    IndexConfig config, std::span<const ShardView> shards) {
  TieredIndex index;
  index.db_ = std::move(database);
  index.config_ = config;
  if (!index.db_)
    throw util::ConfigError("TieredIndex: null database");
  validateQuantizer(index.config_.quantizer);
  if (index.config_.maxShardEntries == 0)
    throw util::ConfigError(
        "TieredIndex: maxShardEntries must be >= 1");

  const std::size_t n = index.db_->size();
  const std::size_t apCount = index.db_->apCount();
  const int bucketCount = index.config_.quantizer.bucketCount;
  const std::size_t planeCount = static_cast<std::size_t>(bucketCount - 1);
  if (apCount * planeCount > std::numeric_limits<std::uint16_t>::max())
    throw util::ConfigError(
        "TieredIndex: apCount * (bucketCount - 1) exceeds the scan "
        "counter range");
  if (n == 0 && !shards.empty())
    throw util::ConfigError(
        "TieredIndex: shard views over an empty database");

  index.locIds_ = index.db_->locationIds();
  index.rowValues_.reserve(n);
  for (std::size_t r = 0; r < n; ++r)
    index.rowValues_.push_back(index.db_->entryAt(r).values());

  index.shards_.reserve(shards.size());
  std::size_t nextRow = 0;
  for (const ShardView& v : shards) {
    if (v.rowBegin != nextRow || v.rowEnd <= v.rowBegin || v.rowEnd > n)
      throw util::ConfigError(
          "TieredIndex: shard views must partition the rows in order");
    nextRow = v.rowEnd;
    const std::size_t count = v.rowEnd - v.rowBegin;
    const std::size_t words = (count + kBlockEntries - 1) / kBlockEntries;
    if (v.minBucket.size() != v.activeAps.size() ||
        v.maxBucket.size() != v.activeAps.size())
      throw util::ConfigError(
          "TieredIndex: shard bucket ranges must match activeAps");
    for (std::size_t a = 0; a < v.activeAps.size(); ++a) {
      if (v.activeAps[a] >= apCount ||
          (a > 0 && v.activeAps[a] <= v.activeAps[a - 1]))
        throw util::ConfigError(
            "TieredIndex: shard activeAps must be strictly increasing "
            "and within the AP count");
      if (v.maxBucket[a] == 0 || v.maxBucket[a] >= bucketCount ||
          v.minBucket[a] > v.maxBucket[a])
        throw util::ConfigError(
            "TieredIndex: shard bucket range out of bounds");
    }
    if (v.slab.size() != v.activeAps.size() * planeCount * words)
      throw util::ConfigError(
          "TieredIndex: shard slab size mismatch");

    Shard shard;
    shard.rowBegin = v.rowBegin;
    shard.rowEnd = v.rowEnd;
    shard.words = words;
    shard.activeAps = v.activeAps;
    shard.minBucket = v.minBucket;
    shard.maxBucket = v.maxBucket;
    shard.slab = v.slab;
    const std::size_t maxDistance = v.activeAps.size() * planeCount;
    shard.counterDepth =
        maxDistance == 0 ? 0
                         : static_cast<int>(std::bit_width(maxDistance));
    index.shards_.push_back(std::move(shard));
  }
  if (nextRow != n)
    throw util::ConfigError(
        "TieredIndex: shard views must cover every row");
  return index;
}

ShardInfo TieredIndex::shardInfo(std::size_t shard) const {
  if (shard >= shards_.size())
    throw std::out_of_range("TieredIndex: bad shard index " +
                            std::to_string(shard));
  const Shard& s = shards_[shard];
  return {s.rowBegin, s.rowEnd, s.activeAps.size()};
}

ShardView TieredIndex::shardView(std::size_t shard) const {
  if (shard >= shards_.size())
    throw std::out_of_range("TieredIndex: bad shard index " +
                            std::to_string(shard));
  const Shard& s = shards_[shard];
  return {s.rowBegin, s.rowEnd, s.activeAps, s.minBucket, s.maxBucket,
          s.slab};
}

void TieredIndex::scanShard(const Shard& shard,
                            const std::uint8_t* qBuckets,
                            std::uint32_t offset,
                            ScanWorkspace& ws) const {
  const std::size_t planeCount =
      static_cast<std::size_t>(config_.quantizer.bucketCount - 1);
  const std::size_t count = shard.rowEnd - shard.rowBegin;
  const int depth = shard.counterDepth;

  for (std::size_t w = 0; w < shard.words; ++w) {
    // Vertical carry-save counters: counters[d] holds bit d of the
    // per-entry bucket-space distance for all 64 entries of the block.
    std::uint64_t counters[16] = {};
    for (std::size_t a = 0; a < shard.activeAps.size(); ++a) {
      const std::uint8_t q = qBuckets[shard.activeAps[a]];
      const std::uint64_t* planes =
          shard.slab.data() + a * planeCount * shard.words + w;
      for (std::size_t t = 0; t < planeCount; ++t) {
        // XOR of the entry's thermometer bit with the query's: the
        // popcount across planes is exactly |q - entryBucket|.
        std::uint64_t carry =
            planes[t * shard.words] ^
            (t < q ? ~std::uint64_t{0} : std::uint64_t{0});
        for (int d = 0; carry != 0 && d < depth; ++d) {
          const std::uint64_t sum = counters[d] ^ carry;
          carry &= counters[d];
          counters[d] = sum;
        }
      }
    }

    const std::size_t blockCount =
        std::min(kBlockEntries, count - w * kBlockEntries);
    const std::size_t rowBase = shard.rowBegin + w * kBlockEntries;
    for (std::size_t e = 0; e < blockCount; ++e) {
      std::uint32_t distance = 0;
      for (int d = 0; d < depth; ++d)
        distance |= static_cast<std::uint32_t>((counters[d] >> e) & 1u)
                    << d;
      distance += offset;
      ws.rowDistance[rowBase + e] = distance;
      ++ws.histogram[std::min(distance, kHistogramCap - 1)];
    }
  }
}

void TieredIndex::queryPrepared(const radio::Fingerprint& query,
                                std::size_t k, ScanWorkspace& ws,
                                std::vector<radio::Match>& out,
                                QueryStats* stats) const {
  const std::size_t apCount = db_->apCount();
  const std::size_t n = rowValues_.size();

  ws.qBuckets.resize(apCount);
  std::uint32_t totalQ = 0;
  for (std::size_t c = 0; c < apCount; ++c) {
    ws.qBuckets[c] = quantizeRss(query[c], config_.quantizer);
    totalQ += ws.qBuckets[c];
  }

  // Per-shard lower bound on the bucket-space distance: active APs
  // contribute their distance to the shard's bucket range, shard-silent
  // APs contribute the full query bucket (entry bucket is 0 there).
  ws.shardLb.resize(shards_.size());
  ws.shardOffset.resize(shards_.size());
  ws.order.resize(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    std::uint32_t bound = 0;
    std::uint32_t activeQ = 0;
    for (std::size_t a = 0; a < shard.activeAps.size(); ++a) {
      const std::uint8_t q = ws.qBuckets[shard.activeAps[a]];
      activeQ += q;
      if (q < shard.minBucket[a])
        bound += shard.minBucket[a] - q;
      else if (q > shard.maxBucket[a])
        bound += q - shard.maxBucket[a];
    }
    ws.shardOffset[s] = totalQ - activeQ;
    ws.shardLb[s] = bound + ws.shardOffset[s];
    ws.order[s] = static_cast<std::uint32_t>(s);
  }
  std::sort(ws.order.begin(), ws.order.end(),
            [&ws](std::uint32_t a, std::uint32_t b) {
              return ws.shardLb[a] != ws.shardLb[b]
                         ? ws.shardLb[a] < ws.shardLb[b]
                         : a < b;
            });

  // Scan shards in bound order, tracking the running S-th smallest
  // distance; stop when the next shard provably cannot land inside
  // the margin.  Entries in skipped shards sit above the admission
  // threshold by construction, so the shortlist below is complete.
  const std::size_t wanted = std::max(k, config_.minShortlist);
  ws.rowDistance.resize(n);
  ws.histogram.assign(kHistogramCap, 0);
  ws.scannedShards.clear();
  std::size_t scanned = 0;
  std::uint32_t threshold = 0;
  bool thresholdSet = false;
  for (const std::uint32_t s : ws.order) {
    if (thresholdSet &&
        ws.shardLb[s] > threshold + config_.marginBuckets)
      break;
    scanShard(shards_[s], ws.qBuckets.data(), ws.shardOffset[s], ws);
    ws.scannedShards.push_back(s);
    scanned += shards_[s].rowEnd - shards_[s].rowBegin;
    if (scanned >= wanted) {
      std::size_t cumulative = 0;
      for (std::uint32_t bin = 0; bin < kHistogramCap; ++bin) {
        cumulative += ws.histogram[bin];
        if (cumulative >= wanted) {
          threshold = bin;
          break;
        }
      }
      thresholdSet = true;
    }
  }

  const std::uint32_t admit =
      thresholdSet ? threshold + config_.marginBuckets
                   : std::numeric_limits<std::uint32_t>::max();

  // Collect survivors in ascending row order so the exact re-rank
  // preserves selectSmallestK's lower-row tie-break.
  std::sort(ws.scannedShards.begin(), ws.scannedShards.end());
  ws.shortlist.clear();
  for (const std::uint32_t s : ws.scannedShards) {
    for (std::size_t r = shards_[s].rowBegin; r < shards_[s].rowEnd; ++r)
      if (ws.rowDistance[r] <= admit)
        ws.shortlist.push_back(static_cast<std::uint32_t>(r));
  }

  // Exact tier: gather the shortlist and run the same kernel pipeline
  // as FingerprintDatabase::queryPrepared.  Row sums are independent
  // of their block neighbours, so the gathered distances are bitwise
  // the full-scan distances of those rows.
  ws.scratch.reset(apCount);
  for (const std::uint32_t r : ws.shortlist)
    ws.scratch.appendRow(rowValues_[r]);
  ws.distances.resize(ws.scratch.paddedRows());
  kernel::squaredDistances(ws.scratch, query.values().data(),
                           ws.distances.data());
  kernel::selectSmallestK(
      std::span<const double>(ws.distances.data(), ws.scratch.rows()), k,
      ws.topk);

  out.clear();
  out.reserve(ws.topk.size());
  for (const auto& top : ws.topk)
    out.push_back({locIds_[ws.shortlist[top.row]],
                   std::sqrt(top.squaredDistance), 0.0});
  double invSum = 0.0;
  for (const auto& m : out)
    invSum += 1.0 / std::max(m.dissimilarity, radio::kMinDissimilarity);
  for (auto& m : out)
    m.probability =
        (1.0 / std::max(m.dissimilarity, radio::kMinDissimilarity)) /
        invSum;

  if (stats) {
    stats->shortlistSize = ws.shortlist.size();
    stats->scannedShards = ws.scannedShards.size();
    stats->totalShards = shards_.size();
    stats->scannedEntries = scanned;
  }

  if (config_.exhaustiveCheck) {
    const kernel::FlatMatrix& flat = db_->flatMatrix();
    ws.fullDistances.resize(flat.paddedRows());
    kernel::squaredDistances(flat, query.values().data(),
                             ws.fullDistances.data());
    kernel::selectSmallestK(
        std::span<const double>(ws.fullDistances.data(), flat.rows()), k,
        ws.fullTopk);
    std::size_t missed = 0;
    for (const auto& top : ws.fullTopk)
      if (!std::binary_search(ws.shortlist.begin(), ws.shortlist.end(),
                              static_cast<std::uint32_t>(top.row)))
        ++missed;
    if (stats) stats->missedTopK = missed;
    if (missed > 0)
      throw util::StateError(
          "TieredIndex: exhaustive check failed: shortlist dropped " +
          std::to_string(missed) + " of the true top-" +
          std::to_string(ws.fullTopk.size()) + " entries");
  }
}

void TieredIndex::queryInto(const radio::Fingerprint& query,
                            std::size_t k, std::vector<radio::Match>& out,
                            QueryStats* stats) const {
  if (k == 0)
    throw util::ConfigError("TieredIndex: k must be >= 1");
  if (rowValues_.empty())
    throw util::StateError("TieredIndex: empty database");
  if (!allFinite(query))
    throw util::ConfigError("TieredIndex: non-finite query RSS");
  if (query.size() != db_->apCount())
    throw util::ConfigError(
        "dissimilarity: fingerprint dimensions differ");
  queryPrepared(query, k, threadWorkspace(), out, stats);
}

std::vector<radio::Match> TieredIndex::query(
    const radio::Fingerprint& query, std::size_t k) const {
  std::vector<radio::Match> out;
  queryInto(query, k, out);
  return out;
}

void TieredIndex::queryBatchInto(
    std::span<const radio::Fingerprint* const> queries, std::size_t k,
    std::vector<std::vector<radio::Match>>& out,
    std::vector<std::exception_ptr>* errors) const {
  if (k == 0)
    throw util::ConfigError("TieredIndex: k must be >= 1");
  if (rowValues_.empty())
    throw util::StateError("TieredIndex: empty database");
  out.resize(queries.size());
  if (errors) errors->assign(queries.size(), nullptr);
  ScanWorkspace& ws = threadWorkspace();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out[q].clear();
    try {
      const radio::Fingerprint& query = *queries[q];
      if (!allFinite(query))
        throw util::ConfigError("TieredIndex: non-finite query RSS");
      if (query.size() != db_->apCount())
        throw util::ConfigError(
            "dissimilarity: fingerprint dimensions differ");
      queryPrepared(query, k, ws, out[q], nullptr);
    } catch (...) {
      if (!errors) throw;
      (*errors)[q] = std::current_exception();
    }
  }
}

}  // namespace moloc::index
