#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <span>
#include <vector>

#include "index/signature_codec.hpp"
#include "radio/fingerprint_database.hpp"
#include "util/error.hpp"

namespace moloc::index {

/// Tuning for the tiered candidate index.
struct IndexConfig {
  QuantizerConfig quantizer;

  /// Upper bound on entries per shard; larger shards are split.  Small
  /// enough that one shard's bit slabs stay cache-resident during a
  /// scan, large enough to amortize the per-shard bound check.
  std::size_t maxShardEntries = 4096;

  /// Worker threads for construction-time slab building.  Shards are
  /// independent (each task quantizes and packs only its own row
  /// range), so the built planes are bitwise-identical at any thread
  /// count.  0 selects the hardware concurrency; the build stays
  /// serial whenever it resolves to 1 thread or there is only one
  /// shard.  Has no effect on queries.
  std::size_t buildThreads = 0;

  /// The prefilter shortlists at least this many candidates (when the
  /// map has them) regardless of k, absorbing quantization noise in
  /// the bucket-space ranking before the exact kernel re-ranks.
  std::size_t minShortlist = 96;

  /// Shortlist admission slack in bucket units: every entry whose
  /// bucket-space distance is within `marginBuckets` of the
  /// minShortlist-th best is kept.  Wider margins trade scan output
  /// size for recall headroom (docs/scaling.md).
  std::uint32_t marginBuckets = 8;

  /// Paranoid mode: after every query, run the exact full scan and
  /// throw util::StateError if the shortlist dropped any true top-k
  /// entry.  Orders of magnitude slower — for tests, benches, and
  /// recall audits only.
  bool exhaustiveCheck = false;
};

/// Per-query observability for benches and the exhaustive-check audit.
struct QueryStats {
  std::size_t shortlistSize = 0;
  std::size_t scannedShards = 0;
  std::size_t totalShards = 0;
  std::size_t scannedEntries = 0;
  /// True top-k rows missing from the shortlist; only counted (just
  /// before the throw) when IndexConfig::exhaustiveCheck is on.
  std::size_t missedTopK = 0;
};

/// Row-range and sparsity summary of one shard (tests, docs, benches).
struct ShardInfo {
  std::size_t rowBegin = 0;
  std::size_t rowEnd = 0;
  std::size_t activeApCount = 0;
};

/// One shard's raw storage, as spans: what the venue-image writer
/// serializes (TieredIndex::shardView) and what the image loader hands
/// back to TieredIndex::fromImageViews to reconstruct the index
/// without rebuilding a single plane.  Spans passed to fromImageViews
/// must outlive the index (the loader pins the mapping).
struct ShardView {
  std::size_t rowBegin = 0;
  std::size_t rowEnd = 0;
  /// Column indices of APs heard by at least one entry, strictly
  /// increasing.
  std::span<const std::uint32_t> activeAps;
  /// Per active AP: the shard-wide bucket range (1 <= max < B,
  /// min <= max).
  std::span<const std::uint8_t> minBucket;
  std::span<const std::uint8_t> maxBucket;
  /// Thermometer planes, plane-major: slab[(a*(B-1) + t)*words + w]
  /// with words = ceil((rowEnd - rowBegin) / 64).
  std::span<const std::uint64_t> slab;
};

/// The tiered candidate index of ROADMAP item 2: a coarse bit-sliced
/// prefilter in front of the exact AVX2 matching kernel.
///
/// The radio map is partitioned into shards of contiguous rows
/// (callers pass natural boundaries — worldgen supplies per-floor
/// starts — and oversized segments are split at maxShardEntries).
/// Each shard stores, for each AP *heard anywhere in the shard*, the
/// thermometer-coded bucket planes of every entry, bit-sliced so 64
/// entries are scanned per word op; bucket 0 ("not heard") makes the
/// lowest plane an explicit presence plane, and APs silent across a
/// whole shard are dropped from its slab entirely — that sparsity is
/// why a city-scale venue scans only the shards near the query.
///
/// A query quantizes once, orders shards by a per-shard lower bound on
/// the bucket-space L1 distance (silent-in-shard APs contribute their
/// full query bucket; active APs contribute their distance to the
/// shard's per-AP bucket range), scans shards in that order while
/// maintaining the running minShortlist-th best distance, and stops
/// once the next shard's bound exceeds it by more than marginBuckets.
/// The surviving shortlist is gathered in ascending row order and
/// re-ranked exactly by the kernel::squaredDistances /
/// selectSmallestK pipeline — so whenever the shortlist contains the
/// true top-k (audited by exhaustiveCheck), results are
/// bitwise-identical to FingerprintDatabase::queryInto, ties
/// included.
///
/// Immutable after construction; concurrent queries share nothing but
/// the slabs (per-thread scratch), which is what lets a WorldSnapshot
/// own one index across all serving threads.
class TieredIndex {
 public:
  /// Builds the index over `database` (shared ownership: the index
  /// reads the flat matrix in place and keeps the database alive).
  /// `shardStarts`, when non-empty, lists segment-starting rows
  /// (strictly increasing, first must be 0).  Throws
  /// std::invalid_argument on a null database, bad config, or bad
  /// shard starts.
  explicit TieredIndex(
      std::shared_ptr<const radio::FingerprintDatabase> database,
      IndexConfig config = {},
      std::span<const std::size_t> shardStarts = {});

  /// Zero-copy reconstruction from a venue image (src/image): adopts
  /// the already-built shard slabs as non-owning views instead of
  /// quantizing and packing planes — queries are bitwise-identical to
  /// the originally built index.  `database` is typically the image's
  /// own view database; the spans in `shards` must outlive the index.
  /// Validates the cheap structural invariants (shards partition the
  /// rows, activeAps strictly increasing and in range, bucket ranges
  /// sane, slab sizes exact) and throws std::invalid_argument on any
  /// violation; slab *content* integrity is the image's CRC contract.
  static TieredIndex fromImageViews(
      std::shared_ptr<const radio::FingerprintDatabase> database,
      IndexConfig config, std::span<const ShardView> shards);

  /// An index is shared immutably behind shared_ptr by every snapshot
  /// and session; copying one (and dangling a view shard's spans) is
  /// never intended.
  TieredIndex(const TieredIndex&) = delete;
  TieredIndex& operator=(const TieredIndex&) = delete;
  TieredIndex(TieredIndex&&) = default;
  TieredIndex& operator=(TieredIndex&&) = default;

  const IndexConfig& config() const { return config_; }
  std::size_t entryCount() const { return rowValues_.size(); }
  std::size_t shardCount() const { return shards_.size(); }
  ShardInfo shardInfo(std::size_t shard) const;

  /// The raw storage of one shard, for the venue-image writer and
  /// white-box tests.  Spans are valid while the index lives.
  ShardView shardView(std::size_t shard) const;
  const std::shared_ptr<const radio::FingerprintDatabase>& database()
      const {
    return db_;
  }

  /// Drop-in for FingerprintDatabase::queryInto — same validation,
  /// same exceptions, and (given full shortlist recall) bitwise the
  /// same matches.  `stats`, when non-null, receives per-query scan
  /// observability.
  void queryInto(const radio::Fingerprint& query, std::size_t k,
                 std::vector<radio::Match>& out,
                 QueryStats* stats = nullptr) const;

  /// Allocating convenience wrapper over queryInto.
  std::vector<radio::Match> query(const radio::Fingerprint& query,
                                  std::size_t k) const;

  /// Drop-in for FingerprintDatabase::queryBatchInto: database-wide
  /// preconditions always throw; with a non-null `errors`, per-query
  /// failures are captured in errors[i] (out[i] left empty) instead of
  /// thrown.
  void queryBatchInto(
      std::span<const radio::Fingerprint* const> queries, std::size_t k,
      std::vector<std::vector<radio::Match>>& out,
      std::vector<std::exception_ptr>* errors = nullptr) const;

 private:
  /// One shard: the scan path reads only the spans, which point either
  /// at the *Storage vectors (built here) or into an mmap'd venue
  /// image (fromImageViews) — the heap buffers behind the vectors are
  /// address-stable across Shard moves, so the spans survive shards_
  /// growth and TieredIndex moves.
  struct Shard {
    std::size_t rowBegin = 0;
    std::size_t rowEnd = 0;
    std::size_t words = 0;  ///< ceil(entries / 64).
    std::vector<std::uint32_t> activeApStorage;
    std::vector<std::uint8_t> minBucketStorage;
    std::vector<std::uint8_t> maxBucketStorage;
    std::vector<std::uint64_t> slabStorage;
    /// Column indices of APs heard by at least one entry.
    std::span<const std::uint32_t> activeAps;
    /// Per active AP: bucket range across the shard's entries, for
    /// the query-time lower bound.
    std::span<const std::uint8_t> minBucket;
    std::span<const std::uint8_t> maxBucket;
    /// Thermometer planes, plane-major:
    /// slab[(a * (B-1) + t) * words + w].
    std::span<const std::uint64_t> slab;
    /// Bits per vertical scan counter: bit_width(activeAps * (B-1)).
    int counterDepth = 0;
  };

  struct ScanWorkspace;
  static ScanWorkspace& threadWorkspace();

  /// Used by fromImageViews, which fills the members itself.
  TieredIndex() = default;

  Shard buildShard(std::size_t rowBegin, std::size_t rowEnd) const;
  void queryPrepared(const radio::Fingerprint& query, std::size_t k,
                     ScanWorkspace& ws, std::vector<radio::Match>& out,
                     QueryStats* stats) const;
  void scanShard(const Shard& shard, const std::uint8_t* qBuckets,
                 std::uint32_t offset, ScanWorkspace& ws) const;

  std::shared_ptr<const radio::FingerprintDatabase> db_;
  IndexConfig config_;
  std::vector<env::LocationId> locIds_;  ///< Row -> location id.
  /// Row -> that entry's RSS values inside db_ (valid while db_ lives).
  std::vector<std::span<const double>> rowValues_;
  std::vector<Shard> shards_;
};

}  // namespace moloc::index
