#pragma once

#include "radio/fingerprint_database.hpp"

namespace moloc::baseline {

/// The paper's baseline: plain WiFi fingerprinting (Eq. 2) — return the
/// single location whose radio-map entry minimizes the Euclidean
/// dissimilarity to the query fingerprint.  Stateless: every query is
/// independent, which is exactly why fingerprint twins hurt it.
class WifiFingerprinting {
 public:
  /// The database must outlive the localizer and be non-empty when
  /// queried.
  explicit WifiFingerprinting(const radio::FingerprintDatabase& db);

  env::LocationId localize(const radio::Fingerprint& query) const;

 private:
  const radio::FingerprintDatabase& db_;
};

}  // namespace moloc::baseline
