#include "baseline/knn_averaging.hpp"

#include <limits>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::baseline {

KnnAveraging::KnnAveraging(const env::FloorPlan& plan,
                           const radio::FingerprintDatabase& db,
                           std::size_t k)
    : plan_(plan), db_(db), k_(k) {
  if (k == 0)
    throw util::ConfigError("KnnAveraging: k must be >= 1");
}

geometry::Vec2 KnnAveraging::position(
    const radio::Fingerprint& scan) const {
  const auto matches = db_.query(scan, k_);
  geometry::Vec2 weighted{};
  for (const auto& match : matches)
    weighted =
        weighted + plan_.location(match.location).pos * match.probability;
  return weighted;  // Probabilities sum to 1.
}

env::LocationId KnnAveraging::localize(
    const radio::Fingerprint& scan) const {
  const auto pos = position(scan);
  env::LocationId best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (const auto& loc : plan_.locations()) {
    const double d = geometry::distance(pos, loc.pos);
    if (d < bestDist) {
      bestDist = d;
      best = loc.id;
    }
  }
  return best;
}

}  // namespace moloc::baseline
