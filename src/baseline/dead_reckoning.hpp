#pragma once

#include "env/floor_plan.hpp"
#include "radio/fingerprint_database.hpp"
#include "sensors/motion_processor.hpp"

namespace moloc::baseline {

/// Pure inertial dead reckoning, ablation comparator: take one
/// fingerprint fix at the start, then integrate (direction, offset)
/// measurements in continuous coordinates and report the nearest
/// reference location.
///
/// Shows the other failure mode MoLoc avoids: without fingerprint
/// re-anchoring, heading bias and step-length error accumulate into
/// unbounded drift.
class DeadReckoning {
 public:
  /// Both references must outlive the localizer.
  DeadReckoning(const env::FloorPlan& plan,
                const radio::FingerprintDatabase& db);

  /// Sets the track's origin from a fingerprint fix (Eq. 2 NN).
  void initialize(const radio::Fingerprint& initialScan);

  /// True once initialize() has run.
  bool initialized() const { return initialized_; }

  /// Advances the track by one measured motion and returns the nearest
  /// reference location.  Throws std::logic_error before initialize().
  env::LocationId update(const sensors::MotionMeasurement& motion);

  /// The continuous track position (for drift diagnostics).
  geometry::Vec2 position() const;

 private:
  env::LocationId nearestReference() const;

  const env::FloorPlan& plan_;
  const radio::FingerprintDatabase& db_;
  geometry::Vec2 position_;
  bool initialized_ = false;
};

}  // namespace moloc::baseline
