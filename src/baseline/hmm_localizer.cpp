#include "baseline/hmm_localizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::baseline {

HmmLocalizer::HmmLocalizer(const radio::FingerprintDatabase& db,
                           const env::WalkGraph& graph, HmmParams params)
    : db_(db), graph_(graph), params_(params), n_(graph.nodeCount()) {
  for (std::size_t i = 0; i < n_; ++i)
    if (!db_.contains(static_cast<env::LocationId>(i)))
      throw util::ConfigError(
          "HmmLocalizer: database misses a graph node");

  // Precompute pairwise walkable distances (Dijkstra from each node).
  walkDistance_.assign(n_ * n_, std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      walkDistance_[i * n_ + j] =
          graph_.walkableDistance(static_cast<env::LocationId>(i),
                                  static_cast<env::LocationId>(j));
}

void HmmLocalizer::reset() { belief_.clear(); }

double HmmLocalizer::emissionLogLikelihood(const radio::Fingerprint& query,
                                           env::LocationId state) const {
  const double sq = radio::squaredDissimilarity(query, db_.entry(state));
  return -sq / (2.0 * params_.emissionSigmaDb * params_.emissionSigmaDb);
}

env::LocationId HmmLocalizer::update(
    const radio::Fingerprint& query,
    std::optional<double> walkedOffsetMeters) {
  std::vector<double> next(n_, 0.0);

  if (belief_.empty() || !walkedOffsetMeters) {
    // First fix (or a motion gap): emissions alone, uniform prior.
    for (std::size_t j = 0; j < n_; ++j)
      next[j] = std::exp(
          emissionLogLikelihood(query, static_cast<env::LocationId>(j)));
  } else {
    const double offset = *walkedOffsetMeters;
    const double inv2Sigma2 = 1.0 / (2.0 * params_.transitionSigmaMeters *
                                     params_.transitionSigmaMeters);
    for (std::size_t j = 0; j < n_; ++j) {
      double predicted = 0.0;
      for (std::size_t i = 0; i < n_; ++i) {
        const double walkDist = walkDistance_[i * n_ + j];
        double transition = params_.transitionFloor;
        if (std::isfinite(walkDist)) {
          const double gap = walkDist - offset;
          transition = std::max(std::exp(-gap * gap * inv2Sigma2),
                                params_.transitionFloor);
        }
        predicted += belief_[i] * transition;
      }
      next[j] =
          predicted *
          std::exp(emissionLogLikelihood(query,
                                         static_cast<env::LocationId>(j)));
    }
  }

  double total = 0.0;
  for (double b : next) total += b;
  if (total <= 0.0) {
    // Numerical underflow across the board: restart from emissions.
    for (std::size_t j = 0; j < n_; ++j)
      next[j] = std::exp(
          emissionLogLikelihood(query, static_cast<env::LocationId>(j)));
    total = 0.0;
    for (double b : next) total += b;
    if (total <= 0.0) {
      // Even emissions underflowed; fall back to uniform.
      std::fill(next.begin(), next.end(), 1.0);
      total = static_cast<double>(n_);
    }
  }
  for (double& b : next) b /= total;
  belief_ = std::move(next);

  const auto best =
      std::max_element(belief_.begin(), belief_.end()) - belief_.begin();
  return static_cast<env::LocationId>(best);
}

}  // namespace moloc::baseline
