#pragma once

#include <vector>

#include "env/floor_plan.hpp"
#include "radio/fingerprint_database.hpp"
#include "sensors/motion_processor.hpp"
#include "util/rng.hpp"

namespace moloc::baseline {

/// Parameters of the continuous-space particle filter.
struct ParticleFilterParams {
  std::size_t particleCount = 500;
  /// Propagation noise added to each particle's motion step.
  double directionSigmaDeg = 10.0;
  double offsetSigmaMeters = 0.5;
  /// RSS emission model sigma (dB), applied to the fingerprint gap
  /// against the radio map's nearest entries (see weight()).
  double emissionSigmaDb = 5.0;
  /// Effective-sample-size fraction below which to resample.
  double resampleThreshold = 0.5;
  /// Particles stepping through a wall are killed (weight 0) — the
  /// map constraint that makes particle filters strong indoors.
  bool enforceWalls = true;
};

/// A continuous-position sequential Monte Carlo localizer over the
/// floor plan — the classic alternative architecture to MoLoc's
/// discrete candidate set.  It consumes the same inputs (RSS scans and
/// (direction, offset) motion measurements) and reports the nearest
/// reference location, so it slots directly into the comparator bench.
///
/// Emission model: a particle's weight uses the RSS likelihood against
/// the radio-map entry of its *nearest reference location* — a
/// piecewise-constant approximation of the signal field that needs no
/// extra training beyond the survey.
class ParticleFilter {
 public:
  /// The plan and database must outlive the filter; the database must
  /// be non-empty when update() is called.
  ParticleFilter(const env::FloorPlan& plan,
                 const radio::FingerprintDatabase& db,
                 ParticleFilterParams params = {},
                 std::uint64_t seed = 0x9a27711eULL);

  /// Clears the particle cloud (next update re-initializes from the
  /// scan).
  void reset();

  /// One localization round: propagate by the motion (if any), weight
  /// by the scan, resample when degenerate.  Returns the reference
  /// location nearest the weighted-mean position.
  env::LocationId update(
      const radio::Fingerprint& scan,
      const std::optional<sensors::MotionMeasurement>& motion);

  /// Weighted-mean position of the cloud (diagnostics).  Throws
  /// std::logic_error before the first update.
  geometry::Vec2 meanPosition() const;

  /// Effective sample size of the current weights (diagnostics).
  double effectiveSampleSize() const;

  std::size_t particleCount() const { return particles_.size(); }

 private:
  struct Particle {
    geometry::Vec2 pos;
    double weight = 1.0;
  };

  void initializeFromScan(const radio::Fingerprint& scan);
  void propagate(const sensors::MotionMeasurement& motion);
  void weight(const radio::Fingerprint& scan);
  void resampleIfNeeded();
  env::LocationId nearestReference(geometry::Vec2 pos) const;

  const env::FloorPlan& plan_;
  const radio::FingerprintDatabase& db_;
  ParticleFilterParams params_;
  util::Rng rng_;
  std::vector<Particle> particles_;
};

}  // namespace moloc::baseline
