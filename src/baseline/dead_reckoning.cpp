#include "baseline/dead_reckoning.hpp"

#include <limits>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/error.hpp"

namespace moloc::baseline {

DeadReckoning::DeadReckoning(const env::FloorPlan& plan,
                             const radio::FingerprintDatabase& db)
    : plan_(plan), db_(db) {}

void DeadReckoning::initialize(const radio::Fingerprint& initialScan) {
  const env::LocationId start = db_.nearest(initialScan);
  position_ = plan_.location(start).pos;
  initialized_ = true;
}

env::LocationId DeadReckoning::update(
    const sensors::MotionMeasurement& motion) {
  if (!initialized_)
    throw util::StateError("DeadReckoning: update before initialize");
  position_ = position_ + geometry::headingToUnitVec(motion.directionDeg) *
                              motion.offsetMeters;
  return nearestReference();
}

geometry::Vec2 DeadReckoning::position() const {
  if (!initialized_)
    throw util::StateError("DeadReckoning: position before initialize");
  return position_;
}

env::LocationId DeadReckoning::nearestReference() const {
  env::LocationId best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (const auto& loc : plan_.locations()) {
    const double d = geometry::distance(position_, loc.pos);
    if (d < bestDist) {
      bestDist = d;
      best = loc.id;
    }
  }
  return best;
}

}  // namespace moloc::baseline
