#pragma once

#include "env/floor_plan.hpp"
#include "radio/fingerprint_database.hpp"

namespace moloc::baseline {

/// RADAR-style k-nearest-neighbour averaging (the paper's ref. [8],
/// Bahl & Padmanabhan): take the k locations whose fingerprints best
/// match the scan and average their *coordinates*, weighted by Eq. 4
/// probabilities.  Stateless like plain fingerprinting, but smooths
/// single-neighbour mistakes — unless the neighbours are twins, in
/// which case the average lands in the no-man's-land between them
/// (the failure Fig. 1 illustrates geometrically).
class KnnAveraging {
 public:
  /// `k` must be >= 1 (throws std::invalid_argument); the plan and
  /// database must outlive the localizer.
  KnnAveraging(const env::FloorPlan& plan,
               const radio::FingerprintDatabase& db, std::size_t k = 3);

  std::size_t k() const { return k_; }

  /// The probability-weighted average position of the k best matches.
  geometry::Vec2 position(const radio::Fingerprint& scan) const;

  /// The reference location nearest to position(scan).
  env::LocationId localize(const radio::Fingerprint& scan) const;

 private:
  const env::FloorPlan& plan_;
  const radio::FingerprintDatabase& db_;
  std::size_t k_;
};

}  // namespace moloc::baseline
