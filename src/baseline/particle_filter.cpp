#include "baseline/particle_filter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/error.hpp"

namespace moloc::baseline {

ParticleFilter::ParticleFilter(const env::FloorPlan& plan,
                               const radio::FingerprintDatabase& db,
                               ParticleFilterParams params,
                               std::uint64_t seed)
    : plan_(plan), db_(db), params_(params), rng_(seed) {
  if (params_.particleCount == 0)
    throw util::ConfigError(
        "ParticleFilter: particle count must be >= 1");
}

void ParticleFilter::reset() { particles_.clear(); }

env::LocationId ParticleFilter::nearestReference(
    geometry::Vec2 pos) const {
  env::LocationId best = 0;
  double bestDist = std::numeric_limits<double>::infinity();
  for (const auto& loc : plan_.locations()) {
    const double d = geometry::distance(pos, loc.pos);
    if (d < bestDist) {
      bestDist = d;
      best = loc.id;
    }
  }
  return best;
}

void ParticleFilter::initializeFromScan(const radio::Fingerprint& scan) {
  // Seed the cloud around the best fingerprint matches, proportional
  // to their Eq. 4 probabilities, with positional spread.
  const auto matches = db_.query(scan, std::min<std::size_t>(8, db_.size()));
  particles_.clear();
  particles_.reserve(params_.particleCount);
  for (std::size_t p = 0; p < params_.particleCount; ++p) {
    // Pick a seed location by its probability.
    double pick = rng_.uniform(0.0, 1.0);
    geometry::Vec2 center = plan_.location(matches.front().location).pos;
    for (const auto& match : matches) {
      if (pick < match.probability) {
        center = plan_.location(match.location).pos;
        break;
      }
      pick -= match.probability;
    }
    particles_.push_back(
        {{std::clamp(center.x + rng_.normal(0.0, 2.0), 0.0,
                     plan_.width()),
          std::clamp(center.y + rng_.normal(0.0, 2.0), 0.0,
                     plan_.height())},
         1.0});
  }
}

void ParticleFilter::propagate(const sensors::MotionMeasurement& motion) {
  for (auto& particle : particles_) {
    const double heading =
        motion.directionDeg + rng_.normal(0.0, params_.directionSigmaDeg);
    const double offset = std::max(
        0.0,
        motion.offsetMeters + rng_.normal(0.0, params_.offsetSigmaMeters));
    const geometry::Vec2 next =
        particle.pos + geometry::headingToUnitVec(heading) * offset;

    if (params_.enforceWalls &&
        plan_.lineBlocked(particle.pos, next)) {
      particle.weight = 0.0;  // Walked through a wall: impossible.
      continue;
    }
    particle.pos = {std::clamp(next.x, 0.0, plan_.width()),
                    std::clamp(next.y, 0.0, plan_.height())};
  }
}

void ParticleFilter::weight(const radio::Fingerprint& scan) {
  double maxLog = -std::numeric_limits<double>::infinity();
  std::vector<double> logWeights(particles_.size());
  const double inv2Sigma2 =
      1.0 / (2.0 * params_.emissionSigmaDb * params_.emissionSigmaDb);
  for (std::size_t p = 0; p < particles_.size(); ++p) {
    if (particles_[p].weight <= 0.0) {
      logWeights[p] = -std::numeric_limits<double>::infinity();
      continue;
    }
    const auto anchor = nearestReference(particles_[p].pos);
    const double sq = radio::squaredDissimilarity(scan, db_.entry(anchor));
    logWeights[p] = std::log(particles_[p].weight) - sq * inv2Sigma2;
    maxLog = std::max(maxLog, logWeights[p]);
  }

  if (!std::isfinite(maxLog)) {
    // Every particle died (walls); restart from the scan.
    initializeFromScan(scan);
    return;
  }

  double total = 0.0;
  for (std::size_t p = 0; p < particles_.size(); ++p) {
    particles_[p].weight = std::exp(logWeights[p] - maxLog);
    total += particles_[p].weight;
  }
  for (auto& particle : particles_) particle.weight /= total;
}

double ParticleFilter::effectiveSampleSize() const {
  double sumSq = 0.0;
  double sum = 0.0;
  for (const auto& particle : particles_) {
    sum += particle.weight;
    sumSq += particle.weight * particle.weight;
  }
  if (sumSq <= 0.0) return 0.0;
  const double normalized = sum * sum / sumSq;
  return normalized;
}

void ParticleFilter::resampleIfNeeded() {
  const double ess = effectiveSampleSize();
  if (ess >= params_.resampleThreshold *
                 static_cast<double>(particles_.size()))
    return;

  // Systematic resampling.
  std::vector<Particle> resampled;
  resampled.reserve(particles_.size());
  const double step = 1.0 / static_cast<double>(particles_.size());
  double cursor = rng_.uniform(0.0, step);
  double cumulative = 0.0;
  std::size_t index = 0;
  for (std::size_t p = 0; p < particles_.size(); ++p) {
    while (index < particles_.size() &&
           cumulative + particles_[index].weight < cursor) {
      cumulative += particles_[index].weight;
      ++index;
    }
    const auto& src =
        particles_[std::min(index, particles_.size() - 1)];
    resampled.push_back({src.pos, 1.0 / static_cast<double>(
                                       particles_.size())});
    cursor += step;
  }
  particles_ = std::move(resampled);
}

env::LocationId ParticleFilter::update(
    const radio::Fingerprint& scan,
    const std::optional<sensors::MotionMeasurement>& motion) {
  if (db_.empty())
    throw util::StateError("ParticleFilter: empty fingerprint database");

  if (particles_.empty()) {
    initializeFromScan(scan);
  } else if (motion) {
    propagate(*motion);
  }
  weight(scan);
  resampleIfNeeded();
  return nearestReference(meanPosition());
}

geometry::Vec2 ParticleFilter::meanPosition() const {
  if (particles_.empty())
    throw util::StateError("ParticleFilter: no particles yet");
  geometry::Vec2 mean{};
  double totalWeight = 0.0;
  for (const auto& particle : particles_) {
    mean = mean + particle.pos * particle.weight;
    totalWeight += particle.weight;
  }
  if (totalWeight <= 0.0) return particles_.front().pos;
  return mean / totalWeight;
}

}  // namespace moloc::baseline
