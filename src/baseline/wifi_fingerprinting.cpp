#include "baseline/wifi_fingerprinting.hpp"

namespace moloc::baseline {

WifiFingerprinting::WifiFingerprinting(const radio::FingerprintDatabase& db)
    : db_(db) {}

env::LocationId WifiFingerprinting::localize(
    const radio::Fingerprint& query) const {
  return db_.nearest(query);
}

}  // namespace moloc::baseline
