#pragma once

#include <optional>
#include <vector>

#include "env/walk_graph.hpp"
#include "radio/fingerprint_database.hpp"

namespace moloc::baseline {

/// Parameters of the HMM comparator.
struct HmmParams {
  /// Sigma (dB) of the Gaussian RSS emission model: the likelihood of a
  /// query given a location decays with the per-AP fingerprint gap.
  double emissionSigmaDb = 4.0;
  /// Sigma (m) of the transition model: how strongly a step's walked
  /// distance must match the walkable distance between states.
  double transitionSigmaMeters = 1.5;
  /// Floor for transitions to unreachable states.
  double transitionFloor = 1e-6;
};

/// Accelerometer-assisted HMM localization — the related-work
/// comparator ([23], Liu et al.) MoLoc is contrasted with.
///
/// Maintains a belief over *all* reference locations and runs one
/// forward-algorithm step per localization interval.  Transitions score
/// how well the walked offset matches the walkable distance between
/// states; unlike MoLoc it uses no direction information and carries
/// the full state space rather than a k-candidate set — the source of
/// the higher computational cost the paper mentions.
class HmmLocalizer {
 public:
  /// Both references must outlive the localizer; the database must hold
  /// an entry for every graph node (throws std::invalid_argument).
  HmmLocalizer(const radio::FingerprintDatabase& db,
               const env::WalkGraph& graph, HmmParams params = {});

  /// Forgets the belief (start of a new walk).
  void reset();

  /// One forward step: pass the walked offset since the last fix, or
  /// nullopt for the first fix (belief starts from emissions alone).
  /// Returns the maximum-belief location.
  env::LocationId update(const radio::Fingerprint& query,
                         std::optional<double> walkedOffsetMeters);

  /// The current belief, indexed by location id; empty before the
  /// first update.
  std::span<const double> belief() const { return belief_; }

 private:
  double emissionLogLikelihood(const radio::Fingerprint& query,
                               env::LocationId state) const;

  const radio::FingerprintDatabase& db_;
  const env::WalkGraph& graph_;
  HmmParams params_;
  std::vector<double> belief_;
  /// Pairwise walkable distances, precomputed (n^2 doubles).
  std::vector<double> walkDistance_;
  std::size_t n_;
};

}  // namespace moloc::baseline
