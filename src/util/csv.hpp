#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace moloc::util {

/// Minimal CSV writer used by the benchmark harnesses to dump the series
/// behind each reproduced figure (so plots can be regenerated offline).
///
/// Values are written row by row; strings containing separators or quotes
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one cell; cells accumulate until endRow().
  CsvWriter& cell(std::string_view value);
  CsvWriter& cell(double value);
  CsvWriter& cell(int value);
  CsvWriter& cell(std::size_t value);

  /// Flushes the accumulated cells as one row.
  void endRow();

 private:
  void writeRow(const std::vector<std::string>& cells);
  static std::string escape(std::string_view value);

  std::ofstream out_;
  std::vector<std::string> pending_;
};

}  // namespace moloc::util
