#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace moloc::util {

/// Minimal CSV writer used by the benchmark harnesses to dump the series
/// behind each reproduced figure (so plots can be regenerated offline).
///
/// Values are written row by row; strings containing separators or quotes
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one cell; cells accumulate until endRow().
  CsvWriter& cell(std::string_view value);
  CsvWriter& cell(double value);
  CsvWriter& cell(int value);
  CsvWriter& cell(std::size_t value);

  /// Flushes the accumulated cells as one row.
  void endRow();

 private:
  void writeRow(const std::vector<std::string>& cells);
  static std::string escape(std::string_view value);

  std::ofstream out_;
  std::vector<std::string> pending_;
};

/// Parses one RFC 4180 CSV record starting at `*pos` in `text` and
/// appends its cells to `out` (which is cleared first).  Returns true
/// and advances `*pos` past the record's line ending when a record was
/// read; returns false at end of input without touching `out`.
///
/// Accepted grammar (what CsvWriter emits, plus CRLF line endings):
/// quoted cells may contain separators, doubled quotes, and embedded
/// newlines.  Malformed input throws std::invalid_argument naming the
/// byte offset: a stray quote inside an unquoted cell, text after a
/// closing quote, or an unterminated quoted cell (end of input inside
/// quotes — a truncation, which must not silently pass as data).
bool parseCsvRecord(std::string_view text, std::size_t* pos,
                    std::vector<std::string>& out);

/// Convenience: every record of `text` (e.g. a whole file) as rows.
/// The writer terminates each row with '\n', so a trailing newline
/// does not produce an empty final row.
std::vector<std::vector<std::string>> parseCsv(std::string_view text);

}  // namespace moloc::util
