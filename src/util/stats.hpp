#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace moloc::util {

class Rng;

/// Descriptive statistics over a sample of doubles.
///
/// Used throughout the evaluation harness to summarize error
/// distributions (mean / max / median / arbitrary percentiles) and to
/// emit the empirical CDFs the paper plots in Figs. 6–8.

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> xs);

/// Unbiased (n-1) sample standard deviation; 0 for fewer than 2 points.
double stddev(std::span<const double> xs);

/// Largest element; 0 for an empty sample.
double maxValue(std::span<const double> xs);

/// Smallest element; 0 for an empty sample.
double minValue(std::span<const double> xs);

/// Percentile in [0, 100] by linear interpolation between order
/// statistics (the "linear" / R-7 method); 0 for an empty sample.
double percentile(std::span<const double> xs, double pct);

/// Median, i.e. percentile(xs, 50).
double median(std::span<const double> xs);

/// Fraction of elements strictly below `threshold`; 0 for empty input.
double fractionBelow(std::span<const double> xs, double threshold);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;       ///< Sorted sample value.
  double cumulative = 0.0;  ///< Fraction of samples <= value, in (0, 1].
};

/// Full empirical CDF: one point per sample, values ascending.
std::vector<CdfPoint> empiricalCdf(std::span<const double> xs);

/// CDF downsampled to `points` evenly spaced cumulative levels, suitable
/// for compact printing; returns the full CDF if it is already smaller.
std::vector<CdfPoint> sampledCdf(std::span<const double> xs,
                                 std::size_t points);

/// A two-sided confidence interval around a point estimate.
struct ConfidenceInterval {
  double lower = 0.0;
  double estimate = 0.0;
  double upper = 0.0;
};

/// Percentile-bootstrap confidence interval for the mean of `xs`:
/// resample with replacement `resamples` times and take the
/// (1-confidence)/2 and (1+confidence)/2 percentiles of the resampled
/// means.  Returns a degenerate interval for fewer than 2 samples.
/// `confidence` is clamped to (0, 1).
/// (Rng is forward-declared to keep this header light.)
ConfidenceInterval bootstrapMeanCi(std::span<const double> xs,
                                   double confidence, int resamples,
                                   Rng& rng);

/// Welford-style running accumulator for mean and standard deviation;
/// used where samples are streamed rather than stored.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample standard deviation; 0 for fewer than 2 points.
  double stddev() const;
  double max() const { return n_ ? max_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double max_ = 0.0;
  double min_ = 0.0;
};

}  // namespace moloc::util
