#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace moloc::util {

/// A minimal command-line option parser for the example binaries.
///
/// Supports `--name value`, `--name=value`, and boolean switches
/// (`--name` with no value).  Unknown options are an error; `--help`
/// is always recognized.  Options are declared with defaults and help
/// text so `usage()` is generated, not hand-maintained.
class ArgParser {
 public:
  explicit ArgParser(std::string programDescription);

  /// Declares a value option.  `name` is without the leading dashes.
  void addOption(const std::string& name, const std::string& defaultValue,
                 const std::string& help);

  /// Declares a boolean switch (false unless present).
  void addSwitch(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (after printing usage) when --help is
  /// requested; throws std::invalid_argument on unknown or malformed
  /// options.
  bool parse(int argc, const char* const* argv);

  /// Typed accessors; throw std::invalid_argument when the option was
  /// never declared or the value does not convert.
  std::string getString(const std::string& name) const;
  double getDouble(const std::string& name) const;
  int getInt(const std::string& name) const;
  bool getSwitch(const std::string& name) const;

  /// The generated usage text.
  std::string usage() const;

 private:
  struct Option {
    std::string defaultValue;
    std::string help;
    bool isSwitch = false;
  };
  const Option& findDeclared(const std::string& name) const;

  std::string description_;
  std::string programName_ = "program";
  std::map<std::string, Option> declared_;
  std::map<std::string, std::string> values_;
};

}  // namespace moloc::util
