#pragma once

// Clang Thread Safety Analysis attribute macros (docs/static_analysis.md).
//
// These expand to the capability attributes understood by clang's
// -Wthread-safety analysis and to nothing elsewhere, so annotated code
// builds unchanged under GCC. The macro set mirrors the canonical
// abseil/LLVM thread_annotations.h vocabulary with a MOLOC_ prefix.
//
// Annotations are declarations, not synchronization: they let the
// compiler prove that every access to a MOLOC_GUARDED_BY member happens
// with the named util::Mutex held, and that lock acquisition respects
// the declared MOLOC_ACQUIRED_AFTER ordering. The CI static-analysis
// job builds with -Wthread-safety -Wthread-safety-beta promoted to
// errors, so a missing lock is a compile failure.

#if defined(__clang__) && defined(__has_attribute)
#define MOLOC_THREAD_ANNOTATION_(x) __has_attribute(x)
#else
#define MOLOC_THREAD_ANNOTATION_(x) 0
#endif

#if MOLOC_THREAD_ANNOTATION_(capability)
#define MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(x)
#endif

// Type annotations: a class that is a lockable capability.
#define MOLOC_CAPABILITY(name) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(capability(name))
#define MOLOC_SCOPED_CAPABILITY \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

// Data annotations: which capability protects a member.
#define MOLOC_GUARDED_BY(x) MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))
#define MOLOC_PT_GUARDED_BY(x) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

// Lock-ordering declarations between capabilities.
#define MOLOC_ACQUIRED_BEFORE(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define MOLOC_ACQUIRED_AFTER(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// Function annotations: capabilities required, excluded, or transferred.
#define MOLOC_REQUIRES(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define MOLOC_REQUIRES_SHARED(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))
#define MOLOC_EXCLUDES(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))
#define MOLOC_ACQUIRE(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define MOLOC_ACQUIRE_SHARED(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))
#define MOLOC_RELEASE(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define MOLOC_TRY_ACQUIRE(...) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))
#define MOLOC_ASSERT_CAPABILITY(x) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))
#define MOLOC_RETURN_CAPABILITY(x) \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

// Escape hatch. Only the util::Mutex/util::CondVar wrappers themselves
// may use this (tools/lint.sh enforces it): the wrappers bridge between
// the annotated world and the unannotated std primitives underneath.
#define MOLOC_NO_THREAD_SAFETY_ANALYSIS \
  MOLOC_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
