#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include "util/rng.hpp"


namespace moloc::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double maxValue(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double minValue(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double pct) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double fractionBelow(std::span<const double> xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t below = 0;
  for (double x : xs)
    if (x < threshold) ++below;
  return static_cast<double>(below) / static_cast<double>(xs.size());
}

std::vector<CdfPoint> empiricalCdf(std::span<const double> xs) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) /
                                  static_cast<double>(sorted.size())});
  }
  return cdf;
}

std::vector<CdfPoint> sampledCdf(std::span<const double> xs,
                                 std::size_t points) {
  auto full = empiricalCdf(xs);
  if (full.size() <= points || points == 0) return full;
  std::vector<CdfPoint> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t idx =
        (i * (full.size() - 1)) / (points > 1 ? points - 1 : 1);
    out.push_back(full[idx]);
  }
  return out;
}

ConfidenceInterval bootstrapMeanCi(std::span<const double> xs,
                                   double confidence, int resamples,
                                   Rng& rng) {
  ConfidenceInterval ci;
  ci.estimate = mean(xs);
  ci.lower = ci.estimate;
  ci.upper = ci.estimate;
  if (xs.size() < 2 || resamples < 2) return ci;

  const double clamped = std::clamp(confidence, 1e-6, 1.0 - 1e-6);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = static_cast<int>(xs.size());
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (int s = 0; s < n; ++s)
      sum += xs[static_cast<std::size_t>(rng.uniformInt(0, n - 1))];
    means.push_back(sum / n);
  }
  ci.lower = percentile(means, (1.0 - clamped) / 2.0 * 100.0);
  ci.upper = percentile(means, (1.0 + clamped) / 2.0 * 100.0);
  return ci;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    max_ = x;
    min_ = x;
  } else {
    max_ = std::max(max_, x);
    min_ = std::min(min_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

}  // namespace moloc::util
