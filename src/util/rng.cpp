#include "util/rng.hpp"

#include <stdexcept>

namespace moloc::util {

namespace {

std::uint64_t splitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitMix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform(double lo, double hi) {
  // 53-bit mantissa construction gives a uniform double in [0, 1).
  const double unit = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

int Rng::uniformInt(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(*this);
}

std::uint64_t Rng::uniformIndex(std::uint64_t bound) {
  if (bound == 0)
    throw std::invalid_argument("Rng::uniformIndex: bound must be > 0");
  // Lemire 2019: map a 64-bit draw onto [0, bound) via the high word of
  // a 128-bit product, rejecting the small biased fringe.
  std::uint64_t x = (*this)();
  unsigned __int128 product =
      static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(product);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      product = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::uint64_t>(product >> 64);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(*this);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform(0.0, 1.0) < p;
}

Rng Rng::split() { return Rng((*this)()); }

std::array<std::uint64_t, 4> Rng::state() const {
  return {state_[0], state_[1], state_[2], state_[3]};
}

void Rng::setState(const std::array<std::uint64_t, 4>& state) {
  if ((state[0] | state[1] | state[2] | state[3]) == 0)
    throw std::invalid_argument(
        "Rng::setState: the all-zero state is xoshiro's fixed point");
  for (int i = 0; i < 4; ++i) state_[i] = state[i];
}

}  // namespace moloc::util
