#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace moloc::util {

// Annotated wrappers over std::mutex / std::condition_variable.
//
// All mutex-protected state in src/ uses these (tools/lint.sh bans raw
// std::mutex members outside util/) so that clang's -Wthread-safety
// analysis can verify, at compile time, that every MOLOC_GUARDED_BY
// member is only touched with its mutex held. See
// docs/static_analysis.md for the annotation policy.

class MOLOC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MOLOC_ACQUIRE() { mu_.lock(); }
  void unlock() MOLOC_RELEASE() { mu_.unlock(); }
  bool tryLock() MOLOC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// Scoped lock; the only way locks are taken in src/ outside util/.
class MOLOC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MOLOC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() MOLOC_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with util::Mutex.
//
// wait() requires the capability: the analysis treats the mutex as held
// across the call, which matches the std::condition_variable contract
// (the lock is reacquired before wait returns). Callers re-check their
// predicate in an explicit while loop — lambda predicates are analyzed
// as separate functions and would lose the REQUIRES context.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MOLOC_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // Ownership stays with the caller's MutexLock.
  }

  /// wait() with a relative deadline; returns false on timeout.  The
  /// mutex is held again either way when the call returns — timeouts
  /// only bound the sleep, they don't change the locking contract.
  /// The intake writer thread uses this to bound snapshot staleness:
  /// it must wake and publish even when no new observation arrives.
  bool waitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      MOLOC_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.mu_, std::adopt_lock);
    const auto status = cv_.wait_for(ul, timeout);
    ul.release();  // Ownership stays with the caller's MutexLock.
    return status == std::cv_status::no_timeout;
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace moloc::util
