#pragma once

#include <stdexcept>
#include <string>

namespace moloc::util {

/// Typed project errors.
///
/// The library never throws a bare std::runtime_error /
/// std::invalid_argument / std::logic_error (the `typed-errors` rule
/// in tools/analyze/ enforces it, src/util/ excepted): a catch
/// handler on a serving path must be able to tell "our validation
/// rejected this input" from "the standard library blew up" — PR 7
/// shipped exactly that bug, hostile wire values escaping molocd
/// workers as an untyped std::invalid_argument until the server
/// retyped them frame-by-frame.  Every throw site names one of these
/// (or a subsystem type like store::CorruptionError or
/// net::ProtocolError), so `catch (const util::Error&)`-style
/// taxonomy is possible at every boundary.
///
/// Each class derives from the std type it replaces, so existing
/// `catch (const std::invalid_argument&)` handlers and
/// EXPECT_THROW(..., std::runtime_error) assertions keep working.

/// A caller passed an invalid argument or configuration value
/// (dimension mismatch, out-of-range knob, malformed spec string).
class ConfigError : public std::invalid_argument {
 public:
  explicit ConfigError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// An input document (text radio map, trace file, CSV header, bench
/// spec) failed to parse; the message carries the line/offset.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A file or OS operation failed (open/stat/rename); the message
/// names the path and the errno text.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Input data that parsed fine is semantically invalid — a walk graph
/// with an isolated node, a trace that steps outside its floor — and
/// the violation only surfaces mid-computation.
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

/// The program misused an API: calls in the wrong order, lookups of
/// ids that were never registered, violated internal invariants.
class StateError : public std::logic_error {
 public:
  explicit StateError(const std::string& what) : std::logic_error(what) {}
};

/// A checked integer narrowing (util::checkedU32 and friends) found a
/// value that does not fit the destination type.  Derives from
/// std::range_error so it reads as what it is: a value outside the
/// representable range, detected instead of silently truncated.
class NarrowingError : public std::range_error {
 public:
  explicit NarrowingError(const std::string& what)
      : std::range_error(what) {}
};

}  // namespace moloc::util
