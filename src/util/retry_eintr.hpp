#pragma once

#include <cerrno>

namespace moloc::util {

/// Retries a POSIX call interrupted by a signal.
///
/// A signal delivered during a blocking (or even nominally
/// non-blocking) syscall makes it fail with EINTR — which is not an
/// I/O error, just "try again".  Before this helper, a signal landing
/// mid-WAL-append or mid-socket-read surfaced as a spurious
/// StoreError/NetError; every raw ::read/::write/::fsync/::open/
/// ::accept call site in src/store and src/net now goes through here
/// (tools/lint.sh rule `raw-eintr` enforces it).
///
/// `fn` is a zero-argument callable wrapping exactly one syscall and
/// returning its result (an int or ssize_t, negative on failure with
/// errno set).  The call is repeated while it fails with EINTR; any
/// other outcome — success or a real error — is returned unchanged,
/// with errno still describing it.
///
/// Deliberately NOT used for ::close: POSIX leaves the descriptor
/// state unspecified after EINTR, and on Linux the fd is already
/// released — retrying could close an unrelated fd another thread
/// just opened.
template <typename Fn>
auto retryEintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) rc;
  do {
    rc = fn();
  } while (rc < 0 && errno == EINTR);
  return rc;
}

}  // namespace moloc::util
