#pragma once

#include <string>
#include <system_error>

namespace moloc::util {

/// The message for an errno value, via the C++ error-category machinery
/// instead of ::strerror — strerror formats unknown values into a
/// static buffer shared across threads (clang-tidy concurrency-mt-unsafe
/// flags every call), while generic_category().message() is reentrant.
inline std::string errnoMessage(int err) {
  return std::generic_category().message(err);
}

}  // namespace moloc::util
