#pragma once

#include <array>
#include <cstdint>
#include <random>

namespace moloc::util {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Every stochastic component of the library takes an explicit `Rng&`
/// instead of touching global state, so whole experiments replay
/// bit-identically from a single seed.  The engine satisfies the standard
/// UniformRandomBitGenerator requirements and therefore composes with
/// `<random>` distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64, per the xoshiro authors'
  /// recommendation, so that nearby integer seeds yield unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniformInt(int lo, int hi);

  /// Uniform 64-bit index in [0, bound), unbiased (Lemire's
  /// multiply-and-reject method).  `bound` must be > 0 (throws
  /// std::invalid_argument).  Use this instead of uniformInt for
  /// counters that can exceed 2^31 — e.g. reservoir-sampling slot
  /// draws over long crowdsourcing streams.
  std::uint64_t uniformIndex(std::uint64_t bound);

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
  bool chance(double p);

  /// Spawns an independent child generator; used to hand subsystems their
  /// own streams so that adding draws in one does not perturb another.
  Rng split();

  /// The raw four-word engine state, so checkpoints can freeze a
  /// generator mid-stream and resume it bit-identically (a reseed
  /// would replay a different eviction sequence).  Every draw above is
  /// a pure function of this state, so state()/setState() round-trips
  /// exactly.
  std::array<std::uint64_t, 4> state() const;

  /// Restores a previously captured state.  The all-zero word vector
  /// is xoshiro's fixed point (the stream would be constant) and
  /// throws std::invalid_argument.
  void setState(const std::array<std::uint64_t, 4>& state);

 private:
  std::uint64_t state_[4];
};

}  // namespace moloc::util
