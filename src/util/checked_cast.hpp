#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/error.hpp"


namespace moloc::util {

/// Checked 64→32-bit narrowing for framing and section arithmetic.
///
/// Every binary format in this codebase (WAL frames, wire frames,
/// venue-image section tables) carries u32 length fields that are
/// computed from std::size_t values.  A bare
/// static_cast<std::uint32_t>(n) silently truncates once n crosses
/// 4 GiB and the frame decodes as a different — CRC-valid — message.
/// These helpers are the sanctioned spelling (the `narrowing-length`
/// rule in tools/analyze/ bans the implicit conversion in src/net,
/// src/image and src/store): the cast either fits or throws
/// util::NarrowingError naming the field.
inline std::uint32_t checkedU32(std::uint64_t value, const char* field) {
  if (value > std::numeric_limits<std::uint32_t>::max())
    throw NarrowingError(std::string(field) + " value " +
                         std::to_string(value) +
                         " does not fit in a u32 length field");
  return static_cast<std::uint32_t>(value);
}

/// Same contract for i32 destinations (section ids, counts that are
/// negative-signalling on the wire).
inline std::int32_t checkedI32(std::int64_t value, const char* field) {
  if (value > std::numeric_limits<std::int32_t>::max() ||
      value < std::numeric_limits<std::int32_t>::min())
    throw NarrowingError(std::string(field) + " value " +
                         std::to_string(value) +
                         " does not fit in an i32 field");
  return static_cast<std::int32_t>(value);
}

}  // namespace moloc::util
