#include "util/args.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace moloc::util {

ArgParser::ArgParser(std::string programDescription)
    : description_(std::move(programDescription)) {}

void ArgParser::addOption(const std::string& name,
                          const std::string& defaultValue,
                          const std::string& help) {
  declared_[name] = {defaultValue, help, false};
}

void ArgParser::addSwitch(const std::string& name,
                          const std::string& help) {
  declared_[name] = {"false", help, true};
}

const ArgParser::Option& ArgParser::findDeclared(
    const std::string& name) const {
  const auto it = declared_.find(name);
  if (it == declared_.end())
    throw std::invalid_argument("ArgParser: undeclared option --" + name);
  return it->second;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  if (argc > 0) programName_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (token.rfind("--", 0) != 0)
      throw std::invalid_argument("ArgParser: expected --option, got '" +
                                  token + "'");
    token = token.substr(2);

    std::string name = token;
    std::optional<std::string> inlineValue;
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      name = token.substr(0, eq);
      inlineValue = token.substr(eq + 1);
    }

    const Option& option = findDeclared(name);
    if (option.isSwitch) {
      if (inlineValue)
        throw std::invalid_argument("ArgParser: switch --" + name +
                                    " takes no value");
      values_[name] = "true";
      continue;
    }
    if (inlineValue) {
      values_[name] = *inlineValue;
    } else {
      if (i + 1 >= argc)
        throw std::invalid_argument("ArgParser: --" + name +
                                    " needs a value");
      values_[name] = argv[++i];
    }
  }
  return true;
}

std::string ArgParser::getString(const std::string& name) const {
  const Option& option = findDeclared(name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : option.defaultValue;
}

double ArgParser::getDouble(const std::string& name) const {
  const std::string raw = getString(name);
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(raw, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + name +
                                " expects a number, got '" + raw + "'");
  }
  if (consumed != raw.size())
    throw std::invalid_argument("ArgParser: --" + name +
                                " expects a number, got '" + raw + "'");
  return value;
}

int ArgParser::getInt(const std::string& name) const {
  const std::string raw = getString(name);
  std::size_t consumed = 0;
  int value = 0;
  try {
    value = std::stoi(raw, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("ArgParser: --" + name +
                                " expects an integer, got '" + raw + "'");
  }
  if (consumed != raw.size())
    throw std::invalid_argument("ArgParser: --" + name +
                                " expects an integer, got '" + raw + "'");
  return value;
}

bool ArgParser::getSwitch(const std::string& name) const {
  const Option& option = findDeclared(name);
  if (!option.isSwitch)
    throw std::invalid_argument("ArgParser: --" + name +
                                " is not a switch");
  return values_.count(name) > 0;
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << description_ << "\n\nusage: " << programName_
      << " [options]\n\noptions:\n";
  for (const auto& [name, option] : declared_) {
    out << "  --" << name;
    if (!option.isSwitch) out << " <value>";
    out << "\n      " << option.help;
    if (!option.isSwitch)
      out << " (default: " << option.defaultValue << ")";
    out << "\n";
  }
  out << "  --help\n      print this message\n";
  return out.str();
}

}  // namespace moloc::util
