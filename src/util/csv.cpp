#include "util/csv.hpp"

#include <stdexcept>

namespace moloc::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  writeRow(header);
}

CsvWriter& CsvWriter::cell(std::string_view value) {
  pending_.emplace_back(value);
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  std::ostringstream os;
  os << value;
  pending_.push_back(os.str());
  return *this;
}

CsvWriter& CsvWriter::cell(int value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::endRow() {
  writeRow(pending_);
  pending_.clear();
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view value) {
  // '\r' must be quoted too: left bare at the end of a cell it fuses
  // with the row's '\n' terminator into a CRLF line ending and the
  // reader returns a shortened cell (found by the CSV fuzz target's
  // round-trip property).
  const bool needsQuote =
      value.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needsQuote) return std::string(value);
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

namespace {

[[noreturn]] void badCsv(std::size_t offset, const std::string& what) {
  throw std::invalid_argument("parseCsvRecord: byte " +
                              std::to_string(offset) + ": " + what);
}

}  // namespace

bool parseCsvRecord(std::string_view text, std::size_t* pos,
                    std::vector<std::string>& out) {
  std::size_t i = *pos;
  if (i >= text.size()) return false;
  out.clear();

  std::string cell;
  bool quoted = false;     // Inside a quoted cell.
  bool wasQuoted = false;  // Current cell started with a quote.
  for (;;) {
    if (i >= text.size()) {
      if (quoted) badCsv(i, "unterminated quoted cell (truncated?)");
      out.push_back(std::move(cell));
      *pos = i;
      return true;
    }
    const char c = text[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';  // Doubled quote: one literal quote.
          i += 2;
        } else {
          quoted = false;  // Closing quote; separator must follow.
          ++i;
        }
      } else {
        cell += c;
        ++i;
      }
      continue;
    }
    if (c == ',') {
      out.push_back(std::move(cell));
      cell.clear();
      wasQuoted = false;
      ++i;
      continue;
    }
    if (c == '\n' || (c == '\r' && i + 1 < text.size() &&
                      text[i + 1] == '\n')) {
      out.push_back(std::move(cell));
      *pos = i + (c == '\r' ? 2 : 1);
      return true;
    }
    if (c == '"') {
      if (!cell.empty() || wasQuoted)
        badCsv(i, wasQuoted ? "data after closing quote"
                            : "quote inside unquoted cell");
      quoted = true;
      wasQuoted = true;
      ++i;
      continue;
    }
    if (wasQuoted) badCsv(i, "data after closing quote");
    cell += c;
    ++i;
  }
}

std::vector<std::vector<std::string>> parseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::size_t pos = 0;
  std::vector<std::string> row;
  while (parseCsvRecord(text, &pos, row)) rows.push_back(row);
  return rows;
}

}  // namespace moloc::util
