#include "util/csv.hpp"

#include <stdexcept>

namespace moloc::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  writeRow(header);
}

CsvWriter& CsvWriter::cell(std::string_view value) {
  pending_.emplace_back(value);
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  std::ostringstream os;
  os << value;
  pending_.push_back(os.str());
  return *this;
}

CsvWriter& CsvWriter::cell(int value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::cell(std::size_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::endRow() {
  writeRow(pending_);
  pending_.clear();
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view value) {
  const bool needsQuote =
      value.find_first_of(",\"\n") != std::string_view::npos;
  if (!needsQuote) return std::string(value);
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace moloc::util
