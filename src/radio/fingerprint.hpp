#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace moloc::radio {

/// An RSS fingerprint F = (f1, ..., fn): one received-signal-strength
/// value in dBm per access point, in a fixed AP order (Sec. IV.B.1).
class Fingerprint {
 public:
  Fingerprint() = default;
  explicit Fingerprint(std::vector<double> rssDbm)
      : rss_(std::move(rssDbm)) {}

  /// A non-owning view over externally owned RSS values — the
  /// zero-copy path of the mmap venue image (src/image).  The storage
  /// behind `rssDbm` must outlive the fingerprint and every copy of
  /// it.  A view is read-only: the mutating operator[] throws
  /// std::logic_error.
  static Fingerprint view(std::span<const double> rssDbm) {
    Fingerprint fp;
    fp.borrowed_ = rssDbm;
    return fp;
  }

  std::size_t size() const { return values().size(); }
  bool empty() const { return size() == 0; }

  /// True when this fingerprint borrows external storage (see view()).
  bool isView() const { return borrowed_.data() != nullptr; }

  double operator[](std::size_t i) const { return values()[i]; }
  double& operator[](std::size_t i);

  std::span<const double> values() const {
    return borrowed_.data() != nullptr ? borrowed_
                                       : std::span<const double>(rss_);
  }

  /// Keeps only the first `n` APs; used to derive the paper's 4/5-AP
  /// configurations from a 6-AP survey.  No-op when n >= size().
  /// Always returns an owning fingerprint, even from a view.
  Fingerprint truncated(std::size_t n) const;

 private:
  std::vector<double> rss_;
  /// Set iff this fingerprint is a view; owning fingerprints read rss_
  /// so default copy/move stay correct (a copied view stays a shallow
  /// view, a copied owner re-points at its own vector).
  std::span<const double> borrowed_;
};

/// Euclidean dissimilarity phi(F, F') between two fingerprints (Eq. 1).
/// Throws std::invalid_argument when dimensions differ.
double dissimilarity(const Fingerprint& a, const Fingerprint& b);

/// phi^2, exposed separately because the k-NN search only needs ordering
/// and can skip the square root.
double squaredDissimilarity(const Fingerprint& a, const Fingerprint& b);

/// Component-wise mean of a non-empty set of equal-length fingerprints
/// (the "radio map" entry for a surveyed location).
/// Throws std::invalid_argument on an empty set or mismatched lengths.
Fingerprint meanFingerprint(std::span<const Fingerprint> fps);

}  // namespace moloc::radio
