#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace moloc::radio {

/// An RSS fingerprint F = (f1, ..., fn): one received-signal-strength
/// value in dBm per access point, in a fixed AP order (Sec. IV.B.1).
class Fingerprint {
 public:
  Fingerprint() = default;
  explicit Fingerprint(std::vector<double> rssDbm)
      : rss_(std::move(rssDbm)) {}

  std::size_t size() const { return rss_.size(); }
  bool empty() const { return rss_.empty(); }

  double operator[](std::size_t i) const { return rss_[i]; }
  double& operator[](std::size_t i) { return rss_[i]; }

  std::span<const double> values() const { return rss_; }

  /// Keeps only the first `n` APs; used to derive the paper's 4/5-AP
  /// configurations from a 6-AP survey.  No-op when n >= size().
  Fingerprint truncated(std::size_t n) const;

 private:
  std::vector<double> rss_;
};

/// Euclidean dissimilarity phi(F, F') between two fingerprints (Eq. 1).
/// Throws std::invalid_argument when dimensions differ.
double dissimilarity(const Fingerprint& a, const Fingerprint& b);

/// phi^2, exposed separately because the k-NN search only needs ordering
/// and can skip the square root.
double squaredDissimilarity(const Fingerprint& a, const Fingerprint& b);

/// Component-wise mean of a non-empty set of equal-length fingerprints
/// (the "radio map" entry for a surveyed location).
/// Throws std::invalid_argument on an empty set or mismatched lengths.
Fingerprint meanFingerprint(std::span<const Fingerprint> fps);

}  // namespace moloc::radio
