#include "radio/radio_environment.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace moloc::radio {

RadioEnvironment::RadioEnvironment(const env::FloorPlan& plan,
                                   std::vector<AccessPoint> aps,
                                   PropagationParams params)
    : plan_(plan), aps_(std::move(aps)), model_(params, plan) {
  if (aps_.empty())
    throw util::ConfigError("RadioEnvironment: no access points");
}

Fingerprint RadioEnvironment::scan(geometry::Vec2 pos, double orientationDeg,
                                   util::Rng& rng, Epoch epoch) const {
  std::vector<double> rss;
  rss.reserve(aps_.size());
  for (const auto& ap : aps_)
    rss.push_back(model_.sampleRssDbm(ap, pos, orientationDeg, rng, epoch));
  return Fingerprint(std::move(rss));
}

Fingerprint RadioEnvironment::expectedFingerprint(
    geometry::Vec2 pos, double orientationDeg, Epoch epoch) const {
  std::vector<double> rss;
  rss.reserve(aps_.size());
  for (const auto& ap : aps_)
    rss.push_back(model_.meanRssDbm(ap, pos, orientationDeg, epoch));
  return Fingerprint(std::move(rss));
}

}  // namespace moloc::radio
