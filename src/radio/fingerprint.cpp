#include "radio/fingerprint.hpp"

#include <cmath>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::radio {

double& Fingerprint::operator[](std::size_t i) {
  if (isView())
    throw util::StateError("Fingerprint: cannot mutate an immutable view");
  return rss_[i];
}

Fingerprint Fingerprint::truncated(std::size_t n) const {
  const std::span<const double> v = values();
  if (n >= v.size() && !isView()) return *this;
  const std::size_t keep = n < v.size() ? n : v.size();
  return Fingerprint(std::vector<double>(v.begin(),
                                         v.begin() + static_cast<long>(keep)));
}

double squaredDissimilarity(const Fingerprint& a, const Fingerprint& b) {
  if (a.size() != b.size())
    throw util::ConfigError(
        "dissimilarity: fingerprint dimensions differ");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double dissimilarity(const Fingerprint& a, const Fingerprint& b) {
  return std::sqrt(squaredDissimilarity(a, b));
}

Fingerprint meanFingerprint(std::span<const Fingerprint> fps) {
  if (fps.empty())
    throw util::ConfigError("meanFingerprint: empty sample set");
  const std::size_t n = fps.front().size();
  std::vector<double> acc(n, 0.0);
  for (const auto& fp : fps) {
    if (fp.size() != n)
      throw util::ConfigError("meanFingerprint: mismatched lengths");
    for (std::size_t i = 0; i < n; ++i) acc[i] += fp[i];
  }
  for (double& v : acc) v /= static_cast<double>(fps.size());
  return Fingerprint(std::move(acc));
}

}  // namespace moloc::radio
