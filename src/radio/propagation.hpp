#pragma once

#include <cstdint>

#include "env/floor_plan.hpp"
#include "geometry/vec2.hpp"
#include "radio/access_point.hpp"
#include "util/rng.hpp"

namespace moloc::radio {

/// Parameters of the indoor propagation model.
///
/// The model substitutes for the paper's real office-hall WiFi channel
/// (see DESIGN.md Sec. 2).  It composes the standard log-distance path
/// loss with per-wall attenuation, a *static* spatially-correlated
/// shadowing field (what makes fingerprints location-specific and
/// repeatable across the site survey and later queries), a body
/// orientation term (the paper surveys each location facing N/E/S/W),
/// and per-sample temporal noise (what makes fingerprints ambiguous).
struct PropagationParams {
  double pathLossExponent = 2.8;   ///< n in -10 n log10(d / 1m).
  double wallAttenuationDb = 5.0;  ///< Loss per wall/partition crossed.
  double shadowingSigmaDb = 3.0;   ///< Std. dev. of the static field.
  double shadowingCellMeters = 3.0;///< Correlation length of the field.
  double bodyAttenuationDb = 3.0;  ///< Max loss when the body blocks.
  double temporalSigmaDb = 6.5;    ///< Per-sample Gaussian noise.
  /// Environmental drift between the site survey and the serving phase
  /// (furniture moved, doors opened, crowds changed): a second static
  /// field, present only at serving time, that makes the radio map
  /// stale — the paper's "temporal variations of wireless signals".
  double driftSigmaDb = 0.0;
  double driftCellMeters = 3.0;    ///< Correlation length of the drift.
  double detectionFloorDbm = -100.0;  ///< Weakest reportable RSS.
  std::uint64_t shadowingSeed = 0x5eed5eedULL;  ///< Field realization.
  std::uint64_t driftSeed = 0xd51f7d51ULL;      ///< Drift realization.
};

/// When a measurement is taken relative to the site survey: the survey
/// itself sees the pristine channel; everything afterwards (motion-DB
/// crowdsourcing, localization queries) sees the drifted one.
enum class Epoch {
  kSurvey,
  kServing,
};

/// Deterministic log-distance + shadowing propagation model.
///
/// `meanRssDbm` is a pure function of geometry (reproducible across
/// calls); `sampleRssDbm` adds one draw of temporal noise from the
/// caller's RNG.
class LogDistanceModel {
 public:
  LogDistanceModel(PropagationParams params, const env::FloorPlan& plan);

  const PropagationParams& params() const { return params_; }

  /// Noise-free expected RSS at `pos` for a user facing
  /// `orientationDeg` (compass degrees), at the given epoch.  Clamped
  /// to the detection floor.
  double meanRssDbm(const AccessPoint& ap, geometry::Vec2 pos,
                    double orientationDeg,
                    Epoch epoch = Epoch::kServing) const;

  /// One noisy RSS sample (mean + temporal Gaussian noise, clamped).
  double sampleRssDbm(const AccessPoint& ap, geometry::Vec2 pos,
                      double orientationDeg, util::Rng& rng,
                      Epoch epoch = Epoch::kServing) const;

  /// The static shadowing component alone (dB), exposed for testing.
  double shadowingDb(int apId, geometry::Vec2 pos) const;

  /// The serving-epoch drift component alone (dB), exposed for testing.
  double driftDb(int apId, geometry::Vec2 pos) const;

 private:
  /// Hash-lattice value noise, bilinear-interpolated: smooth in `pos`,
  /// deterministic in (seed, apId, lattice cell).
  static double latticeNoise(std::uint64_t seed, int apId, double cx,
                             double cy);

  /// Evaluates one smooth field (bilinear over the hash lattice).
  static double fieldDb(std::uint64_t seed, double sigma, double cell,
                        int apId, geometry::Vec2 pos);

  PropagationParams params_;
  const env::FloorPlan* plan_;
};

}  // namespace moloc::radio
