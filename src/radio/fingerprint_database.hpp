#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "env/floor_plan.hpp"
#include "radio/fingerprint.hpp"

namespace moloc::radio {

/// One fingerprint-matching result: a candidate location, its
/// dissimilarity m_i = phi(F, F_i), and its probability from Eq. 4.
struct Match {
  env::LocationId location = 0;
  double dissimilarity = 0.0;
  double probability = 0.0;
};

/// The location -> fingerprint radio map built by the site survey
/// (Sec. IV.B.1), supporting the paper's two query modes:
///   - `nearest` implements Eq. 2 (the plain WiFi baseline), and
///   - `query` implements Eq. 3-4 (the k-nearest candidate set with
///     probabilities P(x = l_i | F) = (1/m_i) / sum_j (1/m_j)).
class FingerprintDatabase {
 public:
  FingerprintDatabase() = default;

  /// Registers the radio-map entry for a location.  Entries must share
  /// one AP dimensionality; ids may arrive in any order but must be
  /// unique.  Throws std::invalid_argument on violations.
  void addLocation(env::LocationId id, Fingerprint radioMapEntry);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Dimensionality (number of APs) of stored fingerprints; 0 if empty.
  std::size_t apCount() const;

  /// The stored radio-map entry for `id`; throws std::out_of_range when
  /// the id was never added.
  const Fingerprint& entry(env::LocationId id) const;

  /// True iff `id` has a radio-map entry.
  bool contains(env::LocationId id) const;

  /// All stored location ids, in insertion order.
  std::vector<env::LocationId> locationIds() const;

  /// Eq. 2: the single location of least dissimilarity.
  /// Throws std::logic_error on an empty database.
  env::LocationId nearest(const Fingerprint& query) const;

  /// Eq. 3-4: the k nearest locations, ascending by dissimilarity, with
  /// normalized inverse-dissimilarity probabilities.  Returns fewer than
  /// k matches when the database is smaller.  k must be >= 1.
  std::vector<Match> query(const Fingerprint& query, std::size_t k) const;

  /// Allocation-free variant of query(): fills `out` (clearing it
  /// first) so a caller on the serving hot path can reuse one scratch
  /// buffer across rounds instead of allocating a size-n vector per
  /// call.  `out` is left unspecified if an exception is thrown.
  void queryInto(const Fingerprint& query, std::size_t k,
                 std::vector<Match>& out) const;

  /// A copy of this database restricted to the first `n` APs — how the
  /// paper derives its 4- and 5-AP configurations from the 6-AP survey.
  FingerprintDatabase truncatedTo(std::size_t n) const;

 private:
  struct Entry {
    env::LocationId id;
    Fingerprint fingerprint;
  };
  std::vector<Entry> entries_;
  /// id -> position in entries_, so entry()/contains() are O(1) and DB
  /// construction is amortized O(n) instead of the O(n^2) of scanning
  /// entries_ per lookup.  Positions stay valid because entries_ is
  /// append-only.
  std::unordered_map<env::LocationId, std::size_t> indexById_;
};

}  // namespace moloc::radio
