#pragma once

#include <cstddef>
#include <exception>
#include <span>
#include <unordered_map>
#include <vector>

#include "env/floor_plan.hpp"
#include "kernel/fingerprint_kernel.hpp"
#include "radio/fingerprint.hpp"

namespace moloc::radio {

/// Floor for Eq. 4's 1/m weights.  Besides guarding the division when a
/// query exactly matches a stored fingerprint, the floor encodes a
/// physical fact: dissimilarities below ~half a dB are measurement
/// coincidence, not information, and must not let the fingerprint term
/// overrule the motion term (a 1e-9 floor would make an exact match
/// ~10^9 times "more likely" than a twin 0.1 dB away).  Exported so
/// alternative matching backends (index::TieredIndex) reproduce Eq. 4
/// bitwise.
inline constexpr double kMinDissimilarity = 0.5;

/// One fingerprint-matching result: a candidate location, its
/// dissimilarity m_i = phi(F, F_i), and its probability from Eq. 4.
struct Match {
  env::LocationId location = 0;
  double dissimilarity = 0.0;
  double probability = 0.0;
};

/// The location -> fingerprint radio map built by the site survey
/// (Sec. IV.B.1), supporting the paper's two query modes:
///   - `nearest` implements Eq. 2 (the plain WiFi baseline), and
///   - `query` implements Eq. 3-4 (the k-nearest candidate set with
///     probabilities P(x = l_i | F) = (1/m_i) / sum_j (1/m_j)).
///
/// Matching runs on a data-oriented kernel (src/kernel): entries are
/// mirrored into a contiguous row-major flat matrix (entries x APs,
/// stride padded to the kernel block) maintained incrementally by
/// addLocation, squared distances are computed by a blocked kernel
/// (auto-vectorized scalar, or runtime-dispatched AVX2 when the build
/// enables MOLOC_SIMD), and the top k are selected with a bounded
/// max-heap instead of materializing and partial-sorting all matches.
/// Ties in dissimilarity rank the earlier-inserted entry first.
class FingerprintDatabase {
 public:
  FingerprintDatabase() = default;

  /// Zero-copy construction from a venue image (src/image): entry r
  /// becomes a Fingerprint::view over row r of `rowMajorValues`
  /// (ids.size() x apCount doubles, row-major) and the kernel mirror
  /// adopts `blockedFlat` (a FlatMatrix::view over the image's blocked
  /// section) instead of re-packing it.  Both buffers must outlive the
  /// database — the image loader pins the mapping for it.  Only the
  /// shape and id uniqueness are validated here; value-level integrity
  /// is the image's CRC contract.  Throws std::invalid_argument on a
  /// shape mismatch or duplicate id.
  static FingerprintDatabase fromImageView(
      std::span<const env::LocationId> ids, std::size_t apCount,
      const double* rowMajorValues, kernel::FlatMatrix blockedFlat);

  /// Registers the radio-map entry for a location.  Entries must share
  /// one AP dimensionality; ids may arrive in any order but must be
  /// unique.  Throws std::invalid_argument on violations.
  void addLocation(env::LocationId id, Fingerprint radioMapEntry);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Dimensionality (number of APs) of stored fingerprints; 0 if empty.
  std::size_t apCount() const;

  /// The stored radio-map entry for `id`; throws std::out_of_range when
  /// the id was never added.
  const Fingerprint& entry(env::LocationId id) const;

  /// The entry at insertion position `row` (row order matches
  /// flatMatrix() rows); exposed for the venue-image writer and the
  /// tiered index so per-row walks skip the id hash.  `row` must be
  /// < size().
  const Fingerprint& entryAt(std::size_t row) const {
    return entries_[row].fingerprint;
  }
  env::LocationId idAt(std::size_t row) const { return entries_[row].id; }

  /// True iff `id` has a radio-map entry.
  bool contains(env::LocationId id) const;

  /// All stored location ids, in insertion order.
  std::vector<env::LocationId> locationIds() const;

  /// Eq. 2: the single location of least dissimilarity (ties keep the
  /// earliest-inserted entry).  Throws std::logic_error on an empty
  /// database.
  env::LocationId nearest(const Fingerprint& query) const;

  /// Eq. 3-4: the k nearest locations, ascending by dissimilarity, with
  /// normalized inverse-dissimilarity probabilities.  Returns fewer than
  /// k matches when the database is smaller.  k must be >= 1.
  std::vector<Match> query(const Fingerprint& query, std::size_t k) const;

  /// Allocation-free variant of query(): fills `out` (clearing it
  /// first) so a caller on the serving hot path can reuse one scratch
  /// buffer across rounds instead of allocating a size-n vector per
  /// call.  `out` is left unspecified if an exception is thrown.
  void queryInto(const Fingerprint& query, std::size_t k,
                 std::vector<Match>& out) const;

  /// Multi-query batch entry point: answers every query in `queries`
  /// against one shared kernel workspace, filling out[i] with query
  /// i's matches — bitwise-identical to calling queryInto per query.
  /// The serving layer uses this to gather a whole localizeBatch's
  /// scans into one kernel invocation instead of n independent scans.
  ///
  /// Error handling is per-query so one poisoned scan cannot sink a
  /// whole batch: when `errors` is non-null it is resized to match and
  /// a query that fails validation (e.g. non-finite RSS) gets its
  /// exception captured in errors[i] with out[i] left empty, while
  /// every other query is answered.  With a null `errors`, the first
  /// failure is thrown.  Database-wide preconditions (empty database,
  /// k == 0) always throw.
  void queryBatchInto(std::span<const Fingerprint* const> queries,
                      std::size_t k, std::vector<std::vector<Match>>& out,
                      std::vector<std::exception_ptr>* errors = nullptr) const;

  /// A copy of this database restricted to the first `n` APs — how the
  /// paper derives its 4- and 5-AP configurations from the 6-AP survey.
  FingerprintDatabase truncatedTo(std::size_t n) const;

  /// The kernel-side storage (exposed for tests and benchmarks).
  const kernel::FlatMatrix& flatMatrix() const { return flat_; }

 private:
  struct Entry {
    env::LocationId id;
    Fingerprint fingerprint;
  };

  /// Shared body of queryInto/queryBatchInto: distances + top-k +
  /// Eq. 4 probabilities for one already-validated query.
  void queryPrepared(const Fingerprint& query, std::size_t k,
                     kernel::QueryWorkspace& ws,
                     std::vector<Match>& out) const;

  std::vector<Entry> entries_;
  /// id -> position in entries_, so entry()/contains() are O(1) and DB
  /// construction is amortized O(n) instead of the O(n^2) of scanning
  /// entries_ per lookup.  Positions stay valid because entries_ is
  /// append-only.
  std::unordered_map<env::LocationId, std::size_t> indexById_;
  /// Row r mirrors entries_[r].fingerprint in the kernel's blocked
  /// interleaved layout; rebuilt never, appended on every addLocation.
  kernel::FlatMatrix flat_;
};

}  // namespace moloc::radio
