#include "radio/access_point.hpp"

// AccessPoint is a plain aggregate; this file anchors the component in
// the library archive.
namespace moloc::radio {}
