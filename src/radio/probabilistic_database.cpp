#include "radio/probabilistic_database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "geometry/angles.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace moloc::radio {

void ProbabilisticFingerprintDatabase::addLocation(
    env::LocationId id, std::span<const Fingerprint> samples) {
  if (samples.empty())
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: no samples");
  const std::size_t n = samples.front().size();
  if (n == 0)
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: empty fingerprint");
  if (!entries_.empty() && n != entries_.front().mu.size())
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: mismatched AP count");
  if (contains(id))
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: duplicate location " +
        std::to_string(id));

  GaussianEntry entry;
  entry.id = id;
  entry.mu.resize(n);
  entry.sigma.resize(n);
  std::vector<double> column(samples.size());
  for (std::size_t ap = 0; ap < n; ++ap) {
    for (std::size_t s = 0; s < samples.size(); ++s) {
      if (samples[s].size() != n)
        throw util::ConfigError(
            "ProbabilisticFingerprintDatabase: ragged samples");
      column[s] = samples[s][ap];
    }
    entry.mu[ap] = util::mean(column);
    entry.sigma[ap] = std::max(util::stddev(column), kMinSigmaDb);
  }
  entries_.push_back(std::move(entry));
}

std::size_t ProbabilisticFingerprintDatabase::apCount() const {
  return entries_.empty() ? 0 : entries_.front().mu.size();
}

bool ProbabilisticFingerprintDatabase::contains(env::LocationId id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const GaussianEntry& e) { return e.id == id; });
}

std::vector<env::LocationId>
ProbabilisticFingerprintDatabase::locationIds() const {
  std::vector<env::LocationId> ids;
  ids.reserve(entries_.size());
  for (const auto& e : entries_) ids.push_back(e.id);
  return ids;
}

const ProbabilisticFingerprintDatabase::GaussianEntry&
ProbabilisticFingerprintDatabase::find(env::LocationId id) const {
  for (const auto& e : entries_)
    if (e.id == id) return e;
  throw std::out_of_range(
      "ProbabilisticFingerprintDatabase: unknown location " +
      std::to_string(id));
}

double ProbabilisticFingerprintDatabase::logLikelihood(
    const Fingerprint& scan, env::LocationId id) const {
  const auto& entry = find(id);
  if (scan.size() != entry.mu.size())
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: dimension mismatch");
  double logL = 0.0;
  for (std::size_t ap = 0; ap < entry.mu.size(); ++ap) {
    const double z = (scan[ap] - entry.mu[ap]) / entry.sigma[ap];
    logL += -0.5 * z * z - std::log(entry.sigma[ap]) -
            0.5 * std::log(2.0 * geometry::kPi);
  }
  return logL;
}

env::LocationId ProbabilisticFingerprintDatabase::mostLikely(
    const Fingerprint& scan) const {
  if (entries_.empty())
    throw util::StateError("ProbabilisticFingerprintDatabase: empty");
  env::LocationId best = entries_.front().id;
  double bestLogL = logLikelihood(scan, best);
  for (const auto& e : entries_) {
    const double logL = logLikelihood(scan, e.id);
    if (logL > bestLogL) {
      bestLogL = logL;
      best = e.id;
    }
  }
  return best;
}

std::vector<Match> ProbabilisticFingerprintDatabase::query(
    const Fingerprint& scan, std::size_t k) const {
  std::vector<Match> matches;
  queryInto(scan, k, matches);
  return matches;
}

void ProbabilisticFingerprintDatabase::queryInto(
    const Fingerprint& scan, std::size_t k, std::vector<Match>& out) const {
  if (k == 0)
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: k must be >= 1");
  if (entries_.empty())
    throw util::StateError("ProbabilisticFingerprintDatabase: empty");

  out.clear();
  out.reserve(entries_.size());
  for (const auto& e : entries_)
    out.push_back({e.id, -logLikelihood(scan, e.id), 0.0});

  const std::size_t kept = std::min(k, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<long>(kept),
                    out.end(), [](const Match& a, const Match& b) {
                      return a.dissimilarity < b.dissimilarity;
                    });
  out.resize(kept);

  // Posterior over the kept set (uniform prior): softmax of the
  // log-likelihoods, computed with the max subtracted for stability.
  const double maxLogL = -out.front().dissimilarity;
  double total = 0.0;
  for (auto& m : out) {
    m.probability = std::exp(-m.dissimilarity - maxLogL);
    total += m.probability;
  }
  for (auto& m : out) m.probability /= total;
}

std::span<const double> ProbabilisticFingerprintDatabase::mu(
    env::LocationId id) const {
  return find(id).mu;
}

std::span<const double> ProbabilisticFingerprintDatabase::sigma(
    env::LocationId id) const {
  return find(id).sigma;
}

void ProbabilisticFingerprintDatabase::addFittedLocation(
    env::LocationId id, std::vector<double> mu,
    std::vector<double> sigma) {
  if (mu.empty() || mu.size() != sigma.size())
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: bad fitted Gaussians");
  if (!entries_.empty() && mu.size() != entries_.front().mu.size())
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: mismatched AP count");
  if (contains(id))
    throw util::ConfigError(
        "ProbabilisticFingerprintDatabase: duplicate location " +
        std::to_string(id));
  for (double& s : sigma) s = std::max(s, kMinSigmaDb);
  entries_.push_back({id, std::move(mu), std::move(sigma)});
}

ProbabilisticFingerprintDatabase
ProbabilisticFingerprintDatabase::fromSurvey(const SurveyData& survey) {
  ProbabilisticFingerprintDatabase db;
  for (const auto& loc : survey.samples)
    db.addLocation(loc.location, loc.train);
  return db;
}

}  // namespace moloc::radio
