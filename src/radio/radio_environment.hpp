#pragma once

#include <span>
#include <vector>

#include "env/floor_plan.hpp"
#include "radio/access_point.hpp"
#include "radio/fingerprint.hpp"
#include "radio/propagation.hpp"
#include "util/rng.hpp"

namespace moloc::radio {

/// Binds a floor plan, a set of access points, and a propagation model
/// into the "air interface" of the simulation: the single source of RSS
/// fingerprints for the site survey, the crowdsourcing walkers, and the
/// localization queries.
class RadioEnvironment {
 public:
  /// Throws std::invalid_argument when `aps` is empty.
  RadioEnvironment(const env::FloorPlan& plan, std::vector<AccessPoint> aps,
                   PropagationParams params);

  std::span<const AccessPoint> accessPoints() const { return aps_; }
  std::size_t apCount() const { return aps_.size(); }
  const LogDistanceModel& model() const { return model_; }
  const env::FloorPlan& plan() const { return plan_; }

  /// One full WiFi scan at `pos` facing `orientationDeg`: a fresh noisy
  /// RSS sample from every AP (what a phone reports per scan).  The
  /// site survey passes Epoch::kSurvey; the default serving epoch adds
  /// the environmental drift accumulated since the survey.
  Fingerprint scan(geometry::Vec2 pos, double orientationDeg,
                   util::Rng& rng, Epoch epoch = Epoch::kServing) const;

  /// Noise-free expected fingerprint (used by diagnostics and tests).
  Fingerprint expectedFingerprint(geometry::Vec2 pos,
                                  double orientationDeg,
                                  Epoch epoch = Epoch::kServing) const;

 private:
  const env::FloorPlan& plan_;
  std::vector<AccessPoint> aps_;
  LogDistanceModel model_;
};

}  // namespace moloc::radio
