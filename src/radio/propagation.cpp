#include "radio/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/angles.hpp"

namespace moloc::radio {

namespace {

/// SplitMix64-style integer mix; maps a lattice coordinate to a value
/// deterministically.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Standard-normal-ish value in roughly [-3, 3] from a hash: sum of four
/// uniform values (Irwin-Hall), centred and scaled to unit variance.
double hashToGaussian(std::uint64_t h) {
  double sum = 0.0;
  for (int i = 0; i < 4; ++i) {
    h = mix(h + 0x9e3779b97f4a7c15ULL);
    sum += static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  // Sum of 4 U(0,1): mean 2, variance 4/12; scale to unit variance.
  return (sum - 2.0) / std::sqrt(4.0 / 12.0);
}

}  // namespace

LogDistanceModel::LogDistanceModel(PropagationParams params,
                                   const env::FloorPlan& plan)
    : params_(params), plan_(&plan) {}

double LogDistanceModel::latticeNoise(std::uint64_t seed, int apId,
                                      double cx, double cy) {
  const auto key = (static_cast<std::uint64_t>(apId) << 48) ^
                   (static_cast<std::uint64_t>(static_cast<std::int64_t>(cx) &
                                               0xffffff)
                    << 24) ^
                   (static_cast<std::uint64_t>(static_cast<std::int64_t>(cy) &
                                               0xffffff));
  return hashToGaussian(mix(seed ^ key));
}

double LogDistanceModel::fieldDb(std::uint64_t seed, double sigma,
                                 double cell, int apId,
                                 geometry::Vec2 pos) {
  const double safeCell = std::max(cell, 1e-6);
  const double gx = pos.x / safeCell;
  const double gy = pos.y / safeCell;
  const double x0 = std::floor(gx);
  const double y0 = std::floor(gy);
  const double fx = gx - x0;
  const double fy = gy - y0;

  const double n00 = latticeNoise(seed, apId, x0, y0);
  const double n10 = latticeNoise(seed, apId, x0 + 1, y0);
  const double n01 = latticeNoise(seed, apId, x0, y0 + 1);
  const double n11 = latticeNoise(seed, apId, x0 + 1, y0 + 1);

  const double top = n00 + fx * (n10 - n00);
  const double bottom = n01 + fx * (n11 - n01);
  return sigma * (top + fy * (bottom - top));
}

double LogDistanceModel::shadowingDb(int apId, geometry::Vec2 pos) const {
  return fieldDb(params_.shadowingSeed, params_.shadowingSigmaDb,
                 params_.shadowingCellMeters, apId, pos);
}

double LogDistanceModel::driftDb(int apId, geometry::Vec2 pos) const {
  return fieldDb(params_.driftSeed, params_.driftSigmaDb,
                 params_.driftCellMeters, apId, pos);
}

double LogDistanceModel::meanRssDbm(const AccessPoint& ap,
                                    geometry::Vec2 pos,
                                    double orientationDeg,
                                    Epoch epoch) const {
  const double d = std::max(geometry::distance(ap.pos, pos), 0.5);
  double rss = ap.txPowerDbm - 10.0 * params_.pathLossExponent *
                                   std::log10(d);

  rss -= params_.wallAttenuationDb *
         static_cast<double>(plan_->wallCrossings(ap.pos, pos));

  // Body blocking: worst when the AP lies directly behind the user.
  const double towardAp = geometry::headingBetweenDeg(pos, ap.pos);
  const double away =
      geometry::angularDistDeg(orientationDeg, towardAp) / 180.0;
  rss -= params_.bodyAttenuationDb * away;

  rss += shadowingDb(ap.id, pos);
  if (epoch == Epoch::kServing) rss += driftDb(ap.id, pos);

  return std::max(rss, params_.detectionFloorDbm);
}

double LogDistanceModel::sampleRssDbm(const AccessPoint& ap,
                                      geometry::Vec2 pos,
                                      double orientationDeg,
                                      util::Rng& rng, Epoch epoch) const {
  const double noisy = meanRssDbm(ap, pos, orientationDeg, epoch) +
                       rng.normal(0.0, params_.temporalSigmaDb);
  return std::max(noisy, params_.detectionFloorDbm);
}

}  // namespace moloc::radio
