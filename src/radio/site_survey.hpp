#pragma once

#include <vector>

#include "env/floor_plan.hpp"
#include "radio/fingerprint_database.hpp"
#include "radio/radio_environment.hpp"
#include "util/rng.hpp"

namespace moloc::radio {

/// Parameters of the paper's survey protocol (Sec. VI.A): 60 samples per
/// location, a quarter facing each of N/E/S/W, split 40 / 10 / 10 into
/// radio-map training, motion-database location estimation, and held-out
/// localization samples.
struct SurveyConfig {
  int samplesPerLocation = 60;
  int trainPerLocation = 40;
  int motionPerLocation = 10;
  int testPerLocation = 10;
};

/// The per-location sample partitions collected by one survey pass.
struct LocationSamples {
  env::LocationId location = 0;
  std::vector<Fingerprint> train;           ///< Radio-map construction.
  std::vector<Fingerprint> motionEstimate;  ///< Motion-DB crowdsourcing.
  std::vector<Fingerprint> test;            ///< Localization evaluation.
};

/// The output of a site survey over every reference location.
struct SurveyData {
  std::vector<LocationSamples> samples;  ///< One entry per location.

  /// Builds the radio map: the per-location mean of the training
  /// partition, as classic fingerprinting systems do.
  FingerprintDatabase buildDatabase() const;
};

/// Runs the survey: for each reference location of the plan, collects
/// `samplesPerLocation` scans cycling through the four cardinal facing
/// directions, and splits them per the config.
/// Throws std::invalid_argument when the split does not sum to the
/// sample count or any partition is negative, or when `train` is zero.
SurveyData conductSurvey(const RadioEnvironment& radio,
                         const SurveyConfig& config, util::Rng& rng);

}  // namespace moloc::radio
