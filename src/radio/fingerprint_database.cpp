#include "radio/fingerprint_database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace moloc::radio {

namespace {

bool allFinite(const Fingerprint& fp) {
  for (std::size_t i = 0; i < fp.size(); ++i)
    if (!std::isfinite(fp[i])) return false;
  return true;
}

/// Per-thread kernel scratch: queryInto must stay lock-free and
/// allocation-free on the serving hot path while the database is
/// shared read-only across worker threads, so the workspace lives per
/// thread rather than per database.
kernel::QueryWorkspace& threadWorkspace() {
  static thread_local kernel::QueryWorkspace workspace;
  return workspace;
}

}  // namespace

FingerprintDatabase FingerprintDatabase::fromImageView(
    std::span<const env::LocationId> ids, std::size_t apCount,
    const double* rowMajorValues, kernel::FlatMatrix blockedFlat) {
  if (!ids.empty() && (apCount == 0 || rowMajorValues == nullptr))
    throw util::ConfigError(
        "FingerprintDatabase: view needs apCount >= 1 and values");
  if (blockedFlat.rows() != ids.size() ||
      (!ids.empty() && blockedFlat.cols() != apCount))
    throw util::ConfigError(
        "FingerprintDatabase: view flat-matrix shape mismatch");
  FingerprintDatabase db;
  db.entries_.reserve(ids.size());
  db.indexById_.reserve(ids.size());
  for (std::size_t r = 0; r < ids.size(); ++r) {
    db.entries_.push_back(
        {ids[r], Fingerprint::view({rowMajorValues + r * apCount,
                                    apCount})});
    if (!db.indexById_.emplace(ids[r], r).second)
      throw util::ConfigError(
          "FingerprintDatabase: duplicate location " +
          std::to_string(ids[r]));
  }
  db.flat_ = std::move(blockedFlat);
  return db;
}

void FingerprintDatabase::addLocation(env::LocationId id,
                                      Fingerprint radioMapEntry) {
  if (radioMapEntry.empty())
    throw util::ConfigError("FingerprintDatabase: empty fingerprint");
  if (!allFinite(radioMapEntry))
    throw util::ConfigError(
        "FingerprintDatabase: non-finite RSS value");
  if (!entries_.empty() &&
      radioMapEntry.size() != entries_.front().fingerprint.size())
    throw util::ConfigError(
        "FingerprintDatabase: mismatched AP dimensionality");
  if (contains(id))
    throw util::ConfigError("FingerprintDatabase: duplicate location " +
                                std::to_string(id));
  if (entries_.empty()) flat_.reset(radioMapEntry.size());
  flat_.appendRow(radioMapEntry.values());
  entries_.push_back({id, std::move(radioMapEntry)});
  indexById_.emplace(id, entries_.size() - 1);
}

std::size_t FingerprintDatabase::apCount() const {
  return entries_.empty() ? 0 : entries_.front().fingerprint.size();
}

const Fingerprint& FingerprintDatabase::entry(env::LocationId id) const {
  const auto it = indexById_.find(id);
  if (it == indexById_.end())
    throw std::out_of_range("FingerprintDatabase: unknown location " +
                            std::to_string(id));
  return entries_[it->second].fingerprint;
}

bool FingerprintDatabase::contains(env::LocationId id) const {
  return indexById_.find(id) != indexById_.end();
}

std::vector<env::LocationId> FingerprintDatabase::locationIds() const {
  std::vector<env::LocationId> ids;
  ids.reserve(entries_.size());
  for (const auto& e : entries_) ids.push_back(e.id);
  return ids;
}

env::LocationId FingerprintDatabase::nearest(const Fingerprint& query) const {
  if (entries_.empty())
    throw util::StateError("FingerprintDatabase: empty database");
  if (!allFinite(query))
    throw util::ConfigError(
        "FingerprintDatabase: non-finite query RSS");
  if (query.size() != apCount())
    throw util::ConfigError(
        "dissimilarity: fingerprint dimensions differ");
  auto& ws = threadWorkspace();
  ws.distances.resize(flat_.paddedRows());
  kernel::squaredDistances(flat_, query.values().data(),
                           ws.distances.data());
  // Strict < keeps the earliest-inserted entry on ties — the same rule
  // the pre-kernel scan applied (and it evaluates each entry once; the
  // old loop recomputed the first entry's dissimilarity as its seed).
  std::size_t best = 0;
  for (std::size_t r = 1; r < flat_.rows(); ++r)
    if (ws.distances[r] < ws.distances[best]) best = r;
  return entries_[best].id;
}

std::vector<Match> FingerprintDatabase::query(const Fingerprint& query,
                                              std::size_t k) const {
  std::vector<Match> matches;
  queryInto(query, k, matches);
  return matches;
}

void FingerprintDatabase::queryPrepared(const Fingerprint& query,
                                        std::size_t k,
                                        kernel::QueryWorkspace& ws,
                                        std::vector<Match>& out) const {
  ws.distances.resize(flat_.paddedRows());
  kernel::squaredDistances(flat_, query.values().data(),
                           ws.distances.data());
  kernel::selectSmallestK(
      std::span<const double>(ws.distances.data(), flat_.rows()), k,
      ws.topk);

  // sqrt only for the k winners (ordering is decided on squared
  // distances; sqrt is monotone, so the ranking is unchanged), and the
  // per-entry value is bitwise-identical to dissimilarity(): the same
  // sum, then one sqrt.
  out.clear();
  out.reserve(ws.topk.size());
  for (const auto& top : ws.topk)
    out.push_back(
        {entries_[top.row].id, std::sqrt(top.squaredDistance), 0.0});

  double invSum = 0.0;
  for (const auto& m : out)
    invSum += 1.0 / std::max(m.dissimilarity, kMinDissimilarity);
  for (auto& m : out)
    m.probability =
        (1.0 / std::max(m.dissimilarity, kMinDissimilarity)) / invSum;
}

void FingerprintDatabase::queryInto(const Fingerprint& query, std::size_t k,
                                    std::vector<Match>& out) const {
  if (k == 0)
    throw util::ConfigError("FingerprintDatabase: k must be >= 1");
  if (entries_.empty())
    throw util::StateError("FingerprintDatabase: empty database");
  if (!allFinite(query))
    throw util::ConfigError(
        "FingerprintDatabase: non-finite query RSS");
  if (query.size() != apCount())
    throw util::ConfigError(
        "dissimilarity: fingerprint dimensions differ");
  auto& ws = threadWorkspace();
  queryPrepared(query, k, ws, out);
}

void FingerprintDatabase::queryBatchInto(
    std::span<const Fingerprint* const> queries, std::size_t k,
    std::vector<std::vector<Match>>& out,
    std::vector<std::exception_ptr>* errors) const {
  if (k == 0)
    throw util::ConfigError("FingerprintDatabase: k must be >= 1");
  if (entries_.empty())
    throw util::StateError("FingerprintDatabase: empty database");
  out.resize(queries.size());
  if (errors) errors->assign(queries.size(), nullptr);
  auto& ws = threadWorkspace();
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out[q].clear();
    try {
      const Fingerprint& query = *queries[q];
      if (!allFinite(query))
        throw util::ConfigError(
            "FingerprintDatabase: non-finite query RSS");
      if (query.size() != apCount())
        throw util::ConfigError(
            "dissimilarity: fingerprint dimensions differ");
      queryPrepared(query, k, ws, out[q]);
    } catch (...) {
      if (!errors) throw;
      (*errors)[q] = std::current_exception();
    }
  }
}

FingerprintDatabase FingerprintDatabase::truncatedTo(std::size_t n) const {
  FingerprintDatabase reduced;
  for (const auto& e : entries_)
    reduced.addLocation(e.id, e.fingerprint.truncated(n));
  return reduced;
}

}  // namespace moloc::radio
