#include "radio/fingerprint_database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace moloc::radio {

namespace {
/// Floor for Eq. 4's 1/m weights.  Besides guarding the division when a
/// query exactly matches a stored fingerprint, the floor encodes a
/// physical fact: dissimilarities below ~half a dB are measurement
/// coincidence, not information, and must not let the fingerprint term
/// overrule the motion term (a 1e-9 floor would make an exact match
/// ~10^9 times "more likely" than a twin 0.1 dB away).
constexpr double kMinDissimilarity = 0.5;

bool allFinite(const Fingerprint& fp) {
  for (std::size_t i = 0; i < fp.size(); ++i)
    if (!std::isfinite(fp[i])) return false;
  return true;
}

}  // namespace

void FingerprintDatabase::addLocation(env::LocationId id,
                                      Fingerprint radioMapEntry) {
  if (radioMapEntry.empty())
    throw std::invalid_argument("FingerprintDatabase: empty fingerprint");
  if (!allFinite(radioMapEntry))
    throw std::invalid_argument(
        "FingerprintDatabase: non-finite RSS value");
  if (!entries_.empty() &&
      radioMapEntry.size() != entries_.front().fingerprint.size())
    throw std::invalid_argument(
        "FingerprintDatabase: mismatched AP dimensionality");
  if (contains(id))
    throw std::invalid_argument("FingerprintDatabase: duplicate location " +
                                std::to_string(id));
  entries_.push_back({id, std::move(radioMapEntry)});
  indexById_.emplace(id, entries_.size() - 1);
}

std::size_t FingerprintDatabase::apCount() const {
  return entries_.empty() ? 0 : entries_.front().fingerprint.size();
}

const Fingerprint& FingerprintDatabase::entry(env::LocationId id) const {
  const auto it = indexById_.find(id);
  if (it == indexById_.end())
    throw std::out_of_range("FingerprintDatabase: unknown location " +
                            std::to_string(id));
  return entries_[it->second].fingerprint;
}

bool FingerprintDatabase::contains(env::LocationId id) const {
  return indexById_.find(id) != indexById_.end();
}

std::vector<env::LocationId> FingerprintDatabase::locationIds() const {
  std::vector<env::LocationId> ids;
  ids.reserve(entries_.size());
  for (const auto& e : entries_) ids.push_back(e.id);
  return ids;
}

env::LocationId FingerprintDatabase::nearest(const Fingerprint& query) const {
  if (entries_.empty())
    throw std::logic_error("FingerprintDatabase: empty database");
  if (!allFinite(query))
    throw std::invalid_argument(
        "FingerprintDatabase: non-finite query RSS");
  const Entry* best = &entries_.front();
  double bestDis = squaredDissimilarity(query, best->fingerprint);
  for (const auto& e : entries_) {
    const double dis = squaredDissimilarity(query, e.fingerprint);
    if (dis < bestDis) {
      bestDis = dis;
      best = &e;
    }
  }
  return best->id;
}

std::vector<Match> FingerprintDatabase::query(const Fingerprint& query,
                                              std::size_t k) const {
  std::vector<Match> matches;
  queryInto(query, k, matches);
  return matches;
}

void FingerprintDatabase::queryInto(const Fingerprint& query, std::size_t k,
                                    std::vector<Match>& out) const {
  if (k == 0)
    throw std::invalid_argument("FingerprintDatabase: k must be >= 1");
  if (entries_.empty())
    throw std::logic_error("FingerprintDatabase: empty database");
  if (!allFinite(query))
    throw std::invalid_argument(
        "FingerprintDatabase: non-finite query RSS");

  out.clear();
  out.reserve(entries_.size());
  for (const auto& e : entries_)
    out.push_back({e.id, dissimilarity(query, e.fingerprint), 0.0});

  const std::size_t kept = std::min(k, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<long>(kept),
                    out.end(), [](const Match& a, const Match& b) {
                      return a.dissimilarity < b.dissimilarity;
                    });
  out.resize(kept);

  double invSum = 0.0;
  for (const auto& m : out)
    invSum += 1.0 / std::max(m.dissimilarity, kMinDissimilarity);
  for (auto& m : out)
    m.probability =
        (1.0 / std::max(m.dissimilarity, kMinDissimilarity)) / invSum;
}

FingerprintDatabase FingerprintDatabase::truncatedTo(std::size_t n) const {
  FingerprintDatabase reduced;
  for (const auto& e : entries_)
    reduced.addLocation(e.id, e.fingerprint.truncated(n));
  return reduced;
}

}  // namespace moloc::radio
