#include "radio/site_survey.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace moloc::radio {

FingerprintDatabase SurveyData::buildDatabase() const {
  FingerprintDatabase db;
  for (const auto& loc : samples)
    db.addLocation(loc.location, meanFingerprint(loc.train));
  return db;
}

SurveyData conductSurvey(const RadioEnvironment& radio,
                         const SurveyConfig& config, util::Rng& rng) {
  if (config.trainPerLocation <= 0 || config.motionPerLocation < 0 ||
      config.testPerLocation < 0)
    throw util::ConfigError("conductSurvey: bad partition sizes");
  if (config.trainPerLocation + config.motionPerLocation +
          config.testPerLocation !=
      config.samplesPerLocation)
    throw util::ConfigError(
        "conductSurvey: partitions must sum to samplesPerLocation");

  constexpr double kCardinal[4] = {0.0, 90.0, 180.0, 270.0};

  SurveyData data;
  data.samples.reserve(radio.plan().locationCount());
  for (const auto& loc : radio.plan().locations()) {
    LocationSamples ls;
    ls.location = loc.id;
    for (int s = 0; s < config.samplesPerLocation; ++s) {
      // Cycle the facing direction so each partition sees all four
      // orientations in equal proportion, as the paper's quarter-split
      // prescribes.
      const double orientation = kCardinal[s % 4];
      Fingerprint fp = radio.scan(loc.pos, orientation, rng, Epoch::kSurvey);
      if (s < config.trainPerLocation) {
        ls.train.push_back(std::move(fp));
      } else if (s < config.trainPerLocation + config.motionPerLocation) {
        ls.motionEstimate.push_back(std::move(fp));
      } else {
        ls.test.push_back(std::move(fp));
      }
    }
    data.samples.push_back(std::move(ls));
  }
  return data;
}

}  // namespace moloc::radio
