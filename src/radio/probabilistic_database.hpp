#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "env/floor_plan.hpp"
#include "radio/fingerprint_database.hpp"
#include "radio/site_survey.hpp"

namespace moloc::radio {

/// A Horus-style probabilistic radio map (Youssef & Agrawala, cited as
/// the paper's ref. [17]): instead of one mean fingerprint per
/// location, store a per-(location, AP) Gaussian fitted from the
/// survey samples, and rank locations by the log-likelihood of a scan.
///
/// This is the classic alternative to Eq. 1-4's deterministic matching;
/// it can serve as a drop-in candidate source for the MoLoc engine (see
/// core::CandidateEstimator), letting the motion term be combined with
/// either matcher.
class ProbabilisticFingerprintDatabase {
 public:
  /// Floor applied to fitted sigmas so a location surveyed under
  /// unusually calm conditions cannot claim near-certainty.
  static constexpr double kMinSigmaDb = 1.0;

  ProbabilisticFingerprintDatabase() = default;

  /// Fits the per-AP Gaussians for one location from its survey
  /// samples.  Requirements mirror FingerprintDatabase::addLocation:
  /// non-empty samples of equal, consistent dimensionality; unique ids.
  void addLocation(env::LocationId id,
                   std::span<const Fingerprint> samples);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  std::size_t apCount() const;
  bool contains(env::LocationId id) const;
  std::vector<env::LocationId> locationIds() const;

  /// Log-likelihood of observing `scan` at `id` under the fitted
  /// independent-Gaussian model.  Throws std::out_of_range for unknown
  /// ids and std::invalid_argument on dimension mismatch.
  double logLikelihood(const Fingerprint& scan, env::LocationId id) const;

  /// The maximum-likelihood location (the Horus baseline's answer).
  /// Throws std::logic_error when empty.
  env::LocationId mostLikely(const Fingerprint& scan) const;

  /// The k most likely locations with normalized posterior
  /// probabilities (uniform location prior) — the same contract as
  /// FingerprintDatabase::query, so either can feed candidate
  /// estimation.  `dissimilarity` is filled with the negative
  /// log-likelihood for diagnostic symmetry.
  std::vector<Match> query(const Fingerprint& scan, std::size_t k) const;

  /// Allocation-free variant of query(): fills `out` (clearing it
  /// first) so hot-path callers can reuse one scratch buffer; same
  /// contract as FingerprintDatabase::queryInto.
  void queryInto(const Fingerprint& scan, std::size_t k,
                 std::vector<Match>& out) const;

  /// Builds the map from a survey's training partitions.
  static ProbabilisticFingerprintDatabase fromSurvey(
      const SurveyData& survey);

  /// The fitted per-AP means/sigmas for `id` (ascending AP order);
  /// throws std::out_of_range for unknown ids.  Used by persistence.
  std::span<const double> mu(env::LocationId id) const;
  std::span<const double> sigma(env::LocationId id) const;

  /// Registers pre-fitted Gaussians directly (persistence load path).
  /// Sigmas are floored at kMinSigmaDb; same uniqueness/dimensionality
  /// rules as addLocation.
  void addFittedLocation(env::LocationId id, std::vector<double> mu,
                         std::vector<double> sigma);

 private:
  struct GaussianEntry {
    env::LocationId id;
    std::vector<double> mu;
    std::vector<double> sigma;
  };
  const GaussianEntry& find(env::LocationId id) const;

  std::vector<GaussianEntry> entries_;
};

}  // namespace moloc::radio
