#pragma once

#include "geometry/vec2.hpp"

namespace moloc::radio {

/// A WiFi access point (a "signal source" in the paper's terms).
///
/// `txPowerDbm` is the received power at the 1 m reference distance of
/// the log-distance model, i.e. transmit power minus fixed system losses.
struct AccessPoint {
  int id = 0;
  geometry::Vec2 pos;
  double txPowerDbm = -35.0;
};

}  // namespace moloc::radio
