#include "core/construction_methods.hpp"

#include "geometry/angles.hpp"

namespace moloc::core {

MotionDatabase buildMotionDatabaseManually(const env::WalkGraph& graph,
                                           ComputedRlmSpread spread) {
  MotionDatabase db(graph.nodeCount());
  for (env::LocationId i = 0;
       i < static_cast<env::LocationId>(graph.nodeCount()); ++i) {
    for (const auto& edge : graph.neighbors(i)) {
      if (edge.to < i) continue;  // Each undirected leg once.
      db.setEntryWithMirror(i, edge.to,
                            {edge.headingDeg, spread.sigmaDirectionDeg,
                             edge.length, spread.sigmaOffsetMeters, 0});
    }
  }
  return db;
}

MotionDatabase buildMotionDatabaseFromMap(const env::FloorPlan& plan,
                                          double maxAdjacencyDist,
                                          ComputedRlmSpread spread) {
  const auto locations = plan.locations();
  MotionDatabase db(locations.size());
  for (std::size_t i = 0; i < locations.size(); ++i) {
    for (std::size_t j = i + 1; j < locations.size(); ++j) {
      const auto a = locations[i].pos;
      const auto b = locations[j].pos;
      const double dist = geometry::distance(a, b);
      if (dist > maxAdjacencyDist) continue;
      // Deliberately no wall test: the map method cannot see walls.
      db.setEntryWithMirror(
          locations[i].id, locations[j].id,
          {geometry::headingBetweenDeg(a, b), spread.sigmaDirectionDeg,
           dist, spread.sigmaOffsetMeters, 0});
    }
  }
  return db;
}

std::size_t countUnwalkableEntries(const MotionDatabase& db,
                                   const env::WalkGraph& graph) {
  std::size_t violations = 0;
  const auto n = static_cast<env::LocationId>(db.locationCount());
  for (env::LocationId i = 0; i < n; ++i)
    for (env::LocationId j = i + 1; j < n; ++j)
      if (db.hasEntry(i, j) && !graph.adjacent(i, j)) ++violations;
  return violations;
}

}  // namespace moloc::core
