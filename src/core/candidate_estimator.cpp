#include "core/candidate_estimator.hpp"

#include <stdexcept>

namespace moloc::core {

namespace {

std::size_t checkK(std::size_t k) {
  if (k == 0)
    throw std::invalid_argument("CandidateEstimator: k must be >= 1");
  return k;
}

}  // namespace

CandidateEstimator::CandidateEstimator(
    const radio::FingerprintDatabase& db, std::size_t k)
    : query_([&db](const radio::Fingerprint& fp, std::size_t kk) {
        return db.query(fp, kk);
      }),
      k_(checkK(k)) {}

CandidateEstimator::CandidateEstimator(
    const radio::ProbabilisticFingerprintDatabase& db, std::size_t k)
    : query_([&db](const radio::Fingerprint& fp, std::size_t kk) {
        return db.query(fp, kk);
      }),
      k_(checkK(k)) {}

std::vector<Candidate> CandidateEstimator::estimate(
    const radio::Fingerprint& query) const {
  return query_(query, k_);
}

}  // namespace moloc::core
