#include "core/candidate_estimator.hpp"

#include <stdexcept>
#include <utility>

#include "util/error.hpp"

namespace moloc::core {

namespace {

std::size_t checkK(std::size_t k) {
  if (k == 0)
    throw util::ConfigError("CandidateEstimator: k must be >= 1");
  return k;
}

}  // namespace

CandidateEstimator::CandidateEstimator(
    const radio::FingerprintDatabase& db, std::size_t k)
    : query_([&db](const radio::Fingerprint& fp, std::size_t kk,
                   std::vector<Candidate>& out) {
        db.queryInto(fp, kk, out);
      }),
      k_(checkK(k)) {}

CandidateEstimator::CandidateEstimator(
    const radio::ProbabilisticFingerprintDatabase& db, std::size_t k)
    : query_([&db](const radio::Fingerprint& fp, std::size_t kk,
                   std::vector<Candidate>& out) {
        db.queryInto(fp, kk, out);
      }),
      k_(checkK(k)) {}

CandidateEstimator::CandidateEstimator(QueryFn backend, std::size_t k)
    : query_(std::move(backend)), k_(checkK(k)) {
  if (!query_)
    throw util::ConfigError("CandidateEstimator: null backend");
}

std::vector<Candidate> CandidateEstimator::estimate(
    const radio::Fingerprint& query) const {
  std::vector<Candidate> out;
  estimateInto(query, out);
  return out;
}

void CandidateEstimator::estimateInto(const radio::Fingerprint& query,
                                      std::vector<Candidate>& out) const {
  query_(query, k_, out);
}

}  // namespace moloc::core
