#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/candidate_estimator.hpp"
#include "core/motion_database.hpp"
#include "core/motion_matcher.hpp"
#include "core/moloc_engine.hpp"

namespace moloc::core {

/// Offline maximum-likelihood smoothing of a whole walk.
///
/// The MoLoc engine is causal: each fix sees only past measurements, so
/// an erroneous *initial* fix costs a few steps to shake off (the EL
/// metric of the paper's Table I).  When the whole walk is available —
/// on a crowdsourcing server, or for post-hoc analytics — a Viterbi
/// pass over the same two models (Eq. 4 fingerprint probabilities as
/// emissions, Eq. 5 motion probabilities as transitions) finds the
/// jointly most likely location sequence, fixing early errors
/// retroactively from later evidence.
class TraceSmoother {
 public:
  /// The databases must outlive the smoother; `config` carries the
  /// same k / alpha / beta knobs the engine uses.
  TraceSmoother(const radio::FingerprintDatabase& fingerprints,
                const MotionDatabase& motion, MoLocConfig config = {});

  /// The max-likelihood location sequence for a walk of n scans and
  /// n-1 inter-scan motion measurements (nullopt entries mean "no
  /// usable motion" and contribute uninformative transitions).
  ///
  /// Returns one location per scan.  Throws std::invalid_argument when
  /// `motions.size() + 1 != scans.size()` or scans is empty.
  std::vector<env::LocationId> smooth(
      std::span<const radio::Fingerprint> scans,
      std::span<const std::optional<sensors::MotionMeasurement>> motions)
      const;

 private:
  CandidateEstimator estimator_;
  MotionMatcher matcher_;
  MoLocConfig config_;
};

}  // namespace moloc::core
