#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "radio/fingerprint_database.hpp"
#include "radio/probabilistic_database.hpp"

namespace moloc::core {

/// A location candidate with its fingerprint-matching probability —
/// what the candidate estimation unit hands to candidate evaluation.
using Candidate = radio::Match;

/// The candidate estimation unit (Fig. 2): yields the k location
/// candidates for a query fingerprint with normalized probabilities.
///
/// Two backends implement the contract: the paper's deterministic
/// matcher (Eq. 3's k-nearest by Euclidean dissimilarity with Eq. 4's
/// inverse-dissimilarity probabilities) and the Horus-style
/// probabilistic radio map (k most likely with softmax posteriors).
/// The engine is agnostic to the choice; a custom backend can be
/// plugged in via the QueryFn constructor.
class CandidateEstimator {
 public:
  /// A backend fills `out` (clearing it first) with at most k
  /// candidates, best first, probabilities normalized over the set.
  using QueryFn = std::function<void(const radio::Fingerprint&,
                                     std::size_t, std::vector<Candidate>&)>;

  /// Deterministic backend (the paper's Eq. 3-4).
  /// `k` must be >= 1 (throws std::invalid_argument); the database
  /// must outlive the estimator.
  CandidateEstimator(const radio::FingerprintDatabase& db, std::size_t k);

  /// Probabilistic backend (Horus-style maximum likelihood).
  CandidateEstimator(const radio::ProbabilisticFingerprintDatabase& db,
                     std::size_t k);

  /// Custom backend.  Whatever `backend` captures must outlive the
  /// estimator.
  CandidateEstimator(QueryFn backend, std::size_t k);

  std::size_t k() const { return k_; }

  /// The k candidates for a query fingerprint, best first.
  std::vector<Candidate> estimate(const radio::Fingerprint& query) const;

  /// Allocation-free variant: fills `out` (clearing it first) so the
  /// serving hot path can reuse one scratch buffer across rounds.
  void estimateInto(const radio::Fingerprint& query,
                    std::vector<Candidate>& out) const;

 private:
  QueryFn query_;
  std::size_t k_;
};

}  // namespace moloc::core
