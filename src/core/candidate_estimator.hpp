#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "radio/fingerprint_database.hpp"
#include "radio/probabilistic_database.hpp"

namespace moloc::core {

/// A location candidate with its fingerprint-matching probability —
/// what the candidate estimation unit hands to candidate evaluation.
using Candidate = radio::Match;

/// The candidate estimation unit (Fig. 2): yields the k location
/// candidates for a query fingerprint with normalized probabilities.
///
/// Two backends implement the contract: the paper's deterministic
/// matcher (Eq. 3's k-nearest by Euclidean dissimilarity with Eq. 4's
/// inverse-dissimilarity probabilities) and the Horus-style
/// probabilistic radio map (k most likely with softmax posteriors).
/// The engine is agnostic to the choice.
class CandidateEstimator {
 public:
  /// Deterministic backend (the paper's Eq. 3-4).
  /// `k` must be >= 1 (throws std::invalid_argument); the database
  /// must outlive the estimator.
  CandidateEstimator(const radio::FingerprintDatabase& db, std::size_t k);

  /// Probabilistic backend (Horus-style maximum likelihood).
  CandidateEstimator(const radio::ProbabilisticFingerprintDatabase& db,
                     std::size_t k);

  std::size_t k() const { return k_; }

  /// The k candidates for a query fingerprint, best first.
  std::vector<Candidate> estimate(const radio::Fingerprint& query) const;

 private:
  std::function<std::vector<Candidate>(const radio::Fingerprint&,
                                       std::size_t)>
      query_;
  std::size_t k_;
};

}  // namespace moloc::core
