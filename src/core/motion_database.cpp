#include "core/motion_database.hpp"

#include <stdexcept>
#include <string>

#include "geometry/angles.hpp"

namespace moloc::core {

MotionDatabase::MotionDatabase(std::size_t locationCount)
    : n_(locationCount), entries_(locationCount * locationCount) {}

std::size_t MotionDatabase::index(env::LocationId i,
                                  env::LocationId j) const {
  return static_cast<std::size_t>(i) * n_ + static_cast<std::size_t>(j);
}

void MotionDatabase::checkIds(env::LocationId i, env::LocationId j) const {
  if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= n_ ||
      static_cast<std::size_t>(j) >= n_)
    throw std::out_of_range("MotionDatabase: bad location pair (" +
                            std::to_string(i) + ", " + std::to_string(j) +
                            ")");
}

void MotionDatabase::setEntry(env::LocationId i, env::LocationId j,
                              RlmStats stats) {
  checkIds(i, j);
  entries_[index(i, j)] = stats;
}

void MotionDatabase::setEntryWithMirror(env::LocationId i,
                                        env::LocationId j, RlmStats stats) {
  setEntry(i, j, stats);
  RlmStats mirrored = stats;
  mirrored.muDirectionDeg =
      geometry::reverseHeadingDeg(stats.muDirectionDeg);
  setEntry(j, i, mirrored);
}

bool MotionDatabase::clearEntry(env::LocationId i, env::LocationId j) {
  checkIds(i, j);
  auto& entry = entries_[index(i, j)];
  const bool existed = entry.has_value();
  entry.reset();
  return existed;
}

bool MotionDatabase::clearEntryWithMirror(env::LocationId i,
                                          env::LocationId j) {
  const bool forward = clearEntry(i, j);
  const bool backward = clearEntry(j, i);
  return forward || backward;
}

bool MotionDatabase::hasEntry(env::LocationId i, env::LocationId j) const {
  checkIds(i, j);
  return entries_[index(i, j)].has_value();
}

std::optional<RlmStats> MotionDatabase::entry(env::LocationId i,
                                              env::LocationId j) const {
  checkIds(i, j);
  return entries_[index(i, j)];
}

std::size_t MotionDatabase::entryCount() const {
  std::size_t count = 0;
  for (const auto& e : entries_)
    if (e.has_value()) ++count;
  return count;
}

}  // namespace moloc::core
