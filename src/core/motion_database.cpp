#include "core/motion_database.hpp"

#include <stdexcept>
#include <string>

#include "geometry/angles.hpp"

namespace moloc::core {

MotionDatabase::MotionDatabase(std::size_t locationCount)
    : n_(locationCount) {}

std::uint64_t MotionDatabase::index(env::LocationId i,
                                    env::LocationId j) const {
  return static_cast<std::uint64_t>(i) * n_ + static_cast<std::uint64_t>(j);
}

void MotionDatabase::checkIds(env::LocationId i, env::LocationId j) const {
  if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= n_ ||
      static_cast<std::size_t>(j) >= n_)
    throw std::out_of_range("MotionDatabase: bad location pair (" +
                            std::to_string(i) + ", " + std::to_string(j) +
                            ")");
}

void MotionDatabase::setEntry(env::LocationId i, env::LocationId j,
                              RlmStats stats) {
  checkIds(i, j);
  entries_[index(i, j)] = stats;
}

void MotionDatabase::setEntryWithMirror(env::LocationId i,
                                        env::LocationId j, RlmStats stats) {
  setEntry(i, j, stats);
  RlmStats mirrored = stats;
  mirrored.muDirectionDeg =
      geometry::reverseHeadingDeg(stats.muDirectionDeg);
  setEntry(j, i, mirrored);
}

bool MotionDatabase::clearEntry(env::LocationId i, env::LocationId j) {
  checkIds(i, j);
  return entries_.erase(index(i, j)) > 0;
}

bool MotionDatabase::clearEntryWithMirror(env::LocationId i,
                                          env::LocationId j) {
  const bool forward = clearEntry(i, j);
  const bool backward = clearEntry(j, i);
  return forward || backward;
}

bool MotionDatabase::hasEntry(env::LocationId i, env::LocationId j) const {
  checkIds(i, j);
  return entries_.find(index(i, j)) != entries_.end();
}

std::optional<RlmStats> MotionDatabase::entry(env::LocationId i,
                                              env::LocationId j) const {
  checkIds(i, j);
  const auto it = entries_.find(index(i, j));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

}  // namespace moloc::core
