#include "core/motion_matcher.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/angles.hpp"

namespace moloc::core {

double gaussianWindowProbability(double x, double halfWidth, double mu,
                                 double sigma) {
  if (sigma <= 0.0)
    return std::abs(x - mu) <= halfWidth ? 1.0 : 0.0;
  const double invSqrt2Sigma = 1.0 / (sigma * std::sqrt(2.0));
  const double upper = (x + halfWidth - mu) * invSqrt2Sigma;
  const double lower = (x - halfWidth - mu) * invSqrt2Sigma;
  return 0.5 * (std::erf(upper) - std::erf(lower));
}

MotionMatcher::MotionMatcher(const MotionDatabase& db,
                             MotionMatcherParams params)
    : db_(db), params_(params) {}

double MotionMatcher::directionFactor(const RlmStats& stats,
                                      double directionDeg) const {
  // Integrate the wrapped deviation from the stored circular mean over
  // a window of width alpha centred on the measurement.
  const double deviation =
      geometry::signedAngularDiffDeg(stats.muDirectionDeg, directionDeg);
  return gaussianWindowProbability(deviation, params_.alphaDeg / 2.0, 0.0,
                                   stats.sigmaDirectionDeg);
}

double MotionMatcher::offsetFactor(const RlmStats& stats,
                                   double offsetMeters) const {
  return gaussianWindowProbability(offsetMeters, params_.betaMeters / 2.0,
                                   stats.muOffsetMeters,
                                   stats.sigmaOffsetMeters);
}

double MotionMatcher::pairProbability(
    env::LocationId i, env::LocationId j,
    const sensors::MotionMeasurement& motion) const {
  if (i == j) {
    if (!params_.allowStationary) return params_.unreachableFloor;
    // Staying put: any direction is equally (un)informative; the offset
    // should be near zero up to sensor noise.
    const double directionFactorStationary = params_.alphaDeg / 360.0;
    const double offsetFactorStationary = gaussianWindowProbability(
        motion.offsetMeters, params_.betaMeters / 2.0, 0.0,
        params_.stationarySigmaMeters);
    return std::max(directionFactorStationary * offsetFactorStationary,
                    params_.unreachableFloor);
  }

  const auto stats = db_.entry(i, j);
  if (!stats) return params_.unreachableFloor;
  const double p = directionFactor(*stats, motion.directionDeg) *
                   offsetFactor(*stats, motion.offsetMeters);
  return std::max(p, params_.unreachableFloor);
}

double MotionMatcher::setProbability(
    std::span<const WeightedCandidate> previousCandidates,
    env::LocationId j, const sensors::MotionMeasurement& motion) const {
  double acc = 0.0;
  for (const auto& candidate : previousCandidates)
    acc += candidate.probability *
           pairProbability(candidate.location, j, motion);
  return acc;
}

}  // namespace moloc::core
