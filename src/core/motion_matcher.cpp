#include "core/motion_matcher.hpp"

#include <algorithm>
#include <cmath>

#include "geometry/angles.hpp"

namespace moloc::core {

double gaussianWindowProbability(double x, double halfWidth, double mu,
                                 double sigma) {
  if (sigma <= 0.0)
    return std::abs(x - mu) <= halfWidth ? 1.0 : 0.0;
  const double invSqrt2Sigma = 1.0 / (sigma * std::sqrt(2.0));
  const double upper = (x + halfWidth - mu) * invSqrt2Sigma;
  const double lower = (x - halfWidth - mu) * invSqrt2Sigma;
  return 0.5 * (std::erf(upper) - std::erf(lower));
}

double circularGaussianWindowProbability(double deviationDeg,
                                         double halfWidthDeg,
                                         double sigmaDeg) {
  if (sigmaDeg <= 0.0)
    return std::abs(deviationDeg) <= halfWidthDeg ? 1.0 : 0.0;
  // The deviation lives on the circle (-180, 180]; a wide window
  // (alpha near 360) centred off zero would otherwise spill past the
  // antipode and claim probability mass that does not exist on the
  // circle.  Clamp the integration bounds to [-180, 180].
  const double lowerDeg = std::max(deviationDeg - halfWidthDeg, -180.0);
  const double upperDeg = std::min(deviationDeg + halfWidthDeg, 180.0);
  if (lowerDeg >= upperDeg) return 0.0;
  const double invSqrt2Sigma = 1.0 / (sigmaDeg * std::sqrt(2.0));
  return 0.5 * (std::erf(upperDeg * invSqrt2Sigma) -
                std::erf(lowerDeg * invSqrt2Sigma));
}

MotionMatcher::MotionMatcher(const MotionDatabase& db,
                             MotionMatcherParams params)
    : db_(db), params_(params) {}

double MotionMatcher::directionFactor(const RlmStats& stats,
                                      double directionDeg) const {
  // Integrate the wrapped deviation from the stored circular mean over
  // a window of width alpha centred on the measurement, clamped to the
  // circle so the factor never exceeds valid circular probability mass.
  const double deviation =
      geometry::signedAngularDiffDeg(stats.muDirectionDeg, directionDeg);
  return circularGaussianWindowProbability(deviation, params_.alphaDeg / 2.0,
                                           stats.sigmaDirectionDeg);
}

double MotionMatcher::offsetFactor(const RlmStats& stats,
                                   double offsetMeters) const {
  return gaussianWindowProbability(offsetMeters, params_.betaMeters / 2.0,
                                   stats.muOffsetMeters,
                                   stats.sigmaOffsetMeters);
}

double MotionMatcher::pairProbability(
    env::LocationId i, env::LocationId j,
    const sensors::MotionMeasurement& motion) const {
  if (i == j) {
    if (!params_.allowStationary) return params_.unreachableFloor;
    // Staying put: any direction is equally (un)informative; the offset
    // should be near zero up to sensor noise.  Capped at 1: an alpha
    // wider than the circle still covers at most the whole circle.
    const double directionFactorStationary =
        std::min(params_.alphaDeg / 360.0, 1.0);
    const double offsetFactorStationary = gaussianWindowProbability(
        motion.offsetMeters, params_.betaMeters / 2.0, 0.0,
        params_.stationarySigmaMeters);
    return std::max(directionFactorStationary * offsetFactorStationary,
                    params_.unreachableFloor);
  }

  const auto stats = db_.entry(i, j);
  if (!stats) return params_.unreachableFloor;
  const double p = directionFactor(*stats, motion.directionDeg) *
                   offsetFactor(*stats, motion.offsetMeters);
  return std::max(p, params_.unreachableFloor);
}

double MotionMatcher::setProbability(
    std::span<const WeightedCandidate> previousCandidates,
    env::LocationId j, const sensors::MotionMeasurement& motion) const {
  double acc = 0.0;
  for (const auto& candidate : previousCandidates)
    acc += candidate.probability *
           pairProbability(candidate.location, j, motion);
  return acc;
}

}  // namespace moloc::core
