#include "core/motion_matcher.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "geometry/angles.hpp"
#include "util/error.hpp"

namespace moloc::core {

double gaussianWindowProbability(double x, double halfWidth, double mu,
                                 double sigma) {
  if (kernel::degenerateSigma(sigma))
    return std::abs(x - mu) <= halfWidth ? 1.0 : 0.0;
  return kernel::windowMass(x, halfWidth, mu,
                            1.0 / (sigma * kernel::kSqrt2));
}

double circularGaussianWindowProbability(double deviationDeg,
                                         double halfWidthDeg,
                                         double sigmaDeg) {
  if (kernel::degenerateSigma(sigmaDeg))
    return std::abs(deviationDeg) <= halfWidthDeg ? 1.0 : 0.0;
  return kernel::circularWindowMass(deviationDeg, halfWidthDeg,
                                    1.0 / (sigmaDeg * kernel::kSqrt2));
}

MotionMatcher::MotionMatcher(const MotionDatabase& db,
                             MotionMatcherParams params)
    : adj_(std::make_shared<const kernel::MotionAdjacency>(db)),
      params_(params) {}

MotionMatcher::MotionMatcher(
    std::shared_ptr<const kernel::MotionAdjacency> adjacency,
    MotionMatcherParams params)
    : adj_(std::move(adjacency)), params_(params) {
  if (!adj_)
    throw util::ConfigError("MotionMatcher: null adjacency");
}

void MotionMatcher::rebind(
    std::shared_ptr<const kernel::MotionAdjacency> adjacency) {
  if (!adjacency)
    throw util::ConfigError("MotionMatcher::rebind: null adjacency");
  adj_ = std::move(adjacency);
}

double MotionMatcher::directionFactor(const RlmStats& stats,
                                      double directionDeg) const {
  // Integrate the wrapped deviation from the stored circular mean over
  // a window of width alpha centred on the measurement, clamped to the
  // circle so the factor never exceeds valid circular probability mass.
  const double deviation =
      geometry::signedAngularDiffDeg(stats.muDirectionDeg, directionDeg);
  return circularGaussianWindowProbability(deviation, params_.alphaDeg / 2.0,
                                           stats.sigmaDirectionDeg);
}

double MotionMatcher::offsetFactor(const RlmStats& stats,
                                   double offsetMeters) const {
  return gaussianWindowProbability(offsetMeters, params_.betaMeters / 2.0,
                                   stats.muOffsetMeters,
                                   stats.sigmaOffsetMeters);
}

double MotionMatcher::windowDirectionFactor(const kernel::PairWindow& w,
                                            double directionDeg) const {
  const double deviation =
      geometry::signedAngularDiffDeg(w.muDirectionDeg, directionDeg);
  if (kernel::degenerateSigma(w.sigmaDirectionDeg))
    return std::abs(deviation) <= params_.alphaDeg / 2.0 ? 1.0 : 0.0;
  return kernel::circularWindowMass(deviation, params_.alphaDeg / 2.0,
                                    w.invSqrt2SigmaDir);
}

double MotionMatcher::windowOffsetFactor(const kernel::PairWindow& w,
                                         double offsetMeters) const {
  if (kernel::degenerateSigma(w.sigmaOffsetMeters))
    return std::abs(offsetMeters - w.muOffsetMeters) <=
                   params_.betaMeters / 2.0
               ? 1.0
               : 0.0;
  return kernel::windowMass(offsetMeters, params_.betaMeters / 2.0,
                            w.muOffsetMeters, w.invSqrt2SigmaOff);
}

double MotionMatcher::stationaryProbability(
    const sensors::MotionMeasurement& motion) const {
  // Staying put: any direction is equally (un)informative; the offset
  // should be near zero up to sensor noise.  Capped at 1: an alpha
  // wider than the circle still covers at most the whole circle.
  const double directionFactorStationary =
      std::min(params_.alphaDeg / 360.0, 1.0);
  const double offsetFactorStationary = gaussianWindowProbability(
      motion.offsetMeters, params_.betaMeters / 2.0, 0.0,
      params_.stationarySigmaMeters);
  return std::max(directionFactorStationary * offsetFactorStationary,
                  params_.unreachableFloor);
}

void MotionMatcher::requireValidPair(env::LocationId i,
                                     env::LocationId j) const {
  const std::size_t n = adj_->locationCount();
  if (i < 0 || j < 0 || static_cast<std::size_t>(i) >= n ||
      static_cast<std::size_t>(j) >= n)
    throw std::out_of_range("MotionDatabase: bad location pair (" +
                            std::to_string(i) + ", " + std::to_string(j) +
                            ")");
}

double MotionMatcher::pairProbability(
    env::LocationId i, env::LocationId j,
    const sensors::MotionMeasurement& motion) const {
  requireValidPair(i, j);
  if (i == j) {
    if (!params_.allowStationary) return params_.unreachableFloor;
    return stationaryProbability(motion);
  }

  // The CSR window path is bitwise-identical to the dense RlmStats
  // path (same precomputed 1/(sigma*sqrt(2)) expression; pinned by
  // MotionMatcherKernelTest), so this lookup swap is invisible to
  // results.
  const kernel::PairWindow* w = adj_->find(i, j);
  if (!w) return params_.unreachableFloor;
  const double p = windowDirectionFactor(*w, motion.directionDeg) *
                   windowOffsetFactor(*w, motion.offsetMeters);
  return std::max(p, params_.unreachableFloor);
}

double MotionMatcher::scoreOne(std::span<const WeightedCandidate> prev,
                               env::LocationId j,
                               const sensors::MotionMeasurement& motion,
                               double stationaryP, double totalPrior) const {
  double acc = 0.0;      // mass scored through an explicit model
  double covered = 0.0;  // prior mass behind those terms
  for (const auto& candidate : prev) {
    if (candidate.location == j) {
      if (params_.allowStationary) {
        acc += candidate.probability * stationaryP;
        covered += candidate.probability;
      }
      continue;
    }
    requireValidPair(candidate.location, j);
    if (const kernel::PairWindow* w = adj_->find(candidate.location, j)) {
      const double p = windowDirectionFactor(*w, motion.directionDeg) *
                       windowOffsetFactor(*w, motion.offsetMeters);
      acc += candidate.probability * std::max(p, params_.unreachableFloor);
      covered += candidate.probability;
    }
  }
  // Every unit of prior mass not covered by a stored pair (or the
  // stationary model) contributes exactly the floor, so one multiply
  // replaces the dense scan's per-pair floor additions.  When all mass
  // is covered, `covered` sums the same terms in the same order as
  // `totalPrior` and the correction is exactly zero.
  return acc + params_.unreachableFloor * (totalPrior - covered);
}

double MotionMatcher::setProbability(
    std::span<const WeightedCandidate> previousCandidates,
    env::LocationId j, const sensors::MotionMeasurement& motion) const {
  double totalPrior = 0.0;
  for (const auto& candidate : previousCandidates)
    totalPrior += candidate.probability;
  return scoreOne(previousCandidates, j, motion,
                  stationaryProbability(motion), totalPrior);
}

void MotionMatcher::scoreCandidates(
    std::span<const WeightedCandidate> previousCandidates,
    std::span<const env::LocationId> candidates,
    const sensors::MotionMeasurement& motion,
    std::vector<double>& out) const {
  double totalPrior = 0.0;
  for (const auto& candidate : previousCandidates)
    totalPrior += candidate.probability;
  const double stationaryP = stationaryProbability(motion);
  out.clear();
  out.reserve(candidates.size());
  for (const env::LocationId j : candidates)
    out.push_back(
        scoreOne(previousCandidates, j, motion, stationaryP, totalPrior));
}

}  // namespace moloc::core
