#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "core/motion_database.hpp"
#include "env/floor_plan.hpp"
#include "obs/metrics.hpp"

namespace moloc::core {

/// Sanitation thresholds of the database construction unit
/// (Sec. IV.B.2).  The coarse/fine toggles exist for the sanitation
/// ablation; production use keeps both on.
struct BuilderConfig {
  double coarseDirectionThresholdDeg = 20.0;  ///< vs. map-derived RLM.
  double coarseOffsetThresholdMeters = 3.0;   ///< vs. map-derived RLM.
  double fineSigmaMultiplier = 2.0;  ///< Drop samples beyond k sigma.
  int minSamplesPerPair = 3;         ///< Entries need this many samples.
  /// Floors keep the fitted Gaussians from degenerating when a pair's
  /// surviving samples happen to agree almost exactly.
  double minDirectionSigmaDeg = 2.0;
  double minOffsetSigmaMeters = 0.05;
  bool enableCoarseFilter = true;
  bool enableFineFilter = true;
};

/// Counters describing what the sanitation pipeline did — surfaced so
/// experiments (and operators) can see how dirty the crowd data was.
struct BuilderReport {
  std::size_t observations = 0;       ///< Total intake.
  std::size_t droppedSelfPairs = 0;   ///< i == j observations.
  std::size_t rejectedCoarse = 0;     ///< Failed the map comparison.
  std::size_t rejectedFine = 0;       ///< Beyond k sigma of the fit.
  std::size_t underMinSamples = 0;    ///< Pairs with too few survivors.
  std::size_t pairsStored = 0;        ///< Undirected pairs in the DB.
};

/// The crowdsourcing intake and sanitation pipeline that constructs the
/// motion database (Sec. IV.B).
///
/// Observations arrive as (estimated start, estimated end, measured
/// direction, measured offset).  The builder *reassembles* each onto the
/// smaller-ID endpoint (mirroring the direction by 180 degrees — mutual
/// reachability), then at build() time applies the coarse filter
/// (discard RLMs that disagree with the straight-line map RLM beyond the
/// thresholds), fits per-pair Gaussians, applies the fine filter (drop
/// samples beyond `fineSigmaMultiplier` standard deviations), refits,
/// and stores each surviving pair with its mirror entry.
class MotionDatabaseBuilder {
 public:
  /// A non-null `metrics` registry receives the intake counters as
  /// `moloc_intake_*{source="batch"}` series and the latest build()'s
  /// report as `moloc_builder_*` gauges (see docs/observability.md);
  /// inert when the build sets MOLOC_METRICS=OFF.
  MotionDatabaseBuilder(const env::FloorPlan& plan,
                        BuilderConfig config = {},
                        obs::MetricsRegistry* metrics = nullptr);

  const BuilderConfig& config() const { return config_; }

  /// Adds one crowdsourced RLM.  Ids must name plan locations; throws
  /// std::out_of_range otherwise.  Self-pairs are counted and dropped.
  void addObservation(env::LocationId estimatedStart,
                      env::LocationId estimatedEnd, double directionDeg,
                      double offsetMeters);

  /// Number of raw observations currently held (after reassembling,
  /// before sanitation).
  std::size_t pendingObservations() const;

  /// Runs sanitation and produces the motion database.  The builder
  /// retains its raw data, so build() can be called repeatedly (e.g.
  /// with different configs via `setConfig`).
  MotionDatabase build() const;

  /// Like build(), but also reports sanitation counters.
  MotionDatabase build(BuilderReport& report) const;

  /// Replaces the sanitation config (used by the ablation benches).
  void setConfig(const BuilderConfig& config) { config_ = config; }

 private:
  struct RawRlm {
    double directionDeg;
    double offsetMeters;
  };
  using PairKey = std::pair<env::LocationId, env::LocationId>;

  const env::FloorPlan& plan_;
  BuilderConfig config_;
  std::map<PairKey, std::vector<RawRlm>> raw_;
  std::size_t observations_ = 0;
  std::size_t droppedSelfPairs_ = 0;

#if MOLOC_METRICS_ENABLED
  struct Metrics {
    obs::Counter* observations = nullptr;
    obs::Counter* selfPairs = nullptr;
    obs::Gauge* rejectedCoarse = nullptr;
    obs::Gauge* rejectedFine = nullptr;
    obs::Gauge* underMinSamples = nullptr;
    obs::Gauge* pairsStored = nullptr;
  };
  Metrics metrics_;
#endif
};

}  // namespace moloc::core
