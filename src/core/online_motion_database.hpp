#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/motion_database.hpp"
#include "core/motion_database_builder.hpp"
#include "env/floor_plan.hpp"
#include "geometry/vec2.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::core {

/// Write-ahead hook of the intake: receives every observation that
/// passed the sanitation filters, with the *original* call arguments
/// (pre-reassembly), before the reservoir mutates.  Feeding the same
/// arguments back through addObservation replays the update exactly —
/// which is how store::recover rebuilds the database from a log.
///
/// An exception thrown by onAccepted propagates out of addObservation
/// and aborts the update (write-ahead discipline: an observation that
/// could not be logged is never applied).
class ObservationSink {
 public:
  virtual ~ObservationSink() = default;
  virtual void onAccepted(env::LocationId estimatedStart,
                          env::LocationId estimatedEnd,
                          double directionDeg, double offsetMeters) = 0;
};

/// An incrementally-updated motion database for deployments where
/// crowdsourcing never stops (the paper's batch builder assumes a
/// train-then-serve split).
///
/// Each accepted observation lands in a bounded per-pair reservoir
/// (uniform reservoir sampling once full, so the model tracks the
/// long-run distribution without unbounded memory), after which that
/// pair's Gaussians are refitted — including the fine 2-sigma pass —
/// and written through to the queryable database with its mirror.
/// The coarse map filter runs at intake, so poisoned or mislocated
/// observations are rejected before they consume reservoir space.
///
/// Coherence invariant: the published database never disagrees with
/// the reservoirs.  When a refit's fine filter leaves a pair with
/// fewer than `minSamplesPerPair` survivors, any previously published
/// entry for that pair is *invalidated* (removed together with its
/// mirror) rather than silently kept stale; the event is counted in
/// `Counters::staleInvalidations` and, when a registry is attached,
/// in `moloc_intake_stale_invalidated_total`.
///
/// Thread safety: state lives behind two mutexes.  The outer write
/// mutex serializes the mutators (applyAccepted / addObservation /
/// restore) and is held across the sink's write-ahead call, so the
/// WAL order equals the apply order whenever one thread drives the
/// mutators — the serving stack funnels every observation through a
/// single writer thread (service::IntakePipeline).  The inner state
/// mutex guards the in-memory structures only and is never held
/// across I/O, so readers (database() / counters() / databaseCopy() /
/// classify()) cannot stall behind a log fsync.  What the locks
/// cannot give is cross-call atomicity: references returned by
/// database()/counters()/config() escape them; serving copies the
/// database (databaseCopy) into an immutable WorldSnapshot instead of
/// holding references while intake runs (see docs/serving.md).
class OnlineMotionDatabase {
 public:
  /// `reservoirCapacity` bounds per-pair memory; must be >= the
  /// config's minSamplesPerPair (throws std::invalid_argument).
  /// A non-null `metrics` registry receives the intake counters as
  /// `moloc_intake_*{source="online"}` series (see
  /// docs/observability.md); instrumentation is inert when the build
  /// sets MOLOC_METRICS=OFF.
  OnlineMotionDatabase(const env::FloorPlan& plan,
                       BuilderConfig config = {},
                       std::size_t reservoirCapacity = 64,
                       std::uint64_t seed = 0x0b5e55edULL,
                       obs::MetricsRegistry* metrics = nullptr);

  /// Feeds one crowdsourced RLM.  Returns true when the observation
  /// was accepted (passed the coarse filter and was not a self-pair).
  /// Non-finite or negative measurements throw util::ConfigError
  /// before anything else is validated or counted; unknown location
  /// ids throw std::out_of_range.
  bool addObservation(env::LocationId estimatedStart,
                      env::LocationId estimatedEnd, double directionDeg,
                      double offsetMeters);

  /// The admission half of addObservation: validates the measurement
  /// and ids (throwing exactly like addObservation), counts the offer,
  /// and runs the self-pair and coarse-filter checks.  Returns whether
  /// the observation is accepted.  The decision depends only on the
  /// floor plan and the sanitation config — never on reservoir state —
  /// so producers may classify concurrently and in any order without
  /// changing any outcome.  Nothing is logged or applied here: an
  /// accepted observation must still be handed to applyAccepted (the
  /// intake pipeline's writer thread does this, in queue order).
  bool classify(env::LocationId estimatedStart,
                env::LocationId estimatedEnd, double directionDeg,
                double offsetMeters);

  /// The apply half: write-ahead logs the observation through the sink
  /// (under the write mutex only, so readers never wait behind the
  /// log's fsync), then folds it into its pair's reservoir and refits.
  /// Call only with observations classify() accepted — re-checked
  /// here; a rejected observation throws std::logic_error before
  /// anything is logged.  A sink exception propagates and aborts the
  /// update (write-ahead discipline), exactly like addObservation.
  void applyAccepted(env::LocationId estimatedStart,
                     env::LocationId estimatedEnd, double directionDeg,
                     double offsetMeters);

  /// The current queryable database.  Always coherent: every stored
  /// pair reflects the latest refit of its reservoir.
  ///
  /// The returned reference escapes the intake mutex: readers holding
  /// it across a concurrent addObservation see the database mid-update.
  /// Serving snapshots the database instead of holding this reference
  /// while intake runs (see docs/serving.md).
  const MotionDatabase& database() const {
    const util::MutexLock lock(mu_);
    return db_;
  }

  /// A value copy of the current queryable database, taken atomically
  /// under the state mutex — what the publisher freezes into a
  /// core::WorldSnapshot.  Never blocks behind sink I/O (the write
  /// mutex is not taken).
  MotionDatabase databaseCopy() const {
    const util::MutexLock lock(mu_);
    return db_;
  }

  const BuilderConfig& config() const {
    const util::MutexLock lock(mu_);
    return config_;
  }

  /// Intake counters (coarse rejections, self-pairs, acceptances,
  /// fine-filter exclusions, stale-entry invalidations).
  struct Counters {
    std::size_t observations = 0;
    std::size_t accepted = 0;
    std::size_t rejectedCoarse = 0;
    std::size_t droppedSelfPairs = 0;
    /// Samples excluded by the fine filter, summed over refits (a
    /// reservoir sample surviving several refits before being evicted
    /// is counted once per refit that excluded it) — a rate signal
    /// for how noisy the accepted stream is, not a distinct-sample
    /// count.
    std::size_t rejectedFine = 0;
    /// Published entries removed because a refit's fine filter left
    /// the pair below minSamplesPerPair.
    std::size_t staleInvalidations = 0;
  };
  const Counters& counters() const {
    const util::MutexLock lock(mu_);
    return counters_;
  }

  /// Number of pairs currently holding at least one sample.
  std::size_t trackedPairs() const {
    const util::MutexLock lock(mu_);
    return reservoirs_.size();
  }

  /// One raw sample as currently retained for a pair.
  struct ReservoirSample {
    double directionDeg = 0.0;
    double offsetMeters = 0.0;
  };

  /// Diagnostics / test hook: the reservoir contents for a pair (the
  /// order is storage order, not arrival order).  The pair is looked
  /// up under its canonical smaller-ID-first key, so (i, j) and
  /// (j, i) return the same samples.  Empty when the pair is
  /// untracked; throws std::out_of_range on bad ids.
  std::vector<ReservoirSample> reservoirSamples(
      env::LocationId i, env::LocationId j) const;

  /// Aggregate reservoir occupancy — what checkpoint sizing and the
  /// durability metrics need, without walking pairs through the
  /// test-only reservoirSamples hook.
  struct ReservoirStats {
    std::size_t trackedPairs = 0;    ///< Pairs holding >= 1 sample.
    std::size_t pairsAtCapacity = 0; ///< Pairs whose reservoir is full.
    std::size_t totalSamples = 0;    ///< Samples currently retained.
    std::uint64_t totalSeen = 0;     ///< Accepted ever, incl. evicted.
    std::size_t capacity = 0;        ///< Per-pair sample bound.
  };
  ReservoirStats reservoirStats() const;

  std::size_t reservoirCapacity() const {
    const util::MutexLock lock(mu_);
    return capacity_;
  }

  /// Attaches (or detaches, with nullptr) the write-ahead hook.  The
  /// sink must outlive this database or be detached first.
  void setSink(ObservationSink* sink) {
    const util::MutexLock lock(mu_);
    sink_ = sink;
  }
  ObservationSink* sink() const {
    const util::MutexLock lock(mu_);
    return sink_;
  }

  /// Everything addObservation's behaviour depends on, frozen as plain
  /// data: the sanitation config, the per-pair reservoirs (with their
  /// eviction counters), the published entries, the intake counters,
  /// and the RNG state.  restore() of a snapshot followed by the same
  /// addObservation calls is bit-identical to never having paused —
  /// the contract store::recover builds on.
  struct Snapshot {
    BuilderConfig config;
    std::size_t capacity = 0;
    std::size_t locationCount = 0;
    std::array<std::uint64_t, 4> rngState{};
    Counters counters;
    struct PairState {
      env::LocationId i = 0;
      env::LocationId j = 0;
      std::uint64_t seen = 0;
      std::vector<ReservoirSample> samples;  ///< Storage order.
    };
    std::vector<PairState> reservoirs;  ///< Canonical-key order.
    struct Entry {
      env::LocationId i = 0;
      env::LocationId j = 0;
      RlmStats stats;
    };
    std::vector<Entry> entries;  ///< All directed published entries.
  };

  Snapshot snapshot() const;

  /// Replaces the full intake state with `snapshot`.  Throws
  /// std::invalid_argument when the snapshot does not fit this
  /// database's floor plan (location count mismatch), its capacity is
  /// below the config's per-pair minimum, a pair key is invalid or
  /// duplicated, or a reservoir exceeds the capacity.  On throw the
  /// database is unchanged.
  void restore(const Snapshot& snapshot);

 private:
  struct RawRlm {
    double directionDeg;
    double offsetMeters;
  };
  struct Reservoir {
    std::vector<RawRlm> samples;
    std::uint64_t seen = 0;  ///< Total accepted, including evicted.
  };
  using PairKey = std::pair<env::LocationId, env::LocationId>;

  /// Outcome of the deterministic admission checks.
  enum class Decision { kAccepted, kSelfPair, kRejectedCoarse };

  /// The admission checks themselves, with no counting: self-pair,
  /// then the coarse map filter on the canonicalized (smaller-ID
  /// first) form.  Pure in the config — classify() and applyAccepted()
  /// agree by construction.
  Decision decideLocked(env::LocationId start, env::LocationId end,
                        geometry::Vec2 posStart, geometry::Vec2 posEnd,
                        double directionDeg, double offsetMeters) const
      MOLOC_REQUIRES(mu_);

  void refit(const PairKey& key, const Reservoir& reservoir)
      MOLOC_REQUIRES(mu_);

  /// Drops the published entry (and mirror) for `key` if one exists.
  void invalidateStaleEntry(const PairKey& key) MOLOC_REQUIRES(mu_);

  const env::FloorPlan& plan_;
  /// Outer mutex: serializes the mutators and is held across the
  /// sink's write-ahead call, so the WAL order equals the apply order
  /// for a single writer (lock order: this, then mu_, then the sink's
  /// own mutex).  Readers never take it.
  mutable util::Mutex writeMu_;
  /// Inner mutex guarding the in-memory state; never held across I/O.
  mutable util::Mutex mu_ MOLOC_ACQUIRED_AFTER(writeMu_);
  BuilderConfig config_ MOLOC_GUARDED_BY(mu_);
  std::size_t capacity_ MOLOC_GUARDED_BY(mu_);
  util::Rng rng_ MOLOC_GUARDED_BY(mu_);
  std::map<PairKey, Reservoir> reservoirs_ MOLOC_GUARDED_BY(mu_);
  MotionDatabase db_ MOLOC_GUARDED_BY(mu_);
  Counters counters_ MOLOC_GUARDED_BY(mu_);
  ObservationSink* sink_ MOLOC_GUARDED_BY(mu_) = nullptr;

#if MOLOC_METRICS_ENABLED
  struct Metrics {
    obs::Counter* observations = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* rejectedCoarse = nullptr;
    obs::Counter* rejectedFine = nullptr;
    obs::Counter* selfPairs = nullptr;
    obs::Counter* staleInvalidated = nullptr;
  };
  Metrics metrics_;
#endif
};

}  // namespace moloc::core
