#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/motion_database.hpp"
#include "core/motion_database_builder.hpp"
#include "env/floor_plan.hpp"
#include "util/rng.hpp"

namespace moloc::core {

/// An incrementally-updated motion database for deployments where
/// crowdsourcing never stops (the paper's batch builder assumes a
/// train-then-serve split).
///
/// Each accepted observation lands in a bounded per-pair reservoir
/// (uniform reservoir sampling once full, so the model tracks the
/// long-run distribution without unbounded memory), after which that
/// pair's Gaussians are refitted — including the fine 2-sigma pass —
/// and written through to the queryable database with its mirror.
/// The coarse map filter runs at intake, so poisoned or mislocated
/// observations are rejected before they consume reservoir space.
class OnlineMotionDatabase {
 public:
  /// `reservoirCapacity` bounds per-pair memory; must be >= the
  /// config's minSamplesPerPair (throws std::invalid_argument).
  OnlineMotionDatabase(const env::FloorPlan& plan,
                       BuilderConfig config = {},
                       std::size_t reservoirCapacity = 64,
                       std::uint64_t seed = 0x0b5e55edULL);

  /// Feeds one crowdsourced RLM.  Returns true when the observation
  /// was accepted (passed the coarse filter and was not a self-pair).
  bool addObservation(env::LocationId estimatedStart,
                      env::LocationId estimatedEnd, double directionDeg,
                      double offsetMeters);

  /// The current queryable database.  Always coherent: every stored
  /// pair reflects the latest refit of its reservoir.
  const MotionDatabase& database() const { return db_; }

  const BuilderConfig& config() const { return config_; }

  /// Intake counters (coarse rejections, self-pairs, acceptances).
  struct Counters {
    std::size_t observations = 0;
    std::size_t accepted = 0;
    std::size_t rejectedCoarse = 0;
    std::size_t droppedSelfPairs = 0;
  };
  const Counters& counters() const { return counters_; }

  /// Number of pairs currently holding at least one sample.
  std::size_t trackedPairs() const { return reservoirs_.size(); }

 private:
  struct RawRlm {
    double directionDeg;
    double offsetMeters;
  };
  struct Reservoir {
    std::vector<RawRlm> samples;
    std::size_t seen = 0;  ///< Total accepted, including evicted.
  };
  using PairKey = std::pair<env::LocationId, env::LocationId>;

  void refit(const PairKey& key, const Reservoir& reservoir);

  const env::FloorPlan& plan_;
  BuilderConfig config_;
  std::size_t capacity_;
  util::Rng rng_;
  std::map<PairKey, Reservoir> reservoirs_;
  MotionDatabase db_;
  Counters counters_;
};

}  // namespace moloc::core
