#include "core/trace_smoother.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::core {

TraceSmoother::TraceSmoother(const radio::FingerprintDatabase& fingerprints,
                             const MotionDatabase& motion,
                             MoLocConfig config)
    : estimator_(fingerprints, config.candidateCount),
      matcher_(motion, config.matcher),
      config_(config) {}

std::vector<env::LocationId> TraceSmoother::smooth(
    std::span<const radio::Fingerprint> scans,
    std::span<const std::optional<sensors::MotionMeasurement>> motions)
    const {
  if (scans.empty())
    throw util::ConfigError("TraceSmoother: no scans");
  if (motions.size() + 1 != scans.size())
    throw util::ConfigError(
        "TraceSmoother: need exactly one motion per scan transition");

  // Per-step candidate lattices (the Viterbi state space).
  std::vector<std::vector<Candidate>> lattice;
  lattice.reserve(scans.size());
  for (const auto& scan : scans) lattice.push_back(estimator_.estimate(scan));

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  auto logOf = [](double p) {
    return p > 0.0 ? std::log(p) : -1e30;  // Finite so paths survive.
  };

  // Forward pass: delta[t][j] = best log-likelihood of any path ending
  // in candidate j at step t; psi[t][j] = argmax predecessor index.
  std::vector<std::vector<double>> delta(lattice.size());
  std::vector<std::vector<std::size_t>> psi(lattice.size());
  delta[0].reserve(lattice[0].size());
  for (const auto& candidate : lattice[0])
    delta[0].push_back(logOf(candidate.probability));
  psi[0].assign(lattice[0].size(), 0);

  for (std::size_t t = 1; t < lattice.size(); ++t) {
    delta[t].assign(lattice[t].size(), kNegInf);
    psi[t].assign(lattice[t].size(), 0);
    const auto& motion = motions[t - 1];
    for (std::size_t j = 0; j < lattice[t].size(); ++j) {
      double best = kNegInf;
      std::size_t bestPrev = 0;
      for (std::size_t i = 0; i < lattice[t - 1].size(); ++i) {
        // Uninformative transition when no motion was measured.
        const double transition =
            motion ? logOf(matcher_.pairProbability(
                         lattice[t - 1][i].location,
                         lattice[t][j].location, *motion))
                   : 0.0;
        const double score = delta[t - 1][i] + transition;
        if (score > best) {
          best = score;
          bestPrev = i;
        }
      }
      delta[t][j] = best + logOf(lattice[t][j].probability);
      psi[t][j] = bestPrev;
    }
  }

  // Backtrack from the best terminal state.
  std::vector<env::LocationId> path(lattice.size());
  std::size_t cursor = static_cast<std::size_t>(
      std::max_element(delta.back().begin(), delta.back().end()) -
      delta.back().begin());
  for (std::size_t t = lattice.size(); t-- > 0;) {
    path[t] = lattice[t][cursor].location;
    cursor = psi[t][cursor];
  }
  return path;
}

}  // namespace moloc::core
