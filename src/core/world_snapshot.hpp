#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/motion_database.hpp"
#include "index/tiered_index.hpp"
#include "kernel/motion_kernel.hpp"
#include "radio/fingerprint_database.hpp"
#include "util/error.hpp"

namespace moloc::core {

/// One immutable, internally consistent serving world: the radio map,
/// a motion database frozen at a publish point, and the CSR adjacency
/// index built from exactly that database.
///
/// Snapshots are the unit of the serving stack's epoch/RCU-style read
/// path (docs/serving.md).  The intake writer thread builds one from
/// its private OnlineMotionDatabase, then publishes it behind an
/// atomic shared_ptr; readers load the pointer and score against the
/// snapshot with no lock and no further coordination.  Nothing in a
/// published snapshot ever mutates, so a reader pinning an old
/// generation keeps a bitwise-stable world until it drops its
/// reference — reclamation is the shared_ptr refcount, no epochs or
/// grace periods to track.
///
/// The fingerprint database is shared (it does not change online), so
/// a publish copies only the motion side; the adjacency is built once
/// here and shared by every session that adopts the snapshot, which is
/// what retired the process-wide version-stamp cache and its ABA bug
/// (see kernel::MotionAdjacency).
class WorldSnapshot {
 public:
  /// Freezes `motion` (by value — the caller keeps mutating its own
  /// copy) and builds the adjacency from it.  `fingerprints` may be
  /// null for motion-only worlds (tests); `generation` is the publish
  /// sequence number, `intakeRecords` the number of accepted
  /// observations folded into this world (staleness accounting).
  /// `tieredIndex`, when non-null, is the prefilter built over
  /// `fingerprints` (shared across snapshots like the radio map itself
  /// — both are immutable online, so a publish copies neither).
  WorldSnapshot(std::shared_ptr<const radio::FingerprintDatabase> fingerprints,
                MotionDatabase motion, std::uint64_t generation,
                std::uint64_t intakeRecords,
                std::shared_ptr<const index::TieredIndex> tieredIndex =
                    nullptr)
      : fingerprints_(std::move(fingerprints)),
        tieredIndex_(std::move(tieredIndex)),
        motion_(std::move(motion)),
        adjacency_(motion_),
        generation_(generation),
        intakeRecords_(intakeRecords),
        publishedAt_(std::chrono::steady_clock::now()) {}

  /// An image-backed boot world (src/image): adopts a prebuilt
  /// adjacency — typically a non-owning view into an mmap'd venue
  /// image, kept alive by whatever `adjacency`'s control block owns —
  /// instead of freezing a motion database and rebuilding the CSR.
  /// motion() is empty for such a world (the dense form lives only in
  /// the store's WAL/checkpoint lineage); sessions only ever score
  /// through adjacency(), so serving semantics are unchanged.
  /// `adjacency` must be non-null (throws std::invalid_argument).
  WorldSnapshot(std::shared_ptr<const radio::FingerprintDatabase> fingerprints,
                std::shared_ptr<const kernel::MotionAdjacency> adjacency,
                std::uint64_t generation, std::uint64_t intakeRecords,
                std::shared_ptr<const index::TieredIndex> tieredIndex =
                    nullptr)
      : fingerprints_(std::move(fingerprints)),
        tieredIndex_(std::move(tieredIndex)),
        adoptedAdjacency_(std::move(adjacency)),
        generation_(generation),
        intakeRecords_(intakeRecords),
        publishedAt_(std::chrono::steady_clock::now()) {
    if (!adoptedAdjacency_)
      throw util::ConfigError("WorldSnapshot: null adjacency");
  }

  WorldSnapshot(const WorldSnapshot&) = delete;
  WorldSnapshot& operator=(const WorldSnapshot&) = delete;

  /// The shared radio map; null when the world was built motion-only.
  const std::shared_ptr<const radio::FingerprintDatabase>& fingerprints()
      const {
    return fingerprints_;
  }

  /// The tiered candidate index over fingerprints(), when the serving
  /// layer built one; null otherwise.  Built once before the snapshot
  /// is published, never mutated after — the same immutability
  /// contract as the adjacency.
  const std::shared_ptr<const index::TieredIndex>& tieredIndex() const {
    return tieredIndex_;
  }

  /// The frozen motion database (the adjacency's source of truth —
  /// kept so diagnostics and refits can inspect the dense form).
  /// Empty for an image-backed world, whose adjacency was adopted
  /// rather than derived here.
  const MotionDatabase& motion() const { return motion_; }

  /// The CSR index sessions score against; built once, immutable.
  const kernel::MotionAdjacency& adjacency() const {
    return adoptedAdjacency_ ? *adoptedAdjacency_ : adjacency_;
  }

  /// Monotonic publish sequence number (the boot world is 0).
  std::uint64_t generation() const { return generation_; }

  /// Accepted intake observations folded into this world.
  std::uint64_t intakeRecords() const { return intakeRecords_; }

  /// When this snapshot was built (steady clock; staleness metrics).
  std::chrono::steady_clock::time_point publishedAt() const {
    return publishedAt_;
  }

  /// The snapshot's adjacency as a handle that *pins the snapshot*:
  /// an aliasing shared_ptr whose control block owns the whole
  /// WorldSnapshot.  Sessions hold only this — the motion world they
  /// score against cannot be reclaimed out from under them even after
  /// the service publishes ten newer generations.
  static std::shared_ptr<const kernel::MotionAdjacency> adjacencyOf(
      std::shared_ptr<const WorldSnapshot> snapshot) {
    if (!snapshot) return nullptr;
    const kernel::MotionAdjacency* adjacency = &snapshot->adjacency();
    return std::shared_ptr<const kernel::MotionAdjacency>(
        std::move(snapshot), adjacency);
  }

 private:
  std::shared_ptr<const radio::FingerprintDatabase> fingerprints_;
  std::shared_ptr<const index::TieredIndex> tieredIndex_;
  MotionDatabase motion_;
  kernel::MotionAdjacency adjacency_;
  /// Set only by the image-backed constructor; shadows adjacency_ and
  /// pins the mapping the view points into.
  std::shared_ptr<const kernel::MotionAdjacency> adoptedAdjacency_;
  std::uint64_t generation_ = 0;
  std::uint64_t intakeRecords_ = 0;
  std::chrono::steady_clock::time_point publishedAt_;
};

}  // namespace moloc::core
