#pragma once

#include "core/motion_database.hpp"
#include "env/floor_plan.hpp"
#include "env/walk_graph.hpp"

namespace moloc::core {

/// The alternative motion-database construction methods the paper
/// weighs against crowdsourcing in Sec. IV.A, implemented so the
/// trade-off can be measured instead of argued:
///
///  - *Manual configuration*: engineers measure the RLM of every
///    walkable leg.  Accurate and consistent, but violates the paper's
///    efficiency principle (modelled here as building from the walk
///    graph's ground truth — the best any manual survey could do).
///  - *Map computation*: a program derives RLMs from location
///    coordinates alone.  Efficient, but violates the consistency
///    principle: two locations separated by a wall look adjacent on
///    the map, and the straight-line RLM does not describe any
///    walkable path.

/// Default measurement spreads assigned to entries that are computed
/// rather than fitted from samples.
struct ComputedRlmSpread {
  double sigmaDirectionDeg = 5.0;
  double sigmaOffsetMeters = 0.3;
};

/// Manual configuration: one entry (plus mirror) per walkable leg of
/// the graph, using the map-exact direction and walkable length.
MotionDatabase buildMotionDatabaseManually(
    const env::WalkGraph& graph, ComputedRlmSpread spread = {});

/// Map computation: one entry (plus mirror) per pair of locations
/// within `maxAdjacencyDist` of each other *by straight-line
/// distance*, walls ignored — faithfully reproducing the method's
/// flaw.  Directions and offsets are the straight-line values.
MotionDatabase buildMotionDatabaseFromMap(
    const env::FloorPlan& plan, double maxAdjacencyDist,
    ComputedRlmSpread spread = {});

/// Counts the entries of `db` (i < j, undirected) that do not
/// correspond to a walkable leg of `graph` — the consistency
/// violations the paper warns about.
std::size_t countUnwalkableEntries(const MotionDatabase& db,
                                   const env::WalkGraph& graph);

}  // namespace moloc::core
