#include "core/moloc_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace moloc::core {

double LocationEstimate::normalizedEntropy() const {
  if (candidates.size() < 2) return 0.0;
  double entropy = 0.0;
  for (const auto& c : candidates)
    if (c.probability > 0.0)
      entropy -= c.probability * std::log(c.probability);
  return entropy / std::log(static_cast<double>(candidates.size()));
}

MoLocEngine::MoLocEngine(const radio::FingerprintDatabase& fingerprints,
                         const MotionDatabase& motion, MoLocConfig config)
    : estimator_(fingerprints, config.candidateCount),
      matcher_(motion, config.matcher),
      config_(config) {
  initMetrics();
}

MoLocEngine::MoLocEngine(
    const radio::ProbabilisticFingerprintDatabase& fingerprints,
    const MotionDatabase& motion, MoLocConfig config)
    : estimator_(fingerprints, config.candidateCount),
      matcher_(motion, config.matcher),
      config_(config) {
  initMetrics();
}

MoLocEngine::MoLocEngine(CandidateEstimator estimator,
                         const MotionDatabase& motion, MoLocConfig config)
    : estimator_(std::move(estimator)),
      matcher_(motion, config.matcher),
      config_(config) {
  initMetrics();
}

void MoLocEngine::initMetrics() {
#if MOLOC_METRICS_ENABLED
  obs::MetricsRegistry* registry = config_.metrics;
  if (!registry) return;
  const std::string stageHelp =
      "Wall time of one engine pipeline stage per localization round";
  auto stageBounds = [] {
    return obs::Histogram::exponentialBuckets(1e-6, 2.0, 20);
  };
  stageFingerprint_ =
      &registry->histogram("moloc_engine_stage_seconds", stageHelp,
                           stageBounds(), {{"stage", "fingerprint"}});
  stageMotion_ =
      &registry->histogram("moloc_engine_stage_seconds", stageHelp,
                           stageBounds(), {{"stage", "motion"}});
  stageFusion_ =
      &registry->histogram("moloc_engine_stage_seconds", stageHelp,
                           stageBounds(), {{"stage", "fusion"}});
  candidateSetSize_ = &registry->histogram(
      "moloc_engine_candidates",
      "Candidate-set size the estimator yielded per round",
      obs::Histogram::linearBuckets(1.0, 1.0, 32));
#endif
}

LocationEstimate MoLocEngine::localize(
    const radio::Fingerprint& query,
    const std::optional<sensors::MotionMeasurement>& motion) {
#if MOLOC_METRICS_ENABLED
  // Stage boundaries share timestamps where they can (5 tick reads per
  // round instead of three timers' 6), which is what keeps per-stage
  // timing cheap enough to leave enabled in serving builds.
  const bool timed = stageFingerprint_ != nullptr;
  const std::uint64_t t0 = timed ? obs::detail::ticksNow() : 0;
#endif
  estimator_.estimateInto(query, candidateScratch_);
#if MOLOC_METRICS_ENABLED
  if (timed)
    stageFingerprint_->observe(
        obs::detail::ticksToSeconds(t0, obs::detail::ticksNow()));
#endif
  return fuse(candidateScratch_, motion);
}

LocationEstimate MoLocEngine::localizeWithCandidates(
    std::span<const Candidate> candidates,
    const std::optional<sensors::MotionMeasurement>& motion) {
  return fuse(candidates, motion);
}

LocationEstimate MoLocEngine::fuse(
    std::span<const Candidate> candidates,
    const std::optional<sensors::MotionMeasurement>& motion) {
#if MOLOC_METRICS_ENABLED
  const bool timed = stageMotion_ != nullptr;
  const std::uint64_t t1 = timed ? obs::detail::ticksNow() : 0;
  if (candidateSetSize_)
    candidateSetSize_->observe(static_cast<double>(candidates.size()));
#endif

  // A candidate source that yields nothing means there is no basis for
  // a fix this round; report "no fix" and keep the retained set so a
  // transient outage does not erase history.
  if (candidates.empty()) return LocationEstimate{};

  std::vector<WeightedCandidate> scored;
  scored.reserve(candidates.size());

  // Defensive: non-finite motion (corrupt sensor data that slipped
  // through processing) degrades to a fingerprint-only update rather
  // than poisoning the posterior.
  const bool motionUsable = motion.has_value() &&
                            std::isfinite(motion->directionDeg) &&
                            std::isfinite(motion->offsetMeters);
  const bool useMotion = motionUsable && !previous_.empty();
  if (useMotion) {
    // Eq. 6 for the whole candidate set in one call, so the matcher's
    // batch-invariant work (adjacency sync, prior-mass sum, stationary
    // factor) runs once per round instead of once per candidate.
    motionIdScratch_.clear();
    motionIdScratch_.reserve(candidates.size());
    for (const auto& candidate : candidates)
      motionIdScratch_.push_back(candidate.location);
    matcher_.scoreCandidates(previous_, motionIdScratch_, *motion,
                             motionScoreScratch_);
  }
  double total = 0.0;
  // The motion stage covers candidate scoring even on fingerprint-only
  // rounds (the loop then degenerates to a copy), so its count matches
  // the fusion stage one-to-one.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double weight = candidates[i].probability;
    // Eq. 7 numerator: P(x=j|F) * P_{L',j}(d, o).
    if (useMotion) weight *= motionScoreScratch_[i];
    scored.push_back({candidates[i].location, weight});
    total += weight;
  }
#if MOLOC_METRICS_ENABLED
  const std::uint64_t t2 = timed ? obs::detail::ticksNow() : 0;
  if (timed) stageMotion_->observe(obs::detail::ticksToSeconds(t1, t2));
#endif

  if (total <= 0.0) {
    // Every candidate's motion mass vanished (can only happen with a
    // zero floor); degrade to fingerprint-only ranking, as on a first
    // fix.
    scored.clear();
    for (const auto& candidate : candidates)
      scored.push_back({candidate.location, candidate.probability});
    total = 0.0;
    for (const auto& c : scored) total += c.probability;
  }

  if (total <= 0.0) {
    // Even the fingerprint term carries no mass (all candidate
    // probabilities underflowed to zero); dividing would produce NaN
    // posteriors.  A uniform posterior over the candidate set is the
    // honest maximum-entropy answer.
    const double uniform = 1.0 / static_cast<double>(scored.size());
    for (auto& c : scored) c.probability = uniform;
  } else {
    // Eq. 7 normalizer N.
    for (auto& c : scored) c.probability /= total;
  }

  LocationEstimate estimate = finalize(std::move(scored));
#if MOLOC_METRICS_ENABLED
  if (timed)
    stageFusion_->observe(
        obs::detail::ticksToSeconds(t2, obs::detail::ticksNow()));
#endif
  return estimate;
}

LocationEstimate MoLocEngine::finalize(
    std::vector<WeightedCandidate> scored) {
  // Defensive twin of the localize() guard: an empty scored set must
  // yield the "no fix" estimate, never scored.front() UB.
  if (scored.empty()) return LocationEstimate{};

  std::sort(scored.begin(), scored.end(),
            [](const WeightedCandidate& a, const WeightedCandidate& b) {
              return a.probability > b.probability;
            });

  LocationEstimate estimate;
  estimate.location = scored.front().location;
  estimate.probability = scored.front().probability;
  estimate.candidates = scored;

  // "All these candidates are retained for localization next time."
  previous_ = std::move(scored);
  return estimate;
}

}  // namespace moloc::core
