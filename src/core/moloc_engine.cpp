#include "core/moloc_engine.hpp"

#include <algorithm>
#include <cmath>

namespace moloc::core {

double LocationEstimate::normalizedEntropy() const {
  if (candidates.size() < 2) return 0.0;
  double entropy = 0.0;
  for (const auto& c : candidates)
    if (c.probability > 0.0)
      entropy -= c.probability * std::log(c.probability);
  return entropy / std::log(static_cast<double>(candidates.size()));
}

MoLocEngine::MoLocEngine(const radio::FingerprintDatabase& fingerprints,
                         const MotionDatabase& motion, MoLocConfig config)
    : estimator_(fingerprints, config.candidateCount),
      matcher_(motion, config.matcher),
      config_(config) {}

MoLocEngine::MoLocEngine(
    const radio::ProbabilisticFingerprintDatabase& fingerprints,
    const MotionDatabase& motion, MoLocConfig config)
    : estimator_(fingerprints, config.candidateCount),
      matcher_(motion, config.matcher),
      config_(config) {}

MoLocEngine::MoLocEngine(CandidateEstimator estimator,
                         const MotionDatabase& motion, MoLocConfig config)
    : estimator_(std::move(estimator)),
      matcher_(motion, config.matcher),
      config_(config) {}

LocationEstimate MoLocEngine::localize(
    const radio::Fingerprint& query,
    const std::optional<sensors::MotionMeasurement>& motion) {
  estimator_.estimateInto(query, candidateScratch_);
  const auto& candidates = candidateScratch_;

  // A candidate source that yields nothing means there is no basis for
  // a fix this round; report "no fix" and keep the retained set so a
  // transient outage does not erase history.
  if (candidates.empty()) return LocationEstimate{};

  std::vector<WeightedCandidate> scored;
  scored.reserve(candidates.size());

  // Defensive: non-finite motion (corrupt sensor data that slipped
  // through processing) degrades to a fingerprint-only update rather
  // than poisoning the posterior.
  const bool motionUsable = motion.has_value() &&
                            std::isfinite(motion->directionDeg) &&
                            std::isfinite(motion->offsetMeters);
  const bool useMotion = motionUsable && !previous_.empty();
  double total = 0.0;
  for (const auto& candidate : candidates) {
    double weight = candidate.probability;
    if (useMotion) {
      // Eq. 7 numerator: P(x=j|F) * P_{L',j}(d, o).
      weight *= matcher_.setProbability(previous_, candidate.location,
                                        *motion);
    }
    scored.push_back({candidate.location, weight});
    total += weight;
  }

  if (total <= 0.0) {
    // Every candidate's motion mass vanished (can only happen with a
    // zero floor); degrade to fingerprint-only ranking, as on a first
    // fix.
    scored.clear();
    for (const auto& candidate : candidates)
      scored.push_back({candidate.location, candidate.probability});
    total = 0.0;
    for (const auto& c : scored) total += c.probability;
  }

  if (total <= 0.0) {
    // Even the fingerprint term carries no mass (all candidate
    // probabilities underflowed to zero); dividing would produce NaN
    // posteriors.  A uniform posterior over the candidate set is the
    // honest maximum-entropy answer.
    const double uniform = 1.0 / static_cast<double>(scored.size());
    for (auto& c : scored) c.probability = uniform;
  } else {
    // Eq. 7 normalizer N.
    for (auto& c : scored) c.probability /= total;
  }

  return finalize(std::move(scored));
}

LocationEstimate MoLocEngine::finalize(
    std::vector<WeightedCandidate> scored) {
  // Defensive twin of the localize() guard: an empty scored set must
  // yield the "no fix" estimate, never scored.front() UB.
  if (scored.empty()) return LocationEstimate{};

  std::sort(scored.begin(), scored.end(),
            [](const WeightedCandidate& a, const WeightedCandidate& b) {
              return a.probability > b.probability;
            });

  LocationEstimate estimate;
  estimate.location = scored.front().location;
  estimate.probability = scored.front().probability;
  estimate.candidates = scored;

  // "All these candidates are retained for localization next time."
  previous_ = std::move(scored);
  return estimate;
}

}  // namespace moloc::core
