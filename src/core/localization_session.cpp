#include "core/localization_session.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "util/error.hpp"

namespace moloc::core {

namespace {

double checkStepLength(double stepLengthMeters) {
  if (stepLengthMeters <= 0.0)
    throw util::ConfigError(
        "LocalizationSession: step length must be positive");
  return stepLengthMeters;
}

}  // namespace

LocalizationSession::LocalizationSession(
    const radio::FingerprintDatabase& fingerprints,
    const MotionDatabase& motion, double stepLengthMeters,
    MoLocConfig config, sensors::MotionProcessorParams motionParams)
    : engine_(fingerprints, motion, config),
      processor_(motionParams),
      stepLengthMeters_(checkStepLength(stepLengthMeters)) {}

LocalizationSession::LocalizationSession(
    const radio::ProbabilisticFingerprintDatabase& fingerprints,
    const MotionDatabase& motion, double stepLengthMeters,
    MoLocConfig config, sensors::MotionProcessorParams motionParams)
    : engine_(fingerprints, motion, config),
      processor_(motionParams),
      stepLengthMeters_(checkStepLength(stepLengthMeters)) {}

LocalizationSession::LocalizationSession(
    CandidateEstimator estimator, const MotionDatabase& motion,
    double stepLengthMeters, MoLocConfig config,
    sensors::MotionProcessorParams motionParams)
    : engine_(std::move(estimator), motion, config),
      processor_(motionParams),
      stepLengthMeters_(checkStepLength(stepLengthMeters)) {}

LocationEstimate LocalizationSession::onScan(
    const radio::Fingerprint& scan,
    const sensors::ImuTrace& imuSinceLastScan) {
  lastMotion_ = imuSinceLastScan.empty()
                    ? std::nullopt
                    : processor_.process(imuSinceLastScan,
                                         stepLengthMeters_);
  return engine_.localize(scan, lastMotion_);
}

LocationEstimate LocalizationSession::onScanWithCandidates(
    std::span<const Candidate> candidates, std::exception_ptr scanError,
    const sensors::ImuTrace& imuSinceLastScan) {
  lastMotion_ = imuSinceLastScan.empty()
                    ? std::nullopt
                    : processor_.process(imuSinceLastScan,
                                         stepLengthMeters_);
  if (scanError) std::rethrow_exception(scanError);
  return engine_.localizeWithCandidates(candidates, lastMotion_);
}

}  // namespace moloc::core
