#include "core/motion_database_builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace moloc::core {

namespace {

/// Fits direction (circular) and offset (linear) Gaussians to a sample.
RlmStats fitGaussians(const std::vector<double>& directions,
                      const std::vector<double>& offsets) {
  RlmStats stats;
  stats.sampleCount = static_cast<int>(directions.size());
  stats.muDirectionDeg = geometry::circularMeanDeg(directions);

  // Deviations measured on the circle around the circular mean.
  std::vector<double> dirDevs;
  dirDevs.reserve(directions.size());
  for (double d : directions)
    dirDevs.push_back(
        geometry::signedAngularDiffDeg(stats.muDirectionDeg, d));
  stats.sigmaDirectionDeg = util::stddev(dirDevs);

  stats.muOffsetMeters = util::mean(offsets);
  stats.sigmaOffsetMeters = util::stddev(offsets);
  return stats;
}

}  // namespace

MotionDatabaseBuilder::MotionDatabaseBuilder(const env::FloorPlan& plan,
                                             BuilderConfig config,
                                             obs::MetricsRegistry* metrics)
    : plan_(plan), config_(config) {
#if MOLOC_METRICS_ENABLED
  if (metrics) {
    const obs::Labels source{{"source", "batch"}};
    metrics_.observations = &metrics->counter(
        "moloc_intake_observations_total",
        "Crowdsourced RLM observations offered to the intake", source);
    metrics_.selfPairs = &metrics->counter(
        "moloc_intake_self_pairs_total",
        "Observations dropped because start == end", source);
    // The batch sanitation verdicts are per-build(), not monotone, so
    // they surface as gauges describing the most recent build.
    metrics_.rejectedCoarse = &metrics->gauge(
        "moloc_builder_rejected_coarse",
        "Samples the coarse filter rejected in the last build()");
    metrics_.rejectedFine = &metrics->gauge(
        "moloc_builder_rejected_fine",
        "Samples the fine filter rejected in the last build()");
    metrics_.underMinSamples = &metrics->gauge(
        "moloc_builder_under_min_samples",
        "Pairs dropped for too few surviving samples in the last "
        "build()");
    metrics_.pairsStored = &metrics->gauge(
        "moloc_builder_pairs_stored",
        "Undirected pairs stored by the last build()");
  }
#else
  (void)metrics;
#endif
}

void MotionDatabaseBuilder::addObservation(env::LocationId estimatedStart,
                                           env::LocationId estimatedEnd,
                                           double directionDeg,
                                           double offsetMeters) {
  // Validate ids eagerly (throws on bad ids).
  (void)plan_.location(estimatedStart);
  (void)plan_.location(estimatedEnd);
  if (!std::isfinite(directionDeg) || !std::isfinite(offsetMeters) ||
      offsetMeters < 0.0)
    throw util::ConfigError(
        "MotionDatabaseBuilder: non-finite or negative measurement");

  ++observations_;
#if MOLOC_METRICS_ENABLED
  if (metrics_.observations) metrics_.observations->inc();
#endif
  if (estimatedStart == estimatedEnd) {
    ++droppedSelfPairs_;
#if MOLOC_METRICS_ENABLED
    if (metrics_.selfPairs) metrics_.selfPairs->inc();
#endif
    return;
  }

  // Data reassembling: anchor every RLM on the smaller-ID endpoint,
  // mirroring the direction (mutual reachability, Sec. IV.B.2).
  env::LocationId i = estimatedStart;
  env::LocationId j = estimatedEnd;
  double d = geometry::normalizeDeg(directionDeg);
  if (i > j) {
    std::swap(i, j);
    d = geometry::reverseHeadingDeg(d);
  }
  raw_[{i, j}].push_back({d, offsetMeters});
}

std::size_t MotionDatabaseBuilder::pendingObservations() const {
  std::size_t count = 0;
  for (const auto& [key, obs] : raw_) count += obs.size();
  return count;
}

MotionDatabase MotionDatabaseBuilder::build() const {
  BuilderReport report;
  return build(report);
}

MotionDatabase MotionDatabaseBuilder::build(BuilderReport& report) const {
  report = BuilderReport{};
  report.observations = observations_;
  report.droppedSelfPairs = droppedSelfPairs_;

  MotionDatabase db(plan_.locationCount());

  for (const auto& [key, observations] : raw_) {
    const auto [i, j] = key;
    const auto posI = plan_.location(i).pos;
    const auto posJ = plan_.location(j).pos;
    // The coarse reference: the RLM computed from map coordinates
    // (straight line — the paper's "calculated by their corresponding
    // coordinates").
    const double mapDirection = geometry::headingBetweenDeg(posI, posJ);
    const double mapOffset = geometry::distance(posI, posJ);

    std::vector<double> directions;
    std::vector<double> offsets;
    for (const auto& obs : observations) {
      if (config_.enableCoarseFilter) {
        const bool directionOk =
            geometry::angularDistDeg(obs.directionDeg, mapDirection) <=
            config_.coarseDirectionThresholdDeg;
        const bool offsetOk =
            std::abs(obs.offsetMeters - mapOffset) <=
            config_.coarseOffsetThresholdMeters;
        if (!directionOk || !offsetOk) {
          ++report.rejectedCoarse;
          continue;
        }
      }
      directions.push_back(obs.directionDeg);
      offsets.push_back(obs.offsetMeters);
    }

    if (static_cast<int>(directions.size()) < config_.minSamplesPerPair) {
      ++report.underMinSamples;
      continue;
    }

    RlmStats stats = fitGaussians(directions, offsets);

    if (config_.enableFineFilter) {
      // Drop samples beyond k sigma of the first fit, then refit.
      const double dirLimit = config_.fineSigmaMultiplier *
                              std::max(stats.sigmaDirectionDeg,
                                       config_.minDirectionSigmaDeg);
      const double offLimit = config_.fineSigmaMultiplier *
                              std::max(stats.sigmaOffsetMeters,
                                       config_.minOffsetSigmaMeters);
      std::vector<double> keptDirections;
      std::vector<double> keptOffsets;
      for (std::size_t s = 0; s < directions.size(); ++s) {
        const bool directionOk =
            geometry::angularDistDeg(directions[s],
                                     stats.muDirectionDeg) <= dirLimit;
        const bool offsetOk =
            std::abs(offsets[s] - stats.muOffsetMeters) <= offLimit;
        if (directionOk && offsetOk) {
          keptDirections.push_back(directions[s]);
          keptOffsets.push_back(offsets[s]);
        } else {
          ++report.rejectedFine;
        }
      }
      if (static_cast<int>(keptDirections.size()) <
          config_.minSamplesPerPair) {
        ++report.underMinSamples;
        continue;
      }
      stats = fitGaussians(keptDirections, keptOffsets);
    }

    stats.sigmaDirectionDeg =
        std::max(stats.sigmaDirectionDeg, config_.minDirectionSigmaDeg);
    stats.sigmaOffsetMeters =
        std::max(stats.sigmaOffsetMeters, config_.minOffsetSigmaMeters);

    db.setEntryWithMirror(i, j, stats);
    ++report.pairsStored;
  }

#if MOLOC_METRICS_ENABLED
  if (metrics_.rejectedCoarse) {
    metrics_.rejectedCoarse->set(
        static_cast<double>(report.rejectedCoarse));
    metrics_.rejectedFine->set(static_cast<double>(report.rejectedFine));
    metrics_.underMinSamples->set(
        static_cast<double>(report.underMinSamples));
    metrics_.pairsStored->set(static_cast<double>(report.pairsStored));
  }
#endif
  return db;
}

}  // namespace moloc::core
