#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/candidate_estimator.hpp"
#include "core/motion_database.hpp"
#include "kernel/motion_kernel.hpp"
#include "sensors/motion_processor.hpp"

namespace moloc::core {

/// A location carrying a probability — the shape of both the previous
/// candidate set S of Eq. 6 and the posterior set the engine retains.
struct WeightedCandidate {
  env::LocationId location = 0;
  double probability = 0.0;
};

/// Parameters of the motion matching unit (Sec. V.B).
struct MotionMatcherParams {
  /// Discretization interval of the direction Gaussian (Eq. 5's alpha).
  /// The paper sets 20 degrees from the motion DB's direction sigmas.
  double alphaDeg = 20.0;
  /// Discretization interval of the offset Gaussian (Eq. 5's beta).
  /// The paper sets 1 m from the motion DB's offset sigmas.
  double betaMeters = 1.0;
  /// Probability floor for pairs without a motion-DB entry, so a single
  /// missing edge cannot zero the posterior (see DESIGN.md).
  double unreachableFloor = 1e-6;
  /// Whether a candidate may explain the motion by staying put (i == j).
  bool allowStationary = true;
  /// Offset sigma (m) of the stationary model: lingering users still
  /// register small offsets from sensor noise.
  double stationarySigmaMeters = 0.5;
};

/// The motion matching unit: evaluates how well a measured (direction,
/// offset) pair matches the motion database between locations.
///
/// Scoring runs on a kernel::MotionAdjacency — a CSR view of the
/// database holding only populated pairs with their window constants
/// (1/(sigma*sqrt(2))) precomputed.  The matcher *owns a share of* its
/// adjacency (shared_ptr<const>) rather than caching one against a
/// database reference: the index is built eagerly at construction (or
/// adopted prebuilt from a published core::WorldSnapshot) and is
/// immutable thereafter, so every scoring method is const, lock-free,
/// and safe to call from any number of threads concurrently.  Scoring
/// also stays valid after the source database is destroyed — the
/// matcher never dereferences it again.
///
/// The previous design kept a lazily-synced cache keyed by a
/// process-wide version stamp; a destroyed database whose address was
/// reused could alias a stale cache (ABA).  Snapshot ownership removes
/// the identity comparison entirely.  The cost is that a database
/// mutation after construction is *not* seen; callers that serve over
/// an evolving OnlineMotionDatabase adopt each published snapshot via
/// rebind() (the serving layer does this per session under its slot
/// lock — see docs/serving.md).
class MotionMatcher {
 public:
  /// Builds a private adjacency from `db`'s current contents.  `db` is
  /// not retained.
  MotionMatcher(const MotionDatabase& db, MotionMatcherParams params = {});

  /// Adopts a prebuilt immutable adjacency (e.g. one owned by a
  /// published WorldSnapshot).  Throws std::invalid_argument on null.
  explicit MotionMatcher(
      std::shared_ptr<const kernel::MotionAdjacency> adjacency,
      MotionMatcherParams params = {});

  /// Swaps in a newer adjacency (a freshly published snapshot's).  Not
  /// synchronized with concurrent scoring on *this* matcher — callers
  /// serialize rebind against their own scoring, which the serving
  /// layer's per-session lock already does.  Throws on null.
  void rebind(std::shared_ptr<const kernel::MotionAdjacency> adjacency);

  const MotionMatcherParams& params() const { return params_; }

  /// Eq. 5: P_ij(d, o) = D_ij(d) * O_ij(o), the product of the
  /// discretized direction and offset Gaussian integrals.  Directions
  /// are handled circularly (the integration window is recentred on the
  /// wrapped deviation from the stored mean).  Unknown pairs return the
  /// configured floor; i == j uses the stationary model when enabled.
  double pairProbability(env::LocationId i, env::LocationId j,
                         const sensors::MotionMeasurement& motion) const;

  /// Eq. 6: the probability of arriving at `j` from the previous
  /// candidate set, marginalizing over candidates' probabilities:
  /// P_{S,j}(d,o) = sum_i P(x=i) P_ij(d,o).
  double setProbability(
      std::span<const WeightedCandidate> previousCandidates,
      env::LocationId j, const sensors::MotionMeasurement& motion) const;

  /// Eq. 6 over a whole candidate set at once: fills `out` (clearing it
  /// first) with out[c] = setProbability(previousCandidates,
  /// candidates[c], motion), bitwise-identical to the per-j calls.  The
  /// work shared across the set — summing the prior mass and the
  /// stationary probability (which depends only on the measurement, not
  /// on j) — is done once per batch instead of once per candidate.
  void scoreCandidates(std::span<const WeightedCandidate> previousCandidates,
                       std::span<const env::LocationId> candidates,
                       const sensors::MotionMeasurement& motion,
                       std::vector<double>& out) const;

  /// The direction factor D_ij alone; exposed for tests and ablations.
  double directionFactor(const RlmStats& stats, double directionDeg) const;

  /// The offset factor O_ij alone; exposed for tests and ablations.
  double offsetFactor(const RlmStats& stats, double offsetMeters) const;

  /// The adjacency this matcher scores against (immutable once built);
  /// exposed for tests and so benchmarks can inspect the index.
  const kernel::MotionAdjacency& adjacency() const { return *adj_; }

  /// The same adjacency as a shareable handle — what a session hands
  /// to a twin matcher, or a test uses to pin a snapshot's index.
  const std::shared_ptr<const kernel::MotionAdjacency>& adjacencyPtr()
      const {
    return adj_;
  }

 private:
  /// setProbability for one j with the batch-invariant inputs supplied
  /// by the caller.  `stationaryP` is the precomputed i == j
  /// probability; `totalPrior` the prior mass of `prev`, summed in
  /// iteration order.
  double scoreOne(std::span<const WeightedCandidate> prev,
                  env::LocationId j,
                  const sensors::MotionMeasurement& motion,
                  double stationaryP, double totalPrior) const;

  /// The i == j probability: max(stationary direction x offset, floor).
  double stationaryProbability(
      const sensors::MotionMeasurement& motion) const;

  /// directionFactor/offsetFactor on a precomputed window —
  /// bitwise-identical to the RlmStats overloads.
  double windowDirectionFactor(const kernel::PairWindow& w,
                               double directionDeg) const;
  double windowOffsetFactor(const kernel::PairWindow& w,
                            double offsetMeters) const;

  /// Throws std::out_of_range when (i, j) is outside the adjacency's
  /// location range, so the CSR fast path rejects bad ids exactly like
  /// the dense MotionDatabase::entry lookup did.
  void requireValidPair(env::LocationId i, env::LocationId j) const;

  /// Immutable once built; shared so the owning snapshot (and any twin
  /// matcher) stays alive while this matcher can still score.
  std::shared_ptr<const kernel::MotionAdjacency> adj_;
  MotionMatcherParams params_;
};

/// The probability mass of a N(mu, sigma) variable inside
/// [x - halfWidth, x + halfWidth]; the building block of Eq. 5.
/// Degenerate sigma (zero, negative, or NaN) returns 1 when
/// |x - mu| <= halfWidth, else 0 — a NaN sigma previously leaked into
/// the erf math and poisoned the result.  sigma = +inf is not
/// degenerate: the erf arguments collapse to 0 and the window honestly
/// claims no mass.
double gaussianWindowProbability(double x, double halfWidth, double mu,
                                 double sigma);

/// The circular-direction building block of Eq. 5: the mass of a
/// zero-mean N(0, sigma) deviation inside the window
/// [deviation - halfWidth, deviation + halfWidth] with the bounds
/// clamped to the circle's extent [-180, 180], so a window wider than
/// the circle cannot claim mass beyond the antipode.  `deviationDeg`
/// must already be wrapped into (-180, 180].  Degenerate sigma (zero,
/// negative, or NaN) is an indicator, as above.
double circularGaussianWindowProbability(double deviationDeg,
                                         double halfWidthDeg,
                                         double sigmaDeg);

}  // namespace moloc::core
