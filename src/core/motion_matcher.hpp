#pragma once

#include <span>
#include <vector>

#include "core/candidate_estimator.hpp"
#include "core/motion_database.hpp"
#include "kernel/motion_kernel.hpp"
#include "sensors/motion_processor.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::core {

/// A location carrying a probability — the shape of both the previous
/// candidate set S of Eq. 6 and the posterior set the engine retains.
struct WeightedCandidate {
  env::LocationId location = 0;
  double probability = 0.0;
};

/// Parameters of the motion matching unit (Sec. V.B).
struct MotionMatcherParams {
  /// Discretization interval of the direction Gaussian (Eq. 5's alpha).
  /// The paper sets 20 degrees from the motion DB's direction sigmas.
  double alphaDeg = 20.0;
  /// Discretization interval of the offset Gaussian (Eq. 5's beta).
  /// The paper sets 1 m from the motion DB's offset sigmas.
  double betaMeters = 1.0;
  /// Probability floor for pairs without a motion-DB entry, so a single
  /// missing edge cannot zero the posterior (see DESIGN.md).
  double unreachableFloor = 1e-6;
  /// Whether a candidate may explain the motion by staying put (i == j).
  bool allowStationary = true;
  /// Offset sigma (m) of the stationary model: lingering users still
  /// register small offsets from sensor noise.
  double stationarySigmaMeters = 0.5;
};

/// The motion matching unit: evaluates how well a measured (direction,
/// offset) pair matches the motion database between locations.
///
/// Scoring runs on a cached kernel::MotionAdjacency — a CSR view of the
/// database holding only populated pairs with their window constants
/// (1/(sigma*sqrt(2))) precomputed.  The cache is synced lazily against
/// MotionDatabase::version(), so it rebuilds itself after any mutation,
/// including an OnlineMotionDatabase publishing a refit.  The cache's
/// sync-and-read is serialized on an internal mutex, so matchers shared
/// across threads no longer race on the rebuild; the *database* they
/// score against must still be stable while scoring runs (the serving
/// layer's per-session locking and immutable serving copies ensure it).
class MotionMatcher {
 public:
  MotionMatcher(const MotionDatabase& db, MotionMatcherParams params = {});

  const MotionMatcherParams& params() const { return params_; }

  /// Eq. 5: P_ij(d, o) = D_ij(d) * O_ij(o), the product of the
  /// discretized direction and offset Gaussian integrals.  Directions
  /// are handled circularly (the integration window is recentred on the
  /// wrapped deviation from the stored mean).  Unknown pairs return the
  /// configured floor; i == j uses the stationary model when enabled.
  double pairProbability(env::LocationId i, env::LocationId j,
                         const sensors::MotionMeasurement& motion) const;

  /// Eq. 6: the probability of arriving at `j` from the previous
  /// candidate set, marginalizing over candidates' probabilities:
  /// P_{S,j}(d,o) = sum_i P(x=i) P_ij(d,o).
  double setProbability(
      std::span<const WeightedCandidate> previousCandidates,
      env::LocationId j, const sensors::MotionMeasurement& motion) const;

  /// Eq. 6 over a whole candidate set at once: fills `out` (clearing it
  /// first) with out[c] = setProbability(previousCandidates,
  /// candidates[c], motion), bitwise-identical to the per-j calls.  The
  /// work shared across the set — syncing the adjacency cache, summing
  /// the prior mass, and the stationary probability (which depends only
  /// on the measurement, not on j) — is done once per batch instead of
  /// once per candidate.
  void scoreCandidates(std::span<const WeightedCandidate> previousCandidates,
                       std::span<const env::LocationId> candidates,
                       const sensors::MotionMeasurement& motion,
                       std::vector<double>& out) const;

  /// The direction factor D_ij alone; exposed for tests and ablations.
  double directionFactor(const RlmStats& stats, double directionDeg) const;

  /// The offset factor O_ij alone; exposed for tests and ablations.
  double offsetFactor(const RlmStats& stats, double offsetMeters) const;

  /// The adjacency cache, synced to the database first; exposed so
  /// tests can observe rebuild-on-mutation and benchmarks can prebuild.
  const kernel::MotionAdjacency& adjacency() const;

 private:
  /// setProbability for one j with the batch-invariant inputs supplied
  /// by the caller.  `stationaryP` is the precomputed i == j
  /// probability; `totalPrior` the prior mass of `prev`, summed in
  /// iteration order.
  double scoreOne(std::span<const WeightedCandidate> prev,
                  env::LocationId j,
                  const sensors::MotionMeasurement& motion,
                  double stationaryP, double totalPrior) const
      MOLOC_REQUIRES(cacheMu_);

  /// The i == j probability: max(stationary direction x offset, floor).
  double stationaryProbability(
      const sensors::MotionMeasurement& motion) const;

  /// directionFactor/offsetFactor on a precomputed window —
  /// bitwise-identical to the RlmStats overloads.
  double windowDirectionFactor(const kernel::PairWindow& w,
                               double directionDeg) const;
  double windowOffsetFactor(const kernel::PairWindow& w,
                            double offsetMeters) const;

  /// Throws the dense lookup's std::out_of_range when (i, j) is outside
  /// the database, so the CSR fast path rejects bad ids exactly like
  /// MotionDatabase::entry did.
  void requireValidPair(env::LocationId i, env::LocationId j) const;

  const MotionDatabase& db_;
  MotionMatcherParams params_;
  /// Serializes the lazy sync-and-read of adj_: without it, two
  /// threads scoring through one shared matcher after a database
  /// mutation would rebuild the CSR cache concurrently.
  mutable util::Mutex cacheMu_;
  /// Lazily synced CSR view of db_; mutable because const scoring
  /// methods refresh it on first use after a database mutation.
  mutable kernel::MotionAdjacency adj_ MOLOC_GUARDED_BY(cacheMu_);
};

/// The probability mass of a N(mu, sigma) variable inside
/// [x - halfWidth, x + halfWidth]; the building block of Eq. 5.
/// Degenerate sigma (zero, negative, or NaN) returns 1 when
/// |x - mu| <= halfWidth, else 0 — a NaN sigma previously leaked into
/// the erf math and poisoned the result.  sigma = +inf is not
/// degenerate: the erf arguments collapse to 0 and the window honestly
/// claims no mass.
double gaussianWindowProbability(double x, double halfWidth, double mu,
                                 double sigma);

/// The circular-direction building block of Eq. 5: the mass of a
/// zero-mean N(0, sigma) deviation inside the window
/// [deviation - halfWidth, deviation + halfWidth] with the bounds
/// clamped to the circle's extent [-180, 180], so a window wider than
/// the circle cannot claim mass beyond the antipode.  `deviationDeg`
/// must already be wrapped into (-180, 180].  Degenerate sigma (zero,
/// negative, or NaN) is an indicator, as above.
double circularGaussianWindowProbability(double deviationDeg,
                                         double halfWidthDeg,
                                         double sigmaDeg);

}  // namespace moloc::core
