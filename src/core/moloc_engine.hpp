#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/candidate_estimator.hpp"
#include "core/motion_database.hpp"
#include "core/motion_matcher.hpp"
#include "obs/metrics.hpp"
#include "radio/fingerprint_database.hpp"
#include "sensors/motion_processor.hpp"

namespace moloc::core {

/// Tunables of the localization engine (Sec. V).
struct MoLocConfig {
  std::size_t candidateCount = 12;  ///< k, the candidate set size.
  MotionMatcherParams matcher;
  /// Optional observability sink: a non-null registry receives the
  /// per-stage timers (`moloc_engine_stage_seconds{stage=...}`) and
  /// the candidate-set size distribution (`moloc_engine_candidates`).
  /// Metrics never influence estimates; the field is inert when the
  /// build sets MOLOC_METRICS=OFF.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The engine's answer for one query: the top-ranked location plus the
/// full candidate set retained for the next round.
///
/// A default-constructed estimate is the well-defined "no fix" answer
/// (empty candidate set, zero probability) the engine returns when the
/// candidate source yields nothing; check hasFix() before consuming
/// `location`.
struct LocationEstimate {
  env::LocationId location = 0;
  double probability = 0.0;
  std::vector<WeightedCandidate> candidates;

  /// True when the engine produced a ranked answer this round.
  bool hasFix() const { return !candidates.empty(); }

  /// Shannon entropy of the posterior, normalized to [0, 1] by the
  /// maximum log(k): 0 = certain, 1 = uniform over the candidates.
  /// Applications use this as a confidence signal (e.g. suppress the
  /// position dot until the posterior sharpens).
  double normalizedEntropy() const;
};

/// The MoLoc localization engine (Fig. 2, right; Sec. V.C).
///
/// The first fix ranks candidates by fingerprint alone (Eq. 3-4); each
/// subsequent fix combines the new fingerprint's candidate probabilities
/// with the motion-matching probability from the retained previous
/// candidate set (Eq. 6) via the normalized independence product of
/// Eq. 7, and the posterior candidate set is carried forward.
///
/// When a localization interval carries no usable motion (the user stood
/// still, or step detection failed), `localize` falls back to the
/// fingerprint-only update but still refreshes the candidate set, so the
/// engine degrades to plain fingerprinting rather than stalling.
class MoLocEngine {
 public:
  /// The databases must outlive the engine.
  MoLocEngine(const radio::FingerprintDatabase& fingerprints,
              const MotionDatabase& motion, MoLocConfig config = {});

  /// Variant using the Horus-style probabilistic radio map as the
  /// candidate source (extension; the paper uses the deterministic
  /// matcher above).
  MoLocEngine(const radio::ProbabilisticFingerprintDatabase& fingerprints,
              const MotionDatabase& motion, MoLocConfig config = {});

  /// Variant with an explicit candidate source (e.g. a custom
  /// CandidateEstimator backend); `config.candidateCount` is ignored in
  /// favour of the estimator's own k.
  MoLocEngine(CandidateEstimator estimator, const MotionDatabase& motion,
              MoLocConfig config = {});

  const MoLocConfig& config() const { return config_; }

  /// True once at least one fix has been produced since construction or
  /// the last reset().
  bool hasHistory() const { return !previous_.empty(); }

  /// Forgets the retained candidate set (start of a new walk).
  void reset() { previous_.clear(); }

  /// One localization round.  Pass the motion measured since the last
  /// round; pass nullopt for the first fix of a walk or when no motion
  /// was detected.
  LocationEstimate localize(
      const radio::Fingerprint& query,
      const std::optional<sensors::MotionMeasurement>& motion);

  /// Variant of localize() for a caller that already ran candidate
  /// estimation — e.g. the serving layer, which batches every scan in a
  /// localizeBatch() into one fingerprint-kernel invocation.
  /// `candidates` must be exactly what this engine's estimator would
  /// yield for the query; given that, the estimate is bitwise-identical
  /// to localize().  The fingerprint stage timer is not observed here
  /// (that work happened in the caller); the candidate-set size and the
  /// motion/fusion stages are.
  LocationEstimate localizeWithCandidates(
      std::span<const Candidate> candidates,
      const std::optional<sensors::MotionMeasurement>& motion);

  /// The retained candidate set (posterior of the last fix).
  std::span<const WeightedCandidate> retainedCandidates() const {
    return previous_;
  }

  /// Swaps the motion matcher onto a newer adjacency (a freshly
  /// published WorldSnapshot's index).  Retained candidates survive —
  /// the next fix scores them against the new motion world.  Callers
  /// serialize this with localize() on the same engine (the serving
  /// layer's per-session lock does).  Throws on null.
  void rebindMotion(
      std::shared_ptr<const kernel::MotionAdjacency> adjacency) {
    matcher_.rebind(std::move(adjacency));
  }

  /// The adjacency the motion matcher currently scores against.
  const std::shared_ptr<const kernel::MotionAdjacency>& motionAdjacency()
      const {
    return matcher_.adjacencyPtr();
  }

 private:
  /// Shared back half of localize()/localizeWithCandidates(): motion
  /// scoring (Eq. 5-6 via the matcher's batch path), Eq. 7 fusion, and
  /// ranking for one already-estimated candidate set.
  LocationEstimate fuse(std::span<const Candidate> candidates,
                        const std::optional<sensors::MotionMeasurement>& motion);

  LocationEstimate finalize(std::vector<WeightedCandidate> scored);

  /// Registers the Eq. 1-7 pipeline instruments when config_.metrics
  /// is set (called from every constructor).
  void initMetrics();

  CandidateEstimator estimator_;
  MotionMatcher matcher_;
  MoLocConfig config_;
  std::vector<WeightedCandidate> previous_;
  /// Reused across localize() rounds so the per-query candidate list
  /// does not allocate on the serving hot path.
  std::vector<Candidate> candidateScratch_;
  /// Scratch for the batched Eq. 6 call (candidate ids in, scores out);
  /// reused across rounds for the same reason.
  std::vector<env::LocationId> motionIdScratch_;
  std::vector<double> motionScoreScratch_;

#if MOLOC_METRICS_ENABLED
  obs::Histogram* stageFingerprint_ = nullptr;  ///< Eq. 3-4 matching.
  obs::Histogram* stageMotion_ = nullptr;       ///< Eq. 5-6 scoring.
  obs::Histogram* stageFusion_ = nullptr;       ///< Eq. 7 + ranking.
  obs::Histogram* candidateSetSize_ = nullptr;
#endif
};

}  // namespace moloc::core
