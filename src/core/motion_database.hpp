#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>

#include "env/floor_plan.hpp"

namespace moloc::core {

/// The Gaussian relative-location-measurement model between one ordered
/// pair of locations: means and standard deviations of the walking
/// direction and offset (the quadruple stored per matrix entry in
/// Sec. IV.C).
struct RlmStats {
  double muDirectionDeg = 0.0;
  double sigmaDirectionDeg = 0.0;
  double muOffsetMeters = 0.0;
  double sigmaOffsetMeters = 0.0;
  int sampleCount = 0;
};

/// The motion database: an n x n matrix M where entry M[i][j] models
/// the RLM from location i to location j (Sec. IV.C).
///
/// Entries are optional — most pairs are not adjacent and never receive
/// crowdsourced measurements; the localization engine treats a missing
/// entry as "no known walkable leg".
///
/// Storage is sparse (keyed by the row-major pair index): real venues
/// have O(n) walkable legs, and a dense n^2 table is intractable at the
/// 10k–100k locations the worldgen venues reach.
class MotionDatabase {
 public:
  MotionDatabase() = default;
  explicit MotionDatabase(std::size_t locationCount);

  std::size_t locationCount() const { return n_; }

  /// Stores M[i][j].  Throws std::out_of_range on bad ids.
  void setEntry(env::LocationId i, env::LocationId j, RlmStats stats);

  /// Stores M[i][j] and its mutual-reachability mirror M[j][i]
  /// (reverse direction = mu + 180 mod 360, same offset and sigmas —
  /// the rule of Sec. IV.B.2).
  void setEntryWithMirror(env::LocationId i, env::LocationId j,
                          RlmStats stats);

  /// Removes M[i][j] if present; returns whether an entry was removed.
  /// Throws std::out_of_range on bad ids.
  bool clearEntry(env::LocationId i, env::LocationId j);

  /// Removes M[i][j] and its mirror M[j][i]; returns whether either
  /// existed.  The inverse of setEntryWithMirror — used when an online
  /// refit decides a published pair is no longer supported by its
  /// samples.
  bool clearEntryWithMirror(env::LocationId i, env::LocationId j);

  bool hasEntry(env::LocationId i, env::LocationId j) const;

  /// M[i][j], or nullopt when the pair was never learned.
  std::optional<RlmStats> entry(env::LocationId i, env::LocationId j) const;

  /// Number of populated directed entries.
  std::size_t entryCount() const { return entries_.size(); }

  /// Calls fn(i, j, stats) for every populated directed entry, in
  /// row-major (i, then j) order — how kernel::MotionAdjacency builds
  /// its CSR index without n^2 entry() copies.  The ordered map key is
  /// the row-major pair index, so in-order iteration is exactly that.
  template <typename Fn>
  void forEachEntry(Fn&& fn) const {
    for (const auto& [idx, stats] : entries_)
      fn(static_cast<env::LocationId>(idx / n_),
         static_cast<env::LocationId>(idx % n_), stats);
  }

 private:
  std::uint64_t index(env::LocationId i, env::LocationId j) const;
  void checkIds(env::LocationId i, env::LocationId j) const;

  std::size_t n_ = 0;
  std::map<std::uint64_t, RlmStats> entries_;
};

}  // namespace moloc::core
