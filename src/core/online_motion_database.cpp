#include "core/online_motion_database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/stats.hpp"

namespace moloc::core {

OnlineMotionDatabase::OnlineMotionDatabase(const env::FloorPlan& plan,
                                           BuilderConfig config,
                                           std::size_t reservoirCapacity,
                                           std::uint64_t seed,
                                           obs::MetricsRegistry* metrics)
    : plan_(plan),
      config_(config),
      capacity_(reservoirCapacity),
      rng_(seed),
      db_(plan.locationCount()) {
  if (reservoirCapacity <
      static_cast<std::size_t>(std::max(config.minSamplesPerPair, 1)))
    throw std::invalid_argument(
        "OnlineMotionDatabase: reservoir smaller than the per-pair "
        "sample minimum");
#if MOLOC_METRICS_ENABLED
  if (metrics) {
    const obs::Labels source{{"source", "online"}};
    metrics_.observations = &metrics->counter(
        "moloc_intake_observations_total",
        "Crowdsourced RLM observations offered to the intake", source);
    metrics_.accepted = &metrics->counter(
        "moloc_intake_accepted_total",
        "Observations accepted into a reservoir", source);
    metrics_.rejectedCoarse = &metrics->counter(
        "moloc_intake_rejected_total",
        "Observations or samples rejected by a sanitation filter",
        {{"source", "online"}, {"filter", "coarse"}});
    metrics_.rejectedFine = &metrics->counter(
        "moloc_intake_rejected_total",
        "Observations or samples rejected by a sanitation filter",
        {{"source", "online"}, {"filter", "fine"}});
    metrics_.selfPairs = &metrics->counter(
        "moloc_intake_self_pairs_total",
        "Observations dropped because start == end", source);
    metrics_.staleInvalidated = &metrics->counter(
        "moloc_intake_stale_invalidated_total",
        "Published pair entries removed after a refit fell below the "
        "per-pair sample minimum",
        source);
  }
#else
  (void)metrics;
#endif
}

bool OnlineMotionDatabase::addObservation(env::LocationId estimatedStart,
                                          env::LocationId estimatedEnd,
                                          double directionDeg,
                                          double offsetMeters) {
  // Validate the measurement before the location lookups: a corrupt
  // (direction, offset) must report invalid_argument even when the
  // ids are bad too, so callers can tell poisoned measurements from
  // stale/unknown location ids.
  if (!std::isfinite(directionDeg) || !std::isfinite(offsetMeters) ||
      offsetMeters < 0.0)
    throw std::invalid_argument(
        "OnlineMotionDatabase: non-finite or negative measurement");
  const auto& startLoc = plan_.location(estimatedStart);
  const auto& endLoc = plan_.location(estimatedEnd);
  ++counters_.observations;
#if MOLOC_METRICS_ENABLED
  if (metrics_.observations) metrics_.observations->inc();
#endif

  if (estimatedStart == estimatedEnd) {
    ++counters_.droppedSelfPairs;
#if MOLOC_METRICS_ENABLED
    if (metrics_.selfPairs) metrics_.selfPairs->inc();
#endif
    return false;
  }

  // Reassemble onto the smaller-ID endpoint.
  env::LocationId i = estimatedStart;
  env::LocationId j = estimatedEnd;
  double d = geometry::normalizeDeg(directionDeg);
  geometry::Vec2 posI = startLoc.pos;
  geometry::Vec2 posJ = endLoc.pos;
  if (i > j) {
    std::swap(i, j);
    std::swap(posI, posJ);
    d = geometry::reverseHeadingDeg(d);
  }

  // Coarse filter at intake (vs the straight-line map RLM).
  if (config_.enableCoarseFilter) {
    const double mapDirection = geometry::headingBetweenDeg(posI, posJ);
    const double mapOffset = geometry::distance(posI, posJ);
    const bool directionOk =
        geometry::angularDistDeg(d, mapDirection) <=
        config_.coarseDirectionThresholdDeg;
    const bool offsetOk = std::abs(offsetMeters - mapOffset) <=
                          config_.coarseOffsetThresholdMeters;
    if (!directionOk || !offsetOk) {
      ++counters_.rejectedCoarse;
#if MOLOC_METRICS_ENABLED
      if (metrics_.rejectedCoarse) metrics_.rejectedCoarse->inc();
#endif
      return false;
    }
  }

  auto& reservoir = reservoirs_[{i, j}];
  ++reservoir.seen;
  if (reservoir.samples.size() < capacity_) {
    reservoir.samples.push_back({d, offsetMeters});
  } else {
    // Uniform reservoir sampling (Algorithm R): keep the newcomer with
    // probability capacity / seen.  The slot draw is a full-width
    // 64-bit index — `seen` outgrows int long before a busy pair's
    // stream ends, and truncating it would first skew the draw and
    // then (past 2^63) hand uniformInt a negative bound.
    const std::uint64_t slot = rng_.uniformIndex(reservoir.seen);
    if (slot < capacity_)
      reservoir.samples[static_cast<std::size_t>(slot)] = {d,
                                                           offsetMeters};
  }
  ++counters_.accepted;
#if MOLOC_METRICS_ENABLED
  if (metrics_.accepted) metrics_.accepted->inc();
#endif

  refit({i, j}, reservoir);
  return true;
}

void OnlineMotionDatabase::refit(const PairKey& key,
                                 const Reservoir& reservoir) {
  if (static_cast<int>(reservoir.samples.size()) <
      config_.minSamplesPerPair) {
    // Reservoirs only grow, so a published entry cannot regress to
    // this branch — but keep the invariant locally enforced anyway.
    invalidateStaleEntry(key);
    return;
  }

  auto fit = [](const std::vector<double>& directions,
                const std::vector<double>& offsets) {
    RlmStats stats;
    stats.sampleCount = static_cast<int>(directions.size());
    stats.muDirectionDeg = geometry::circularMeanDeg(directions);
    std::vector<double> devs;
    devs.reserve(directions.size());
    for (double d : directions)
      devs.push_back(
          geometry::signedAngularDiffDeg(stats.muDirectionDeg, d));
    stats.sigmaDirectionDeg = util::stddev(devs);
    stats.muOffsetMeters = util::mean(offsets);
    stats.sigmaOffsetMeters = util::stddev(offsets);
    return stats;
  };

  std::vector<double> directions;
  std::vector<double> offsets;
  directions.reserve(reservoir.samples.size());
  offsets.reserve(reservoir.samples.size());
  for (const auto& s : reservoir.samples) {
    directions.push_back(s.directionDeg);
    offsets.push_back(s.offsetMeters);
  }

  RlmStats stats = fit(directions, offsets);

  if (config_.enableFineFilter) {
    const double dirLimit =
        config_.fineSigmaMultiplier *
        std::max(stats.sigmaDirectionDeg, config_.minDirectionSigmaDeg);
    const double offLimit =
        config_.fineSigmaMultiplier *
        std::max(stats.sigmaOffsetMeters, config_.minOffsetSigmaMeters);
    std::vector<double> keptDirections;
    std::vector<double> keptOffsets;
    for (std::size_t s = 0; s < directions.size(); ++s) {
      if (geometry::angularDistDeg(directions[s],
                                   stats.muDirectionDeg) <= dirLimit &&
          std::abs(offsets[s] - stats.muOffsetMeters) <= offLimit) {
        keptDirections.push_back(directions[s]);
        keptOffsets.push_back(offsets[s]);
      }
    }
    const std::size_t excluded =
        directions.size() - keptDirections.size();
    if (excluded > 0) {
      counters_.rejectedFine += excluded;
#if MOLOC_METRICS_ENABLED
      if (metrics_.rejectedFine)
        metrics_.rejectedFine->inc(static_cast<double>(excluded));
#endif
    }
    if (static_cast<int>(keptDirections.size()) <
        config_.minSamplesPerPair) {
      // The fine filter no longer supports this pair.  Keeping the
      // previously published Gaussian would let the database disagree
      // with the reservoir forever, so withdraw it instead.
      invalidateStaleEntry(key);
      return;
    }
    stats = fit(keptDirections, keptOffsets);
  }

  stats.sigmaDirectionDeg =
      std::max(stats.sigmaDirectionDeg, config_.minDirectionSigmaDeg);
  stats.sigmaOffsetMeters =
      std::max(stats.sigmaOffsetMeters, config_.minOffsetSigmaMeters);
  db_.setEntryWithMirror(key.first, key.second, stats);
}

void OnlineMotionDatabase::invalidateStaleEntry(const PairKey& key) {
  if (!db_.hasEntry(key.first, key.second)) return;
  db_.clearEntryWithMirror(key.first, key.second);
  ++counters_.staleInvalidations;
#if MOLOC_METRICS_ENABLED
  if (metrics_.staleInvalidated) metrics_.staleInvalidated->inc();
#endif
}

std::vector<OnlineMotionDatabase::ReservoirSample>
OnlineMotionDatabase::reservoirSamples(env::LocationId i,
                                       env::LocationId j) const {
  (void)plan_.location(i);  // Validate ids like the write path does.
  (void)plan_.location(j);
  const PairKey key = i <= j ? PairKey{i, j} : PairKey{j, i};
  const auto it = reservoirs_.find(key);
  std::vector<ReservoirSample> samples;
  if (it == reservoirs_.end()) return samples;
  samples.reserve(it->second.samples.size());
  for (const auto& s : it->second.samples)
    samples.push_back({s.directionDeg, s.offsetMeters});
  return samples;
}

}  // namespace moloc::core
