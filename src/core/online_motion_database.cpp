#include "core/online_motion_database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/stats.hpp"

namespace moloc::core {

OnlineMotionDatabase::OnlineMotionDatabase(const env::FloorPlan& plan,
                                           BuilderConfig config,
                                           std::size_t reservoirCapacity,
                                           std::uint64_t seed)
    : plan_(plan),
      config_(config),
      capacity_(reservoirCapacity),
      rng_(seed),
      db_(plan.locationCount()) {
  if (reservoirCapacity <
      static_cast<std::size_t>(std::max(config.minSamplesPerPair, 1)))
    throw std::invalid_argument(
        "OnlineMotionDatabase: reservoir smaller than the per-pair "
        "sample minimum");
}

bool OnlineMotionDatabase::addObservation(env::LocationId estimatedStart,
                                          env::LocationId estimatedEnd,
                                          double directionDeg,
                                          double offsetMeters) {
  const auto& startLoc = plan_.location(estimatedStart);
  const auto& endLoc = plan_.location(estimatedEnd);
  if (!std::isfinite(directionDeg) || !std::isfinite(offsetMeters) ||
      offsetMeters < 0.0)
    throw std::invalid_argument(
        "OnlineMotionDatabase: non-finite or negative measurement");
  ++counters_.observations;

  if (estimatedStart == estimatedEnd) {
    ++counters_.droppedSelfPairs;
    return false;
  }

  // Reassemble onto the smaller-ID endpoint.
  env::LocationId i = estimatedStart;
  env::LocationId j = estimatedEnd;
  double d = geometry::normalizeDeg(directionDeg);
  geometry::Vec2 posI = startLoc.pos;
  geometry::Vec2 posJ = endLoc.pos;
  if (i > j) {
    std::swap(i, j);
    std::swap(posI, posJ);
    d = geometry::reverseHeadingDeg(d);
  }

  // Coarse filter at intake (vs the straight-line map RLM).
  if (config_.enableCoarseFilter) {
    const double mapDirection = geometry::headingBetweenDeg(posI, posJ);
    const double mapOffset = geometry::distance(posI, posJ);
    const bool directionOk =
        geometry::angularDistDeg(d, mapDirection) <=
        config_.coarseDirectionThresholdDeg;
    const bool offsetOk = std::abs(offsetMeters - mapOffset) <=
                          config_.coarseOffsetThresholdMeters;
    if (!directionOk || !offsetOk) {
      ++counters_.rejectedCoarse;
      return false;
    }
  }

  auto& reservoir = reservoirs_[{i, j}];
  ++reservoir.seen;
  if (reservoir.samples.size() < capacity_) {
    reservoir.samples.push_back({d, offsetMeters});
  } else {
    // Uniform reservoir sampling: replace a random slot with
    // probability capacity / seen.
    const auto slot = static_cast<std::size_t>(rng_.uniformInt(
        0, static_cast<int>(reservoir.seen) - 1));
    if (slot < capacity_) reservoir.samples[slot] = {d, offsetMeters};
  }
  ++counters_.accepted;

  refit({i, j}, reservoir);
  return true;
}

void OnlineMotionDatabase::refit(const PairKey& key,
                                 const Reservoir& reservoir) {
  if (static_cast<int>(reservoir.samples.size()) <
      config_.minSamplesPerPair)
    return;

  auto fit = [](const std::vector<double>& directions,
                const std::vector<double>& offsets) {
    RlmStats stats;
    stats.sampleCount = static_cast<int>(directions.size());
    stats.muDirectionDeg = geometry::circularMeanDeg(directions);
    std::vector<double> devs;
    devs.reserve(directions.size());
    for (double d : directions)
      devs.push_back(
          geometry::signedAngularDiffDeg(stats.muDirectionDeg, d));
    stats.sigmaDirectionDeg = util::stddev(devs);
    stats.muOffsetMeters = util::mean(offsets);
    stats.sigmaOffsetMeters = util::stddev(offsets);
    return stats;
  };

  std::vector<double> directions;
  std::vector<double> offsets;
  directions.reserve(reservoir.samples.size());
  offsets.reserve(reservoir.samples.size());
  for (const auto& s : reservoir.samples) {
    directions.push_back(s.directionDeg);
    offsets.push_back(s.offsetMeters);
  }

  RlmStats stats = fit(directions, offsets);

  if (config_.enableFineFilter) {
    const double dirLimit =
        config_.fineSigmaMultiplier *
        std::max(stats.sigmaDirectionDeg, config_.minDirectionSigmaDeg);
    const double offLimit =
        config_.fineSigmaMultiplier *
        std::max(stats.sigmaOffsetMeters, config_.minOffsetSigmaMeters);
    std::vector<double> keptDirections;
    std::vector<double> keptOffsets;
    for (std::size_t s = 0; s < directions.size(); ++s) {
      if (geometry::angularDistDeg(directions[s],
                                   stats.muDirectionDeg) <= dirLimit &&
          std::abs(offsets[s] - stats.muOffsetMeters) <= offLimit) {
        keptDirections.push_back(directions[s]);
        keptOffsets.push_back(offsets[s]);
      }
    }
    if (static_cast<int>(keptDirections.size()) <
        config_.minSamplesPerPair)
      return;
    stats = fit(keptDirections, keptOffsets);
  }

  stats.sigmaDirectionDeg =
      std::max(stats.sigmaDirectionDeg, config_.minDirectionSigmaDeg);
  stats.sigmaOffsetMeters =
      std::max(stats.sigmaOffsetMeters, config_.minOffsetSigmaMeters);
  db_.setEntryWithMirror(key.first, key.second, stats);
}

}  // namespace moloc::core
