#include "core/online_motion_database.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace moloc::core {

OnlineMotionDatabase::OnlineMotionDatabase(const env::FloorPlan& plan,
                                           BuilderConfig config,
                                           std::size_t reservoirCapacity,
                                           std::uint64_t seed,
                                           obs::MetricsRegistry* metrics)
    : plan_(plan),
      config_(config),
      capacity_(reservoirCapacity),
      rng_(seed),
      db_(plan.locationCount()) {
  if (reservoirCapacity <
      static_cast<std::size_t>(std::max(config.minSamplesPerPair, 1)))
    throw util::ConfigError(
        "OnlineMotionDatabase: reservoir smaller than the per-pair "
        "sample minimum");
#if MOLOC_METRICS_ENABLED
  if (metrics) {
    const obs::Labels source{{"source", "online"}};
    metrics_.observations = &metrics->counter(
        "moloc_intake_observations_total",
        "Crowdsourced RLM observations offered to the intake", source);
    metrics_.accepted = &metrics->counter(
        "moloc_intake_accepted_total",
        "Observations accepted into a reservoir", source);
    metrics_.rejectedCoarse = &metrics->counter(
        "moloc_intake_rejected_total",
        "Observations or samples rejected by a sanitation filter",
        {{"source", "online"}, {"filter", "coarse"}});
    metrics_.rejectedFine = &metrics->counter(
        "moloc_intake_rejected_total",
        "Observations or samples rejected by a sanitation filter",
        {{"source", "online"}, {"filter", "fine"}});
    metrics_.selfPairs = &metrics->counter(
        "moloc_intake_self_pairs_total",
        "Observations dropped because start == end", source);
    metrics_.staleInvalidated = &metrics->counter(
        "moloc_intake_stale_invalidated_total",
        "Published pair entries removed after a refit fell below the "
        "per-pair sample minimum",
        source);
  }
#else
  (void)metrics;
#endif
}

namespace {

void checkMeasurement(double directionDeg, double offsetMeters) {
  // Validate the measurement before the location lookups: a corrupt
  // (direction, offset) must report invalid_argument even when the
  // ids are bad too, so callers can tell poisoned measurements from
  // stale/unknown location ids.
  if (!std::isfinite(directionDeg) || !std::isfinite(offsetMeters) ||
      offsetMeters < 0.0)
    throw util::ConfigError(
        "OnlineMotionDatabase: non-finite or negative measurement");
}

}  // namespace

OnlineMotionDatabase::Decision OnlineMotionDatabase::decideLocked(
    env::LocationId start, env::LocationId end, geometry::Vec2 posStart,
    geometry::Vec2 posEnd, double directionDeg,
    double offsetMeters) const {
  if (start == end) return Decision::kSelfPair;

  // Reassemble onto the smaller-ID endpoint.
  double d = geometry::normalizeDeg(directionDeg);
  geometry::Vec2 posI = posStart;
  geometry::Vec2 posJ = posEnd;
  if (start > end) {
    std::swap(posI, posJ);
    d = geometry::reverseHeadingDeg(d);
  }

  // Coarse filter at intake (vs the straight-line map RLM).
  if (config_.enableCoarseFilter) {
    const double mapDirection = geometry::headingBetweenDeg(posI, posJ);
    const double mapOffset = geometry::distance(posI, posJ);
    const bool directionOk =
        geometry::angularDistDeg(d, mapDirection) <=
        config_.coarseDirectionThresholdDeg;
    const bool offsetOk = std::abs(offsetMeters - mapOffset) <=
                          config_.coarseOffsetThresholdMeters;
    if (!directionOk || !offsetOk) return Decision::kRejectedCoarse;
  }
  return Decision::kAccepted;
}

bool OnlineMotionDatabase::classify(env::LocationId estimatedStart,
                                    env::LocationId estimatedEnd,
                                    double directionDeg,
                                    double offsetMeters) {
  checkMeasurement(directionDeg, offsetMeters);
  const auto& startLoc = plan_.location(estimatedStart);
  const auto& endLoc = plan_.location(estimatedEnd);
  const util::MutexLock lock(mu_);
  ++counters_.observations;
#if MOLOC_METRICS_ENABLED
  if (metrics_.observations) metrics_.observations->inc();
#endif
  switch (decideLocked(estimatedStart, estimatedEnd, startLoc.pos,
                       endLoc.pos, directionDeg, offsetMeters)) {
    case Decision::kSelfPair:
      ++counters_.droppedSelfPairs;
#if MOLOC_METRICS_ENABLED
      if (metrics_.selfPairs) metrics_.selfPairs->inc();
#endif
      return false;
    case Decision::kRejectedCoarse:
      ++counters_.rejectedCoarse;
#if MOLOC_METRICS_ENABLED
      if (metrics_.rejectedCoarse) metrics_.rejectedCoarse->inc();
#endif
      return false;
    case Decision::kAccepted:
      return true;
  }
  return false;  // Unreachable; keeps -Wreturn-type quiet.
}

void OnlineMotionDatabase::applyAccepted(env::LocationId estimatedStart,
                                         env::LocationId estimatedEnd,
                                         double directionDeg,
                                         double offsetMeters) {
  checkMeasurement(directionDeg, offsetMeters);
  const auto& startLoc = plan_.location(estimatedStart);
  const auto& endLoc = plan_.location(estimatedEnd);
  const util::MutexLock writeLock(writeMu_);
  ObservationSink* sink = nullptr;
  {
    const util::MutexLock lock(mu_);
    if (decideLocked(estimatedStart, estimatedEnd, startLoc.pos,
                     endLoc.pos, directionDeg, offsetMeters) !=
        Decision::kAccepted)
      throw util::StateError(
          "OnlineMotionDatabase::applyAccepted: observation was not "
          "accepted by classify()");
    sink = sink_;
  }

  // Write-ahead hook: log the observation (with its original, pre-
  // reassembly arguments) before any state mutates.  A sink that
  // throws — disk full, I/O error — aborts the update here, so the
  // database never holds an observation its log is missing.  Only the
  // write mutex is held across this call: readers and classifying
  // producers proceed through the state mutex while the log fsyncs.
  if (sink)
    sink->onAccepted(estimatedStart, estimatedEnd, directionDeg,
                     offsetMeters);

  // Reassemble onto the smaller-ID endpoint.
  env::LocationId i = estimatedStart;
  env::LocationId j = estimatedEnd;
  double d = geometry::normalizeDeg(directionDeg);
  if (i > j) {
    std::swap(i, j);
    d = geometry::reverseHeadingDeg(d);
  }

  const util::MutexLock lock(mu_);
  auto& reservoir = reservoirs_[{i, j}];
  ++reservoir.seen;
  if (reservoir.samples.size() < capacity_) {
    reservoir.samples.push_back({d, offsetMeters});
  } else {
    // Uniform reservoir sampling (Algorithm R): keep the newcomer with
    // probability capacity / seen.  The slot draw is a full-width
    // 64-bit index — `seen` outgrows int long before a busy pair's
    // stream ends, and truncating it would first skew the draw and
    // then (past 2^63) hand uniformInt a negative bound.
    const std::uint64_t slot = rng_.uniformIndex(reservoir.seen);
    if (slot < capacity_)
      reservoir.samples[static_cast<std::size_t>(slot)] = {d,
                                                           offsetMeters};
  }
  ++counters_.accepted;
#if MOLOC_METRICS_ENABLED
  if (metrics_.accepted) metrics_.accepted->inc();
#endif

  refit({i, j}, reservoir);
}

bool OnlineMotionDatabase::addObservation(env::LocationId estimatedStart,
                                          env::LocationId estimatedEnd,
                                          double directionDeg,
                                          double offsetMeters) {
  if (!classify(estimatedStart, estimatedEnd, directionDeg, offsetMeters))
    return false;
  applyAccepted(estimatedStart, estimatedEnd, directionDeg, offsetMeters);
  return true;
}

void OnlineMotionDatabase::refit(const PairKey& key,
                                 const Reservoir& reservoir) {
  if (static_cast<int>(reservoir.samples.size()) <
      config_.minSamplesPerPair) {
    // Reservoirs only grow, so a published entry cannot regress to
    // this branch — but keep the invariant locally enforced anyway.
    invalidateStaleEntry(key);
    return;
  }

  auto fit = [](const std::vector<double>& directions,
                const std::vector<double>& offsets) {
    RlmStats stats;
    stats.sampleCount = static_cast<int>(directions.size());
    stats.muDirectionDeg = geometry::circularMeanDeg(directions);
    std::vector<double> devs;
    devs.reserve(directions.size());
    for (double d : directions)
      devs.push_back(
          geometry::signedAngularDiffDeg(stats.muDirectionDeg, d));
    stats.sigmaDirectionDeg = util::stddev(devs);
    stats.muOffsetMeters = util::mean(offsets);
    stats.sigmaOffsetMeters = util::stddev(offsets);
    return stats;
  };

  std::vector<double> directions;
  std::vector<double> offsets;
  directions.reserve(reservoir.samples.size());
  offsets.reserve(reservoir.samples.size());
  for (const auto& s : reservoir.samples) {
    directions.push_back(s.directionDeg);
    offsets.push_back(s.offsetMeters);
  }

  RlmStats stats = fit(directions, offsets);

  if (config_.enableFineFilter) {
    const double dirLimit =
        config_.fineSigmaMultiplier *
        std::max(stats.sigmaDirectionDeg, config_.minDirectionSigmaDeg);
    const double offLimit =
        config_.fineSigmaMultiplier *
        std::max(stats.sigmaOffsetMeters, config_.minOffsetSigmaMeters);
    std::vector<double> keptDirections;
    std::vector<double> keptOffsets;
    for (std::size_t s = 0; s < directions.size(); ++s) {
      if (geometry::angularDistDeg(directions[s],
                                   stats.muDirectionDeg) <= dirLimit &&
          std::abs(offsets[s] - stats.muOffsetMeters) <= offLimit) {
        keptDirections.push_back(directions[s]);
        keptOffsets.push_back(offsets[s]);
      }
    }
    const std::size_t excluded =
        directions.size() - keptDirections.size();
    if (excluded > 0) {
      counters_.rejectedFine += excluded;
#if MOLOC_METRICS_ENABLED
      if (metrics_.rejectedFine)
        metrics_.rejectedFine->inc(static_cast<double>(excluded));
#endif
    }
    if (static_cast<int>(keptDirections.size()) <
        config_.minSamplesPerPair) {
      // The fine filter no longer supports this pair.  Keeping the
      // previously published Gaussian would let the database disagree
      // with the reservoir forever, so withdraw it instead.
      invalidateStaleEntry(key);
      return;
    }
    stats = fit(keptDirections, keptOffsets);
  }

  stats.sigmaDirectionDeg =
      std::max(stats.sigmaDirectionDeg, config_.minDirectionSigmaDeg);
  stats.sigmaOffsetMeters =
      std::max(stats.sigmaOffsetMeters, config_.minOffsetSigmaMeters);
  db_.setEntryWithMirror(key.first, key.second, stats);
}

void OnlineMotionDatabase::invalidateStaleEntry(const PairKey& key) {
  if (!db_.hasEntry(key.first, key.second)) return;
  db_.clearEntryWithMirror(key.first, key.second);
  ++counters_.staleInvalidations;
#if MOLOC_METRICS_ENABLED
  if (metrics_.staleInvalidated) metrics_.staleInvalidated->inc();
#endif
}

OnlineMotionDatabase::ReservoirStats
OnlineMotionDatabase::reservoirStats() const {
  const util::MutexLock lock(mu_);
  ReservoirStats stats;
  stats.capacity = capacity_;
  stats.trackedPairs = reservoirs_.size();
  for (const auto& [key, reservoir] : reservoirs_) {
    stats.totalSamples += reservoir.samples.size();
    stats.totalSeen += reservoir.seen;
    if (reservoir.samples.size() >= capacity_) ++stats.pairsAtCapacity;
  }
  return stats;
}

OnlineMotionDatabase::Snapshot OnlineMotionDatabase::snapshot() const {
  const util::MutexLock lock(mu_);
  Snapshot snap;
  snap.config = config_;
  snap.capacity = capacity_;
  snap.locationCount = plan_.locationCount();
  snap.rngState = rng_.state();
  snap.counters = counters_;
  snap.reservoirs.reserve(reservoirs_.size());
  for (const auto& [key, reservoir] : reservoirs_) {
    Snapshot::PairState pair;
    pair.i = key.first;
    pair.j = key.second;
    pair.seen = reservoir.seen;
    pair.samples.reserve(reservoir.samples.size());
    for (const auto& s : reservoir.samples)
      pair.samples.push_back({s.directionDeg, s.offsetMeters});
    snap.reservoirs.push_back(std::move(pair));
  }
  const auto n = static_cast<env::LocationId>(db_.locationCount());
  for (env::LocationId i = 0; i < n; ++i)
    for (env::LocationId j = 0; j < n; ++j)
      if (const auto entry = db_.entry(i, j))
        snap.entries.push_back({i, j, *entry});
  return snap;
}

void OnlineMotionDatabase::restore(const Snapshot& snapshot) {
  if (snapshot.locationCount != plan_.locationCount())
    throw util::ConfigError(
        "OnlineMotionDatabase::restore: snapshot covers " +
        std::to_string(snapshot.locationCount) +
        " locations, plan has " +
        std::to_string(plan_.locationCount()));
  if (snapshot.capacity <
      static_cast<std::size_t>(
          std::max(snapshot.config.minSamplesPerPair, 1)))
    throw util::ConfigError(
        "OnlineMotionDatabase::restore: snapshot capacity below the "
        "per-pair sample minimum");

  // Validate and build into locals first, so a malformed snapshot
  // leaves the live database untouched.
  std::map<PairKey, Reservoir> reservoirs;
  for (const auto& pair : snapshot.reservoirs) {
    if (!plan_.isValid(pair.i) || !plan_.isValid(pair.j) ||
        pair.i >= pair.j)
      throw util::ConfigError(
          "OnlineMotionDatabase::restore: invalid reservoir pair key");
    if (pair.samples.size() > snapshot.capacity)
      throw util::ConfigError(
          "OnlineMotionDatabase::restore: reservoir larger than "
          "capacity");
    if (pair.seen < pair.samples.size())
      throw util::ConfigError(
          "OnlineMotionDatabase::restore: seen-count below retained "
          "samples");
    Reservoir reservoir;
    reservoir.seen = pair.seen;
    reservoir.samples.reserve(pair.samples.size());
    for (const auto& s : pair.samples)
      reservoir.samples.push_back({s.directionDeg, s.offsetMeters});
    if (!reservoirs.emplace(PairKey{pair.i, pair.j},
                            std::move(reservoir))
             .second)
      throw util::ConfigError(
          "OnlineMotionDatabase::restore: duplicate reservoir pair");
  }
  MotionDatabase db(snapshot.locationCount);
  for (const auto& entry : snapshot.entries) {
    if (db.hasEntry(entry.i, entry.j))
      throw util::ConfigError(
          "OnlineMotionDatabase::restore: duplicate published entry");
    db.setEntry(entry.i, entry.j, entry.stats);  // Throws on bad ids.
  }
  util::Rng rng(0);
  rng.setState(snapshot.rngState);  // Throws on the all-zero state.

  const util::MutexLock writeLock(writeMu_);
  const util::MutexLock lock(mu_);
  config_ = snapshot.config;
  capacity_ = snapshot.capacity;
  rng_ = rng;
  reservoirs_ = std::move(reservoirs);
  db_ = std::move(db);
  counters_ = snapshot.counters;
}

std::vector<OnlineMotionDatabase::ReservoirSample>
OnlineMotionDatabase::reservoirSamples(env::LocationId i,
                                       env::LocationId j) const {
  (void)plan_.location(i);  // Validate ids like the write path does.
  (void)plan_.location(j);
  const util::MutexLock lock(mu_);
  const PairKey key = i <= j ? PairKey{i, j} : PairKey{j, i};
  const auto it = reservoirs_.find(key);
  std::vector<ReservoirSample> samples;
  if (it == reservoirs_.end()) return samples;
  samples.reserve(it->second.samples.size());
  for (const auto& s : it->second.samples)
    samples.push_back({s.directionDeg, s.offsetMeters});
  return samples;
}

}  // namespace moloc::core
