#pragma once

#include <exception>
#include <memory>
#include <span>

#include "core/moloc_engine.hpp"
#include "sensors/imu_trace.hpp"
#include "sensors/motion_processor.hpp"

namespace moloc::core {

/// The phone-side facade: one object per tracked user that accepts
/// exactly what the handset produces — a WiFi scan plus the raw IMU
/// recording since the previous scan — and runs the full MoLoc
/// pipeline (motion processing unit -> candidate estimation -> motion
/// matching -> Eq. 7 evaluation) internally.
///
/// Use MoLocEngine directly when the (direction, offset) measurements
/// come from elsewhere; use this when feeding raw sensor data.
class LocalizationSession {
 public:
  /// `stepLengthMeters` is the user's estimated step length (from the
  /// profile height/weight; see sensors::estimateStepLength).  Must be
  /// positive (throws std::invalid_argument).  The databases must
  /// outlive the session.
  LocalizationSession(const radio::FingerprintDatabase& fingerprints,
                      const MotionDatabase& motion,
                      double stepLengthMeters, MoLocConfig config = {},
                      sensors::MotionProcessorParams motionParams = {});

  /// Variant over the Horus-style probabilistic radio map.
  LocalizationSession(
      const radio::ProbabilisticFingerprintDatabase& fingerprints,
      const MotionDatabase& motion, double stepLengthMeters,
      MoLocConfig config = {},
      sensors::MotionProcessorParams motionParams = {});

  /// Variant with an explicit candidate source (e.g. the tiered-index
  /// backend); `config.candidateCount` is ignored in favour of the
  /// estimator's own k.  Whatever the estimator captures must outlive
  /// the session.
  LocalizationSession(CandidateEstimator estimator,
                      const MotionDatabase& motion,
                      double stepLengthMeters, MoLocConfig config = {},
                      sensors::MotionProcessorParams motionParams = {});

  /// One localization round: the scan just taken and the IMU recording
  /// covering the interval since the last round (pass an empty trace
  /// for the first fix).  Standing still or undetectable walking
  /// degrades to a fingerprint-only update automatically.
  LocationEstimate onScan(const radio::Fingerprint& scan,
                          const sensors::ImuTrace& imuSinceLastScan);

  /// Variant of onScan() for a caller that already matched the scan
  /// against the radio map (the serving layer's batched fingerprint
  /// kernel): `candidates` must be exactly what this session's engine
  /// would compute for the scan, and the estimate is then
  /// bitwise-identical to onScan().  `scanError`, when non-null, is the
  /// exception the scan's precomputed match raised; it is rethrown
  /// after motion processing — the same point at which onScan() would
  /// have raised it — so failure ordering matches the unbatched path.
  LocationEstimate onScanWithCandidates(
      std::span<const Candidate> candidates, std::exception_ptr scanError,
      const sensors::ImuTrace& imuSinceLastScan);

  /// Starts a new walk (forgets retained candidates).
  void reset() { engine_.reset(); }

  /// Adopts a newer motion world (a published WorldSnapshot's
  /// adjacency) without disturbing the walk in progress.  Serialized by
  /// the caller against onScan* on the same session — the serving
  /// layer's per-session slot lock covers both.  Throws on null.
  void rebindMotion(
      std::shared_ptr<const kernel::MotionAdjacency> adjacency) {
    engine_.rebindMotion(std::move(adjacency));
  }

  /// The motion adjacency the session currently scores against
  /// (identity comparisons drive snapshot adoption in the service).
  const std::shared_ptr<const kernel::MotionAdjacency>& motionAdjacency()
      const {
    return engine_.motionAdjacency();
  }

  bool hasHistory() const { return engine_.hasHistory(); }

  /// The motion measurement extracted in the most recent onScan, if
  /// walking was detected (diagnostics).
  const std::optional<sensors::MotionMeasurement>& lastMotion() const {
    return lastMotion_;
  }

 private:
  MoLocEngine engine_;
  sensors::MotionProcessor processor_;
  double stepLengthMeters_;
  std::optional<sensors::MotionMeasurement> lastMotion_;
};

}  // namespace moloc::core
