#include "sensors/accelerometer_model.hpp"

#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/error.hpp"

namespace moloc::sensors {

AccelerometerModel::AccelerometerModel(AccelParams params)
    : params_(params) {
  if (params_.sampleRateHz <= 0.0)
    throw util::ConfigError(
        "AccelerometerModel: sample rate must be positive");
}

std::vector<double> AccelerometerModel::walkingSamples(std::size_t count,
                                                       double cadenceHz,
                                                       util::Rng& rng) {
  if (cadenceHz <= 0.0)
    throw util::ConfigError(
        "AccelerometerModel: cadence must be positive");
  std::vector<double> out;
  out.reserve(count);
  const double dt = 1.0 / params_.sampleRateHz;
  for (std::size_t i = 0; i < count; ++i) {
    const double theta = 2.0 * geometry::kPi * phase_;
    const double amp = params_.primaryAmplitude * currentAmplitudeScale_;
    const double value = params_.gravity + amp * std::sin(theta) +
                         amp * params_.harmonicRatio * std::sin(2.0 * theta) +
                         rng.normal(0.0, params_.noiseSigma);
    out.push_back(value);

    const double prevPhase = phase_;
    phase_ += cadenceHz * dt;
    if (phase_ >= 1.0) {
      phase_ -= std::floor(phase_);
      // A new step begins: re-draw its amplitude so consecutive steps
      // differ slightly, as real gait does.
      currentAmplitudeScale_ =
          1.0 + rng.normal(0.0, params_.amplitudeJitter);
      if (currentAmplitudeScale_ < 0.5) currentAmplitudeScale_ = 0.5;
    } else if (prevPhase == 0.0 && i == 0) {
      // First sample of a fresh walk: seed the per-step amplitude.
      currentAmplitudeScale_ =
          1.0 + rng.normal(0.0, params_.amplitudeJitter);
      if (currentAmplitudeScale_ < 0.5) currentAmplitudeScale_ = 0.5;
    }
  }
  return out;
}

std::vector<double> AccelerometerModel::idleSamples(std::size_t count,
                                                    util::Rng& rng) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(params_.gravity +
                  rng.normal(0.0, params_.idleNoiseSigma));
  return out;
}

}  // namespace moloc::sensors
