#include "sensors/gyroscope_model.hpp"

#include "geometry/angles.hpp"

namespace moloc::sensors {

GyroscopeModel::GyroscopeModel(GyroParams params) : params_(params) {}

double GyroscopeModel::drawBias(util::Rng& rng) const {
  return rng.normal(0.0, params_.biasSigmaDegPerSec);
}

std::vector<double> GyroscopeModel::rates(
    std::span<const double> trueHeadingDeg, double sampleRateHz,
    double biasDegPerSec, util::Rng& rng) const {
  std::vector<double> out;
  out.reserve(trueHeadingDeg.size());
  for (std::size_t i = 0; i < trueHeadingDeg.size(); ++i) {
    const double trueRate =
        i == 0 ? 0.0
               : geometry::signedAngularDiffDeg(trueHeadingDeg[i - 1],
                                                trueHeadingDeg[i]) *
                     sampleRateHz;
    out.push_back(trueRate + biasDegPerSec +
                  rng.normal(0.0, params_.noiseSigmaDegPerSec));
  }
  return out;
}

std::vector<double> GyroscopeModel::straightWalkRates(
    std::size_t count, double biasDegPerSec, util::Rng& rng) const {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(biasDegPerSec +
                  rng.normal(0.0, params_.noiseSigmaDegPerSec));
  return out;
}

}  // namespace moloc::sensors
