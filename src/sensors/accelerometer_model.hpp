#pragma once

#include <vector>

#include "util/rng.hpp"

namespace moloc::sensors {

/// Parameters of the synthetic walking accelerometer (our substitute for
/// the Nexus S sensor behind the paper's Fig. 4).
///
/// Walking produces a dominant oscillation at the step cadence plus a
/// weaker second harmonic (heel-strike), riding on gravity, with jitter.
/// The resulting magnitude trace swings roughly between 6 and 15 m/s^2 —
/// the envelope visible in Fig. 4.
struct AccelParams {
  double sampleRateHz = 50.0;
  double gravity = 9.81;
  double primaryAmplitude = 2.8;  ///< m/s^2 swing at the step cadence.
  double harmonicRatio = 0.35;    ///< Second-harmonic amplitude fraction.
  double amplitudeJitter = 0.15;  ///< Per-step amplitude variation frac.
  double noiseSigma = 0.35;       ///< White sensor noise, m/s^2.
  double idleNoiseSigma = 0.15;   ///< Noise when standing still.
};

/// Generates accelerometer-magnitude series with phase continuity across
/// consecutive segments (so a walk spanning several localization
/// intervals has no seam in its step pattern).
class AccelerometerModel {
 public:
  explicit AccelerometerModel(AccelParams params = {});

  const AccelParams& params() const { return params_; }

  /// `count` samples of walking at the given cadence (steps/second).
  /// Advances the internal step phase.
  std::vector<double> walkingSamples(std::size_t count, double cadenceHz,
                                     util::Rng& rng);

  /// `count` samples of standing still (gravity + noise).
  std::vector<double> idleSamples(std::size_t count, util::Rng& rng);

  /// Current step phase in [0, 1); exposed for phase-continuity tests.
  double phase() const { return phase_; }

 private:
  AccelParams params_;
  double phase_ = 0.0;
  double currentAmplitudeScale_ = 1.0;
};

}  // namespace moloc::sensors
