#include "sensors/heading_filter.hpp"

#include <cmath>
#include <vector>

#include "geometry/angles.hpp"

namespace moloc::sensors {

KalmanHeadingFilter::KalmanHeadingFilter(KalmanHeadingParams params)
    : params_(params) {
  reset();
}

void KalmanHeadingFilter::reset(double headingDeg) {
  heading_ = geometry::normalizeDeg(headingDeg);
  variance_ = params_.initialSigmaDeg * params_.initialSigmaDeg;
  rejected_ = 0;
  hasFirstUpdate_ = false;
}

void KalmanHeadingFilter::predict(double rateDegPerSec, double dtSec) {
  heading_ = geometry::normalizeDeg(heading_ + rateDegPerSec * dtSec);
  variance_ += params_.rateNoiseDegPerSqrtSec *
               params_.rateNoiseDegPerSqrtSec * dtSec;
}

bool KalmanHeadingFilter::update(double compassDeg) {
  const double r = params_.compassSigmaDeg * params_.compassSigmaDeg;
  const double innovation =
      geometry::signedAngularDiffDeg(heading_, compassDeg);

  // The first reading initializes the state outright: the prior is a
  // placeholder, not information, so gating against it would be wrong.
  if (!hasFirstUpdate_) {
    heading_ = geometry::normalizeDeg(compassDeg);
    variance_ = r;
    hasFirstUpdate_ = true;
    return true;
  }

  if (params_.gateSigma > 0.0) {
    const double innovationVariance = variance_ + r;
    if (innovation * innovation >
        params_.gateSigma * params_.gateSigma * innovationVariance) {
      ++rejected_;
      return false;
    }
  }

  const double gain = variance_ / (variance_ + r);
  heading_ = geometry::normalizeDeg(heading_ + gain * innovation);
  variance_ *= 1.0 - gain;
  return true;
}

double KalmanHeadingFilter::headingDeg() const {
  return geometry::normalizeDeg(heading_);
}

double KalmanHeadingFilter::sigmaDeg() const {
  return std::sqrt(variance_);
}

double fuseHeadingDeg(std::span<const double> compassDeg,
                      std::span<const double> gyroRateDegPerSec,
                      double sampleRateHz, KalmanHeadingParams params) {
  if (gyroRateDegPerSec.empty() ||
      gyroRateDegPerSec.size() != compassDeg.size() ||
      sampleRateHz <= 0.0)
    return geometry::circularMeanDeg(compassDeg);

  // Integrate the gyro into a relative heading curve psi(t) (unknown
  // absolute offset).  Over one localization interval the gyro bias
  // contributes only a degree or two of drift.
  const double dt = 1.0 / sampleRateHz;
  std::vector<double> psi(compassDeg.size());
  double integral = 0.0;
  for (std::size_t i = 0; i < compassDeg.size(); ++i) {
    if (i > 0) integral += gyroRateDegPerSec[i] * dt;
    psi[i] = integral;
  }

  // Each compass reading votes for the absolute offset c_i =
  // compass_i - psi_i.  The circular *median* of these votes is robust
  // to a minority window of magnetically disturbed readings, which
  // would drag a plain mean.
  std::vector<double> offsets(compassDeg.size());
  for (std::size_t i = 0; i < compassDeg.size(); ++i)
    offsets[i] = geometry::normalizeDeg(compassDeg[i] - psi[i]);
  const double robustOffset = geometry::circularMedianDeg(offsets);

  // Refine: average the inlier votes (within the innovation gate of
  // the robust offset) for efficiency, then re-add the mean relative
  // heading so the result is the average walking direction over the
  // interval.
  const double gate = params.gateSigma > 0.0
                          ? params.gateSigma * params.compassSigmaDeg
                          : 1e9;
  std::vector<double> inliers;
  inliers.reserve(offsets.size());
  for (double c : offsets)
    if (geometry::angularDistDeg(c, robustOffset) <= gate)
      inliers.push_back(c);
  const double offset = inliers.empty()
                            ? robustOffset
                            : geometry::circularMeanDeg(inliers);

  double meanPsi = 0.0;
  for (double p : psi) meanPsi += p;
  meanPsi /= static_cast<double>(psi.size());
  return geometry::normalizeDeg(offset + meanPsi);
}

}  // namespace moloc::sensors
