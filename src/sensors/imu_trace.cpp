#include "sensors/imu_trace.hpp"

#include <stdexcept>

#include "util/error.hpp"

namespace moloc::sensors {

ImuTrace::ImuTrace(double sampleRateHz) : sampleRateHz_(sampleRateHz) {
  if (sampleRateHz <= 0.0)
    throw util::ConfigError("ImuTrace: sample rate must be positive");
}

double ImuTrace::duration() const {
  if (samples_.empty()) return 0.0;
  return samples_.back().t - samples_.front().t + 1.0 / sampleRateHz_;
}

std::vector<double> ImuTrace::accelSeries() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.accelMagnitude);
  return out;
}

std::vector<double> ImuTrace::compassSeries() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.compassDeg);
  return out;
}

std::vector<double> ImuTrace::gyroSeries() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.gyroRateDegPerSec);
  return out;
}

}  // namespace moloc::sensors
