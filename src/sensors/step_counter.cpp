#include "sensors/step_counter.hpp"

#include <algorithm>

namespace moloc::sensors {

StepCount discreteStepCount(std::span<const double> stepTimesSec) {
  return {static_cast<int>(stepTimesSec.size()), 0.0};
}

StepCount continuousStepCount(std::span<const double> stepTimesSec,
                              double intervalDurationSec) {
  const int k = static_cast<int>(stepTimesSec.size());
  if (k < 2) return {k, 0.0};

  // Peak-to-peak span covers k-1 gait cycles; one period per step means
  // whole steps cover k * period of the interval.
  const double span = stepTimesSec.back() - stepTimesSec.front();
  if (span <= 0.0) return {k, 0.0};
  const double period = span / static_cast<double>(k - 1);

  const double covered = static_cast<double>(k) * period;
  const double oddTime =
      std::max(0.0, intervalDurationSec - covered);
  return {k, oddTime / period};
}

}  // namespace moloc::sensors
