#include "sensors/compass_model.hpp"

#include <cmath>

#include "geometry/angles.hpp"

namespace moloc::sensors {

CompassModel::CompassModel(CompassParams params) : params_(params) {}

double CompassModel::drawResidualBias(util::Rng& rng) const {
  return rng.normal(0.0, params_.residualBiasSigmaDeg);
}

double CompassModel::systematicErrorDeg(
    double trueHeadingDeg, const CompassDistortion& distortion) {
  return distortion.biasDeg +
         distortion.softIronAmplitudeDeg *
             std::sin(geometry::degToRad(trueHeadingDeg) +
                      distortion.softIronPhaseRad);
}

std::vector<double> CompassModel::readings(
    double trueHeadingDeg, const CompassDistortion& distortion,
    std::size_t count, util::Rng& rng) const {
  const double systematic =
      systematicErrorDeg(trueHeadingDeg, distortion);
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(geometry::normalizeDeg(
        trueHeadingDeg + systematic +
        rng.normal(0.0, params_.noiseSigmaDeg)));
  return out;
}

std::vector<double> CompassModel::readings(double trueHeadingDeg,
                                           double biasDeg,
                                           std::size_t count,
                                           util::Rng& rng) const {
  return readings(trueHeadingDeg, CompassDistortion{biasDeg, 0.0, 0.0},
                  count, rng);
}

bool CompassModel::maybeDisturb(std::vector<double>& legReadings,
                                util::Rng& rng) const {
  if (legReadings.empty() || !rng.chance(params_.disturbanceProbability))
    return false;
  const auto window = static_cast<std::size_t>(
      params_.disturbanceFractionOfLeg *
      static_cast<double>(legReadings.size()));
  if (window == 0) return false;
  const auto start = static_cast<std::size_t>(rng.uniformInt(
      0, static_cast<int>(legReadings.size() - window)));
  const double offset = rng.chance(0.5)
                            ? params_.disturbanceMagnitudeDeg
                            : -params_.disturbanceMagnitudeDeg;
  for (std::size_t i = start; i < start + window; ++i)
    legReadings[i] = geometry::normalizeDeg(legReadings[i] + offset);
  return true;
}

}  // namespace moloc::sensors
