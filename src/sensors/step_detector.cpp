#include "sensors/step_detector.hpp"

#include <algorithm>
#include <cmath>

namespace moloc::sensors {

StepDetector::StepDetector(StepDetectorParams params) : params_(params) {}

std::vector<double> StepDetector::smooth(std::span<const double> xs,
                                         std::size_t window) {
  if (window <= 1 || xs.empty())
    return std::vector<double>(xs.begin(), xs.end());
  const std::size_t half = window / 2;
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half, xs.size() - 1);
    double sum = 0.0;
    for (std::size_t j = lo; j <= hi; ++j) sum += xs[j];
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<std::size_t> StepDetector::detect(
    std::span<const double> accelMagnitudes, double sampleRateHz) const {
  std::vector<std::size_t> peaks;
  if (accelMagnitudes.size() < 3 || sampleRateHz <= 0.0) return peaks;

  const auto smoothed = smooth(accelMagnitudes, params_.smoothingWindow);

  double mean = 0.0;
  for (double v : smoothed) mean += v;
  mean /= static_cast<double>(smoothed.size());
  const double threshold = mean + params_.thresholdMargin;

  const auto minGap = static_cast<std::size_t>(
      std::max(1.0, params_.minStepIntervalSec * sampleRateHz));

  std::size_t lastPeak = 0;
  bool havePeak = false;
  for (std::size_t i = 1; i + 1 < smoothed.size(); ++i) {
    if (smoothed[i] < threshold) continue;
    if (smoothed[i] < smoothed[i - 1] || smoothed[i] < smoothed[i + 1])
      continue;
    if (havePeak && i - lastPeak < minGap) {
      // Within the refractory window: keep the taller of the two.
      if (smoothed[i] > smoothed[lastPeak]) {
        peaks.back() = i;
        lastPeak = i;
      }
      continue;
    }
    peaks.push_back(i);
    lastPeak = i;
    havePeak = true;
  }
  return peaks;
}

std::vector<double> StepDetector::detectTimes(
    std::span<const double> accelMagnitudes, double sampleRateHz) const {
  const auto indices = detect(accelMagnitudes, sampleRateHz);
  std::vector<double> times;
  times.reserve(indices.size());
  for (std::size_t idx : indices)
    times.push_back(static_cast<double>(idx) / sampleRateHz);
  return times;
}

}  // namespace moloc::sensors
