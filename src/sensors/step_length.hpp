#pragma once

namespace moloc::sensors {

/// Step length (metres) estimated from a user's height and weight, per
/// the anthropometric model the paper cites ([25], Constandache et al.):
/// step length scales with height, with a mild weight correction (heavy
/// gaits are slightly shorter).
///
/// Heights are metres, weights kilograms; inputs outside a plausible
/// human range are clamped rather than rejected, because crowdsourced
/// profile data is exactly the place bad values appear.
double estimateStepLength(double heightMeters, double weightKg);

/// Bounds applied by estimateStepLength.
inline constexpr double kMinHeightMeters = 1.2;
inline constexpr double kMaxHeightMeters = 2.2;
inline constexpr double kMinWeightKg = 35.0;
inline constexpr double kMaxWeightKg = 150.0;

}  // namespace moloc::sensors
