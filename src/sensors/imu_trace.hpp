#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace moloc::sensors {

/// One inertial sample: the accelerometer magnitude (m/s^2, gravity
/// included — what the paper's Fig. 4 plots) and the compass heading
/// (degrees clockwise from north) at time `t` seconds.
struct ImuSample {
  double t = 0.0;
  double accelMagnitude = 0.0;
  double compassDeg = 0.0;
  double gyroRateDegPerSec = 0.0;  ///< Yaw rate; 0 when no gyro.
};

/// A fixed-rate inertial recording covering one localization interval.
class ImuTrace {
 public:
  explicit ImuTrace(double sampleRateHz = 50.0);

  double sampleRateHz() const { return sampleRateHz_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double duration() const;

  void append(ImuSample sample) { samples_.push_back(sample); }

  std::span<const ImuSample> samples() const { return samples_; }
  const ImuSample& operator[](std::size_t i) const { return samples_[i]; }

  /// Copies of the per-channel series, for detectors that operate on a
  /// single channel.
  std::vector<double> accelSeries() const;
  std::vector<double> compassSeries() const;
  std::vector<double> gyroSeries() const;

 private:
  double sampleRateHz_;
  std::vector<ImuSample> samples_;
};

}  // namespace moloc::sensors
