#pragma once

#include <span>
#include <vector>

namespace moloc::sensors {

/// Peak-picking step detector over accelerometer magnitudes.
///
/// Each gait cycle produces one dominant magnitude peak (Fig. 4 marks
/// them with crosses).  The detector smooths the series with a short
/// moving average, then keeps local maxima that rise above an adaptive
/// threshold (window mean plus a margin) and are separated by at least a
/// refractory gap, rejecting the second-harmonic ripple.
struct StepDetectorParams {
  std::size_t smoothingWindow = 5;   ///< Moving-average width, samples.
  double thresholdMargin = 0.8;      ///< m/s^2 above the window mean.
  double minStepIntervalSec = 0.35;  ///< Refractory gap between steps.
};

class StepDetector {
 public:
  explicit StepDetector(StepDetectorParams params = {});

  const StepDetectorParams& params() const { return params_; }

  /// Indices (into the input series) of detected step peaks, ascending.
  std::vector<std::size_t> detect(std::span<const double> accelMagnitudes,
                                  double sampleRateHz) const;

  /// Same peaks as times in seconds from the start of the series.
  std::vector<double> detectTimes(std::span<const double> accelMagnitudes,
                                  double sampleRateHz) const;

  /// Centered moving average used for smoothing; exposed for tests.
  static std::vector<double> smooth(std::span<const double> xs,
                                    std::size_t window);

 private:
  StepDetectorParams params_;
};

}  // namespace moloc::sensors
