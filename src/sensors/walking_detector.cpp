#include "sensors/walking_detector.hpp"

namespace moloc::sensors {

WalkingDetector::WalkingDetector(WalkingDetectorParams params)
    : params_(params) {}

double WalkingDetector::windowVariance(
    std::span<const double> accelMagnitudes) {
  const std::size_t n = accelMagnitudes.size();
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (double a : accelMagnitudes) sum += a;
  const double mu = sum / static_cast<double>(n);
  double acc = 0.0;
  for (double a : accelMagnitudes) acc += (a - mu) * (a - mu);
  return acc / static_cast<double>(n - 1);
}

bool WalkingDetector::isWalking(
    std::span<const double> accelMagnitudes) const {
  if (accelMagnitudes.size() < params_.minSamples) return false;
  return windowVariance(accelMagnitudes) > params_.varianceThreshold;
}

}  // namespace moloc::sensors
