#include "sensors/motion_processor.hpp"

#include "geometry/angles.hpp"

namespace moloc::sensors {

MotionProcessor::MotionProcessor(MotionProcessorParams params)
    : params_(params) {}

std::optional<StepCount> MotionProcessor::countSteps(
    const ImuTrace& trace) const {
  const auto accel = trace.accelSeries();
  const WalkingDetector walkingDetector(params_.walking);
  if (!walkingDetector.isWalking(accel)) return std::nullopt;

  const StepDetector detector(params_.steps);
  const auto stepTimes = detector.detectTimes(accel, trace.sampleRateHz());
  if (stepTimes.empty()) return std::nullopt;

  switch (params_.mode) {
    case StepCountingMode::kDiscrete:
      return discreteStepCount(stepTimes);
    case StepCountingMode::kContinuous:
      return continuousStepCount(stepTimes, trace.duration());
  }
  return std::nullopt;
}

std::optional<MotionMeasurement> MotionProcessor::process(
    const ImuTrace& trace, double stepLengthMeters) const {
  const auto steps = countSteps(trace);
  if (!steps) {
    // Distinguish "no usable data" from "the user stood still": a
    // healthy-length idle trace is positive evidence of staying put.
    if (params_.reportStationary &&
        trace.size() >= params_.walking.minSamples) {
      return MotionMeasurement{
          geometry::circularMeanDeg(trace.compassSeries()), 0.0};
    }
    return std::nullopt;
  }

  const auto headings = trace.compassSeries();
  double direction = 0.0;
  switch (params_.heading) {
    case HeadingMode::kCircularMean:
      direction = geometry::circularMeanDeg(headings);
      break;
    case HeadingMode::kKalmanFusion:
      direction = fuseHeadingDeg(headings, trace.gyroSeries(),
                                 trace.sampleRateHz(), params_.kalman);
      break;
  }
  return MotionMeasurement{direction,
                           steps->totalSteps() * stepLengthMeters};
}

}  // namespace moloc::sensors
