#pragma once

#include <span>

namespace moloc::sensors {

/// Decides whether an accelerometer-magnitude window shows walking.
///
/// The CSC pipeline (Sec. IV.B.1) first checks "whether a user is
/// walking throughout an interval" before counting steps; standing still
/// shows only sensor noise around gravity, while walking swings several
/// m/s^2 — a variance threshold separates the two reliably.
struct WalkingDetectorParams {
  double varianceThreshold = 0.5;  ///< (m/s^2)^2 above which = walking.
  std::size_t minSamples = 8;      ///< Below this, report not walking.
};

class WalkingDetector {
 public:
  explicit WalkingDetector(WalkingDetectorParams params = {});

  /// True when the whole window's variance exceeds the threshold.
  bool isWalking(std::span<const double> accelMagnitudes) const;

  /// Sample variance of the window (0 for fewer than 2 samples),
  /// exposed for diagnostics.
  static double windowVariance(std::span<const double> accelMagnitudes);

 private:
  WalkingDetectorParams params_;
};

}  // namespace moloc::sensors
