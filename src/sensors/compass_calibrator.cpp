#include "sensors/compass_calibrator.hpp"

#include "geometry/angles.hpp"

namespace moloc::sensors {

void CompassCalibrator::addLeg(double measuredDirectionDeg,
                               double mapDirectionDeg) {
  residuals_.push_back(geometry::normalizeDeg(
      measuredDirectionDeg - mapDirectionDeg));
}

double CompassCalibrator::estimatedBiasDeg() const {
  if (residuals_.empty()) return 0.0;
  // Report in (-180, 180] so a small negative bias reads as negative.
  return geometry::signedAngularDiffDeg(
      0.0, geometry::circularMeanDeg(residuals_));
}

double CompassCalibrator::robustBiasDeg() const {
  if (residuals_.empty()) return 0.0;
  return geometry::signedAngularDiffDeg(
      0.0, geometry::circularMedianDeg(residuals_));
}

}  // namespace moloc::sensors
