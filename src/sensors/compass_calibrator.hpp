#pragma once

#include <cstddef>
#include <vector>

namespace moloc::sensors {

/// Map-aided compass calibration: estimates a user's constant heading
/// bias (phone placement offset plus device bias) by comparing measured
/// walking directions against the map directions of the legs the system
/// believes were walked.
///
/// The paper assumes Zee's placement-independent orientation estimation
/// has already removed the placement offset (Sec. IV.B.1).  This class
/// is the fallback when no such front end exists: during crowdsourcing,
/// every leg whose endpoint estimates are map-adjacent contributes one
/// residual (measured - map direction); their circular average is the
/// bias estimate that motion processing then subtracts.
///
/// Mis-estimated legs contaminate residuals, so the robust (median)
/// estimate is preferred when contamination is expected.
class CompassCalibrator {
 public:
  /// Adds one leg's residual evidence.
  void addLeg(double measuredDirectionDeg, double mapDirectionDeg);

  std::size_t legCount() const { return residuals_.size(); }

  /// Circular-mean bias estimate (degrees, in (-180, 180]); 0 with no
  /// evidence.
  double estimatedBiasDeg() const;

  /// Circular-median bias estimate — robust to a minority of
  /// mis-estimated legs; 0 with no evidence.
  double robustBiasDeg() const;

  void reset() { residuals_.clear(); }

 private:
  std::vector<double> residuals_;
};

}  // namespace moloc::sensors
