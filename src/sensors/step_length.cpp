#include "sensors/step_length.hpp"

#include <algorithm>

namespace moloc::sensors {

double estimateStepLength(double heightMeters, double weightKg) {
  const double h =
      std::clamp(heightMeters, kMinHeightMeters, kMaxHeightMeters);
  const double w = std::clamp(weightKg, kMinWeightKg, kMaxWeightKg);

  // Base anthropometric ratio: step length ~ 0.41 x height, with a
  // small weight correction around a 70 kg reference (-2 % per 20 kg).
  const double base = 0.41 * h;
  const double weightFactor = 1.0 - 0.02 * (w - 70.0) / 20.0;
  return base * std::clamp(weightFactor, 0.9, 1.1);
}

}  // namespace moloc::sensors
