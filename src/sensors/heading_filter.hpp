#pragma once

#include <span>

namespace moloc::sensors {

/// A one-dimensional wrap-aware Kalman filter fusing gyroscope rates
/// (prediction) with compass readings (correction) — the "gyroscope and
/// advanced filtering techniques such as the Kalman filter" the paper
/// leaves as future work (Sec. IV.B.2).
///
/// The filter carries heading (degrees) and its variance.  Compass
/// innovations beyond `gateSigma` standard deviations are rejected,
/// which is what makes the fusion robust to transient magnetic
/// disturbances that drag a plain circular mean.
struct KalmanHeadingParams {
  double rateNoiseDegPerSqrtSec = 1.5;  ///< Gyro random walk strength.
  double compassSigmaDeg = 8.0;         ///< Compass measurement noise.
  double initialSigmaDeg = 45.0;        ///< Prior spread before data.
  double gateSigma = 3.0;  ///< Innovation gate; <= 0 disables gating.
};

class KalmanHeadingFilter {
 public:
  explicit KalmanHeadingFilter(KalmanHeadingParams params = {});

  /// Resets to an uninformative prior centred on `headingDeg`.
  void reset(double headingDeg = 0.0);

  /// Propagates the heading by one gyro reading over `dtSec`.
  void predict(double rateDegPerSec, double dtSec);

  /// Fuses one compass reading (wrap-aware).  Returns false when the
  /// innovation gate rejected the reading as an outlier.
  bool update(double compassDeg);

  /// Current heading estimate in [0, 360).
  double headingDeg() const;

  /// Current standard deviation (degrees).
  double sigmaDeg() const;

  /// Number of compass readings rejected by the gate since reset().
  std::size_t rejectedUpdates() const { return rejected_; }

 private:
  KalmanHeadingParams params_;
  double heading_ = 0.0;
  double variance_ = 0.0;
  std::size_t rejected_ = 0;
  bool hasFirstUpdate_ = false;
};

/// Convenience: runs the filter over whole per-sample series (compass
/// and gyro, equal lengths, `sampleRateHz`) and returns the final
/// heading estimate.  Returns the plain circular mean if the series is
/// empty of gyro data.
double fuseHeadingDeg(std::span<const double> compassDeg,
                      std::span<const double> gyroRateDegPerSec,
                      double sampleRateHz,
                      KalmanHeadingParams params = {});

}  // namespace moloc::sensors
