#pragma once

#include <span>

namespace moloc::sensors {

/// A step count split into the integral part (detected peaks) and the
/// decimal part CSC recovers from the "odd time" (Sec. IV.B.1).
struct StepCount {
  int integralSteps = 0;
  double decimalSteps = 0.0;

  double totalSteps() const { return integralSteps + decimalSteps; }
};

/// Discrete Step Counting: integral detected steps only.  This is the
/// prior-art method the paper improves on — it drops the motion before
/// the first recognized step and after the last one, losing up to one or
/// two steps per localization interval.
StepCount discreteStepCount(std::span<const double> stepTimesSec);

/// Continuous Step Counting (the paper's method): estimates the walking
/// period from the detected steps, attributes the interval's odd time
/// (the part not covered by whole steps) a fractional number of steps,
/// and returns integral + decimal steps.
///
/// With fewer than two detected steps the period is undefined and the
/// count degrades gracefully to DSC.  `intervalDurationSec` must cover
/// the step times; values smaller than the covered span are clamped.
StepCount continuousStepCount(std::span<const double> stepTimesSec,
                              double intervalDurationSec);

}  // namespace moloc::sensors
