#pragma once

#include <span>
#include <vector>

#include "util/rng.hpp"

namespace moloc::sensors {

/// Parameters of the synthetic z-axis gyroscope (yaw rate).
///
/// A MEMS gyro reports the angular rate with a slowly-drifting bias
/// plus white noise.  Rates integrate beautifully over seconds (no
/// magnetic disturbance) but drift over minutes — the complementary
/// error profile to the compass, which is why the paper's future-work
/// section proposes fusing the two with a Kalman filter.
struct GyroParams {
  double noiseSigmaDegPerSec = 1.0;  ///< White rate noise.
  double biasSigmaDegPerSec = 0.3;   ///< Per-walk constant bias spread.
};

class GyroscopeModel {
 public:
  explicit GyroscopeModel(GyroParams params = {});

  const GyroParams& params() const { return params_; }

  /// Draws one rate bias for a walk (deg/s).
  double drawBias(util::Rng& rng) const;

  /// Rate readings for a known true-heading series sampled at
  /// `sampleRateHz`: the discrete derivative of the series (wrap-aware)
  /// plus bias plus noise.  The first reading assumes a zero rate into
  /// the first sample.
  std::vector<double> rates(std::span<const double> trueHeadingDeg,
                            double sampleRateHz, double biasDegPerSec,
                            util::Rng& rng) const;

  /// Rate readings for a straight walk (true rate zero throughout).
  std::vector<double> straightWalkRates(std::size_t count,
                                        double biasDegPerSec,
                                        util::Rng& rng) const;

 private:
  GyroParams params_;
};

}  // namespace moloc::sensors
