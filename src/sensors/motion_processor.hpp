#pragma once

#include <optional>

#include "sensors/heading_filter.hpp"
#include "sensors/imu_trace.hpp"
#include "sensors/step_counter.hpp"
#include "sensors/step_detector.hpp"
#include "sensors/walking_detector.hpp"

namespace moloc::sensors {

/// A relative location measurement extracted from one localization
/// interval's inertial data: the walking direction (compass degrees) and
/// the offset walked (metres).  This is the <d, o> pair of Sec. IV.B.1.
struct MotionMeasurement {
  double directionDeg = 0.0;
  double offsetMeters = 0.0;
};

/// Which step-counting variant the processor uses for the offset.
enum class StepCountingMode {
  kDiscrete,    ///< DSC: integral detected steps only (prior art).
  kContinuous,  ///< CSC: integral + decimal steps (the paper's method).
};

/// How the walking direction is estimated from the interval's data.
enum class HeadingMode {
  kCircularMean,  ///< Circular mean of compass readings (the paper).
  kKalmanFusion,  ///< Gyro-predicted, compass-corrected Kalman filter
                  ///< with innovation gating (the paper's future work).
};

/// Configuration of the motion processing unit.
struct MotionProcessorParams {
  WalkingDetectorParams walking;
  StepDetectorParams steps;
  StepCountingMode mode = StepCountingMode::kContinuous;
  HeadingMode heading = HeadingMode::kCircularMean;
  KalmanHeadingParams kalman;
  /// When the trace shows the user standing still, report a
  /// zero-offset measurement instead of "no measurement".  Standing
  /// still is evidence ("I have not left my location"), and the
  /// engine's stationary model exploits it; without this the engine
  /// falls back to memoryless fingerprinting for every idle interval.
  bool reportStationary = true;
};

/// The "motion processing unit" of the MoLoc architecture (Fig. 2):
/// turns a raw IMU trace into a direction/offset RLM.
///
/// Direction is the circular mean of the compass readings over the
/// interval; offset is (steps counted) x (the user's estimated step
/// length).  Returns nullopt when the trace shows no walking — a user
/// standing still contributes no RLM.
class MotionProcessor {
 public:
  explicit MotionProcessor(MotionProcessorParams params = {});

  const MotionProcessorParams& params() const { return params_; }

  std::optional<MotionMeasurement> process(const ImuTrace& trace,
                                           double stepLengthMeters) const;

  /// The step count alone (per the configured mode), for diagnostics and
  /// the CSC-vs-DSC ablation.
  std::optional<StepCount> countSteps(const ImuTrace& trace) const;

 private:
  MotionProcessorParams params_;
};

}  // namespace moloc::sensors
