#pragma once

#include <vector>

#include "util/rng.hpp"

namespace moloc::sensors {

/// Parameters of the synthetic digital compass.
///
/// A phone compass reports the device heading, not the walking
/// direction; the paper borrows Zee's placement-independent orientation
/// estimation to remove the phone-placement offset.  We model what is
/// left after that correction: a slowly-varying residual bias (drawn per
/// walk) plus per-sample magnetic noise, and — per device — a
/// heading-dependent soft-iron distortion.  The distortion is what the
/// paper observes as "reversing directions generally brings in bias
/// errors of 10 to 20 degrees with our mobile phone" (Sec. VI.B.1):
/// a sinusoidal error A*sin(heading + phase) differs between a heading
/// and its reverse by up to 2A.
struct CompassParams {
  double noiseSigmaDeg = 8.0;          ///< Per-sample reading noise.
  double residualBiasSigmaDeg = 3.0;   ///< Residual after Zee correction.
  /// Transient magnetic disturbances (steel pillars, elevators): with
  /// this probability per walking leg, a contiguous window of the
  /// readings is offset by +-disturbanceMagnitudeDeg.  Off by default;
  /// the Kalman-fusion extension exercises it.
  double disturbanceProbability = 0.0;
  double disturbanceMagnitudeDeg = 30.0;
  double disturbanceFractionOfLeg = 0.3;
};

/// The systematic error state applied to one walk's readings: the
/// walk-level residual bias plus the carrying device's soft-iron
/// distortion.
struct CompassDistortion {
  double biasDeg = 0.0;              ///< Drawn per walk.
  double softIronAmplitudeDeg = 0.0; ///< Device property.
  double softIronPhaseRad = 0.0;     ///< Device property.
};

/// Generates compass reading series for a walk of known true heading.
class CompassModel {
 public:
  explicit CompassModel(CompassParams params = {});

  const CompassParams& params() const { return params_; }

  /// Draws one residual heading bias for a walk (degrees).
  double drawResidualBias(util::Rng& rng) const;

  /// The systematic (noise-free) reading error at a true heading under
  /// the given distortion; exposed for tests and diagnostics.
  static double systematicErrorDeg(double trueHeadingDeg,
                                   const CompassDistortion& distortion);

  /// `count` readings while heading `trueHeadingDeg`, with the given
  /// distortion applied; each reading is wrapped to [0, 360).
  std::vector<double> readings(double trueHeadingDeg,
                               const CompassDistortion& distortion,
                               std::size_t count, util::Rng& rng) const;

  /// Convenience overload: bias only, no soft-iron term.
  std::vector<double> readings(double trueHeadingDeg, double biasDeg,
                               std::size_t count, util::Rng& rng) const;

  /// Rolls for a magnetic disturbance on one leg's readings (per the
  /// disturbance* params) and applies it in place.  Returns true when
  /// a disturbance was injected.
  bool maybeDisturb(std::vector<double>& legReadings,
                    util::Rng& rng) const;

 private:
  CompassParams params_;
};

}  // namespace moloc::sensors
