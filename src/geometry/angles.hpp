#pragma once

#include <span>

#include "geometry/vec2.hpp"

namespace moloc::geometry {

/// Circular arithmetic on compass headings.
///
/// Headings are degrees in [0, 360), clockwise from north — the raw
/// convention of a phone's digital compass and of the paper's relative
/// location measurements (RLMs).  All differences are computed on the
/// circle, never as plain subtraction.

inline constexpr double kPi = 3.14159265358979323846;

constexpr double degToRad(double deg) { return deg * kPi / 180.0; }
constexpr double radToDeg(double rad) { return rad * 180.0 / kPi; }

/// Wraps any angle (degrees) into [0, 360).
double normalizeDeg(double deg);

/// Signed smallest rotation from `from` to `to`, in (-180, 180].
double signedAngularDiffDeg(double from, double to);

/// Absolute circular distance between two headings, in [0, 180].
double angularDistDeg(double a, double b);

/// The paper's mirror rule for mutual reachability:
/// reverse(d) = d + 180 (mod 360).
double reverseHeadingDeg(double deg);

/// Circular mean of a set of headings (degrees); 0 for an empty set.
/// Computed via the resultant vector, so {350, 10} averages to 0.
double circularMeanDeg(std::span<const double> degs);

/// Circular median of a set of headings (degrees): the sample heading
/// minimizing the total circular distance to all others — robust to a
/// minority of outliers (e.g. a magnetic-disturbance window), unlike
/// the circular mean.  For large samples, candidates are subsampled
/// (every k-th element) to bound the cost; distances are still summed
/// over the full sample.  Returns 0 for an empty set.
double circularMedianDeg(std::span<const double> degs);

/// Circular standard deviation (degrees) around the circular mean,
/// computed as sqrt(-2 ln R) in radians, the standard directional
/// statistic; 0 for fewer than 2 samples.
double circularStddevDeg(std::span<const double> degs);

/// Compass heading (deg, clockwise from north) of the displacement a->b.
/// Returns 0 if the two points coincide.
double headingBetweenDeg(Vec2 a, Vec2 b);

/// Unit displacement for a compass heading: heading 0 -> (0, 1),
/// heading 90 -> (1, 0).
Vec2 headingToUnitVec(double deg);

}  // namespace moloc::geometry
