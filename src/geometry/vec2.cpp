#include "geometry/vec2.hpp"

// Vec2 is fully inline; this translation unit exists so the geometry
// component has a stable object file for the library archive.
namespace moloc::geometry {}
