#pragma once

#include <cmath>

namespace moloc::geometry {

/// A 2-D point / displacement in metres, world coordinates.
///
/// The floor-plan convention throughout the library: +x points east,
/// +y points north, and compass headings are measured clockwise from
/// north (see angles.hpp for conversions).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z component); >0 when `o` lies counterclockwise.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }

  double norm() const { return std::hypot(x, y); }
  constexpr double squaredNorm() const { return x * x + y * y; }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

/// Euclidean distance between two points.
inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

}  // namespace moloc::geometry
