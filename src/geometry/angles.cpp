#include "geometry/angles.hpp"

#include <cmath>
#include <limits>

namespace moloc::geometry {

double normalizeDeg(double deg) {
  double wrapped = std::fmod(deg, 360.0);
  if (wrapped < 0.0) wrapped += 360.0;
  // A tiny negative input can round back up to exactly 360.
  if (wrapped >= 360.0) wrapped -= 360.0;
  return wrapped;
}

double signedAngularDiffDeg(double from, double to) {
  double diff = normalizeDeg(to - from);
  if (diff > 180.0) diff -= 360.0;
  return diff;
}

double angularDistDeg(double a, double b) {
  return std::abs(signedAngularDiffDeg(a, b));
}

double reverseHeadingDeg(double deg) { return normalizeDeg(deg + 180.0); }

double circularMeanDeg(std::span<const double> degs) {
  if (degs.empty()) return 0.0;
  double sumSin = 0.0;
  double sumCos = 0.0;
  for (double d : degs) {
    sumSin += std::sin(degToRad(d));
    sumCos += std::cos(degToRad(d));
  }
  if (sumSin == 0.0 && sumCos == 0.0) return 0.0;
  return normalizeDeg(radToDeg(std::atan2(sumSin, sumCos)));
}

double circularMedianDeg(std::span<const double> degs) {
  if (degs.empty()) return 0.0;
  if (degs.size() == 1) return normalizeDeg(degs[0]);

  // Bound the candidate set so the cost stays ~O(200 n).
  const std::size_t stride = degs.size() > 200 ? degs.size() / 200 : 1;
  double best = degs[0];
  double bestCost = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < degs.size(); c += stride) {
    double cost = 0.0;
    for (double d : degs) cost += angularDistDeg(degs[c], d);
    if (cost < bestCost) {
      bestCost = cost;
      best = degs[c];
    }
  }
  return normalizeDeg(best);
}

double circularStddevDeg(std::span<const double> degs) {
  if (degs.size() < 2) return 0.0;
  double sumSin = 0.0;
  double sumCos = 0.0;
  for (double d : degs) {
    sumSin += std::sin(degToRad(d));
    sumCos += std::cos(degToRad(d));
  }
  const double n = static_cast<double>(degs.size());
  const double r = std::hypot(sumSin / n, sumCos / n);
  if (r <= 0.0) return 180.0;  // Perfectly dispersed sample.
  if (r >= 1.0) return 0.0;
  return radToDeg(std::sqrt(-2.0 * std::log(r)));
}

double headingBetweenDeg(Vec2 a, Vec2 b) {
  const Vec2 d = b - a;
  if (d.x == 0.0 && d.y == 0.0) return 0.0;
  // Compass heading: clockwise from north, so atan2 of (east, north).
  return normalizeDeg(radToDeg(std::atan2(d.x, d.y)));
}

Vec2 headingToUnitVec(double deg) {
  const double rad = degToRad(deg);
  return {std::sin(rad), std::cos(rad)};
}

}  // namespace moloc::geometry
