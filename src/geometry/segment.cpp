#include "geometry/segment.hpp"

#include <algorithm>

namespace moloc::geometry {

namespace {

/// Orientation of the ordered triple (a, b, c):
/// +1 counterclockwise, -1 clockwise, 0 collinear (within tolerance).
int orientation(Vec2 a, Vec2 b, Vec2 c) {
  const double cross = (b - a).cross(c - a);
  constexpr double kEps = 1e-12;
  if (cross > kEps) return 1;
  if (cross < -kEps) return -1;
  return 0;
}

/// For collinear a, b, c: is c within the bounding box of [a, b]?
bool onSegment(Vec2 a, Vec2 b, Vec2 c) {
  return std::min(a.x, b.x) <= c.x && c.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= c.y && c.y <= std::max(a.y, b.y);
}

}  // namespace

bool segmentsIntersect(const Segment& s1, const Segment& s2) {
  const int o1 = orientation(s1.a, s1.b, s2.a);
  const int o2 = orientation(s1.a, s1.b, s2.b);
  const int o3 = orientation(s2.a, s2.b, s1.a);
  const int o4 = orientation(s2.a, s2.b, s1.b);

  if (o1 != o2 && o3 != o4) return true;

  if (o1 == 0 && onSegment(s1.a, s1.b, s2.a)) return true;
  if (o2 == 0 && onSegment(s1.a, s1.b, s2.b)) return true;
  if (o3 == 0 && onSegment(s2.a, s2.b, s1.a)) return true;
  if (o4 == 0 && onSegment(s2.a, s2.b, s1.b)) return true;
  return false;
}

double distanceToSegment(Vec2 p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len2 = d.squaredNorm();
  if (len2 == 0.0) return distance(p, s.a);
  const double t = std::clamp((p - s.a).dot(d) / len2, 0.0, 1.0);
  return distance(p, s.pointAt(t));
}

}  // namespace moloc::geometry
