#pragma once

#include "geometry/vec2.hpp"

namespace moloc::geometry {

/// A line segment in the floor plan; walls and walk legs are segments.
struct Segment {
  Vec2 a;
  Vec2 b;

  double length() const { return distance(a, b); }
  Vec2 midpoint() const { return (a + b) * 0.5; }

  /// Point at parameter t in [0, 1] along the segment.
  Vec2 pointAt(double t) const { return a + (b - a) * t; }
};

/// True when the two segments properly intersect or touch.
///
/// Used both for wall-crossing tests in the radio propagation model
/// (each crossed wall attenuates the signal) and for walkability tests
/// when building the aisle graph (a leg blocked by a wall is not
/// walkable even if its endpoints are geometrically close).
bool segmentsIntersect(const Segment& s1, const Segment& s2);

/// Number of walls in `walls` crossed by the open segment from `from`
/// to `to`.
template <typename WallRange>
int countCrossings(Vec2 from, Vec2 to, const WallRange& walls) {
  const Segment path{from, to};
  int crossings = 0;
  for (const Segment& wall : walls)
    if (segmentsIntersect(path, wall)) ++crossings;
  return crossings;
}

/// Shortest distance from point `p` to the segment.
double distanceToSegment(Vec2 p, const Segment& s);

}  // namespace moloc::geometry
