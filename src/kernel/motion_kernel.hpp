#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/motion_database.hpp"
#include "env/floor_plan.hpp"

namespace moloc::kernel {

/// sqrt(2), hoisted out of the per-pair Gaussian window math.  The
/// call std::sqrt(2.0) is correctly rounded, so substituting this
/// constant for an inline call is bitwise-neutral.
inline const double kSqrt2 = std::sqrt(2.0);

/// One directed motion-DB entry with its query-time constants
/// precomputed: the means, the sigmas (kept for the degenerate
/// sigma <= 0 / non-finite branch), and 1/(sigma*sqrt(2)) so the hot
/// path runs two erf calls per factor and nothing else.
struct PairWindow {
  env::LocationId to = 0;
  double muDirectionDeg = 0.0;
  double sigmaDirectionDeg = 0.0;
  double invSqrt2SigmaDir = 0.0;  ///< 0 when the sigma is degenerate.
  double muOffsetMeters = 0.0;
  double sigmaOffsetMeters = 0.0;
  double invSqrt2SigmaOff = 0.0;  ///< 0 when the sigma is degenerate.
};

/// True when a sigma cannot parameterize the Gaussian window: zero,
/// negative, or NaN (a NaN would otherwise poison the erf math).
/// +inf is finite-path-safe — the erf arguments collapse to 0 and the
/// window mass is an honest 0 — so it is not treated as degenerate.
inline bool degenerateSigma(double sigma) {
  return std::isnan(sigma) || sigma <= 0.0;
}

/// N(mu, sigma) mass inside [x - halfWidth, x + halfWidth], with the
/// 1/(sigma*sqrt(2)) factor precomputed.  The arithmetic is exactly
/// the inline form's, so precomputed and inline callers agree bitwise.
inline double windowMass(double x, double halfWidth, double mu,
                         double invSqrt2Sigma) {
  const double upper = (x + halfWidth - mu) * invSqrt2Sigma;
  const double lower = (x - halfWidth - mu) * invSqrt2Sigma;
  return 0.5 * (std::erf(upper) - std::erf(lower));
}

/// Zero-mean circular window mass with the integration bounds clamped
/// to the circle's extent [-180, 180] (see
/// core::circularGaussianWindowProbability).
inline double circularWindowMass(double deviationDeg, double halfWidthDeg,
                                 double invSqrt2Sigma) {
  const double lowerDeg = deviationDeg - halfWidthDeg < -180.0
                              ? -180.0
                              : deviationDeg - halfWidthDeg;
  const double upperDeg = deviationDeg + halfWidthDeg > 180.0
                              ? 180.0
                              : deviationDeg + halfWidthDeg;
  if (lowerDeg >= upperDeg) return 0.0;
  return 0.5 * (std::erf(upperDeg * invSqrt2Sigma) -
                std::erf(lowerDeg * invSqrt2Sigma));
}

/// A CSR-style adjacency view of a MotionDatabase: per source
/// location, the sorted list of populated out-edges with their
/// precomputed window constants.  Replaces the dense per-(i,j)
/// optional<RlmStats> lookup on the Eq. 5-6 hot path — candidate sets
/// touch only pairs that actually have entries, everything else takes
/// the closed-form unreachable-floor path.
///
/// The index is built once (construction-time or via rebuild()) and
/// then treated as immutable: it does not track the source database,
/// so readers scoring through a built adjacency never observe a
/// mutation mid-query.  The serving stack builds one per published
/// core::WorldSnapshot and shares it across sessions behind a
/// shared_ptr<const MotionAdjacency>; anything that wants newer data
/// builds (or adopts) a new index.  This snapshot-owned design is what
/// replaced the process-wide version-stamp cache: a stamp compared a
/// database *address* against a counter, so a destroyed database whose
/// storage was reused could alias a stale cache (ABA); an owned index
/// has no identity to confuse.
class MotionAdjacency {
 public:
  MotionAdjacency() = default;

  /// Builds the index from `db`'s current contents.
  explicit MotionAdjacency(const core::MotionDatabase& db) { rebuild(db); }

  /// A non-owning view over externally owned CSR arrays — the
  /// zero-copy path of the mmap venue image (src/image).  `rowStart`
  /// must hold locationCount + 1 monotonically non-decreasing offsets
  /// starting at 0 and ending at edges.size(), and `edges` must be
  /// sorted by (from, to); both must outlive the adjacency and every
  /// copy of it.  The caller (the image loader) validates those
  /// invariants — this factory only checks the shape.  A view is
  /// immutable: rebuild() throws std::logic_error.
  static MotionAdjacency view(std::span<const std::size_t> rowStart,
                              std::span<const PairWindow> edges);

  /// Rebuilds the index from `db`.  Not thread-safe against readers of
  /// this instance; build before sharing.  Throws std::logic_error on
  /// a view.
  void rebuild(const core::MotionDatabase& db);

  std::size_t locationCount() const { return locationCount_; }
  std::size_t edgeCount() const {
    return isView() ? borrowedEdgeCount_ : edges_.size();
  }

  /// True when this adjacency borrows external storage (see view()).
  bool isView() const { return borrowedRowStart_ != nullptr; }

  /// The row-start offsets (locationCount() + 1 entries) and the edge
  /// array they index — exposed for the venue-image writer.
  std::span<const std::size_t> rowStarts() const {
    if (borrowedRowStart_ != nullptr)
      return {borrowedRowStart_, locationCount_ + 1};
    return {rowStart_.data(), rowStart_.size()};
  }
  std::span<const PairWindow> edges() const {
    return isView() ? std::span<const PairWindow>{borrowedEdges_,
                                                  borrowedEdgeCount_}
                    : std::span<const PairWindow>{edges_};
  }

  /// The populated out-edges of `i`, sorted by destination id.
  /// `i` must be < locationCount().
  std::span<const PairWindow> outEdges(env::LocationId i) const {
    const auto row = static_cast<std::size_t>(i);
    const std::size_t* rs =
        isView() ? borrowedRowStart_ : rowStart_.data();
    const PairWindow* ed = isView() ? borrowedEdges_ : edges_.data();
    return {ed + rs[row], rs[row + 1] - rs[row]};
  }

  /// The window for the directed pair (i, j), or nullptr when the pair
  /// has no entry.  Binary search over i's out-edges.
  const PairWindow* find(env::LocationId i, env::LocationId j) const;

 private:
  std::vector<std::size_t> rowStart_;  ///< locationCount_ + 1 offsets.
  std::vector<PairWindow> edges_;      ///< Sorted by (from, to).
  /// Set iff this adjacency is a view; owning instances read the
  /// vectors so default copy/move stay correct (a copied view stays a
  /// shallow view, a copied owner re-points at its own buffers).
  const std::size_t* borrowedRowStart_ = nullptr;
  const PairWindow* borrowedEdges_ = nullptr;
  std::size_t borrowedEdgeCount_ = 0;
  std::size_t locationCount_ = 0;
};

/// Finds `to` inside one sorted out-edge row (exposed for reuse when a
/// caller has already resolved the row span).
const PairWindow* findInRow(std::span<const PairWindow> row,
                            env::LocationId to);

/// Builds the precomputed window for one RlmStats entry.
PairWindow makeWindow(env::LocationId to, const core::RlmStats& stats);

}  // namespace moloc::kernel
