// AVX2 lane-per-row squared-distance kernel.  This translation unit is
// the only one compiled with -mavx2 (and deliberately without -mfma:
// an FMA contraction of mul+add would round once instead of twice and
// break bitwise equality with the scalar path).  Callers reach it only
// through the runtime dispatch in fingerprint_kernel.cpp, which checks
// cpuid first, so the binary stays safe on non-AVX2 machines.
//
// Layout note: with 4-6 APs per fingerprint the row is far too short
// to vectorize along, so the kernel assigns one SIMD lane per *row*
// and walks columns sequentially.  The FlatMatrix interleaved layout
// makes column c of a block's four rows contiguous, so each step is a
// single vector load rather than four strided scalar loads, and each
// lane's accumulation order stays identical to the scalar loop's —
// which is what makes the result bitwise-identical per row.
//
// The main loop carries four blocks (16 rows) at once: a lone
// accumulator would serialize on vaddpd latency (cols sequential adds
// back to back), while four independent accumulator chains keep the
// FP add ports busy.

#if MOLOC_SIMD_ENABLED

#include <immintrin.h>

#include <cstddef>

namespace moloc::kernel::detail {

void squaredDistancesAvx2(const double* data, std::size_t paddedRows,
                          std::size_t cols, const double* query,
                          double* out) {
  const std::size_t blockDoubles = 4 * cols;
  const std::size_t blocks = paddedRows / 4;
  std::size_t b = 0;
  for (; b + 4 <= blocks; b += 4) {
    const double* b0 = data + b * blockDoubles;
    const double* b1 = b0 + blockDoubles;
    const double* b2 = b1 + blockDoubles;
    const double* b3 = b2 + blockDoubles;
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    __m256d acc2 = _mm256_setzero_pd();
    __m256d acc3 = _mm256_setzero_pd();
    for (std::size_t c = 0; c < cols; ++c) {
      const __m256d q = _mm256_set1_pd(query[c]);
      const __m256d d0 = _mm256_sub_pd(q, _mm256_loadu_pd(b0 + c * 4));
      const __m256d d1 = _mm256_sub_pd(q, _mm256_loadu_pd(b1 + c * 4));
      const __m256d d2 = _mm256_sub_pd(q, _mm256_loadu_pd(b2 + c * 4));
      const __m256d d3 = _mm256_sub_pd(q, _mm256_loadu_pd(b3 + c * 4));
      acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
      acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
      acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(d2, d2));
      acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(d3, d3));
    }
    _mm256_storeu_pd(out + b * 4, acc0);
    _mm256_storeu_pd(out + b * 4 + 4, acc1);
    _mm256_storeu_pd(out + b * 4 + 8, acc2);
    _mm256_storeu_pd(out + b * 4 + 12, acc3);
  }
  for (; b < blocks; ++b) {
    const double* block = data + b * blockDoubles;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t c = 0; c < cols; ++c) {
      const __m256d q = _mm256_set1_pd(query[c]);
      const __m256d d = _mm256_sub_pd(q, _mm256_loadu_pd(block + c * 4));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + b * 4, acc);
  }
}

std::size_t findBelowAvx2(const double* values, std::size_t begin,
                          std::size_t end, double threshold) {
  const __m256d t = _mm256_set1_pd(threshold);
  std::size_t i = begin;
  for (; i + 16 <= end; i += 16) {
    const __m256d c0 =
        _mm256_cmp_pd(_mm256_loadu_pd(values + i), t, _CMP_LT_OQ);
    const __m256d c1 =
        _mm256_cmp_pd(_mm256_loadu_pd(values + i + 4), t, _CMP_LT_OQ);
    const __m256d c2 =
        _mm256_cmp_pd(_mm256_loadu_pd(values + i + 8), t, _CMP_LT_OQ);
    const __m256d c3 =
        _mm256_cmp_pd(_mm256_loadu_pd(values + i + 12), t, _CMP_LT_OQ);
    const __m256d any =
        _mm256_or_pd(_mm256_or_pd(c0, c1), _mm256_or_pd(c2, c3));
    if (_mm256_movemask_pd(any)) {
      for (std::size_t j = i;; ++j)
        if (values[j] < threshold) return j;
    }
  }
  for (; i < end; ++i)
    if (values[i] < threshold) return i;
  return end;
}

}  // namespace moloc::kernel::detail

#endif  // MOLOC_SIMD_ENABLED
