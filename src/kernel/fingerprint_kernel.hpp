#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace moloc::kernel {

/// Rows per interleaved block: storage groups this many rows together,
/// and the vectorized kernels process one SIMD lane per row in the
/// block.
inline constexpr std::size_t kRowBlock = 4;

/// Blocked row-interleaved (AoSoA) storage for the fingerprint radio
/// map — the data-oriented layout behind the matching hot path.
///
/// Rows are grouped into blocks of kRowBlock; within a block the
/// values are column-major, so column c of the block's four rows is
/// one contiguous run of kRowBlock doubles:
///
///   data[block * kRowBlock * cols + c * kRowBlock + lane]
///     == element (block * kRowBlock + lane, c)
///
/// A squared-distance kernel can then load column c of four rows with
/// a single vector load instead of four strided scalar loads, while
/// each row's accumulation still walks columns sequentially — the same
/// order as a plain per-row scalar loop, which is what keeps results
/// bitwise-identical across code paths.
///
/// The trailing partial block is zero-padded: kernels always process
/// whole blocks, and the padded rows' outputs (a deterministic, finite
/// sum of query squares) are simply never read.
class FlatMatrix {
 public:
  FlatMatrix() = default;

  /// A non-owning view over an externally owned blocked buffer — the
  /// zero-copy path of the mmap venue image (src/image).  `data` must
  /// hold paddedRows * cols doubles in exactly the layout described
  /// above (including the zero-padded trailing block) and must outlive
  /// the matrix and every copy of it.  A view is immutable: reset()
  /// and appendRow() throw util::StateError.
  static FlatMatrix view(const double* data, std::size_t rows,
                         std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  /// True when this matrix borrows external storage (see view()).
  bool isView() const { return borrowed_ != nullptr; }

  /// rows() rounded up to a whole number of blocks — the number of
  /// distance outputs a kernel writes.
  std::size_t paddedRows() const {
    return (rows_ + kRowBlock - 1) / kRowBlock * kRowBlock;
  }

  const double* data() const {
    return borrowed_ != nullptr ? borrowed_ : data_.data();
  }

  /// Element access through the interleaved layout (test/debug path;
  /// the kernels index the raw block layout directly).
  double at(std::size_t row, std::size_t col) const {
    return data()[(row / kRowBlock) * kRowBlock * cols_ +
                  col * kRowBlock + row % kRowBlock];
  }

  /// Drops all rows and fixes the column count.  Throws
  /// std::logic_error on a view.
  void reset(std::size_t cols);

  /// Appends one row; `row.size()` must equal cols() (throws
  /// std::invalid_argument otherwise, std::logic_error on a view).
  void appendRow(std::span<const double> row);

 private:
  std::vector<double> data_;
  /// Set iff this matrix is a view; owning matrices read data_ so the
  /// default copy/move semantics stay correct (a copied view stays a
  /// shallow view, a copied owner re-points at its own buffer).
  const double* borrowed_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Which code path squaredDistances() dispatches to on this machine
/// and build.
enum class SimdLevel { scalar, avx2 };
SimdLevel activeSimdLevel();
const char* simdLevelName(SimdLevel level);

/// Test hook: forces the scalar path even when the AVX2 path is
/// compiled in and supported.  Not for concurrent use with running
/// kernels (tests toggle it single-threaded).
void setForceScalar(bool force);

/// out[r] = sum_c (query[c] - m[r][c])^2 for every row, accumulated
/// sequentially over columns per row — the same order as a plain
/// scalar loop, so every dispatch target returns bitwise-identical
/// results.  `query` must hold cols() doubles; `out` must hold
/// paddedRows() doubles (the padded tail's outputs are deterministic
/// garbage — see FlatMatrix).
void squaredDistances(const FlatMatrix& m, const double* query,
                      double* out);

/// The scalar reference the dispatched paths are tested against.
void squaredDistancesScalar(const FlatMatrix& m, const double* query,
                            double* out);

/// One top-k candidate: a squared distance and the row it came from.
struct TopKEntry {
  double squaredDistance = 0.0;
  std::size_t row = 0;
};

/// Selects the k smallest distances (ties broken toward the lower row
/// index) into `out`, ascending, using a bounded max-heap — O(n log k)
/// and no n-sized materialization, unlike a full partial_sort.
/// Returns fewer than k entries when n < k.
void selectSmallestK(std::span<const double> distances, std::size_t k,
                     std::vector<TopKEntry>& out);

/// Reusable scratch for a query against a FlatMatrix, so the serving
/// hot path performs no per-call allocations once warm.
struct QueryWorkspace {
  std::vector<double> distances;
  std::vector<TopKEntry> topk;
};

}  // namespace moloc::kernel
