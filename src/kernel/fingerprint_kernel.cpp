#include "kernel/fingerprint_kernel.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::kernel {

namespace {

std::atomic<bool> g_forceScalar{false};

#if MOLOC_SIMD_ENABLED
bool cpuHasAvx2() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}
#endif

bool useAvx2() {
#if MOLOC_SIMD_ENABLED
  return cpuHasAvx2() && !g_forceScalar.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

}  // namespace

#if MOLOC_SIMD_ENABLED
namespace detail {
// Defined in fingerprint_kernel_avx2.cpp (compiled with -mavx2 only —
// no -mfma, so the compiler cannot contract mul+add into an FMA and
// change the rounding versus the scalar path).
void squaredDistancesAvx2(const double* data, std::size_t paddedRows,
                          std::size_t cols, const double* query,
                          double* out);
std::size_t findBelowAvx2(const double* values, std::size_t begin,
                          std::size_t end, double threshold);
}  // namespace detail
#endif

FlatMatrix FlatMatrix::view(const double* data, std::size_t rows,
                            std::size_t cols) {
  if (rows > 0 && data == nullptr)
    throw util::ConfigError("FlatMatrix: null view data");
  FlatMatrix m;
  m.borrowed_ = data;
  m.rows_ = rows;
  m.cols_ = cols;
  return m;
}

void FlatMatrix::reset(std::size_t cols) {
  if (borrowed_ != nullptr)
    throw util::StateError("FlatMatrix: cannot reset an immutable view");
  data_.clear();
  rows_ = 0;
  cols_ = cols;
}

void FlatMatrix::appendRow(std::span<const double> row) {
  if (borrowed_ != nullptr)
    throw util::StateError(
        "FlatMatrix: cannot append to an immutable view");
  if (row.size() != cols_)
    throw util::ConfigError("FlatMatrix: row length mismatch");
  // Entering a new block allocates it whole and zero-filled, so the
  // trailing partial block is always valid kernel input.
  if (rows_ % kRowBlock == 0)
    data_.resize(data_.size() + kRowBlock * cols_, 0.0);
  double* block =
      data_.data() + (rows_ / kRowBlock) * kRowBlock * cols_;
  const std::size_t lane = rows_ % kRowBlock;
  for (std::size_t c = 0; c < cols_; ++c)
    block[c * kRowBlock + lane] = row[c];
  ++rows_;
}

SimdLevel activeSimdLevel() {
  return useAvx2() ? SimdLevel::avx2 : SimdLevel::scalar;
}

const char* simdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::avx2:
      return "avx2";
    case SimdLevel::scalar:
      break;
  }
  return "scalar";
}

void setForceScalar(bool force) {
  g_forceScalar.store(force, std::memory_order_relaxed);
}

void squaredDistancesScalar(const FlatMatrix& m, const double* query,
                            double* out) {
  const std::size_t cols = m.cols();
  const std::size_t blocks = m.paddedRows() / kRowBlock;
  const double* data = m.data();
  // One independent accumulator per row in the block; the column loads
  // are unit-stride thanks to the interleaved layout, so the compiler
  // can vectorize across the block's rows without reassociating any
  // single row's column order — which is what keeps the result
  // bitwise-stable across code paths.
  for (std::size_t b = 0; b < blocks; ++b) {
    const double* block = data + b * kRowBlock * cols;
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double q = query[c];
      const double* col = block + c * kRowBlock;
      const double d0 = q - col[0];
      const double d1 = q - col[1];
      const double d2 = q - col[2];
      const double d3 = q - col[3];
      a0 += d0 * d0;
      a1 += d1 * d1;
      a2 += d2 * d2;
      a3 += d3 * d3;
    }
    out[b * kRowBlock] = a0;
    out[b * kRowBlock + 1] = a1;
    out[b * kRowBlock + 2] = a2;
    out[b * kRowBlock + 3] = a3;
  }
}

void squaredDistances(const FlatMatrix& m, const double* query,
                      double* out) {
#if MOLOC_SIMD_ENABLED
  if (useAvx2()) {
    detail::squaredDistancesAvx2(m.data(), m.paddedRows(), m.cols(),
                                 query, out);
    return;
  }
#endif
  squaredDistancesScalar(m, query, out);
}

namespace {

/// "Better" ordering for top-k: smaller distance first, ties toward
/// the lower row index.  Used as the heap's `less`, so the heap top is
/// the worst retained entry.
bool betterEntry(const TopKEntry& a, const TopKEntry& b) {
  if (a.squaredDistance != b.squaredDistance)
    return a.squaredDistance < b.squaredDistance;
  return a.row < b.row;
}

/// First index in [begin, end) with values[i] < threshold, or end.
/// The branchless block-min tree keeps the common miss case at ~one
/// compare per element with no mispredicts.
std::size_t findBelowScalar(const double* values, std::size_t begin,
                            std::size_t end, double threshold) {
  std::size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    const double* d = values + i;
    const double m0 = std::min(d[0], d[1]);
    const double m1 = std::min(d[2], d[3]);
    const double m2 = std::min(d[4], d[5]);
    const double m3 = std::min(d[6], d[7]);
    if (std::min(std::min(m0, m1), std::min(m2, m3)) < threshold) {
      for (std::size_t j = i;; ++j)
        if (values[j] < threshold) return j;
    }
  }
  for (; i < end; ++i)
    if (values[i] < threshold) return i;
  return end;
}

std::size_t findBelow(const double* values, std::size_t begin,
                      std::size_t end, double threshold) {
#if MOLOC_SIMD_ENABLED
  if (useAvx2())
    return detail::findBelowAvx2(values, begin, end, threshold);
#endif
  return findBelowScalar(values, begin, end, threshold);
}

/// Replaces the heap's root (its worst entry) with `entry` and
/// restores the max-heap-by-betterEntry invariant with a single
/// sift-down — half the work of a pop_heap/push_heap pair.
void replaceWorst(std::vector<TopKEntry>& heap, const TopKEntry& entry) {
  const std::size_t n = heap.size();
  std::size_t hole = 0;
  for (;;) {
    std::size_t child = 2 * hole + 1;
    if (child >= n) break;
    if (child + 1 < n && betterEntry(heap[child], heap[child + 1]))
      ++child;  // The worse of the two children.
    if (!betterEntry(entry, heap[child])) break;
    heap[hole] = heap[child];
    hole = child;
  }
  heap[hole] = entry;
}

}  // namespace

void selectSmallestK(std::span<const double> distances, std::size_t k,
                     std::vector<TopKEntry>& out) {
  out.clear();
  if (k == 0 || distances.empty()) return;
  const std::size_t kept = std::min(k, distances.size());
  out.reserve(kept);
  for (std::size_t i = 0; i < kept; ++i) out.push_back({distances[i], i});
  std::make_heap(out.begin(), out.end(), betterEntry);
  // Steady-state scan: candidates arrive in ascending row order, so a
  // candidate tying the heap's worst distance always has the larger
  // row and loses the tie-break — replacement happens exactly when the
  // distance is strictly below the cached threshold, which lets the
  // scan between replacements run as a plain "first value below x"
  // search with a single predictable compare per element.
  double threshold = out.front().squaredDistance;
  for (std::size_t i = kept;;) {
    i = findBelow(distances.data(), i, distances.size(), threshold);
    if (i == distances.size()) break;
    replaceWorst(out, {distances[i], i});
    threshold = out.front().squaredDistance;
    ++i;
  }
  std::sort_heap(out.begin(), out.end(), betterEntry);
}

}  // namespace moloc::kernel
