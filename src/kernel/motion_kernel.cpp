#include "kernel/motion_kernel.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::kernel {

PairWindow makeWindow(env::LocationId to, const core::RlmStats& stats) {
  PairWindow window;
  window.to = to;
  window.muDirectionDeg = stats.muDirectionDeg;
  window.sigmaDirectionDeg = stats.sigmaDirectionDeg;
  window.muOffsetMeters = stats.muOffsetMeters;
  window.sigmaOffsetMeters = stats.sigmaOffsetMeters;
  if (!degenerateSigma(stats.sigmaDirectionDeg))
    window.invSqrt2SigmaDir = 1.0 / (stats.sigmaDirectionDeg * kSqrt2);
  if (!degenerateSigma(stats.sigmaOffsetMeters))
    window.invSqrt2SigmaOff = 1.0 / (stats.sigmaOffsetMeters * kSqrt2);
  return window;
}

MotionAdjacency MotionAdjacency::view(
    std::span<const std::size_t> rowStart,
    std::span<const PairWindow> edges) {
  if (rowStart.empty())
    throw util::ConfigError(
        "MotionAdjacency: view rowStart must hold at least one offset");
  MotionAdjacency adjacency;
  adjacency.borrowedRowStart_ = rowStart.data();
  adjacency.borrowedEdges_ = edges.data();
  adjacency.borrowedEdgeCount_ = edges.size();
  adjacency.locationCount_ = rowStart.size() - 1;
  return adjacency;
}

void MotionAdjacency::rebuild(const core::MotionDatabase& db) {
  if (borrowedRowStart_ != nullptr)
    throw util::StateError(
        "MotionAdjacency: cannot rebuild an immutable view");
  locationCount_ = db.locationCount();
  edges_.clear();
  edges_.reserve(db.entryCount());
  rowStart_.assign(locationCount_ + 1, 0);
  // forEachEntry walks row-major, so edges_ lands sorted by (from, to)
  // without a separate sort pass.
  db.forEachEntry([this](env::LocationId from, env::LocationId to,
                         const core::RlmStats& stats) {
    ++rowStart_[static_cast<std::size_t>(from) + 1];
    edges_.push_back(makeWindow(to, stats));
  });
  for (std::size_t row = 0; row < locationCount_; ++row)
    rowStart_[row + 1] += rowStart_[row];
}

const PairWindow* findInRow(std::span<const PairWindow> row,
                            env::LocationId to) {
  const auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const PairWindow& w, env::LocationId id) { return w.to < id; });
  if (it == row.end() || it->to != to) return nullptr;
  return &*it;
}

const PairWindow* MotionAdjacency::find(env::LocationId i,
                                        env::LocationId j) const {
  return findInRow(outEdges(i), j);
}

}  // namespace moloc::kernel
