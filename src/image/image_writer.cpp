#include "image/image_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "index/tiered_index.hpp"
#include "kernel/fingerprint_kernel.hpp"
#include "radio/fingerprint_database.hpp"
#include "store/crc32c.hpp"
#include "store/format.hpp"
#include "store/posix_file.hpp"
#include "util/posix_error.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::image {

namespace {

std::string directoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Buffered fd writer tracking the absolute position and a per-section
/// running CRC32C, so ~900 MB images stream through one bounded chunk
/// instead of a file-sized string.
class SectionStream {
 public:
  static constexpr std::size_t kChunk = 1 << 20;

  SectionStream(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {
    buffer_.reserve(kChunk);
  }

  std::uint64_t position() const { return position_ + buffer_.size(); }

  void beginSection() {
    // Sections start on kSectionAlignment boundaries; the gap bytes
    // are zeros and belong to no section (not CRC'd).
    const std::uint64_t at = position();
    const std::uint64_t aligned =
        (at + kSectionAlignment - 1) / kSectionAlignment *
        kSectionAlignment;
    static constexpr char kZeros[kSectionAlignment] = {};
    append(kZeros, static_cast<std::size_t>(aligned - at));
    crc_ = 0;
    sectionStart_ = aligned;
  }

  SectionEntry endSection(SectionId id) {
    SectionEntry entry{};
    entry.id = static_cast<std::uint32_t>(id);
    entry.crc = crc_;
    entry.offset = sectionStart_;
    entry.length = position() - sectionStart_;
    return entry;
  }

  void write(const void* data, std::size_t size) {
    crc_ = store::crc32c(crc_, data, size);
    append(static_cast<const char*>(data), size);
  }

  void flush() {
    if (buffer_.empty()) return;
    store::detail::writeAll(fd_, buffer_.data(), buffer_.size(), path_);
    position_ += buffer_.size();
    buffer_.clear();
  }

 private:
  void append(const char* data, std::size_t size) {
    while (size > 0) {
      const std::size_t room = kChunk - buffer_.size();
      const std::size_t take = size < room ? size : room;
      buffer_.append(data, take);
      data += take;
      size -= take;
      if (buffer_.size() == kChunk) flush();
    }
  }

  int fd_;
  std::string path_;
  std::string buffer_;
  std::uint64_t position_ = 0;
  std::uint64_t sectionStart_ = 0;
  std::uint32_t crc_ = 0;
};

std::string encodeMeta(const ImageMeta& meta) {
  using store::detail::putF64;
  using store::detail::putU32;
  using store::detail::putU64;
  using store::detail::putU8;
  std::string out;
  putU64(out, meta.locationCount);
  putU64(out, meta.apCount);
  putU64(out, meta.adjacencyLocationCount);
  putU64(out, meta.edgeCount);
  putU64(out, meta.generation);
  putU64(out, meta.intakeRecords);
  putU8(out, meta.hasIndex ? 1 : 0);
  putU64(out, meta.shardCount);
  putF64(out, meta.index.quantizer.floorDbm);
  putF64(out, meta.index.quantizer.bucketWidthDb);
  putU32(out, static_cast<std::uint32_t>(meta.index.quantizer.bucketCount));
  putU64(out, meta.index.maxShardEntries);
  putU64(out, meta.index.minShortlist);
  putU32(out, meta.index.marginBuckets);
  return out;
}

/// A raw-fd guard so early throws cannot leak the descriptor.
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

ImageWriteInfo writeVenueImage(const std::string& path,
                               const core::WorldSnapshot& world,
                               ImageWriteOptions options) {
  const auto& db = world.fingerprints();
  if (!db)
    throw ImageError("writeVenueImage: world has no fingerprint database");
  const kernel::MotionAdjacency& adjacency = world.adjacency();
  const index::TieredIndex* index = world.tieredIndex().get();

  const std::size_t n = db->size();
  const std::size_t apCount = db->apCount();

  ImageMeta meta;
  meta.locationCount = n;
  meta.apCount = apCount;
  meta.adjacencyLocationCount = adjacency.locationCount();
  meta.edgeCount = adjacency.edgeCount();
  meta.generation = world.generation();
  meta.intakeRecords = world.intakeRecords();
  meta.hasIndex = index != nullptr;
  if (index != nullptr) {
    meta.shardCount = index->shardCount();
    meta.index = index->config();
  }

  // The invariant serving relies on: every fingerprinted location can
  // be looked up in the adjacency.  Catch a violating world here, at
  // write time, rather than shipping an image the loader must reject.
  for (std::size_t r = 0; r < n; ++r) {
    const env::LocationId id = db->idAt(r);
    if (id < 0 ||
        static_cast<std::uint64_t>(id) >= meta.adjacencyLocationCount)
      throw ImageError(
          "writeVenueImage: location id " + std::to_string(id) +
          " outside the adjacency's " +
          std::to_string(meta.adjacencyLocationCount) + " rows");
  }

  const std::string metaBytes = encodeMeta(meta);
  const std::string tmpPath = path + ".tmp";
  const std::string dir = directoryOf(path);

  FdGuard fd;
  fd.fd = util::retryEintr([&] {
    return ::open(tmpPath.c_str(),
                  O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  });
  if (fd.fd < 0)
    throw store::StoreError("open failed for " + tmpPath + ": " +
                            util::errnoMessage(errno));

  const std::size_t sectionCount =
      6 + (meta.hasIndex ? 5 : 0);
  std::vector<SectionEntry> table;
  table.reserve(sectionCount);

  SectionStream out(fd.fd, tmpPath);
  {
    // Header + table placeholder; rewritten with real CRCs at the end.
    const std::vector<char> zeros(
        sizeof(FileHeader) + sectionCount * sizeof(SectionEntry), 0);
    out.write(zeros.data(), zeros.size());
  }

  // kMeta
  out.beginSection();
  out.write(metaBytes.data(), metaBytes.size());
  table.push_back(out.endSection(SectionId::kMeta));

  // kLocationIds
  out.beginSection();
  {
    std::vector<env::LocationId> ids(db->locationIds());
    out.write(ids.data(), ids.size() * sizeof(env::LocationId));
  }
  table.push_back(out.endSection(SectionId::kLocationIds));

  // kRowValues: row-major doubles, one entry at a time.
  out.beginSection();
  for (std::size_t r = 0; r < n; ++r) {
    const std::span<const double> values = db->entryAt(r).values();
    out.write(values.data(), values.size() * sizeof(double));
  }
  table.push_back(out.endSection(SectionId::kRowValues));

  // kFlatBlocked: the kernel mirror verbatim (appendRow zero-fills the
  // trailing block, so these bytes are deterministic).
  out.beginSection();
  {
    const kernel::FlatMatrix& flat = db->flatMatrix();
    out.write(flat.data(),
              flat.paddedRows() * flat.cols() * sizeof(double));
  }
  table.push_back(out.endSection(SectionId::kFlatBlocked));

  // kAdjacencyRowStart
  out.beginSection();
  {
    const std::span<const std::size_t> rowStarts = adjacency.rowStarts();
    if (rowStarts.empty()) {
      // A never-built adjacency has no offsets; its CSR form is one
      // zero sentinel over zero locations.
      const std::size_t zero = 0;
      out.write(&zero, sizeof(zero));
    } else {
      out.write(rowStarts.data(), rowStarts.size() * sizeof(std::size_t));
    }
  }
  table.push_back(out.endSection(SectionId::kAdjacencyRowStart));

  // kAdjacencyEdges: PairWindow has 4 padding bytes after `to`; copy
  // chunks through a zeroed staging buffer, field by field, so the
  // file never carries uninitialized padding (and the CRC is a pure
  // function of the values).
  out.beginSection();
  {
    const std::span<const kernel::PairWindow> edges = adjacency.edges();
    constexpr std::size_t kEdgeChunk = 2048;
    std::vector<kernel::PairWindow> staged(
        std::min(edges.size(), kEdgeChunk));
    for (std::size_t base = 0; base < edges.size(); base += kEdgeChunk) {
      const std::size_t take = std::min(kEdgeChunk, edges.size() - base);
      std::memset(static_cast<void*>(staged.data()), 0,
                  take * sizeof(kernel::PairWindow));
      for (std::size_t e = 0; e < take; ++e) {
        const kernel::PairWindow& w = edges[base + e];
        staged[e].to = w.to;
        staged[e].muDirectionDeg = w.muDirectionDeg;
        staged[e].sigmaDirectionDeg = w.sigmaDirectionDeg;
        staged[e].invSqrt2SigmaDir = w.invSqrt2SigmaDir;
        staged[e].muOffsetMeters = w.muOffsetMeters;
        staged[e].sigmaOffsetMeters = w.sigmaOffsetMeters;
        staged[e].invSqrt2SigmaOff = w.invSqrt2SigmaOff;
      }
      out.write(staged.data(), take * sizeof(kernel::PairWindow));
    }
  }
  table.push_back(out.endSection(SectionId::kAdjacencyEdges));

  if (meta.hasIndex) {
    // kIndexShards: descriptors with back-to-back element offsets.
    out.beginSection();
    {
      std::uint64_t activeAt = 0;
      std::uint64_t slabAt = 0;
      for (std::size_t s = 0; s < index->shardCount(); ++s) {
        const index::ShardView v = index->shardView(s);
        ShardRecord record{};
        record.rowBegin = v.rowBegin;
        record.rowEnd = v.rowEnd;
        record.activeApsStart = activeAt;
        record.activeApCount = v.activeAps.size();
        record.slabStart = slabAt;
        record.slabWords = v.slab.size();
        activeAt += v.activeAps.size();
        slabAt += v.slab.size();
        out.write(&record, sizeof(record));
      }
    }
    table.push_back(out.endSection(SectionId::kIndexShards));

    out.beginSection();
    for (std::size_t s = 0; s < index->shardCount(); ++s) {
      const index::ShardView v = index->shardView(s);
      out.write(v.activeAps.data(),
                v.activeAps.size() * sizeof(std::uint32_t));
    }
    table.push_back(out.endSection(SectionId::kIndexActiveAps));

    out.beginSection();
    for (std::size_t s = 0; s < index->shardCount(); ++s) {
      const index::ShardView v = index->shardView(s);
      out.write(v.minBucket.data(), v.minBucket.size());
    }
    table.push_back(out.endSection(SectionId::kIndexMinBuckets));

    out.beginSection();
    for (std::size_t s = 0; s < index->shardCount(); ++s) {
      const index::ShardView v = index->shardView(s);
      out.write(v.maxBucket.data(), v.maxBucket.size());
    }
    table.push_back(out.endSection(SectionId::kIndexMaxBuckets));

    out.beginSection();
    for (std::size_t s = 0; s < index->shardCount(); ++s) {
      const index::ShardView v = index->shardView(s);
      out.write(v.slab.data(), v.slab.size() * sizeof(std::uint64_t));
    }
    table.push_back(out.endSection(SectionId::kIndexSlabs));
  }

  out.flush();
  const std::uint64_t fileSize = out.position();

  // Rewrite the header and table in place now that the CRCs are known.
  FileHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.layoutTag = kLayoutTag;
  header.fileSize = fileSize;
  header.sectionCount = static_cast<std::uint32_t>(table.size());
  header.tableCrc =
      store::crc32c(table.data(), table.size() * sizeof(SectionEntry));
  if (::lseek(fd.fd, 0, SEEK_SET) != 0)
    throw store::StoreError("lseek failed for " + tmpPath + ": " +
                            util::errnoMessage(errno));
  store::detail::writeAll(fd.fd, reinterpret_cast<const char*>(&header),
                          sizeof(header), tmpPath);
  store::detail::writeAll(fd.fd,
                          reinterpret_cast<const char*>(table.data()),
                          table.size() * sizeof(SectionEntry), tmpPath);

  if (options.fsync) store::detail::fsyncFd(fd.fd, tmpPath);
  ::close(fd.fd);
  fd.fd = -1;

  if (::rename(tmpPath.c_str(), path.c_str()) != 0)
    throw store::StoreError("rename failed for " + tmpPath + " -> " +
                            path + ": " + util::errnoMessage(errno));
  if (options.fsync) store::detail::fsyncDirectory(dir);

  return {fileSize, table.size()};
}

}  // namespace moloc::image
