#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "env/floor_plan.hpp"
#include "index/tiered_index.hpp"
#include "kernel/motion_kernel.hpp"

namespace moloc::image {

/// Any venue-image failure with a *format* cause: truncated or
/// corrupt headers, bad section geometry, CRC mismatches, layout-tag
/// mismatches, semantic cross-checks.  Pure I/O failures (open, read,
/// rename) surface as store::StoreError like the rest of the
/// persistence layer; everything a hostile file can trigger is an
/// ImageError — the image fuzz surface enforces exactly that split.
class ImageError : public std::runtime_error {
 public:
  explicit ImageError(const std::string& what)
      : std::runtime_error("moloc::image: " + what) {}
};

/// # Venue image: one mmap-able file, cold start without a rebuild
///
/// A venue image stores the *exact in-memory layouts* the serving
/// stack computes at startup — the blocked kernel::FlatMatrix, the
/// row-major RSS values behind per-entry fingerprints, the CSR
/// kernel::MotionAdjacency arrays (precomputed PairWindow constants
/// included), and the index::TieredIndex signature slabs — so the
/// loader maps the file read-only and serves straight out of the page
/// cache: no parsing, no re-packing, no plane rebuild.
///
/// File layout (docs/persistence.md has the full spec):
///
///   [FileHeader: 32 bytes]
///   [SectionEntry x sectionCount: 32 bytes each]
///   [sections, each offset aligned to kSectionAlignment ...]
///
/// Every section carries its own CRC32C in the table; the table
/// itself is covered by FileHeader::tableCrc.  Sections are raw host
/// arrays, which is why the header pins a layout tag (endianness,
/// size_t width, PairWindow size): an image is a host-format cache
/// rebuilt from the durable text/WAL/checkpoint lineage, not an
/// interchange format — a loader on a different ABI rejects it with a
/// typed error instead of misreading it.

inline constexpr char kMagic[8] = {'M', 'O', 'L', 'O', 'C', 'I',
                                   'M', 'G'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section payloads start at multiples of this (cache-line sized, and
/// a multiple of every element alignment used by a section).
inline constexpr std::size_t kSectionAlignment = 64;

/// Hard cap on the section count: v1 defines 11 section ids, so any
/// larger table is damage (and the cap bounds hostile allocation).
inline constexpr std::uint32_t kMaxSections = 64;

enum class SectionId : std::uint32_t {
  kMeta = 1,               ///< Encoded ImageMeta (store::detail codec).
  kLocationIds = 2,        ///< env::LocationId[n], insertion order.
  kRowValues = 3,          ///< double[n * apCount], row-major.
  kFlatBlocked = 4,        ///< double[paddedRows * apCount], AoSoA.
  kAdjacencyRowStart = 5,  ///< std::size_t[adjacencyLocations + 1].
  kAdjacencyEdges = 6,     ///< kernel::PairWindow[edgeCount].
  kIndexShards = 7,        ///< ShardRecord[shardCount].
  kIndexActiveAps = 8,     ///< uint32[sum of activeApCount].
  kIndexMinBuckets = 9,    ///< uint8[sum of activeApCount].
  kIndexMaxBuckets = 10,   ///< uint8[sum of activeApCount].
  kIndexSlabs = 11,        ///< uint64[sum of slabWords].
};

/// The fixed file header.  Every field is validated by value on load
/// (magic, version, layout tag, file size, section count), and the
/// section table after it is covered by tableCrc — so no byte of
/// header or table is trusted unchecked.
struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t layoutTag;
  std::uint64_t fileSize;
  std::uint32_t sectionCount;
  std::uint32_t tableCrc;  ///< crc32c over the section table bytes.
};
static_assert(sizeof(FileHeader) == 32);

/// One section-table entry.
struct SectionEntry {
  std::uint32_t id;       ///< SectionId.
  std::uint32_t crc;      ///< crc32c over the section's bytes.
  std::uint64_t offset;   ///< Absolute, kSectionAlignment-aligned.
  std::uint64_t length;   ///< Exact payload bytes (may be 0).
  std::uint64_t reserved; ///< Zero in v1.
};
static_assert(sizeof(SectionEntry) == 32);

/// One tiered-index shard descriptor.  Element offsets index into the
/// kIndexActiveAps / kIndexMinBuckets / kIndexMaxBuckets (all three
/// share activeApsStart/activeApCount) and kIndexSlabs sections; v1
/// requires exact back-to-back packing (activeApsStart of shard s+1
/// equals shard s's start + count), which the loader enforces.
struct ShardRecord {
  std::uint64_t rowBegin;
  std::uint64_t rowEnd;
  std::uint64_t activeApsStart;
  std::uint64_t activeApCount;
  std::uint64_t slabStart;
  std::uint64_t slabWords;
  std::uint64_t reserved0;
  std::uint64_t reserved1;
};
static_assert(sizeof(ShardRecord) == 64);

// The sections are raw host arrays; pin the exact ABI the format
// assumes so a drifting struct layout fails the build here, not a
// reader in production.
static_assert(sizeof(env::LocationId) == 4);
static_assert(sizeof(std::size_t) == 8);
static_assert(sizeof(double) == 8);
static_assert(std::has_unique_object_representations_v<SectionEntry>);
static_assert(std::has_unique_object_representations_v<ShardRecord>);
static_assert(sizeof(kernel::PairWindow) == 56);
static_assert(alignof(kernel::PairWindow) == 8);
static_assert(offsetof(kernel::PairWindow, to) == 0);
static_assert(offsetof(kernel::PairWindow, muDirectionDeg) == 8);
static_assert(offsetof(kernel::PairWindow, sigmaDirectionDeg) == 16);
static_assert(offsetof(kernel::PairWindow, invSqrt2SigmaDir) == 24);
static_assert(offsetof(kernel::PairWindow, muOffsetMeters) == 32);
static_assert(offsetof(kernel::PairWindow, sigmaOffsetMeters) == 40);
static_assert(offsetof(kernel::PairWindow, invSqrt2SigmaOff) == 48);

/// Host layout fingerprint embedded in the header: byte order plus
/// the two sizes whose drift would silently re-interpret sections.
inline constexpr std::uint32_t kLayoutTag =
    (std::endian::native == std::endian::little ? 1u : 2u) |
    (static_cast<std::uint32_t>(sizeof(std::size_t)) << 8) |
    (static_cast<std::uint32_t>(sizeof(kernel::PairWindow)) << 16);

/// The decoded kMeta section: venue shape, provenance counters, and
/// the index configuration needed to reconstruct the TieredIndex
/// around the mapped slabs.
struct ImageMeta {
  std::uint64_t locationCount = 0;
  std::uint64_t apCount = 0;
  /// MotionAdjacency::locationCount() — may exceed locationCount (the
  /// motion world can know locations the survey never fingerprinted)
  /// but every fingerprinted id must lie below it.
  std::uint64_t adjacencyLocationCount = 0;
  std::uint64_t edgeCount = 0;
  /// WorldSnapshot provenance at write time.
  std::uint64_t generation = 0;
  std::uint64_t intakeRecords = 0;
  bool hasIndex = false;
  std::uint64_t shardCount = 0;
  /// Meaningful only when hasIndex (exhaustiveCheck/buildThreads are
  /// not persisted — one is a debug mode, the other build-only).
  index::IndexConfig index;
};

/// ceil(n / kRowBlock) * kRowBlock, the FlatMatrix padded row count.
inline std::uint64_t paddedRowCount(std::uint64_t rows) {
  return (rows + kernel::kRowBlock - 1) / kernel::kRowBlock *
         kernel::kRowBlock;
}

}  // namespace moloc::image
