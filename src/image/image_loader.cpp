#include "image/image_loader.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

#include "kernel/fingerprint_kernel.hpp"
#include "store/crc32c.hpp"
#include "store/format.hpp"
#include "store/posix_file.hpp"
#include "util/posix_error.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::image {

/// The mapping plus the view structures built over it.  One heap
/// object owns everything; the public shared_ptrs alias into it, so
/// the refcount of this Core is the keep-alive for every view.
struct VenueImage::Core {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  void* mapBase = nullptr;
  std::size_t mapLength = 0;
  std::vector<std::uint8_t> heap;

  radio::FingerprintDatabase db;
  kernel::MotionAdjacency adjacency;

  Core() = default;
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;
  ~Core() {
    if (mapBase != nullptr) ::munmap(mapBase, mapLength);
  }
};

namespace {

struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

[[noreturn]] void fail(const std::string& what) { throw ImageError(what); }

const char* sectionName(SectionId id) {
  switch (id) {
    case SectionId::kMeta: return "meta";
    case SectionId::kLocationIds: return "location_ids";
    case SectionId::kRowValues: return "row_values";
    case SectionId::kFlatBlocked: return "flat_blocked";
    case SectionId::kAdjacencyRowStart: return "adjacency_row_start";
    case SectionId::kAdjacencyEdges: return "adjacency_edges";
    case SectionId::kIndexShards: return "index_shards";
    case SectionId::kIndexActiveAps: return "index_active_aps";
    case SectionId::kIndexMinBuckets: return "index_min_buckets";
    case SectionId::kIndexMaxBuckets: return "index_max_buckets";
    case SectionId::kIndexSlabs: return "index_slabs";
  }
  return "unknown";
}

bool knownSection(std::uint32_t id) {
  return id >= static_cast<std::uint32_t>(SectionId::kMeta) &&
         id <= static_cast<std::uint32_t>(SectionId::kIndexSlabs);
}

/// Bulk sections: their CRC check is what VerifyMode::kBulkUnverified
/// skips (and their content scans with it).  Everything else is
/// metadata-sized and always verified.
bool bulkSection(SectionId id) {
  return id == SectionId::kRowValues || id == SectionId::kFlatBlocked ||
         id == SectionId::kAdjacencyEdges || id == SectionId::kIndexSlabs;
}

struct SectionRef {
  const std::uint8_t* data = nullptr;
  std::uint64_t length = 0;
  bool present = false;
};

ImageMeta decodeMeta(const std::uint8_t* data, std::uint64_t length) {
  ImageMeta meta;
  try {
    store::detail::Cursor cursor(data, static_cast<std::size_t>(length));
    meta.locationCount = cursor.readU64();
    meta.apCount = cursor.readU64();
    meta.adjacencyLocationCount = cursor.readU64();
    meta.edgeCount = cursor.readU64();
    meta.generation = cursor.readU64();
    meta.intakeRecords = cursor.readU64();
    meta.hasIndex = cursor.readU8() != 0;
    meta.shardCount = cursor.readU64();
    meta.index.quantizer.floorDbm = cursor.readF64();
    meta.index.quantizer.bucketWidthDb = cursor.readF64();
    meta.index.quantizer.bucketCount =
        static_cast<int>(cursor.readU32());
    meta.index.maxShardEntries = cursor.readU64();
    meta.index.minShortlist = cursor.readU64();
    meta.index.marginBuckets = cursor.readU32();
    if (cursor.remaining() != 0)
      fail("meta section has trailing bytes");
  } catch (const store::CorruptionError& e) {
    fail(std::string("meta section damaged: ") + e.what());
  }
  return meta;
}

/// a * b * c with overflow detection (hostile counts must not wrap
/// into a small product that passes the length check).
bool mulFits(std::uint64_t a, std::uint64_t b, std::uint64_t c,
             std::uint64_t* out) {
  std::uint64_t ab = 0;
  if (__builtin_mul_overflow(a, b, &ab)) return false;
  return !__builtin_mul_overflow(ab, c, out);
}

void expectLength(const SectionRef& section, SectionId id,
                  std::uint64_t count, std::uint64_t elemSize) {
  std::uint64_t expected = 0;
  if (!mulFits(count, elemSize, 1, &expected) ||
      section.length != expected)
    fail(std::string(sectionName(id)) +
         " section length does not match the meta counts");
}

}  // namespace

VenueImage VenueImage::load(std::shared_ptr<Core> core,
                            VerifyMode verify) {
  const std::uint8_t* base = core->data;
  const std::size_t size = core->size;

  // ---- Header -------------------------------------------------------
  if (size < sizeof(FileHeader)) fail("truncated header");
  FileHeader header{};
  std::memcpy(&header, base, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
    fail("bad magic (not a venue image)");
  if (header.version != kFormatVersion)
    fail("unsupported format version " + std::to_string(header.version));
  if (header.layoutTag != kLayoutTag)
    fail("layout tag mismatch: image was written by an incompatible "
         "host ABI");
  if (header.fileSize != size)
    fail("file size mismatch: header says " +
         std::to_string(header.fileSize) + ", have " +
         std::to_string(size));
  if (header.sectionCount == 0 || header.sectionCount > kMaxSections)
    fail("section count " + std::to_string(header.sectionCount) +
         " out of range");

  // ---- Section table ------------------------------------------------
  const std::uint64_t tableBytes =
      static_cast<std::uint64_t>(header.sectionCount) *
      sizeof(SectionEntry);
  if (tableBytes > size - sizeof(FileHeader)) fail("truncated section table");
  const std::uint8_t* tableBase = base + sizeof(FileHeader);
  if (store::crc32c(tableBase, static_cast<std::size_t>(tableBytes)) !=
      header.tableCrc)
    fail("section table CRC mismatch");
  std::vector<SectionEntry> table(header.sectionCount);
  std::memcpy(table.data(), tableBase,
              static_cast<std::size_t>(tableBytes));

  const std::uint64_t contentStart = sizeof(FileHeader) + tableBytes;
  SectionRef sections[12] = {};
  for (const SectionEntry& entry : table) {
    if (!knownSection(entry.id))
      fail("unknown section id " + std::to_string(entry.id));
    if (entry.reserved != 0) fail("nonzero reserved section field");
    if (entry.offset % kSectionAlignment != 0)
      fail("misaligned section offset");
    if (entry.offset < contentStart || entry.offset > size ||
        entry.length > size - entry.offset)
      fail(std::string(sectionName(static_cast<SectionId>(entry.id))) +
           " section out of file bounds");
    SectionRef& ref = sections[entry.id];
    if (ref.present)
      fail(std::string("duplicate ") +
           sectionName(static_cast<SectionId>(entry.id)) + " section");
    ref.data = base + entry.offset;
    ref.length = entry.length;
    ref.present = true;
  }

  // No two sections may overlap (a crafted table could alias one
  // validated section's bytes into another's).
  {
    std::vector<SectionEntry> byOffset(table);
    std::sort(byOffset.begin(), byOffset.end(),
              [](const SectionEntry& a, const SectionEntry& b) {
                return a.offset < b.offset;
              });
    std::uint64_t end = contentStart;
    for (const SectionEntry& entry : byOffset) {
      if (entry.offset < end) fail("overlapping sections");
      end = entry.offset + entry.length;
    }
  }

  const auto section = [&sections](SectionId id) -> const SectionRef& {
    return sections[static_cast<std::uint32_t>(id)];
  };
  for (const SectionId required :
       {SectionId::kMeta, SectionId::kLocationIds, SectionId::kRowValues,
        SectionId::kFlatBlocked, SectionId::kAdjacencyRowStart,
        SectionId::kAdjacencyEdges})
    if (!section(required).present)
      fail(std::string("missing ") + sectionName(required) + " section");

  // ---- CRCs ---------------------------------------------------------
  for (const SectionEntry& entry : table) {
    const SectionId id = static_cast<SectionId>(entry.id);
    if (verify == VerifyMode::kBulkUnverified && bulkSection(id))
      continue;
    if (store::crc32c(base + entry.offset,
                      static_cast<std::size_t>(entry.length)) != entry.crc)
      fail(std::string(sectionName(id)) + " section CRC mismatch");
  }

  // ---- Meta + cross-section geometry --------------------------------
  const ImageMeta meta =
      decodeMeta(section(SectionId::kMeta).data,
                 section(SectionId::kMeta).length);
  const std::uint64_t n = meta.locationCount;
  const std::uint64_t apCount = meta.apCount;
  const std::uint64_t adjLocs = meta.adjacencyLocationCount;
  if (n > 0 && apCount == 0) fail("entries without APs");
  if (n == 0 && apCount != 0) fail("APs without entries");

  expectLength(section(SectionId::kLocationIds), SectionId::kLocationIds,
               n, sizeof(env::LocationId));
  {
    std::uint64_t expected = 0;
    if (!mulFits(n, apCount, sizeof(double), &expected) ||
        section(SectionId::kRowValues).length != expected)
      fail("row_values section length does not match the meta counts");
    if (!mulFits(paddedRowCount(n), apCount, sizeof(double), &expected) ||
        section(SectionId::kFlatBlocked).length != expected)
      fail("flat_blocked section length does not match the meta counts");
  }
  if (adjLocs >
      std::numeric_limits<std::uint64_t>::max() / sizeof(std::size_t) - 1)
    fail("adjacency location count out of range");
  expectLength(section(SectionId::kAdjacencyRowStart),
               SectionId::kAdjacencyRowStart, adjLocs + 1,
               sizeof(std::size_t));
  expectLength(section(SectionId::kAdjacencyEdges),
               SectionId::kAdjacencyEdges, meta.edgeCount,
               sizeof(kernel::PairWindow));

  // ---- Content invariants the views rely on -------------------------
  const auto* rowStart = reinterpret_cast<const std::size_t*>(
      section(SectionId::kAdjacencyRowStart).data);
  if (rowStart[0] != 0) fail("adjacency row starts must begin at 0");
  for (std::uint64_t row = 0; row < adjLocs; ++row)
    if (rowStart[row + 1] < rowStart[row])
      fail("adjacency row starts must be non-decreasing");
  if (rowStart[adjLocs] != meta.edgeCount)
    fail("adjacency row starts do not cover the edge array");

  const auto* ids = reinterpret_cast<const env::LocationId*>(
      section(SectionId::kLocationIds).data);
  for (std::uint64_t r = 0; r < n; ++r)
    if (ids[r] < 0 || static_cast<std::uint64_t>(ids[r]) >= adjLocs)
      fail("location id " + std::to_string(ids[r]) +
           " outside the adjacency's rows");

  const auto* edges = reinterpret_cast<const kernel::PairWindow*>(
      section(SectionId::kAdjacencyEdges).data);
  if (verify == VerifyMode::kFull) {
    // Edge destinations only ever feed comparisons (binary search and
    // candidate matching), so this is a sanity check, not a safety
    // requirement — which is why kBulkUnverified may skip the scan.
    for (std::uint64_t e = 0; e < meta.edgeCount; ++e)
      if (edges[e].to < 0 ||
          static_cast<std::uint64_t>(edges[e].to) >= adjLocs)
        fail("adjacency edge destination outside the adjacency's rows");
  }

  // ---- Index geometry -----------------------------------------------
  std::vector<index::ShardView> shardViews;
  const bool indexSectionsPresent =
      section(SectionId::kIndexShards).present ||
      section(SectionId::kIndexActiveAps).present ||
      section(SectionId::kIndexMinBuckets).present ||
      section(SectionId::kIndexMaxBuckets).present ||
      section(SectionId::kIndexSlabs).present;
  if (meta.hasIndex !=
      (section(SectionId::kIndexShards).present &&
       section(SectionId::kIndexActiveAps).present &&
       section(SectionId::kIndexMinBuckets).present &&
       section(SectionId::kIndexMaxBuckets).present &&
       section(SectionId::kIndexSlabs).present) ||
      (!meta.hasIndex && indexSectionsPresent))
    fail("index sections do not match the meta hasIndex flag");

  if (meta.hasIndex) {
    try {
      index::validateQuantizer(meta.index.quantizer);
    } catch (const std::invalid_argument& e) {
      fail(std::string("bad quantizer config: ") + e.what());
    }
    const std::uint64_t planeCount =
        static_cast<std::uint64_t>(meta.index.quantizer.bucketCount - 1);
    expectLength(section(SectionId::kIndexShards), SectionId::kIndexShards,
                 meta.shardCount, sizeof(ShardRecord));
    const SectionRef& activeSec = section(SectionId::kIndexActiveAps);
    const SectionRef& minSec = section(SectionId::kIndexMinBuckets);
    const SectionRef& maxSec = section(SectionId::kIndexMaxBuckets);
    const SectionRef& slabSec = section(SectionId::kIndexSlabs);
    if (activeSec.length % sizeof(std::uint32_t) != 0 ||
        slabSec.length % sizeof(std::uint64_t) != 0)
      fail("index table sections not a whole number of elements");
    const std::uint64_t activeTotal =
        activeSec.length / sizeof(std::uint32_t);
    const std::uint64_t slabTotal = slabSec.length / sizeof(std::uint64_t);
    if (minSec.length != activeTotal || maxSec.length != activeTotal)
      fail("index bucket-range sections do not match active AP count");

    const auto* records = reinterpret_cast<const ShardRecord*>(
        section(SectionId::kIndexShards).data);
    const auto* activeAps =
        reinterpret_cast<const std::uint32_t*>(activeSec.data);
    const auto* minBuckets = minSec.data;
    const auto* maxBuckets = maxSec.data;
    const auto* slabs =
        reinterpret_cast<const std::uint64_t*>(slabSec.data);

    shardViews.reserve(static_cast<std::size_t>(meta.shardCount));
    std::uint64_t activeAt = 0;
    std::uint64_t slabAt = 0;
    for (std::uint64_t s = 0; s < meta.shardCount; ++s) {
      const ShardRecord& record = records[s];
      if (record.reserved0 != 0 || record.reserved1 != 0)
        fail("nonzero reserved shard field");
      if (record.rowEnd <= record.rowBegin || record.rowEnd > n)
        fail("shard row range out of bounds");
      const std::uint64_t count = record.rowEnd - record.rowBegin;
      const std::uint64_t words =
          (count + index::kBlockEntries - 1) / index::kBlockEntries;
      // v1 requires exact back-to-back packing, so the element offsets
      // are fully determined — any other value is damage.
      if (record.activeApsStart != activeAt ||
          record.activeApCount > activeTotal - activeAt)
        fail("shard active-AP range out of bounds");
      std::uint64_t expectedWords = 0;
      if (!mulFits(record.activeApCount, planeCount, words,
                   &expectedWords) ||
          record.slabWords != expectedWords)
        fail("shard slab word count does not match its shape");
      if (record.slabStart != slabAt ||
          record.slabWords > slabTotal - slabAt)
        fail("shard slab range out of bounds");

      index::ShardView view;
      view.rowBegin = static_cast<std::size_t>(record.rowBegin);
      view.rowEnd = static_cast<std::size_t>(record.rowEnd);
      view.activeAps = {activeAps + activeAt,
                        static_cast<std::size_t>(record.activeApCount)};
      view.minBucket = {minBuckets + activeAt,
                        static_cast<std::size_t>(record.activeApCount)};
      view.maxBucket = {maxBuckets + activeAt,
                        static_cast<std::size_t>(record.activeApCount)};
      view.slab = {slabs + slabAt,
                   static_cast<std::size_t>(record.slabWords)};
      shardViews.push_back(view);
      activeAt += record.activeApCount;
      slabAt += record.slabWords;
    }
    if (activeAt != activeTotal || slabAt != slabTotal)
      fail("index tables have unreferenced trailing elements");
  }

  // ---- Build the zero-copy views ------------------------------------
  const auto* rowValues = reinterpret_cast<const double*>(
      section(SectionId::kRowValues).data);
  const auto* flatData = reinterpret_cast<const double*>(
      section(SectionId::kFlatBlocked).data);
  try {
    core->db = radio::FingerprintDatabase::fromImageView(
        {ids, static_cast<std::size_t>(n)},
        static_cast<std::size_t>(apCount), rowValues,
        kernel::FlatMatrix::view(flatData, static_cast<std::size_t>(n),
                                 static_cast<std::size_t>(apCount)));
  } catch (const std::invalid_argument& e) {
    fail(std::string("fingerprint sections rejected: ") + e.what());
  }
  core->adjacency = kernel::MotionAdjacency::view(
      {rowStart, static_cast<std::size_t>(adjLocs) + 1},
      {edges, static_cast<std::size_t>(meta.edgeCount)});

  VenueImage image;
  image.meta_ = meta;
  image.mapped_ = core->mapBase != nullptr;
  std::shared_ptr<const Core> owned = std::move(core);
  image.fingerprints_ = std::shared_ptr<const radio::FingerprintDatabase>(
      owned, &owned->db);
  image.adjacency_ = std::shared_ptr<const kernel::MotionAdjacency>(
      owned, &owned->adjacency);
  if (meta.hasIndex) {
    index::IndexConfig config = meta.index;
    config.exhaustiveCheck = false;
    try {
      image.index_ = std::make_shared<const index::TieredIndex>(
          index::TieredIndex::fromImageViews(image.fingerprints_, config,
                                             shardViews));
    } catch (const std::invalid_argument& e) {
      fail(std::string("index sections rejected: ") + e.what());
    }
  }
  image.core_ = std::move(owned);
  return image;
}

VenueImage VenueImage::open(const std::string& path, LoadOptions options) {
  auto core = std::make_shared<Core>();
  if (options.mode == LoadMode::kMmap) {
    FdGuard fd;
    fd.fd = util::retryEintr(
        [&] { return ::open(path.c_str(), O_RDONLY | O_CLOEXEC); });
    if (fd.fd < 0)
      throw store::StoreError("open failed for " + path + ": " +
                              util::errnoMessage(errno));
    struct stat st{};
    if (::fstat(fd.fd, &st) != 0)
      throw store::StoreError("fstat failed for " + path + ": " +
                              util::errnoMessage(errno));
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size < sizeof(FileHeader))
      fail("truncated header");
    void* mapped =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
    if (mapped == MAP_FAILED)
      throw store::StoreError("mmap failed for " + path + ": " +
                              util::errnoMessage(errno));
    core->mapBase = mapped;
    core->mapLength = size;
    core->data = static_cast<const std::uint8_t*>(mapped);
    core->size = size;
  } else {
    std::string contents;
    if (!store::detail::readFile(path, contents))
      throw store::StoreError("open failed for " + path);
    core->heap.assign(contents.begin(), contents.end());
    core->data = core->heap.data();
    core->size = core->heap.size();
  }
  return load(std::move(core), options.verify);
}

VenueImage VenueImage::fromBuffer(std::span<const std::uint8_t> bytes,
                                  VerifyMode verify) {
  auto core = std::make_shared<Core>();
  core->heap.assign(bytes.begin(), bytes.end());
  core->data = core->heap.data();
  core->size = core->heap.size();
  return load(std::move(core), verify);
}

}  // namespace moloc::image
