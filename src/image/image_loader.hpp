#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "image/format.hpp"
#include "index/tiered_index.hpp"
#include "kernel/motion_kernel.hpp"
#include "radio/fingerprint_database.hpp"

namespace moloc::image {

/// How the image's bytes get into the address space.
enum class LoadMode {
  /// mmap the file read-only: load cost is independent of venue size
  /// (pages fault in lazily from the page cache).  The default.
  kMmap,
  /// read() the whole file into one heap buffer: for platforms or
  /// filesystems where mmap is unavailable, and for the bitwise
  /// mmap-vs-fallback identity tests.  Every downstream view is built
  /// over the identical bytes, so behavior is bitwise the same.
  kReadFallback,
};

/// How much of the file the loader checksums before serving it.
/// Structural validation (header, table CRC, section bounds, overlap
/// and alignment checks, row-start monotonicity, shard geometry, id
/// ranges) ALWAYS runs in every mode — memory safety never depends on
/// this knob.
enum class VerifyMode {
  /// CRC every section.  The default; detects any bit flip, at the
  /// cost of touching every byte (so load time grows with the image).
  kFull,
  /// CRC the metadata-sized sections only (meta, ids, row starts,
  /// shard table, active-AP tables, bucket ranges) and skip the bulk
  /// arrays (RSS values, flat matrix, edges, slabs).  This is the
  /// millisecond cold-attach path for images the same host just wrote
  /// and published atomically; bulk content is still bounds-safe,
  /// merely not re-checksummed.
  kBulkUnverified,
};

struct LoadOptions {
  LoadMode mode = LoadMode::kMmap;
  VerifyMode verify = VerifyMode::kFull;
};

/// A loaded venue image: the mapping plus zero-copy serving structures
/// built over it.  All accessors hand out shared_ptrs whose control
/// blocks pin the mapping, so a caller can drop the VenueImage and
/// keep any piece alive independently — the bytes cannot be unmapped
/// out from under a view.
///
/// Construction performs no parsing or allocation proportional to the
/// bulk data: the FlatMatrix, per-entry fingerprints, CSR adjacency,
/// and index slabs are views into the mapping.  The only O(n) work is
/// the small per-row tables (id hash, row spans) — bytes, not
/// megabytes, per location.
class VenueImage {
 public:
  /// Opens and fully validates `path`.  Throws ImageError for any
  /// format damage and store::StoreError for I/O failures.
  static VenueImage open(const std::string& path, LoadOptions options = {});

  /// Parses an in-memory buffer (copies it): the fuzz surface and the
  /// fault-injection tests go through here and through open()'s
  /// fallback path with identical semantics.
  static VenueImage fromBuffer(std::span<const std::uint8_t> bytes,
                               VerifyMode verify = VerifyMode::kFull);

  const ImageMeta& meta() const { return meta_; }
  std::size_t locationCount() const { return meta_.locationCount; }
  std::size_t apCount() const { return meta_.apCount; }
  bool hasIndex() const { return index_ != nullptr; }
  /// Whether the bytes are an actual mmap (false on the fallback).
  bool mapped() const { return mapped_; }

  const std::shared_ptr<const radio::FingerprintDatabase>& fingerprints()
      const {
    return fingerprints_;
  }
  const std::shared_ptr<const kernel::MotionAdjacency>& adjacency() const {
    return adjacency_;
  }
  /// Null when the image was written without an index.
  const std::shared_ptr<const index::TieredIndex>& tieredIndex() const {
    return index_;
  }

 private:
  struct Core;

  VenueImage() = default;
  static VenueImage load(std::shared_ptr<Core> core, VerifyMode verify);

  std::shared_ptr<const Core> core_;
  std::shared_ptr<const radio::FingerprintDatabase> fingerprints_;
  std::shared_ptr<const kernel::MotionAdjacency> adjacency_;
  std::shared_ptr<const index::TieredIndex> index_;
  ImageMeta meta_;
  bool mapped_ = false;
};

}  // namespace moloc::image
