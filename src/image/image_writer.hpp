#pragma once

#include <cstdint>
#include <string>

#include "core/world_snapshot.hpp"
#include "image/format.hpp"

namespace moloc::image {

struct ImageWriteOptions {
  /// fsync the image and its directory before rename-publishing (the
  /// store's atomic-publish discipline).  Off only for benches that
  /// measure serialization without the disk flush.
  bool fsync = true;
};

/// What writeVenueImage produced (logging and benches).
struct ImageWriteInfo {
  std::uint64_t bytes = 0;
  std::size_t sections = 0;
};

/// Serializes a live world into a venue image at `path` using the
/// store's crash discipline: stream to `path`.tmp, fsync, rename over
/// `path`, fsync the directory — a crash leaves the old image or the
/// new one, never a torn file.  The world's fingerprints must be
/// non-null, and every fingerprinted location id must be a valid row
/// of the world's adjacency (that is the invariant serving relies on;
/// the loader re-checks it).  The snapshot's tiered index, when
/// present, is embedded so the loader skips the plane rebuild.
///
/// Sections are streamed in bounded chunks with incremental CRC32C —
/// a campus-64k image is ~900 MB and is never materialized in memory.
///
/// Throws ImageError on semantic violations (null fingerprints, id
/// outside the adjacency) and store::StoreError on I/O failures.
ImageWriteInfo writeVenueImage(const std::string& path,
                               const core::WorldSnapshot& world,
                               ImageWriteOptions options = {});

}  // namespace moloc::image
