#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/posix_error.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::net {

namespace {

sockaddr_in parseAddress(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw NetError("invalid IPv4 address '" + host + "'");
  return addr;
}

[[noreturn]] void failErrno(const std::string& what) {
  throw NetError(what + ": " + util::errnoMessage(errno));
}

}  // namespace

Listener listenOn(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = parseAddress(host, port);
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) failErrno("cannot create listen socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int savedErrno = errno;
    ::close(fd);
    errno = savedErrno;
    failErrno("cannot bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const int savedErrno = errno;
    ::close(fd);
    errno = savedErrno;
    failErrno("cannot listen on " + host + ":" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int savedErrno = errno;
    ::close(fd);
    errno = savedErrno;
    failErrno("cannot read bound address");
  }
  return Listener{fd, ntohs(bound.sin_port)};
}

int connectTo(const std::string& host, std::uint16_t port) {
  const sockaddr_in addr = parseAddress(host, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) failErrno("cannot create socket");
  if (util::retryEintr([&] {
        return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr));
      }) != 0) {
    const int savedErrno = errno;
    ::close(fd);
    errno = savedErrno;
    failErrno("cannot connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    failErrno("cannot set O_NONBLOCK");
}

}  // namespace moloc::net
