#include "net/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/socket.hpp"
#include "util/posix_error.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::net {

namespace {

/// The response to `tag` must carry `expected`; anything else means
/// the stream lost sync with our pipelining.
void expectType(const Frame& frame, MsgType expected) {
  if (frame.type != expected)
    throw ProtocolError(
        WireFault::kBadType,
        "unexpected response type " +
            std::to_string(static_cast<unsigned>(frame.type)));
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port)
    : fd_(connectTo(host, port)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send(std::string_view frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = util::retryEintr([&] {
      return ::send(fd_, frame.data() + sent, frame.size() - sent,
                    MSG_NOSIGNAL);
    });
    if (n <= 0)
      throw NetError("send failed: " + util::errnoMessage(errno));
    sent += static_cast<std::size_t>(n);
  }
}

Frame Client::recvFrame() {
  Frame frame;
  while (!assembler_.next(frame)) {
    char buf[16384];
    const ssize_t n =
        util::retryEintr([&] { return ::recv(fd_, buf, sizeof buf, 0); });
    if (n == 0) throw NetError("connection closed by server");
    if (n < 0)
      throw NetError("recv failed: " + util::errnoMessage(errno));
    assembler_.feed(buf, static_cast<std::size_t>(n));
  }
  return frame;
}

LocalizeResponse Client::localize(std::uint64_t tag,
                                  std::uint64_t sessionId,
                                  const radio::Fingerprint& scan,
                                  const sensors::ImuTrace& imu) {
  LocalizeRequest request;
  request.tag = tag;
  request.scan = {sessionId, scan, imu};
  send(encodeLocalizeRequest(request));
  const Frame frame = recvFrame();
  expectType(frame, MsgType::kLocalizeResponse);
  return decodeLocalizeResponse(frame.payload);
}

LocalizeBatchResponse Client::localizeBatch(
    const LocalizeBatchRequest& request) {
  send(encodeLocalizeBatchRequest(request));
  const Frame frame = recvFrame();
  expectType(frame, MsgType::kLocalizeBatchResponse);
  return decodeLocalizeBatchResponse(frame.payload);
}

ReportObservationResponse Client::reportObservation(
    std::uint64_t tag, std::int32_t start, std::int32_t end,
    double directionDeg, double offsetMeters) {
  ReportObservationRequest request;
  request.tag = tag;
  request.start = start;
  request.end = end;
  request.directionDeg = directionDeg;
  request.offsetMeters = offsetMeters;
  send(encodeReportObservationRequest(request));
  const Frame frame = recvFrame();
  expectType(frame, MsgType::kReportObservationResponse);
  return decodeReportObservationResponse(frame.payload);
}

FlushResponse Client::flush(std::uint64_t tag) {
  send(encodeFlushRequest(FlushRequest{tag}));
  const Frame frame = recvFrame();
  expectType(frame, MsgType::kFlushResponse);
  return decodeFlushResponse(frame.payload);
}

StatsResponse Client::stats(std::uint64_t tag) {
  send(encodeStatsRequest(StatsRequest{tag}));
  const Frame frame = recvFrame();
  expectType(frame, MsgType::kStatsResponse);
  return decodeStatsResponse(frame.payload);
}

void Client::shutdownWrites() { ::shutdown(fd_, SHUT_WR); }

}  // namespace moloc::net
