#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/wire.hpp"

namespace moloc::net {

/// A blocking molocd client over one TCP connection — the building
/// block of moloc_loadgen and the loopback tests.
///
/// Two usage styles:
///   - Synchronous helpers (localize(), reportObservation(), ...):
///     one request, wait for its response.
///   - Pipelined: send any number of frames with send(), then collect
///     responses with recvFrame(); the server answers in request
///     order and echoes each request's tag.
///
/// Not thread-safe; use one Client per thread (molocd gives every
/// connection its own session affinity anyway).
class Client {
 public:
  /// Connects immediately.  Throws NetError on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Writes one already-encoded frame (use the wire.hpp encoders).
  void send(std::string_view frame);

  /// Blocks until one complete frame arrives.  Throws NetError when
  /// the server closes the connection first and ProtocolError on a
  /// malformed response stream.
  Frame recvFrame();

  LocalizeResponse localize(std::uint64_t tag, std::uint64_t sessionId,
                            const radio::Fingerprint& scan,
                            const sensors::ImuTrace& imu);
  LocalizeBatchResponse localizeBatch(const LocalizeBatchRequest& request);
  ReportObservationResponse reportObservation(std::uint64_t tag,
                                              std::int32_t start,
                                              std::int32_t end,
                                              double directionDeg,
                                              double offsetMeters);
  FlushResponse flush(std::uint64_t tag);
  StatsResponse stats(std::uint64_t tag);

  /// Half-closes the write side (the server sees a clean EOF and
  /// drains what it owes us); recvFrame() keeps working.
  void shutdownWrites();

  int fd() const { return fd_; }

 private:
  int fd_;
  FrameAssembler assembler_;
};

}  // namespace moloc::net
