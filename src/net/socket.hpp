#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace moloc::net {

/// A socket-layer failure (bind, connect, unexpected I/O error).
/// Protocol damage is ProtocolError; a peer hanging up mid-stream is
/// neither — the server counts it as a clean disconnect.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what)
      : std::runtime_error("moloc::net: " + what) {}
};

/// An open TCP listener.  `port` is the actually-bound port (useful
/// when the requested port was 0 = ephemeral).
struct Listener {
  int fd = -1;
  std::uint16_t port = 0;
};

/// Binds and listens on host:port (IPv4 dotted quad; port 0 picks an
/// ephemeral port).  The returned fd is non-blocking and CLOEXEC.
/// Throws NetError on failure.
Listener listenOn(const std::string& host, std::uint16_t port);

/// Blocking TCP connect to host:port.  The returned fd is blocking
/// (clients use simple blocking I/O) with TCP_NODELAY set.  Throws
/// NetError on failure.
int connectTo(const std::string& host, std::uint16_t port);

/// Puts `fd` into non-blocking mode.  Throws NetError on failure.
void setNonBlocking(int fd);

}  // namespace moloc::net
