#include "net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.hpp"
#include "service/intake.hpp"
#include "service/localization_service.hpp"
#include "store/format.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::net {

namespace {

/// Best-effort tag for an error reply when the payload itself failed
/// to decode: every message begins with the u64 tag, so echo it when
/// at least that much arrived.
std::uint64_t peekTag(const std::string& payload) {
  if (payload.size() < 8) return 0;
  store::detail::Cursor cursor(payload.data(), payload.size());
  return cursor.readU64();
}

std::size_t resolveWorkers(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace

Server::Server(service::LocalizationService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  const Listener listener = listenOn(config_.host, config_.port);
  listenFd_ = listener.fd;
  port_ = listener.port;
  if (::pipe2(wakePipe_, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listenFd_);
    throw NetError("cannot create wakeup pipe");
  }
  try {
    workers_ = std::make_unique<service::ThreadPool>(
        resolveWorkers(config_.workerThreads));
    loop_ = std::thread([this] { loop(); });
  } catch (...) {
    // Pool construction or thread spawn failed before the loop took
    // ownership of any socket; nothing else will close these.
    ::close(listenFd_);
    ::close(wakePipe_[0]);
    ::close(wakePipe_[1]);
    throw;
  }
}

Server::~Server() {
  requestStop();
  waitUntilStopped();
  // The loop closed every connection socket and the listener; only the
  // wake pipe remains.
  ::close(wakePipe_[0]);
  ::close(wakePipe_[1]);
}

void Server::requestStop() {
  // Async-signal-safe: an atomic store plus a pipe write, retried only
  // on EINTR (a plain loop, still signal-safe).  EAGAIN on a full pipe
  // is fine — a wakeup token is already pending.
  stopRequested_.store(true, std::memory_order_release);
  const char token = 's';
  [[maybe_unused]] const ssize_t rc =
      util::retryEintr([&] { return ::write(wakePipe_[1], &token, 1); });
}

void Server::waitUntilStopped() {
  if (loop_.joinable()) loop_.join();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.requestsServed = requestsServed_.load(std::memory_order_relaxed);
  s.connectionsAccepted =
      connectionsAccepted_.load(std::memory_order_relaxed);
  s.cleanDisconnects = cleanDisconnects_.load(std::memory_order_relaxed);
  s.overloadRejections =
      overloadRejections_.load(std::memory_order_relaxed);
  s.protocolErrors = protocolErrors_.load(std::memory_order_relaxed);
  return s;
}

void Server::wakeLoop() {
  const char token = 'w';
  [[maybe_unused]] const ssize_t rc =
      util::retryEintr([&] { return ::write(wakePipe_[1], &token, 1); });
}

void Server::loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  bool listenerOpen = true;
  std::chrono::steady_clock::time_point drainDeadline{};
  for (;;) {
    const bool stopping = stopRequested_.load(std::memory_order_acquire);
    if (stopping && listenerOpen) {
      if (config_.drainTimeoutMs > 0)
        drainDeadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.drainTimeoutMs);
      // Adopt connections the kernel already completed into the accept
      // backlog: a peer that connected (and possibly sent requests)
      // before the stop is in-flight work, and closing the listener
      // over its head would RST it unanswered.  New connect attempts
      // after the close are refused, which is the drain contract.
      acceptReady();
      ::close(listenFd_);
      listenFd_ = -1;
      listenerOpen = false;
    }

    // Reap: a connection leaves once it is fully idle — every decoded
    // request answered and every response byte flushed (or the socket
    // died).  During drain this is exactly "no in-flight work left",
    // where in-flight includes requests the kernel has already
    // delivered but the loop has not read yet: a client that pipelined
    // a burst just before SIGTERM still gets every answer, so the
    // final read below is the drain's cutoff point, not the stop flag.
    std::vector<std::pair<int, bool>> toClose;  // fd, cleanDisconnect
    for (const auto& [fd, conn] : connections_) {
      if (conn->dead) {
        toClose.emplace_back(fd, !conn->dirtyDeath);
        continue;
      }
      bool idle = false;
      {
        const util::MutexLock lock(conn->mu);
        idle = conn->pending.empty() && !conn->processing &&
               conn->outbuf.empty();
      }
      if (!idle) continue;
      if (conn->inputClosed) {
        toClose.emplace_back(fd, true);
        continue;
      }
      if (!stopping) continue;
      readReady(conn);  // Drain cutoff: pull what is already delivered.
      if (conn->dead) {
        toClose.emplace_back(fd, !conn->dirtyDeath);
        continue;
      }
      {
        const util::MutexLock lock(conn->mu);
        idle = conn->pending.empty() && !conn->processing &&
               conn->outbuf.empty();
      }
      // A part-received frame (buffered bytes) means the peer is mid-
      // send; give it the next poll rounds to finish.
      if (idle && conn->assembler.buffered() == 0)
        toClose.emplace_back(fd, conn->inputClosed);
    }
    for (const auto& [fd, clean] : toClose) closeConnection(fd, clean);

    // The drain must terminate even against a peer that stalls
    // mid-frame or never reads its responses: past the deadline the
    // stragglers are cut off (counted as non-clean — we hung up).
    if (stopping && config_.drainTimeoutMs > 0 &&
        std::chrono::steady_clock::now() >= drainDeadline) {
      std::vector<int> remaining;
      remaining.reserve(connections_.size());
      for (const auto& [fd, conn] : connections_) remaining.push_back(fd);
      for (const int fd : remaining) closeConnection(fd, false);
    }

    if (stopping && connections_.empty()) break;

    fds.clear();
    polled.clear();
    fds.push_back({wakePipe_[0], POLLIN, 0});
    if (listenerOpen && connections_.size() < config_.maxConnections)
      fds.push_back({listenFd_, POLLIN, 0});
    const std::size_t firstConnIndex = fds.size();
    for (const auto& [fd, conn] : connections_) {
      short events = 0;
      bool wantWrite = false;
      bool paused = false;
      {
        const util::MutexLock lock(conn->mu);
        wantWrite = !conn->outbuf.empty();
        // Flow control with hysteresis: pause reads past the pipelining
        // or write-queue bound, resume below half.
        const std::size_t lowRequests = config_.maxPipelinedRequests / 2;
        const std::size_t lowBytes = config_.maxWriteQueueBytes / 2;
        if (conn->pausedReads)
          paused = conn->pending.size() > lowRequests ||
                   conn->outbuf.size() > lowBytes;
        else
          paused = conn->pending.size() >= config_.maxPipelinedRequests ||
                   conn->outbuf.size() >= config_.maxWriteQueueBytes;
      }
      conn->pausedReads = paused;
      // Reads stay enabled during drain: requests already delivered
      // (or mid-frame) are still served; the reap pass above decides
      // when a connection has truly gone quiet.
      if (!conn->inputClosed && !conn->dead && !paused) events |= POLLIN;
      if (wantWrite && !conn->dead) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    const int ready = util::retryEintr(
        [&] { return ::poll(fds.data(), fds.size(), 100); });
    if (ready < 0) continue;  // transient poll failure; re-evaluate

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (util::retryEintr([&] {
               return ::read(wakePipe_[0], drain, sizeof drain);
             }) > 0) {
      }
    }
    for (std::size_t i = 1; i < firstConnIndex; ++i)
      if ((fds[i].revents & POLLIN) != 0) acceptReady();
    for (std::size_t i = firstConnIndex; i < fds.size(); ++i) {
      const auto& conn = polled[i - firstConnIndex];
      const short revents = fds[i].revents;
      if (conn->dead) continue;
      if ((revents & POLLOUT) != 0) writeReady(conn);
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          (fds[i].events & POLLIN) != 0)
        readReady(conn);
    }
  }

  // Every in-flight response is flushed and every socket closed; make
  // admitted observations durable and published before reporting
  // ourselves stopped.
  if (config_.drainHook) config_.drainHook();
  loopExited_.store(true, std::memory_order_release);
}

void Server::acceptReady() {
  for (;;) {
    if (connections_.size() >= config_.maxConnections) return;
    const int fd = util::retryEintr([&] {
      return ::accept4(listenFd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    });
    if (fd < 0) return;  // EAGAIN or transient accept failure
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.emplace(fd, std::make_shared<Connection>(fd));
    connectionsAccepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::readReady(const std::shared_ptr<Connection>& conn) {
  char buf[16384];
  for (;;) {
    const ssize_t n = util::retryEintr(
        [&] { return ::recv(conn->fd, buf, sizeof buf, 0); });
    if (n > 0) {
      conn->assembler.feed(buf, static_cast<std::size_t>(n));
      try {
        Frame frame;
        while (conn->assembler.next(frame)) {
          if ((static_cast<std::uint8_t>(frame.type) & 0x80u) != 0)
            throw ProtocolError(WireFault::kBadType,
                                "response-typed frame from client");
          {
            const util::MutexLock lock(conn->mu);
            conn->pending.push_back(std::move(frame));
          }
          scheduleProcessing(conn);
        }
      } catch (const ProtocolError&) {
        // Framing-level damage desynchronizes the byte stream; there
        // is no safe resync point, so count it and drop the peer —
        // dirty, so it is not double-counted as a clean disconnect.
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        conn->dirtyDeath = true;
        conn->dead = true;
        return;
      }
      // Honor flow control mid-burst: stop pulling more bytes once
      // this read filled the pipeline bound.
      bool paused = false;
      {
        const util::MutexLock lock(conn->mu);
        paused = conn->pending.size() >= config_.maxPipelinedRequests;
      }
      if (paused) return;
      continue;
    }
    if (n == 0) {  // orderly peer shutdown
      conn->inputClosed = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    // ECONNRESET and friends: the peer vanished — a clean disconnect
    // by this server's contract, never a reason to crash.
    conn->dead = true;
    return;
  }
}

void Server::writeReady(const std::shared_ptr<Connection>& conn) {
  std::string chunk;
  {
    const util::MutexLock lock(conn->mu);
    if (conn->outbuf.empty()) return;
    chunk.swap(conn->outbuf);
  }
  std::size_t sent = 0;
  while (sent < chunk.size()) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE
    // (molocd additionally ignores SIGPIPE process-wide).
    const ssize_t n = util::retryEintr([&] {
      return ::send(conn->fd, chunk.data() + sent, chunk.size() - sent,
                    MSG_NOSIGNAL);
    });
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EPIPE / ECONNRESET: clean disconnect, drop the rest.
    conn->dead = true;
    return;
  }
  if (sent < chunk.size()) {
    const util::MutexLock lock(conn->mu);
    // Workers may have appended while we were sending; keep order.
    conn->outbuf.insert(0, chunk, sent, chunk.size() - sent);
  }
}

void Server::scheduleProcessing(const std::shared_ptr<Connection>& conn) {
  {
    const util::MutexLock lock(conn->mu);
    if (conn->processing || conn->pending.empty()) return;
    conn->processing = true;
  }
  workers_->submit([this, conn] { processPending(conn); });
}

void Server::processPending(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    Frame frame;
    {
      const util::MutexLock lock(conn->mu);
      if (conn->pending.empty()) {
        conn->processing = false;
        break;
      }
      frame = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    std::string response;
    try {
      response = handleFrame(frame);
    } catch (...) {
      // Handlers answer their own failures, so anything escaping here
      // is a server-side defect.  Contain it on the worker: reset the
      // processing flag so the connection cannot wedge with requests
      // it will never answer, and kill it dirty rather than leave the
      // peer waiting on a response that will never come.
      {
        const util::MutexLock lock(conn->mu);
        conn->processing = false;
      }
      conn->dirtyDeath = true;
      conn->dead = true;
      wakeLoop();
      return;
    }
    {
      const util::MutexLock lock(conn->mu);
      conn->outbuf += response;
    }
    wakeLoop();  // a response is ready; enable POLLOUT
  }
  wakeLoop();  // re-evaluate flow control / reap conditions
}

namespace {

struct Failure {
  Status status = Status::kInternalError;
  std::string message;
  bool protocolFault = false;
  bool overload = false;
};

Failure classifyFailure(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const ProtocolError& e) {
    return {Status::kBadRequest, e.what(), true, false};
  } catch (const service::BackpressureError& e) {
    return {Status::kOverloaded, e.what(), false, true};
  } catch (const service::ShutdownError& e) {
    return {Status::kShuttingDown, e.what(), false, false};
  } catch (const std::logic_error& e) {
    // std::invalid_argument (bad scan, unknown location) and the
    // "no intake attached" logic_error both mean the request itself
    // was unserviceable.
    return {Status::kBadRequest, e.what(), false, false};
  } catch (const std::exception& e) {
    return {Status::kInternalError, e.what(), false, false};
  }
}

/// Encoding a response can itself fail: a <=1 MiB LocalizeBatch of
/// minimal scans yields estimates whose encoding legitimately exceeds
/// kMaxPayloadBytes (each estimate encodes larger than its scan).
/// That must stay a *response* — strip the body and answer
/// kInternalError, which is guaranteed to frame — never an exception
/// escaping into the worker pool.
std::string encodeBounded(LocalizeResponse&& resp) {
  try {
    return encodeLocalizeResponse(resp);
  } catch (const ProtocolError&) {
    resp.estimate = core::LocationEstimate{};
    resp.status = Status::kInternalError;
    resp.message = "encoded response exceeds the frame bound";
    return encodeLocalizeResponse(resp);
  }
}

std::string encodeBounded(LocalizeBatchResponse&& resp) {
  try {
    return encodeLocalizeBatchResponse(resp);
  } catch (const ProtocolError&) {
    resp.estimates.clear();
    resp.status = Status::kInternalError;
    resp.message =
        "encoded batch response exceeds the frame bound; split the batch";
    return encodeLocalizeBatchResponse(resp);
  }
}

}  // namespace

std::string Server::handleFrame(const Frame& frame) {
  requestsServed_.fetch_add(1, std::memory_order_relaxed);
  switch (frame.type) {
    case MsgType::kLocalize:
      return handleLocalize(frame);
    case MsgType::kLocalizeBatch:
      return handleLocalizeBatch(frame);
    case MsgType::kReportObservation:
      return handleReportObservation(frame);
    case MsgType::kFlush:
      return handleFlush(frame);
    case MsgType::kStats:
      return handleStats(frame);
    default: {  // unreachable: readReady rejects response-typed frames
      FlushResponse resp;
      resp.tag = peekTag(frame.payload);
      resp.status = Status::kBadRequest;
      resp.message = "unexpected message type";
      return encodeFlushResponse(resp);
    }
  }
}

std::string Server::handleLocalize(const Frame& frame) {
  LocalizeResponse resp;
  resp.tag = peekTag(frame.payload);
  try {
    const LocalizeRequest req = decodeLocalizeRequest(frame.payload);
    resp.tag = req.tag;
    resp.estimate = service_.submitScan(req.scan.sessionId, req.scan.scan,
                                        req.scan.imu);
  } catch (...) {
    const Failure f = classifyFailure(std::current_exception());
    resp.status = f.status;
    resp.message = f.message;
    if (f.protocolFault)
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
    if (f.overload)
      overloadRejections_.fetch_add(1, std::memory_order_relaxed);
  }
  return encodeBounded(std::move(resp));
}

std::string Server::handleLocalizeBatch(const Frame& frame) {
  LocalizeBatchResponse resp;
  resp.tag = peekTag(frame.payload);
  try {
    const LocalizeBatchRequest req =
        decodeLocalizeBatchRequest(frame.payload);
    resp.tag = req.tag;
    std::vector<service::ScanRequest> batch;
    batch.reserve(req.scans.size());
    for (const auto& scan : req.scans)
      batch.push_back({scan.sessionId, scan.scan, scan.imu});
    resp.estimates = service_.localizeBatch(batch);
  } catch (...) {
    const Failure f = classifyFailure(std::current_exception());
    resp.status = f.status;
    resp.message = f.message;
    resp.estimates.clear();
    if (f.protocolFault)
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
    if (f.overload)
      overloadRejections_.fetch_add(1, std::memory_order_relaxed);
  }
  return encodeBounded(std::move(resp));
}

std::string Server::handleReportObservation(const Frame& frame) {
  ReportObservationResponse resp;
  resp.tag = peekTag(frame.payload);
  try {
    const ReportObservationRequest req =
        decodeReportObservationRequest(frame.payload);
    resp.tag = req.tag;
    resp.accepted = service_.reportObservation(
        req.start, req.end, req.directionDeg, req.offsetMeters);
  } catch (...) {
    const Failure f = classifyFailure(std::current_exception());
    resp.status = f.status;
    resp.message = f.message;
    if (f.protocolFault)
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
    if (f.overload)
      overloadRejections_.fetch_add(1, std::memory_order_relaxed);
  }
  return encodeReportObservationResponse(resp);
}

std::string Server::handleFlush(const Frame& frame) {
  FlushResponse resp;
  resp.tag = peekTag(frame.payload);
  try {
    const FlushRequest req = decodeFlushRequest(frame.payload);
    resp.tag = req.tag;
    service_.flushIntake();
  } catch (...) {
    const Failure f = classifyFailure(std::current_exception());
    resp.status = f.status;
    resp.message = f.message;
    if (f.protocolFault)
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
  }
  return encodeFlushResponse(resp);
}

std::string Server::handleStats(const Frame& frame) {
  StatsResponse resp;
  resp.tag = peekTag(frame.payload);
  try {
    const StatsRequest req = decodeStatsRequest(frame.payload);
    resp.tag = req.tag;
    resp.stats = stats();
    resp.stats.sessions = service_.sessionCount();
    resp.stats.worldGeneration = service_.currentWorld()->generation();
    try {
      resp.stats.intakeApplied = service_.intakeStats().applied;
    } catch (const std::logic_error&) {
      resp.stats.intakeApplied = 0;  // no intake attached
    }
  } catch (...) {
    const Failure f = classifyFailure(std::current_exception());
    resp.status = f.status;
    resp.message = f.message;
    if (f.protocolFault)
      protocolErrors_.fetch_add(1, std::memory_order_relaxed);
  }
  return encodeStatsResponse(resp);
}

void Server::closeConnection(int fd, bool clean) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  if (clean) cleanDisconnects_.fetch_add(1, std::memory_order_relaxed);
  ::close(fd);
  connections_.erase(it);
}

}  // namespace moloc::net
