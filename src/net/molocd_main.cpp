// molocd: the MoLoc network serving daemon.
//
// Stands up a world — by default the paper's office hall
// (ExperimentWorld, fully determined by --seed), or with --venue a
// generated campus-scale venue (worldgen::GeneratedVenue, determined
// by the spec plus --venue-seed) — wraps it in a LocalizationService
// with the crowdsourcing intake attached, and serves the binary wire
// protocol (src/net/wire.hpp) over TCP until SIGTERM/SIGINT — at
// which point it drains gracefully: stop accepting, answer every
// request already received, flush the intake durably, exit 0.
//
// A load generator built from the same seed(s) produces bit-identical
// worlds, which is what lets moloc_loadgen verify network-served
// estimates byte-for-byte against in-process results.

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "core/online_motion_database.hpp"
#include "eval/experiment_world.hpp"
#include "image/image_loader.hpp"
#include "image/image_writer.hpp"
#include "net/server.hpp"
#include "service/intake.hpp"
#include "service/localization_service.hpp"
#include "store/state_store.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "worldgen/generated_venue.hpp"
#include "worldgen/venue_spec.hpp"

namespace {

// Signal handlers may only touch this pointer; requestStop() is
// async-signal-safe (atomic store + pipe write).
moloc::net::Server* g_server = nullptr;

void handleStopSignal(int) {
  if (g_server != nullptr) g_server->requestStop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace moloc;

  util::ArgParser args(
      "molocd: MoLoc localization daemon serving the binary wire "
      "protocol over TCP (see docs/serving.md)");
  args.addOption("host", "127.0.0.1", "IPv4 address to bind");
  args.addOption("port", "0", "TCP port (0 picks an ephemeral port)");
  args.addOption("net-threads", "2", "request worker threads");
  args.addOption("threads", "0",
                 "service batch threads (0 = hardware concurrency)");
  args.addOption("shards", "16", "session map shards");
  args.addOption("seed", "42", "world seed (loadgen must match)");
  args.addOption("ap-count", "6", "access points in the world (4-6)");
  args.addOption("venue", "",
                 "serve a generated campus venue instead of the office "
                 "hall: campus-{1k,4k,16k,64k} or a key=value list "
                 "(see worldgen::parseVenueSpec)");
  args.addOption("venue-seed", "42",
                 "venue generation seed (loadgen must match)");
  args.addOption("image", "",
                 "serve from a venue image (src/image) instead of "
                 "building a world; implies --no-intake (an image "
                 "carries no reservoir state to fold observations "
                 "into)");
  args.addOption("image-verify", "full",
                 "image CRC policy: 'full' checksums every section, "
                 "'bulk' skips the large arrays for millisecond "
                 "cold attach (structure is always validated)");
  args.addOption("save-image", "",
                 "write the boot world (built or loaded) to this "
                 "venue image and exit without serving");
  args.addOption("wal-dir", "",
                 "durable store directory for the intake WAL "
                 "(empty = in-memory intake only)");
  args.addOption("checkpoint-every", "0",
                 "background checkpoint cadence in records "
                 "(0 = off; requires --wal-dir)");
  args.addOption("port-file", "",
                 "write the bound port to this file once listening");
  args.addOption("drain-timeout-ms", "5000",
                 "force-close connections still busy this long after "
                 "SIGTERM/SIGINT (0 = wait indefinitely)");
  args.addSwitch("no-intake",
                 "serve localization only; ReportObservation/Flush "
                 "answer BAD_REQUEST");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "molocd: %s\n%s", e.what(),
                 args.usage().c_str());
    return 2;
  }

  // A dead client between poll() and send() must surface as EPIPE on
  // that one socket (handled as a clean disconnect), never as a
  // process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  try {
    // The serving world: office hall by default, generated venue with
    // --venue.  Both outlive the service (the intake references their
    // floor plans).
    std::unique_ptr<eval::ExperimentWorld> world;
    std::unique_ptr<worldgen::GeneratedVenue> venue;
    std::unique_ptr<image::VenueImage> venueImage;
    eval::WorldConfig worldConfig;
    worldConfig.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    worldConfig.apCount = args.getInt("ap-count");
    const std::string venueSpecText = args.getString("venue");
    const std::string imagePath = args.getString("image");
    if (!imagePath.empty()) {
      if (!venueSpecText.empty())
        throw util::ConfigError(
            "--image and --venue are mutually exclusive");
      const std::string verify = args.getString("image-verify");
      if (verify != "full" && verify != "bulk")
        throw util::ConfigError(
            "--image-verify must be 'full' or 'bulk'");
      image::LoadOptions loadOptions;
      loadOptions.verify = verify == "bulk"
                               ? image::VerifyMode::kBulkUnverified
                               : image::VerifyMode::kFull;
      venueImage = std::make_unique<image::VenueImage>(
          image::VenueImage::open(imagePath, loadOptions));
    } else if (!venueSpecText.empty()) {
      worldgen::VenueSpec spec = worldgen::parseVenueSpec(venueSpecText);
      spec.seed = static_cast<std::uint64_t>(args.getInt("venue-seed"));
      venue = std::make_unique<worldgen::GeneratedVenue>(spec);
    } else {
      world = std::make_unique<eval::ExperimentWorld>(worldConfig);
    }

    // Declared before the service: attachIntake requires the database
    // and store to outlive it (the intake writer joins in the
    // service's destructor).
    std::unique_ptr<store::StateStore> stateStore;
    std::unique_ptr<core::OnlineMotionDatabase> intakeDb;

    service::ServiceConfig serviceConfig;
    serviceConfig.threadCount =
        static_cast<std::size_t>(args.getInt("threads"));
    serviceConfig.shardCount =
        static_cast<std::size_t>(args.getInt("shards"));
    // A generated venue hands the index its natural per-floor shard
    // boundaries; IndexMode::kAuto then builds the tiered index for
    // campus-scale maps and skips it for the small office hall.
    if (venue) serviceConfig.indexShardStarts = venue->shardStarts();
    auto makeService = [&]() -> service::LocalizationService {
      if (venueImage)
        return service::LocalizationService(
            venueImage->fingerprints(), venueImage->adjacency(),
            venueImage->tieredIndex(), venueImage->meta().generation,
            venueImage->meta().intakeRecords, serviceConfig);
      return service::LocalizationService(
          venue ? venue->fingerprints() : world->fingerprintDb(),
          venue ? venue->motion() : world->motionDb(), serviceConfig);
    };
    service::LocalizationService service = makeService();

    const std::string saveImagePath = args.getString("save-image");
    if (!saveImagePath.empty()) {
      const image::ImageWriteInfo info =
          image::writeVenueImage(saveImagePath, *service.currentWorld());
      std::printf(
          "molocd: wrote venue image %s (%llu bytes, %zu sections, "
          "%zu locations, index %s)\n",
          saveImagePath.c_str(),
          static_cast<unsigned long long>(info.bytes), info.sections,
          service.fingerprints().size(),
          service.tieredIndex() ? "embedded" : "none");
      return 0;
    }

    if (!args.getSwitch("no-intake") && !venueImage) {
      intakeDb = std::make_unique<core::OnlineMotionDatabase>(
          venue ? venue->site().plan : world->hall().plan);
      const std::string walDir = args.getString("wal-dir");
      if (!walDir.empty())
        stateStore = std::make_unique<store::StateStore>(walDir);
      service.attachIntake(
          intakeDb.get(), stateStore.get(),
          static_cast<std::uint64_t>(args.getInt("checkpoint-every")));
    }

    net::ServerConfig netConfig;
    netConfig.host = args.getString("host");
    netConfig.port = static_cast<std::uint16_t>(args.getInt("port"));
    netConfig.workerThreads =
        static_cast<std::size_t>(args.getInt("net-threads"));
    netConfig.drainTimeoutMs =
        static_cast<std::size_t>(args.getInt("drain-timeout-ms"));
    netConfig.drainHook = [&service] {
      // Part of the SIGTERM contract: every observation admitted
      // before the drain is durably applied and published.  A service
      // without intake (or one already shutting down) has nothing to
      // flush.
      try {
        service.flushIntake();
      } catch (const std::logic_error&) {
      } catch (const service::ShutdownError&) {
      }
    };
    net::Server server(service, netConfig);
    g_server = &server;
    std::signal(SIGTERM, handleStopSignal);
    std::signal(SIGINT, handleStopSignal);

    if (venueImage)
      std::printf(
          "molocd: serving %s:%u (image %s, generation %llu, "
          "%zu locations, %zu APs, index %s, intake off)\n",
          netConfig.host.c_str(), unsigned{server.port()},
          imagePath.c_str(),
          static_cast<unsigned long long>(
              venueImage->meta().generation),
          venueImage->locationCount(), venueImage->apCount(),
          service.tieredIndex() ? "on" : "off");
    else if (venue)
      std::printf(
          "molocd: serving %s:%u (venue %s, seed %llu, %zu locations, "
          "%zu APs, index %s, intake %s)\n",
          netConfig.host.c_str(), unsigned{server.port()},
          worldgen::describeVenueSpec(venue->spec()).c_str(),
          static_cast<unsigned long long>(venue->spec().seed),
          venue->locationCount(), venue->apCount(),
          service.tieredIndex() ? "on" : "off",
          args.getSwitch("no-intake") ? "off" : "on");
    else
      std::printf(
          "molocd: serving %s:%u (seed %llu, %d APs, intake %s)\n",
          netConfig.host.c_str(), unsigned{server.port()},
          static_cast<unsigned long long>(worldConfig.seed),
          worldConfig.apCount,
          args.getSwitch("no-intake") ? "off" : "on");
    std::fflush(stdout);
    const std::string portFile = args.getString("port-file");
    if (!portFile.empty()) {
      std::FILE* f = std::fopen(portFile.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "molocd: cannot write port file '%s'\n",
                     portFile.c_str());
        return 1;
      }
      std::fprintf(f, "%u\n", unsigned{server.port()});
      std::fclose(f);
    }

    server.waitUntilStopped();
    g_server = nullptr;

    const net::ServerStats stats = server.stats();
    std::printf(
        "molocd: drained (served %llu requests, %llu connections, "
        "%llu clean disconnects, %llu overloads, %llu protocol "
        "errors)\n",
        static_cast<unsigned long long>(stats.requestsServed),
        static_cast<unsigned long long>(stats.connectionsAccepted),
        static_cast<unsigned long long>(stats.cleanDisconnects),
        static_cast<unsigned long long>(stats.overloadRejections),
        static_cast<unsigned long long>(stats.protocolErrors));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "molocd: fatal: %s\n", e.what());
    return 1;
  }
}
