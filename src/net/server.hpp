#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/wire.hpp"
#include "service/thread_pool.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::service {
class LocalizationService;
}

namespace moloc::net {

/// Tunables of the molocd serving loop.
struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via Server::port().
  std::uint16_t port = 0;
  /// Request-processing workers; 0 selects hardware concurrency (at
  /// least 1).  Distinct from the service's internal batch pool.
  std::size_t workerThreads = 0;
  std::size_t maxConnections = 4096;
  /// Per-connection bound on decoded-but-unanswered requests; past it
  /// the server stops reading that socket (TCP backpressure) until the
  /// worker drains below half.
  std::size_t maxPipelinedRequests = 128;
  /// Per-connection bound on buffered response bytes; past it the
  /// server likewise pauses reads until the peer consumes responses.
  std::size_t maxWriteQueueBytes = 4u << 20;
  /// Upper bound on the graceful drain, measured from when the loop
  /// observes the stop request.  Connections still busy at the
  /// deadline — a peer stalled mid-frame or one that never reads its
  /// responses — are force-closed, so a single slow or hostile client
  /// cannot block shutdown indefinitely.  0 waits forever.
  std::size_t drainTimeoutMs = 5000;
  /// Runs on the event-loop thread during graceful drain, after every
  /// in-flight response has been flushed and before the loop exits.
  /// molocd points this at LocalizationService::flushIntake so a
  /// SIGTERM durably lands every admitted observation.
  std::function<void()> drainHook;
};

/// The molocd TCP front end: one poll()-based event-loop thread owning
/// every socket, plus a worker pool that executes requests against the
/// LocalizationService and hands encoded responses back to the loop.
///
/// Concurrency model:
///   - Only the event-loop thread touches file descriptors and the
///     connection map; workers never do socket I/O.
///   - Each connection carries a mutex guarding its decoded-request
///     queue and response buffer — the only state shared between the
///     loop and the workers.  At most one worker processes a given
///     connection at a time (the `processing` flag), so requests on
///     one connection are answered strictly in arrival order — which
///     preserves the service's per-session apply order and keeps
///     network-served results bitwise-identical to in-process calls.
///   - Overload maps to wire statuses, never to dropped connections:
///     intake backpressure → kOverloaded, drain → kShuttingDown.
///   - A peer hanging up (EOF, EPIPE, ECONNRESET) is a *clean
///     disconnect*: counted, resources reclaimed, never fatal.
///     Malformed bytes count as protocol errors; framing-level damage
///     desynchronizes the stream, so those connections are dropped.
///
/// Graceful drain (requestStop(), typically from SIGTERM): the
/// listener closes, every request already delivered to this host —
/// including bytes still sitting in a socket's kernel buffer — is
/// processed and its response flushed, each connection closes once a
/// final read finds it quiet, the drain hook runs (molocd:
/// flushIntake), and only then does the loop exit.  The drain is
/// bounded by ServerConfig::drainTimeoutMs: past the deadline,
/// connections that still refuse to go quiet are force-closed.
class Server {
 public:
  /// Binds and starts serving immediately.  `service` must outlive
  /// the server.  Throws NetError when the address cannot be bound.
  explicit Server(service::LocalizationService& service,
                  ServerConfig config = {});

  /// requestStop() + waitUntilStopped().
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The actually-bound port.
  std::uint16_t port() const { return port_; }

  /// Begins graceful drain.  Async-signal-safe (an atomic store plus
  /// one pipe write) so a SIGTERM handler may call it directly.
  /// Idempotent.
  void requestStop();

  /// Blocks until the event loop has fully drained and exited.
  void waitUntilStopped();

  bool stopped() const { return loopExited_.load(std::memory_order_acquire); }

  /// Point-in-time server counters (the Stats request returns these
  /// plus the service-side fields).
  ServerStats stats() const;

 private:
  /// Per-connection state.  Owned by the loop thread's map; workers
  /// hold a shared_ptr while processing, so teardown is safe in
  /// either order.
  struct Connection {
    explicit Connection(int fdIn) : fd(fdIn) {}
    /// Loop-thread-only: the socket and its frame reassembly state.
    int fd;
    FrameAssembler assembler;
    bool inputClosed = false;  ///< Peer EOF seen; no more reads.
    bool pausedReads = false;  ///< Flow control engaged last poll round.

    /// Socket failed or the stream desynchronized; reap without
    /// flushing.  Atomic (unlike the loop-only fields above) because a
    /// worker containing an escaped handler failure sets it off the
    /// loop thread.
    std::atomic<bool> dead{false};
    /// Why `dead`: set for protocol errors and server-side defects —
    /// reaped as a counted *non-clean* drop — and left false when the
    /// peer merely vanished (EPIPE/ECONNRESET, the contract's clean
    /// disconnect).  Written before `dead`, read after it.
    std::atomic<bool> dirtyDeath{false};

    util::Mutex mu;
    std::deque<Frame> pending MOLOC_GUARDED_BY(mu);
    /// Encoded responses not yet written to the socket.
    std::string outbuf MOLOC_GUARDED_BY(mu);
    /// A worker task is (or is about to be) draining `pending`.
    bool processing MOLOC_GUARDED_BY(mu) = false;
  };

  void loop();
  void acceptReady();
  void readReady(const std::shared_ptr<Connection>& conn);
  void writeReady(const std::shared_ptr<Connection>& conn);
  /// Schedules a worker to drain `conn->pending` unless one already is.
  void scheduleProcessing(const std::shared_ptr<Connection>& conn);
  /// Worker-side: drains the pending queue, appending responses.
  void processPending(const std::shared_ptr<Connection>& conn);
  /// Executes one decoded request; returns the encoded response frame.
  std::string handleFrame(const Frame& frame);
  std::string handleLocalize(const Frame& frame);
  std::string handleLocalizeBatch(const Frame& frame);
  std::string handleReportObservation(const Frame& frame);
  std::string handleFlush(const Frame& frame);
  std::string handleStats(const Frame& frame);
  /// Nudges the poll loop (worker produced output / finished a drain).
  void wakeLoop();
  /// Closes and forgets `conn`; `clean` selects which counter ticks.
  void closeConnection(int fd, bool clean);

  service::LocalizationService& service_;
  ServerConfig config_;
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  int wakePipe_[2] = {-1, -1};

  std::atomic<bool> stopRequested_{false};
  std::atomic<bool> loopExited_{false};

  std::atomic<std::uint64_t> requestsServed_{0};
  std::atomic<std::uint64_t> connectionsAccepted_{0};
  std::atomic<std::uint64_t> cleanDisconnects_{0};
  std::atomic<std::uint64_t> overloadRejections_{0};
  std::atomic<std::uint64_t> protocolErrors_{0};

  /// Loop-thread-only.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  /// Declared before the loop thread: workers must outlive nothing the
  /// loop still needs, and the destructor joins loop_ first, then the
  /// pool drains remaining tasks while connections_ entries are kept
  /// alive by the tasks' shared_ptrs.
  std::unique_ptr<service::ThreadPool> workers_;
  std::thread loop_;
};

}  // namespace moloc::net
