#include "net/wire.hpp"

#include <utility>

#include "store/crc32c.hpp"
#include "store/format.hpp"
#include "util/checked_cast.hpp"

namespace moloc::net {

namespace {

using store::detail::Cursor;
using store::detail::putF64;
using store::detail::putI32;
using store::detail::putU32;
using store::detail::putU64;
using store::detail::putU8;

/// Re-types a Cursor overrun (store::CorruptionError) and any domain
/// validation rejecting decoded values (std::invalid_argument — e.g. a
/// non-positive IMU sample rate on the wire) into the net layer's
/// fault taxonomy, so callers only ever catch ProtocolError.
template <typename Fn>
auto guarded(Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const store::CorruptionError& e) {
    throw ProtocolError(WireFault::kMalformedPayload, e.what());
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(WireFault::kMalformedPayload, e.what());
  }
}

/// Rejects a count field that promises more elements than the payload
/// could possibly hold, before any allocation sized by it.
void checkCount(const Cursor& cursor, std::uint32_t count,
                std::size_t minBytesPerElement) {
  if (static_cast<std::uint64_t>(count) * minBytesPerElement >
      cursor.remaining())
    throw ProtocolError(WireFault::kMalformedPayload,
                        "count field " + std::to_string(count) +
                            " exceeds payload capacity");
}

void putString(std::string& out, std::string_view s) {
  putU32(out, util::checkedU32(s.size(), "string length"));
  out.append(s.data(), s.size());
}

std::string readString(Cursor& cursor) {
  const std::uint32_t n = cursor.readU32();
  checkCount(cursor, n, 1);
  std::string s(n, '\0');
  if (n > 0) cursor.readBytes(s.data(), n);
  return s;
}

void putScan(std::string& out, const WireScan& s) {
  putU64(out, s.sessionId);
  const auto values = s.scan.values();
  putU32(out, util::checkedU32(values.size(), "scan RSS count"));
  for (const double v : values) putF64(out, v);
  putF64(out, s.imu.sampleRateHz());
  const auto samples = s.imu.samples();
  putU32(out, util::checkedU32(samples.size(), "IMU sample count"));
  for (const auto& sample : samples) {
    putF64(out, sample.t);
    putF64(out, sample.accelMagnitude);
    putF64(out, sample.compassDeg);
    putF64(out, sample.gyroRateDegPerSec);
  }
}

WireScan readScan(Cursor& cursor) {
  WireScan s;
  s.sessionId = cursor.readU64();
  const std::uint32_t apCount = cursor.readU32();
  checkCount(cursor, apCount, 8);
  std::vector<double> rss;
  rss.reserve(apCount);
  for (std::uint32_t i = 0; i < apCount; ++i) rss.push_back(cursor.readF64());
  s.scan = radio::Fingerprint(std::move(rss));
  const double rateHz = cursor.readF64();
  s.imu = sensors::ImuTrace(rateHz);
  const std::uint32_t sampleCount = cursor.readU32();
  checkCount(cursor, sampleCount, 32);
  for (std::uint32_t i = 0; i < sampleCount; ++i) {
    sensors::ImuSample sample;
    sample.t = cursor.readF64();
    sample.accelMagnitude = cursor.readF64();
    sample.compassDeg = cursor.readF64();
    sample.gyroRateDegPerSec = cursor.readF64();
    s.imu.append(sample);
  }
  return s;
}

void putEstimate(std::string& out, const core::LocationEstimate& e) {
  putI32(out, e.location);
  putF64(out, e.probability);
  putU32(out, util::checkedU32(e.candidates.size(), "candidate count"));
  for (const auto& c : e.candidates) {
    putI32(out, c.location);
    putF64(out, c.probability);
  }
}

core::LocationEstimate readEstimate(Cursor& cursor) {
  core::LocationEstimate e;
  e.location = cursor.readI32();
  e.probability = cursor.readF64();
  const std::uint32_t k = cursor.readU32();
  checkCount(cursor, k, 12);
  e.candidates.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    core::WeightedCandidate c;
    c.location = cursor.readI32();
    c.probability = cursor.readF64();
    e.candidates.push_back(c);
  }
  return e;
}

Status readStatus(Cursor& cursor) {
  const std::uint8_t raw = cursor.readU8();
  if (raw > static_cast<std::uint8_t>(Status::kInternalError))
    throw ProtocolError(WireFault::kMalformedPayload,
                        "unknown status byte " + std::to_string(raw));
  return static_cast<Status>(raw);
}

/// Shared response prologue: echoed tag + status, then the error
/// message when the status is not kOk.  Returns whether a kOk body
/// follows.
bool putResponseHead(std::string& out, std::uint64_t tag, Status status,
                     std::string_view message) {
  putU64(out, tag);
  putU8(out, static_cast<std::uint8_t>(status));
  if (status == Status::kOk) return true;
  putString(out, message);
  return false;
}

/// The payload was fully consumed; trailing garbage is damage.
void expectEnd(const Cursor& cursor) {
  if (cursor.remaining() != 0)
    throw ProtocolError(WireFault::kMalformedPayload,
                        std::to_string(cursor.remaining()) +
                            " trailing bytes after message body");
}

}  // namespace

bool isKnownMsgType(std::uint8_t raw) {
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kLocalize:
    case MsgType::kLocalizeBatch:
    case MsgType::kReportObservation:
    case MsgType::kFlush:
    case MsgType::kStats:
    case MsgType::kLocalizeResponse:
    case MsgType::kLocalizeBatchResponse:
    case MsgType::kReportObservationResponse:
    case MsgType::kFlushResponse:
    case MsgType::kStatsResponse:
      return true;
  }
  return false;
}

std::string encodeFrame(MsgType type, std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes)
    throw ProtocolError(WireFault::kOversizedPayload,
                        "payload of " + std::to_string(payload.size()) +
                            " bytes exceeds the frame bound");
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size() + kTrailerBytes);
  putU32(frame, kMagic);
  putU8(frame, kWireVersion);
  putU8(frame, static_cast<std::uint8_t>(type));
  putU8(frame, 0);
  putU8(frame, 0);
  putU32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload.data(), payload.size());
  // The CRC covers version..payload: the magic is the resync anchor,
  // everything after it is integrity-checked (same split as the WAL's
  // length-outside / body-inside framing).
  const std::uint32_t crc =
      store::crc32c(frame.data() + 4, frame.size() - 4);
  putU32(frame, crc);
  return frame;
}

void FrameAssembler::feed(const char* data, std::size_t size) {
  // Reclaim consumed prefix before growing, so a long-lived connection
  // never accumulates dead bytes.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

bool FrameAssembler::next(Frame& out) {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return false;
  Cursor header(buffer_.data() + consumed_, kHeaderBytes);
  const std::uint32_t magic = header.readU32();
  if (magic != kMagic)
    throw ProtocolError(WireFault::kBadMagic, "bad frame magic");
  const std::uint8_t version = header.readU8();
  if (version != kWireVersion)
    throw ProtocolError(WireFault::kBadVersion,
                        "unsupported wire version " +
                            std::to_string(version));
  const std::uint8_t rawType = header.readU8();
  if (!isKnownMsgType(rawType))
    throw ProtocolError(WireFault::kBadType, "unknown message type " +
                                                 std::to_string(rawType));
  // The spec reserves these two bytes as zero; enforcing that here
  // keeps any future use of them unambiguous (a v1 sender can never
  // have put meaning into them).
  if (header.readU8() != 0 || header.readU8() != 0)
    throw ProtocolError(WireFault::kMalformedPayload,
                        "nonzero reserved header bytes");
  const std::uint32_t payloadLen = header.readU32();
  if (payloadLen > kMaxPayloadBytes)
    throw ProtocolError(WireFault::kOversizedPayload,
                        "frame payload length " +
                            std::to_string(payloadLen) +
                            " exceeds the frame bound");
  const std::size_t frameBytes =
      kHeaderBytes + static_cast<std::size_t>(payloadLen) + kTrailerBytes;
  if (available < frameBytes) return false;
  const char* frame = buffer_.data() + consumed_;
  const std::uint32_t expected =
      store::crc32c(frame + 4, kHeaderBytes - 4 + payloadLen);
  Cursor trailer(frame + kHeaderBytes + payloadLen, kTrailerBytes);
  if (trailer.readU32() != expected)
    throw ProtocolError(WireFault::kBadCrc, "frame CRC mismatch");
  out.type = static_cast<MsgType>(rawType);
  out.payload.assign(frame + kHeaderBytes, payloadLen);
  consumed_ += frameBytes;
  return true;
}

// ---- Requests ---------------------------------------------------------

std::string encodeLocalizeRequest(const LocalizeRequest& msg) {
  std::string payload;
  putU64(payload, msg.tag);
  putScan(payload, msg.scan);
  return encodeFrame(MsgType::kLocalize, payload);
}

LocalizeRequest decodeLocalizeRequest(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    LocalizeRequest msg;
    msg.tag = cursor.readU64();
    msg.scan = readScan(cursor);
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeLocalizeBatchRequest(const LocalizeBatchRequest& msg) {
  std::string payload;
  putU64(payload, msg.tag);
  putU32(payload, util::checkedU32(msg.scans.size(), "batch scan count"));
  for (const auto& scan : msg.scans) putScan(payload, scan);
  return encodeFrame(MsgType::kLocalizeBatch, payload);
}

LocalizeBatchRequest decodeLocalizeBatchRequest(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    LocalizeBatchRequest msg;
    msg.tag = cursor.readU64();
    const std::uint32_t count = cursor.readU32();
    checkCount(cursor, count, 24);
    msg.scans.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
      msg.scans.push_back(readScan(cursor));
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeReportObservationRequest(
    const ReportObservationRequest& msg) {
  std::string payload;
  putU64(payload, msg.tag);
  putI32(payload, msg.start);
  putI32(payload, msg.end);
  putF64(payload, msg.directionDeg);
  putF64(payload, msg.offsetMeters);
  return encodeFrame(MsgType::kReportObservation, payload);
}

ReportObservationRequest decodeReportObservationRequest(
    std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    ReportObservationRequest msg;
    msg.tag = cursor.readU64();
    msg.start = cursor.readI32();
    msg.end = cursor.readI32();
    msg.directionDeg = cursor.readF64();
    msg.offsetMeters = cursor.readF64();
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeFlushRequest(const FlushRequest& msg) {
  std::string payload;
  putU64(payload, msg.tag);
  return encodeFrame(MsgType::kFlush, payload);
}

FlushRequest decodeFlushRequest(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    FlushRequest msg;
    msg.tag = cursor.readU64();
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeStatsRequest(const StatsRequest& msg) {
  std::string payload;
  putU64(payload, msg.tag);
  return encodeFrame(MsgType::kStats, payload);
}

StatsRequest decodeStatsRequest(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    StatsRequest msg;
    msg.tag = cursor.readU64();
    expectEnd(cursor);
    return msg;
  });
}

// ---- Responses --------------------------------------------------------

std::string encodeLocalizeResponse(const LocalizeResponse& msg) {
  std::string payload;
  if (putResponseHead(payload, msg.tag, msg.status, msg.message))
    putEstimate(payload, msg.estimate);
  return encodeFrame(MsgType::kLocalizeResponse, payload);
}

LocalizeResponse decodeLocalizeResponse(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    LocalizeResponse msg;
    msg.tag = cursor.readU64();
    msg.status = readStatus(cursor);
    if (msg.status == Status::kOk)
      msg.estimate = readEstimate(cursor);
    else
      msg.message = readString(cursor);
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeLocalizeBatchResponse(const LocalizeBatchResponse& msg) {
  std::string payload;
  if (putResponseHead(payload, msg.tag, msg.status, msg.message)) {
    putU32(payload,
           util::checkedU32(msg.estimates.size(), "batch estimate count"));
    for (const auto& e : msg.estimates) putEstimate(payload, e);
  }
  return encodeFrame(MsgType::kLocalizeBatchResponse, payload);
}

LocalizeBatchResponse decodeLocalizeBatchResponse(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    LocalizeBatchResponse msg;
    msg.tag = cursor.readU64();
    msg.status = readStatus(cursor);
    if (msg.status == Status::kOk) {
      const std::uint32_t count = cursor.readU32();
      checkCount(cursor, count, 16);
      msg.estimates.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i)
        msg.estimates.push_back(readEstimate(cursor));
    } else {
      msg.message = readString(cursor);
    }
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeReportObservationResponse(
    const ReportObservationResponse& msg) {
  std::string payload;
  if (putResponseHead(payload, msg.tag, msg.status, msg.message))
    putU8(payload, msg.accepted ? 1 : 0);
  return encodeFrame(MsgType::kReportObservationResponse, payload);
}

ReportObservationResponse decodeReportObservationResponse(
    std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    ReportObservationResponse msg;
    msg.tag = cursor.readU64();
    msg.status = readStatus(cursor);
    if (msg.status == Status::kOk)
      msg.accepted = cursor.readU8() != 0;
    else
      msg.message = readString(cursor);
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeFlushResponse(const FlushResponse& msg) {
  std::string payload;
  putResponseHead(payload, msg.tag, msg.status, msg.message);
  return encodeFrame(MsgType::kFlushResponse, payload);
}

FlushResponse decodeFlushResponse(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    FlushResponse msg;
    msg.tag = cursor.readU64();
    msg.status = readStatus(cursor);
    if (msg.status != Status::kOk) msg.message = readString(cursor);
    expectEnd(cursor);
    return msg;
  });
}

std::string encodeStatsResponse(const StatsResponse& msg) {
  std::string payload;
  if (putResponseHead(payload, msg.tag, msg.status, msg.message)) {
    putU64(payload, msg.stats.sessions);
    putU64(payload, msg.stats.worldGeneration);
    putU64(payload, msg.stats.intakeApplied);
    putU64(payload, msg.stats.requestsServed);
    putU64(payload, msg.stats.connectionsAccepted);
    putU64(payload, msg.stats.cleanDisconnects);
    putU64(payload, msg.stats.overloadRejections);
    putU64(payload, msg.stats.protocolErrors);
  }
  return encodeFrame(MsgType::kStatsResponse, payload);
}

StatsResponse decodeStatsResponse(std::string_view payload) {
  return guarded([&] {
    Cursor cursor(payload.data(), payload.size());
    StatsResponse msg;
    msg.tag = cursor.readU64();
    msg.status = readStatus(cursor);
    if (msg.status == Status::kOk) {
      msg.stats.sessions = cursor.readU64();
      msg.stats.worldGeneration = cursor.readU64();
      msg.stats.intakeApplied = cursor.readU64();
      msg.stats.requestsServed = cursor.readU64();
      msg.stats.connectionsAccepted = cursor.readU64();
      msg.stats.cleanDisconnects = cursor.readU64();
      msg.stats.overloadRejections = cursor.readU64();
      msg.stats.protocolErrors = cursor.readU64();
    } else {
      msg.message = readString(cursor);
    }
    expectEnd(cursor);
    return msg;
  });
}

}  // namespace moloc::net
