#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/moloc_engine.hpp"
#include "radio/fingerprint.hpp"
#include "sensors/imu_trace.hpp"

namespace moloc::net {

/// The molocd binary wire protocol: a stream of length-prefixed,
/// CRC32C-checksummed frames, reusing the little-endian primitives and
/// framing discipline of the WAL (src/store/wal.cpp).
///
/// Frame layout (all integers little-endian):
///
///   offset  size  field
///   ------  ----  -----------------------------------------------
///        0     4  magic        "MLOC" (0x434F4C4D)
///        4     1  version      kWireVersion
///        5     1  type         MsgType
///        6     2  reserved     must be 0 (receivers reject nonzero)
///        8     4  payload len  <= kMaxPayloadBytes
///       12     n  payload      message body (see below)
///   12 + n     4  crc32c       over bytes [4, 12 + n) — everything
///                              after the magic
///
/// Responses echo the request's 64-bit tag, so a client may pipeline
/// any number of requests per connection and match replies by tag
/// (the server answers in request order regardless).

inline constexpr std::uint32_t kMagic = 0x434F4C4Du;  // "MLOC" on the wire
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
inline constexpr std::size_t kTrailerBytes = 4;
/// Sanity bound on one frame's payload; a longer length field is
/// protocol damage, not a large message (a full LocalizeBatch of 64
/// walking-trace scans is ~300 KiB).
inline constexpr std::size_t kMaxPayloadBytes = 1u << 20;

/// Message discriminator.  Responses are the request type | 0x80.
enum class MsgType : std::uint8_t {
  kLocalize = 1,
  kLocalizeBatch = 2,
  kReportObservation = 3,
  kFlush = 4,
  kStats = 5,
  kLocalizeResponse = 0x81,
  kLocalizeBatchResponse = 0x82,
  kReportObservationResponse = 0x83,
  kFlushResponse = 0x84,
  kStatsResponse = 0x85,
};

/// Whether `raw` names a defined MsgType.
bool isKnownMsgType(std::uint8_t raw);

/// Per-response status.  kOverloaded maps service::BackpressureError —
/// the connection stays up and the client may retry after backoff;
/// kShuttingDown maps service::ShutdownError during drain.
enum class Status : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,
  kBadRequest = 2,
  kShuttingDown = 3,
  kInternalError = 4,
};

/// What exactly a malformed frame got wrong; decoding never crashes or
/// over-reads — every damage mode surfaces as one of these.
enum class WireFault : std::uint8_t {
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversizedPayload,
  kBadCrc,
  kMalformedPayload,
};

/// A frame or payload that violates the protocol.  The server answers
/// the peer with kBadRequest where possible and counts it; it never
/// tears the process down.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(WireFault fault, const std::string& what)
      : std::runtime_error("moloc::net: " + what), fault_(fault) {}
  WireFault fault() const { return fault_; }

 private:
  WireFault fault_;
};

/// One decoded frame: the validated type plus its raw payload bytes.
struct Frame {
  MsgType type = MsgType::kLocalize;
  std::string payload;
};

/// Incremental frame decoder for one connection's byte stream.  Feed
/// whatever the socket produced; next() yields complete frames in
/// order.  The header is validated as soon as its 12 bytes are
/// available (bad magic/version/type/length fail fast, before the
/// payload arrives); the CRC is checked once the full frame is
/// buffered.  After a ProtocolError the stream is unsynchronized and
/// the connection must be dropped.
class FrameAssembler {
 public:
  void feed(const char* data, std::size_t size);
  /// True when a complete, CRC-valid frame was moved into `out`.
  /// Throws ProtocolError on any malformed input.
  bool next(Frame& out);
  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Encodes a complete frame (header + payload + CRC trailer) around an
/// already-encoded payload.
std::string encodeFrame(MsgType type, std::string_view payload);

// ---- Request messages -------------------------------------------------

/// One scan for one session (mirrors service::ScanRequest).
struct WireScan {
  std::uint64_t sessionId = 0;
  radio::Fingerprint scan;
  sensors::ImuTrace imu;
};

struct LocalizeRequest {
  std::uint64_t tag = 0;
  WireScan scan;
};

struct LocalizeBatchRequest {
  std::uint64_t tag = 0;
  std::vector<WireScan> scans;
};

struct ReportObservationRequest {
  std::uint64_t tag = 0;
  std::int32_t start = 0;
  std::int32_t end = 0;
  double directionDeg = 0.0;
  double offsetMeters = 0.0;
};

struct FlushRequest {
  std::uint64_t tag = 0;
};

struct StatsRequest {
  std::uint64_t tag = 0;
};

std::string encodeLocalizeRequest(const LocalizeRequest& msg);
std::string encodeLocalizeBatchRequest(const LocalizeBatchRequest& msg);
std::string encodeReportObservationRequest(
    const ReportObservationRequest& msg);
std::string encodeFlushRequest(const FlushRequest& msg);
std::string encodeStatsRequest(const StatsRequest& msg);

LocalizeRequest decodeLocalizeRequest(std::string_view payload);
LocalizeBatchRequest decodeLocalizeBatchRequest(std::string_view payload);
ReportObservationRequest decodeReportObservationRequest(
    std::string_view payload);
FlushRequest decodeFlushRequest(std::string_view payload);
StatsRequest decodeStatsRequest(std::string_view payload);

// ---- Response messages ------------------------------------------------
//
// Every response starts with the echoed tag and a Status byte.  On
// kOk the typed body follows; on any other status a UTF-8 error
// message (u32 length + bytes) follows instead.

struct LocalizeResponse {
  std::uint64_t tag = 0;
  Status status = Status::kOk;
  core::LocationEstimate estimate;
  std::string message;
};

struct LocalizeBatchResponse {
  std::uint64_t tag = 0;
  Status status = Status::kOk;
  std::vector<core::LocationEstimate> estimates;
  std::string message;
};

struct ReportObservationResponse {
  std::uint64_t tag = 0;
  Status status = Status::kOk;
  /// The sanitation verdict (false = rejected by validation, with
  /// status still kOk — rejection is a normal answer, not an error).
  bool accepted = false;
  std::string message;
};

struct FlushResponse {
  std::uint64_t tag = 0;
  Status status = Status::kOk;
  std::string message;
};

/// Server-side counters for StatsResponse.
struct ServerStats {
  std::uint64_t sessions = 0;
  std::uint64_t worldGeneration = 0;
  std::uint64_t intakeApplied = 0;
  std::uint64_t requestsServed = 0;
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t cleanDisconnects = 0;
  std::uint64_t overloadRejections = 0;
  std::uint64_t protocolErrors = 0;
};

struct StatsResponse {
  std::uint64_t tag = 0;
  Status status = Status::kOk;
  ServerStats stats;
  std::string message;
};

std::string encodeLocalizeResponse(const LocalizeResponse& msg);
std::string encodeLocalizeBatchResponse(const LocalizeBatchResponse& msg);
std::string encodeReportObservationResponse(
    const ReportObservationResponse& msg);
std::string encodeFlushResponse(const FlushResponse& msg);
std::string encodeStatsResponse(const StatsResponse& msg);

LocalizeResponse decodeLocalizeResponse(std::string_view payload);
LocalizeBatchResponse decodeLocalizeBatchResponse(std::string_view payload);
ReportObservationResponse decodeReportObservationResponse(
    std::string_view payload);
FlushResponse decodeFlushResponse(std::string_view payload);
StatsResponse decodeStatsResponse(std::string_view payload);

}  // namespace moloc::net
