#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

/// MOLOC_METRICS_ENABLED gates the *instrumentation call sites* in the
/// serving stack (service, pool, engine, intake).  The instruments and
/// the registry below always compile — only the hooks in hot paths are
/// removed when the build sets -DMOLOC_METRICS=OFF.
#ifndef MOLOC_METRICS_ENABLED
#define MOLOC_METRICS_ENABLED 1
#endif

namespace moloc::obs {

/// Key/value pairs identifying one series within a metric family.
/// The registry sorts them by key, so {{"a","1"},{"b","2"}} and
/// {{"b","2"},{"a","1"}} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {

/// Stable small index for the calling thread, used to pick a stripe so
/// concurrent writers rarely share a cache line.
std::size_t threadStripe();

/// Raw monotonic tick count for scope timing: the TSC on x86 (a few ns
/// per read, vs tens of ns for steady_clock — the difference is what
/// keeps full instrumentation under the serving QPS budget), falling
/// back to steady_clock nanoseconds elsewhere.  Convert deltas with
/// ticksToSeconds(); ticks from different machines or a reboot are not
/// comparable.
inline std::uint64_t ticksNow() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Seconds per tick, calibrated against steady_clock once per process
/// (first call spins ~1 ms; Histogram registration triggers it so the
/// cost lands at setup time, not in the first timed scope).
double secondsPerTick();

inline double ticksToSeconds(std::uint64_t startTicks,
                             std::uint64_t endTicks) {
  // A migration across cores with unsynchronized TSCs can step time
  // backwards; clamp rather than observe a wrapped-around huge value.
  if (endTicks <= startTicks) return 0.0;
  return static_cast<double>(endTicks - startTicks) * secondsPerTick();
}

/// One cache-line-isolated atomic accumulator (CAS add; doubles stay
/// exact for integer-valued totals below 2^53).  `units` shares the
/// cache line and gives unit increments a plain fetch_add — roughly
/// half the cost of the CAS loop — so event counting stays cheap.
struct alignas(64) DoubleCell {
  std::atomic<double> value{0.0};
  std::atomic<std::uint64_t> units{0};

  void add(double delta) {
    double current = value.load(std::memory_order_relaxed);
    while (!value.compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
    }
  }

  double total() const {
    return value.load(std::memory_order_relaxed) +
           static_cast<double>(units.load(std::memory_order_relaxed));
  }
};

}  // namespace detail

/// A monotonically increasing value (events, rejected samples, busy
/// seconds).  Increments go to one of several cache-line-isolated
/// stripes chosen by thread, so the hot path is a single relaxed CAS
/// with essentially no cross-thread contention; value() sums stripes.
class Counter {
 public:
  /// Adds `delta`.  Negative deltas are ignored (counters only go up),
  /// as are non-finite ones (a single NaN would otherwise poison the
  /// total forever).  Unit increments — the dominant case on the scan
  /// hot path — take the integer fetch_add fast path.
  void inc(double delta = 1.0) {
    if (delta == 1.0) {
      stripes_[detail::threadStripe() % kStripes].units.fetch_add(
          1, std::memory_order_relaxed);
      return;
    }
    if (!(delta >= 0.0) || !std::isfinite(delta)) return;
    stripes_[detail::threadStripe() % kStripes].add(delta);
  }

  double value() const {
    double total = 0.0;
    for (const auto& stripe : stripes_) total += stripe.total();
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  detail::DoubleCell stripes_[kStripes];
};

/// A value that can go up and down (queue depth, active sessions).
/// set() is a relaxed store; inc()/dec() are relaxed CAS adds, so
/// concurrent deltas never lose updates.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void inc(double delta = 1.0) { add(delta); }
  void dec(double delta = 1.0) { add(-delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram (Prometheus-style cumulative `le` buckets).
///
/// observe() resolves the bucket with one binary search and then does
/// two relaxed atomic updates on a thread-chosen stripe — no locks on
/// the hot path.  Readers (count/sum/bucketCounts/quantile) sum the
/// stripes; snapshots are approximate under concurrent writes but
/// exact once writers are quiesced (e.g. after joining them).
class Histogram {
 public:
  /// `upperBounds` are the inclusive bucket upper bounds; they must be
  /// non-empty, finite, and strictly increasing (throws
  /// std::invalid_argument).  An overflow (+Inf) bucket is implicit.
  explicit Histogram(std::vector<double> upperBounds);

  /// Records one observation.  Non-finite values are ignored (they
  /// would otherwise poison the sum).
  void observe(double v);

  std::uint64_t count() const;
  double sum() const;
  const std::vector<double>& upperBounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts; the last element is the
  /// overflow bucket.
  std::vector<std::uint64_t> bucketCounts() const;

  /// Quantile estimate (q in [0, 1]) by linear interpolation inside
  /// the bucket holding the target rank, assuming non-negative
  /// observations (the first bucket interpolates from 0).  Returns 0
  /// when empty; ranks landing in the overflow bucket clamp to the
  /// largest finite bound.
  double quantile(double q) const;

  /// `count` bounds starting at `start`, each `factor` times the
  /// previous (start > 0, factor > 1, count >= 1; throws otherwise).
  static std::vector<double> exponentialBuckets(double start, double factor,
                                                std::size_t count);

  /// `count` bounds starting at `start`, each `width` apart
  /// (width > 0, count >= 1; throws otherwise).
  static std::vector<double> linearBuckets(double start, double width,
                                           std::size_t count);

 private:
  static constexpr std::size_t kStripes = 4;

  struct Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    detail::DoubleCell sum;
  };

  std::vector<double> bounds_;
  Stripe stripes_[kStripes];
};

/// RAII wall-clock timer: records the elapsed seconds into a histogram
/// when it goes out of scope.  A null sink makes it a no-op, so call
/// sites do not need their own null checks.  Timing uses the tick
/// clock (detail::ticksNow), not steady_clock — two orders of
/// magnitude cheaper per read on x86.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* sink)
      : sink_(sink), startTicks_(detail::ticksNow()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (sink_) sink_->observe(elapsedSeconds());
  }

  /// Records now instead of at scope exit; returns the elapsed seconds.
  double stop() {
    const double elapsed = elapsedSeconds();
    if (sink_) sink_->observe(elapsed);
    sink_ = nullptr;
    return elapsed;
  }

 private:
  double elapsedSeconds() const {
    return detail::ticksToSeconds(startTicks_, detail::ticksNow());
  }

  Histogram* sink_;
  std::uint64_t startTicks_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time copy of one histogram's state.
struct HistogramData {
  std::vector<double> upperBounds;
  std::vector<std::uint64_t> bucketCounts;  ///< Last = overflow.
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Point-in-time copy of one labeled series.
struct SeriesSnapshot {
  Labels labels;
  double value = 0.0;       ///< Counter/gauge value.
  HistogramData histogram;  ///< Populated for histogram families.
};

/// Point-in-time copy of one metric family (one name, many label sets).
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<SeriesSnapshot> series;
};

/// Process-wide metric directory with labeled lookup.
///
/// counter()/gauge()/histogram() are get-or-create: the first call for
/// a (name, labels) pair registers the series, later calls return the
/// same instance, so components can look instruments up independently
/// and share them.  Returned references stay valid for the registry's
/// lifetime (instruments are never removed).  Registration takes a
/// mutex; the returned instruments themselves are lock-free, so hold
/// the reference rather than re-looking it up per event.
///
/// Names must match [a-zA-Z_:][a-zA-Z0-9_:]* and label names
/// [a-zA-Z_][a-zA-Z0-9_]* (Prometheus rules); re-registering a name as
/// a different kind throws std::invalid_argument.  A histogram
/// family's buckets are fixed by its first registration.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upperBounds,
                       const Labels& labels = {});

  /// Existing series, or nullptr when the family or label set is
  /// absent (also nullptr when the name is registered as another
  /// kind).  Unlike the getters above these never create.
  Counter* findCounter(const std::string& name, const Labels& labels = {});
  Gauge* findGauge(const std::string& name, const Labels& labels = {});
  Histogram* findHistogram(const std::string& name,
                           const Labels& labels = {});

  /// Families sorted by name, each with its series sorted by labels.
  std::vector<FamilySnapshot> snapshot() const;

  /// The default process-wide registry (what ServiceConfig points at
  /// unless a caller injects its own).
  static MetricsRegistry& global();

 private:
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::vector<double> bounds;  ///< Histogram families only.
    std::map<Labels, std::unique_ptr<Counter>> counters;
    std::map<Labels, std::unique_ptr<Gauge>> gauges;
    std::map<Labels, std::unique_ptr<Histogram>> histograms;
  };

  Family& family(const std::string& name, const std::string& help,
                 MetricKind kind) MOLOC_REQUIRES(mu_);

  mutable util::Mutex mu_;
  std::map<std::string, Family> families_ MOLOC_GUARDED_BY(mu_);
};

}  // namespace moloc::obs
