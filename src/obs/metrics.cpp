#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::obs {

namespace detail {

std::size_t threadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed);
  return stripe;
}

double secondsPerTick() {
#if defined(__x86_64__) || defined(__i386__)
  // Calibrate the TSC rate against steady_clock once per process.  A
  // ~1 ms window bounds the relative error around 1e-4 — far below
  // the resolution of any histogram bucket fed by this clock.
  static const double rate = [] {
    const auto wall0 = std::chrono::steady_clock::now();
    const std::uint64_t tick0 = ticksNow();
    for (;;) {
      const auto wall1 = std::chrono::steady_clock::now();
      const std::uint64_t tick1 = ticksNow();
      const double elapsed =
          std::chrono::duration<double>(wall1 - wall0).count();
      if (elapsed >= 1e-3 && tick1 > tick0)
        return elapsed / static_cast<double>(tick1 - tick0);
    }
  }();
  return rate;
#else
  // ticksNow() already returns steady_clock duration counts.
  using Period = std::chrono::steady_clock::period;
  return static_cast<double>(Period::num) /
         static_cast<double>(Period::den);
#endif
}

}  // namespace detail

Histogram::Histogram(std::vector<double> upperBounds)
    : bounds_(std::move(upperBounds)) {
  if (bounds_.empty())
    throw util::ConfigError("Histogram: at least one bucket bound");
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i]))
      throw util::ConfigError("Histogram: bounds must be finite");
    if (i > 0 && bounds_[i] <= bounds_[i - 1])
      throw util::ConfigError(
          "Histogram: bounds must be strictly increasing");
  }
  const std::size_t cells = bounds_.size() + 1;  // + overflow.
  for (auto& stripe : stripes_)
    stripe.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(cells);
  // Histograms are what ScopedTimer feeds; forcing tick-clock
  // calibration here moves its one-time ~1 ms spin to registration
  // instead of the first timed scope.
  (void)detail::secondsPerTick();
}

void Histogram::observe(double v) {
  if (!std::isfinite(v)) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  auto& stripe = stripes_[detail::threadStripe() % kStripes];
  stripe.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  stripe.sum.add(v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  const std::size_t cells = bounds_.size() + 1;
  for (const auto& stripe : stripes_)
    for (std::size_t b = 0; b < cells; ++b)
      total += stripe.buckets[b].load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& stripe : stripes_)
    total += stripe.sum.value.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::uint64_t> Histogram::bucketCounts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const auto& stripe : stripes_)
    for (std::size_t b = 0; b < counts.size(); ++b)
      counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
  return counts;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto counts = bucketCounts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double inBucket = static_cast<double>(counts[b]);
    if (cumulative + inBucket < rank) {
      cumulative += inBucket;
      continue;
    }
    if (b == counts.size() - 1) break;  // Overflow: clamp below.
    const double lower = b == 0 ? 0.0 : bounds_[b - 1];
    const double upper = bounds_[b];
    if (inBucket <= 0.0) return upper;
    const double fraction = (rank - cumulative) / inBucket;
    return lower + fraction * (upper - lower);
  }
  return bounds_.back();
}

std::vector<double> Histogram::exponentialBuckets(double start,
                                                  double factor,
                                                  std::size_t count) {
  if (!(start > 0.0) || !(factor > 1.0) || count == 0)
    throw util::ConfigError(
        "exponentialBuckets: need start > 0, factor > 1, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::linearBuckets(double start, double width,
                                             std::size_t count) {
  if (!(width > 0.0) || count == 0)
    throw util::ConfigError(
        "linearBuckets: need width > 0, count >= 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    bounds.push_back(start + width * static_cast<double>(i));
  return bounds;
}

namespace {

bool validMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) return false;
  for (const char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool validLabelName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name.front())) return false;
  for (const char c : name)
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

obs::Labels normalizeLabels(const obs::Labels& labels) {
  obs::Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (!validLabelName(sorted[i].first))
      throw util::ConfigError("MetricsRegistry: bad label name '" +
                                  sorted[i].first + "'");
    if (i > 0 && sorted[i].first == sorted[i - 1].first)
      throw util::ConfigError(
          "MetricsRegistry: duplicate label name '" + sorted[i].first +
          "'");
  }
  return sorted;
}

const char* kindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                 const std::string& help,
                                                 MetricKind kind) {
  if (!validMetricName(name))
    throw util::ConfigError("MetricsRegistry: bad metric name '" +
                                name + "'");
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else if (it->second.kind != kind) {
    throw util::ConfigError(
        "MetricsRegistry: '" + name + "' already registered as " +
        kindName(it->second.kind) + ", requested as " + kindName(kind));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  const Labels key = normalizeLabels(labels);
  const util::MutexLock lock(mu_);
  auto& fam = family(name, help, MetricKind::kCounter);
  auto [it, inserted] = fam.counters.try_emplace(key);
  if (inserted) it->second = std::make_unique<Counter>();
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help,
                              const Labels& labels) {
  const Labels key = normalizeLabels(labels);
  const util::MutexLock lock(mu_);
  auto& fam = family(name, help, MetricKind::kGauge);
  auto [it, inserted] = fam.gauges.try_emplace(key);
  if (inserted) it->second = std::make_unique<Gauge>();
  return *it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upperBounds,
                                      const Labels& labels) {
  const Labels key = normalizeLabels(labels);
  const util::MutexLock lock(mu_);
  auto& fam = family(name, help, MetricKind::kHistogram);
  if (fam.bounds.empty()) {
    // First registration fixes the family's buckets; Histogram's own
    // constructor validates them below.
    fam.bounds = upperBounds;
  }
  auto [it, inserted] = fam.histograms.try_emplace(key);
  if (inserted) it->second = std::make_unique<Histogram>(fam.bounds);
  return *it->second;
}

Counter* MetricsRegistry::findCounter(const std::string& name,
                                      const Labels& labels) {
  const Labels key = normalizeLabels(labels);
  const util::MutexLock lock(mu_);
  const auto fam = families_.find(name);
  if (fam == families_.end()) return nullptr;
  const auto it = fam->second.counters.find(key);
  return it == fam->second.counters.end() ? nullptr : it->second.get();
}

Gauge* MetricsRegistry::findGauge(const std::string& name,
                                  const Labels& labels) {
  const Labels key = normalizeLabels(labels);
  const util::MutexLock lock(mu_);
  const auto fam = families_.find(name);
  if (fam == families_.end()) return nullptr;
  const auto it = fam->second.gauges.find(key);
  return it == fam->second.gauges.end() ? nullptr : it->second.get();
}

Histogram* MetricsRegistry::findHistogram(const std::string& name,
                                          const Labels& labels) {
  const Labels key = normalizeLabels(labels);
  const util::MutexLock lock(mu_);
  const auto fam = families_.find(name);
  if (fam == families_.end()) return nullptr;
  const auto it = fam->second.histograms.find(key);
  return it == fam->second.histograms.end() ? nullptr
                                            : it->second.get();
}

std::vector<FamilySnapshot> MetricsRegistry::snapshot() const {
  const util::MutexLock lock(mu_);
  std::vector<FamilySnapshot> families;
  families.reserve(families_.size());
  for (const auto& [name, fam] : families_) {
    FamilySnapshot out;
    out.name = name;
    out.help = fam.help;
    out.kind = fam.kind;
    for (const auto& [labels, counter] : fam.counters) {
      SeriesSnapshot series;
      series.labels = labels;
      series.value = counter->value();
      out.series.push_back(std::move(series));
    }
    for (const auto& [labels, gauge] : fam.gauges) {
      SeriesSnapshot series;
      series.labels = labels;
      series.value = gauge->value();
      out.series.push_back(std::move(series));
    }
    for (const auto& [labels, hist] : fam.histograms) {
      SeriesSnapshot series;
      series.labels = labels;
      series.histogram.upperBounds = hist->upperBounds();
      series.histogram.bucketCounts = hist->bucketCounts();
      for (const auto c : series.histogram.bucketCounts)
        series.histogram.count += c;
      series.histogram.sum = hist->sum();
      out.series.push_back(std::move(series));
    }
    families.push_back(std::move(out));
  }
  return families;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace moloc::obs
