#include "obs/prometheus.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::obs {

namespace {

/// Label values may contain anything; the format requires escaping
/// backslash, double-quote, and newline.
std::string escapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string formatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// `{a="1",b="2"}`, with `extra` appended last (used for `le`); empty
/// string when there are no labels at all.
std::string labelBlock(const Labels& labels, const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + escapeLabelValue(value) + "\"";
  }
  if (!extra.empty()) {
    if (!first) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

const char* typeName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string renderPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& family : registry.snapshot()) {
    if (!family.help.empty())
      out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " +
           typeName(family.kind) + "\n";
    for (const auto& series : family.series) {
      if (family.kind != MetricKind::kHistogram) {
        out += family.name + labelBlock(series.labels, "") + " " +
               formatValue(series.value) + "\n";
        continue;
      }
      const auto& hist = series.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < hist.upperBounds.size(); ++b) {
        cumulative += hist.bucketCounts[b];
        out += family.name + "_bucket" +
               labelBlock(series.labels,
                          "le=\"" + formatValue(hist.upperBounds[b]) +
                              "\"") +
               " " + std::to_string(cumulative) + "\n";
      }
      out += family.name + "_bucket" +
             labelBlock(series.labels, "le=\"+Inf\"") + " " +
             std::to_string(hist.count) + "\n";
      out += family.name + "_sum" + labelBlock(series.labels, "") + " " +
             formatValue(hist.sum) + "\n";
      out += family.name + "_count" + labelBlock(series.labels, "") +
             " " + std::to_string(hist.count) + "\n";
    }
  }
  return out;
}

void writePrometheusFile(const MetricsRegistry& registry,
                         const std::string& path) {
  std::ofstream file(path);
  if (!file)
    throw util::IoError("writePrometheusFile: cannot open " + path);
  file << renderPrometheus(registry);
  if (!file)
    throw util::IoError("writePrometheusFile: write failed for " +
                             path);
}

}  // namespace moloc::obs
