#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace moloc::obs {

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per family, one
/// `name{labels} value` line per series, histograms expanded into
/// cumulative `_bucket{le="..."}` lines plus `_sum` and `_count`.
/// Families appear sorted by name, series by label set, so the output
/// is deterministic and diffable.
std::string renderPrometheus(const MetricsRegistry& registry);

/// Writes renderPrometheus() to `path` (throws std::runtime_error on
/// I/O failure) — how benches and jobs dump a scrape-equivalent
/// snapshot without running an HTTP endpoint.
void writePrometheusFile(const MetricsRegistry& registry,
                         const std::string& path);

}  // namespace moloc::obs
