#pragma once

#include <vector>

#include "env/site.hpp"

namespace moloc::env {

/// The paper's deployment site (Fig. 5), rebuilt synthetically.
///
/// A 40.8 m x 16 m office hall with 28 reference locations laid out as a
/// 7-column x 4-row grid along the aisles, structural pillars, partition
/// boards that sever a few geometrically-close legs (so walkable !=
/// straight-line — the consistency principle of Sec. IV.A), and 6 AP
/// sites placed near-symmetrically so that mirrored locations become
/// "fingerprint twins", the ambiguity MoLoc is designed to resolve.
/// Experiments use the first 4, 5, or 6 AP positions, matching the
/// paper's 4/5/6-AP evaluations.
using OfficeHall = Site;

/// Grid geometry shared by the factory and the tests.
inline constexpr int kHallColumns = 7;
inline constexpr int kHallRows = 4;
inline constexpr int kHallLocations = kHallColumns * kHallRows;
inline constexpr double kHallWidth = 40.8;
inline constexpr double kHallHeight = 16.0;
/// Neighbour cutoff for the aisle graph: spans the 5.7 m column spacing
/// and the 4.0 m row spacing but excludes diagonals.
inline constexpr double kHallAdjacency = 5.8;

/// Builds the office hall.  Location ids are row-major from the north
/// row: id = row * 7 + column, so paper location n is id n-1.
OfficeHall makeOfficeHall();

/// Position of the grid point at (row, column); row 0 is the north row.
geometry::Vec2 hallGridPosition(int row, int column);

}  // namespace moloc::env
