#include "env/corridor_building.hpp"

namespace moloc::env {

namespace {

/// Adds one side's corridor wall (at `wallY`) with a 2 m door gap in
/// front of each room centre (rooms span 10 m, centres at 5 + 10k).
void addCorridorWallWithDoors(FloorPlan& plan, double wallY) {
  double cursor = 0.0;
  for (int room = 0; room < CorridorBuildingLayout::kRoomsPerSide;
       ++room) {
    const double doorStart = 5.0 + 10.0 * room - 1.0;
    const double doorEnd = doorStart + 2.0;
    plan.addWall({{cursor, wallY}, {doorStart, wallY}});
    cursor = doorEnd;
  }
  plan.addWall({{cursor, wallY}, {CorridorBuildingLayout::kWidth, wallY}});
}

}  // namespace

Site makeCorridorBuilding() {
  FloorPlan plan(CorridorBuildingLayout::kWidth,
                 CorridorBuildingLayout::kHeight);

  // Outer walls.
  plan.addWall({{0.0, 0.0}, {CorridorBuildingLayout::kWidth, 0.0}});
  plan.addWall({{CorridorBuildingLayout::kWidth, 0.0},
                {CorridorBuildingLayout::kWidth,
                 CorridorBuildingLayout::kHeight}});
  plan.addWall({{CorridorBuildingLayout::kWidth,
                 CorridorBuildingLayout::kHeight},
                {0.0, CorridorBuildingLayout::kHeight}});
  plan.addWall({{0.0, CorridorBuildingLayout::kHeight}, {0.0, 0.0}});

  // The corridor band spans y in [5, 7]; rooms sit above and below,
  // reachable only through their door gaps.
  addCorridorWallWithDoors(plan, 7.0);  // North side.
  addCorridorWallWithDoors(plan, 5.0);  // South side.

  // Partition walls between neighbouring rooms.
  for (int divider = 1; divider < CorridorBuildingLayout::kRoomsPerSide;
       ++divider) {
    const double x = 10.0 * divider;
    plan.addWall({{x, 7.0}, {x, CorridorBuildingLayout::kHeight}});
    plan.addWall({{x, 0.0}, {x, 5.0}});
  }

  // Reference locations: corridor chain first (ids 0-10), then the
  // north rooms (11-16), then the south rooms (17-22).
  for (int c = 0; c < CorridorBuildingLayout::kCorridorLocations; ++c)
    plan.addReferenceLocation({5.0 + 5.0 * c, 6.0});
  for (int room = 0; room < CorridorBuildingLayout::kRoomsPerSide;
       ++room)
    plan.addReferenceLocation({5.0 + 10.0 * room, 9.5});
  for (int room = 0; room < CorridorBuildingLayout::kRoomsPerSide;
       ++room)
    plan.addReferenceLocation({5.0 + 10.0 * room, 2.5});

  Site site{std::move(plan),
            WalkGraph{},
            {
                // Corridor-end APs plus one room-mounted AP per side.
                {1.0, 6.0},   // West corridor end.
                {59.0, 6.0},  // East corridor end.
                {25.0, 11.0}, // Inside a north room.
                {35.0, 1.0},  // Inside a south room.
            }};
  site.graph =
      WalkGraph::build(site.plan, CorridorBuildingLayout::kAdjacency);
  return site;
}

}  // namespace moloc::env
