#include "env/floor_plan.hpp"

#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace moloc::env {

FloorPlan::FloorPlan(double width, double height)
    : width_(width), height_(height) {
  if (width <= 0.0 || height <= 0.0)
    throw util::ConfigError("FloorPlan: bounds must be positive");
}

void FloorPlan::addWall(const geometry::Segment& wall) {
  walls_.push_back(wall);
}

LocationId FloorPlan::addReferenceLocation(geometry::Vec2 pos) {
  if (pos.x < 0.0 || pos.x > width_ || pos.y < 0.0 || pos.y > height_)
    throw util::ConfigError("FloorPlan: location outside bounds");
  const auto id = static_cast<LocationId>(locations_.size());
  locations_.push_back({id, pos});
  return id;
}

const ReferenceLocation& FloorPlan::location(LocationId id) const {
  if (!isValid(id))
    throw std::out_of_range("FloorPlan: bad location id " +
                            std::to_string(id));
  return locations_[static_cast<std::size_t>(id)];
}

int FloorPlan::wallCrossings(geometry::Vec2 a, geometry::Vec2 b) const {
  return geometry::countCrossings(a, b, walls_);
}

bool FloorPlan::lineBlocked(geometry::Vec2 a, geometry::Vec2 b) const {
  const geometry::Segment path{a, b};
  for (const auto& wall : walls_)
    if (geometry::segmentsIntersect(path, wall)) return true;
  return false;
}

}  // namespace moloc::env
