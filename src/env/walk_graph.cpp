#include "env/walk_graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>

#include "geometry/angles.hpp"
#include "util/error.hpp"

namespace moloc::env {

WalkGraph WalkGraph::build(const FloorPlan& plan, double maxAdjacencyDist) {
  WalkGraph graph;
  const auto locs = plan.locations();
  graph.adjacency_.resize(locs.size());
  for (std::size_t i = 0; i < locs.size(); ++i) {
    for (std::size_t j = i + 1; j < locs.size(); ++j) {
      const auto a = locs[i].pos;
      const auto b = locs[j].pos;
      const double dist = geometry::distance(a, b);
      if (dist > maxAdjacencyDist) continue;
      if (plan.lineBlocked(a, b)) continue;
      graph.adjacency_[i].push_back(
          {locs[j].id, dist, geometry::headingBetweenDeg(a, b)});
      graph.adjacency_[j].push_back(
          {locs[i].id, dist, geometry::headingBetweenDeg(b, a)});
    }
  }
  return graph;
}

WalkGraph WalkGraph::fromEdges(std::size_t nodeCount,
                               std::span<const UndirectedEdge> edges) {
  WalkGraph graph;
  graph.adjacency_.resize(nodeCount);
  for (const auto& edge : edges) {
    if (edge.a < 0 || edge.b < 0 ||
        static_cast<std::size_t>(edge.a) >= nodeCount ||
        static_cast<std::size_t>(edge.b) >= nodeCount)
      throw util::ConfigError(
          "WalkGraph::fromEdges: edge (" + std::to_string(edge.a) + ", " +
          std::to_string(edge.b) + ") outside " +
          std::to_string(nodeCount) + " nodes");
    if (edge.a == edge.b)
      throw util::ConfigError("WalkGraph::fromEdges: self-loop at " +
                                  std::to_string(edge.a));
    if (!(edge.length > 0.0))
      throw util::ConfigError(
          "WalkGraph::fromEdges: non-positive length on edge (" +
          std::to_string(edge.a) + ", " + std::to_string(edge.b) + ")");
    graph.adjacency_[static_cast<std::size_t>(edge.a)].push_back(
        {edge.b, edge.length, edge.headingDeg});
    graph.adjacency_[static_cast<std::size_t>(edge.b)].push_back(
        {edge.a, edge.length,
         geometry::reverseHeadingDeg(edge.headingDeg)});
  }
  return graph;
}

std::span<const WalkEdge> WalkGraph::neighbors(LocationId id) const {
  checkId(id);
  return adjacency_[static_cast<std::size_t>(id)];
}

bool WalkGraph::adjacent(LocationId i, LocationId j) const {
  if (i == j) return false;
  for (const auto& e : neighbors(i))
    if (e.to == j) return true;
  return false;
}

std::optional<double> WalkGraph::edgeLength(LocationId i,
                                            LocationId j) const {
  for (const auto& e : neighbors(i))
    if (e.to == j) return e.length;
  return std::nullopt;
}

std::optional<GroundTruthRlm> WalkGraph::groundTruthRlm(
    LocationId i, LocationId j) const {
  for (const auto& e : neighbors(i))
    if (e.to == j) return GroundTruthRlm{e.headingDeg, e.length};
  return std::nullopt;
}

std::optional<WalkPath> WalkGraph::shortestPath(LocationId i,
                                                LocationId j) const {
  checkId(i);
  checkId(j);
  if (i == j) return WalkPath{{i}, 0.0};

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(adjacency_.size(), kInf);
  std::vector<LocationId> prev(adjacency_.size(), -1);
  using Entry = std::pair<double, LocationId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[static_cast<std::size_t>(i)] = 0.0;
  pq.push({0.0, i});

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == j) break;
    for (const auto& e : adjacency_[static_cast<std::size_t>(u)]) {
      const double nd = d + e.length;
      if (nd < dist[static_cast<std::size_t>(e.to)]) {
        dist[static_cast<std::size_t>(e.to)] = nd;
        prev[static_cast<std::size_t>(e.to)] = u;
        pq.push({nd, e.to});
      }
    }
  }

  if (dist[static_cast<std::size_t>(j)] == kInf) return std::nullopt;

  WalkPath path;
  path.length = dist[static_cast<std::size_t>(j)];
  for (LocationId v = j; v != -1; v = prev[static_cast<std::size_t>(v)])
    path.nodes.push_back(v);
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

double WalkGraph::walkableDistance(LocationId i, LocationId j) const {
  const auto path = shortestPath(i, j);
  return path ? path->length : std::numeric_limits<double>::infinity();
}

bool WalkGraph::isConnected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<LocationId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const LocationId u = stack.back();
    stack.pop_back();
    for (const auto& e : adjacency_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(e.to)]) {
        seen[static_cast<std::size_t>(e.to)] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == adjacency_.size();
}

std::size_t WalkGraph::edgeCount() const {
  std::size_t directed = 0;
  for (const auto& edges : adjacency_) directed += edges.size();
  return directed / 2;
}

void WalkGraph::checkId(LocationId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= adjacency_.size())
    throw std::out_of_range("WalkGraph: bad location id " +
                            std::to_string(id));
}

}  // namespace moloc::env
