#include "env/office_hall.hpp"

#include <stdexcept>

namespace moloc::env {

namespace {

constexpr double kColumnSpacing = 5.7;
constexpr double kFirstColumnX = 3.3;
constexpr double kRowYs[kHallRows] = {14.0, 10.0, 6.0, 2.0};

/// A structural pillar approximated by a small "+" of two segments —
/// enough to attenuate radio paths that pass through it without
/// occupying a walkable aisle.
void addPillar(FloorPlan& plan, geometry::Vec2 center, double halfSize) {
  plan.addWall({{center.x - halfSize, center.y},
                {center.x + halfSize, center.y}});
  plan.addWall({{center.x, center.y - halfSize},
                {center.x, center.y + halfSize}});
}

}  // namespace

geometry::Vec2 hallGridPosition(int row, int column) {
  if (row < 0 || row >= kHallRows || column < 0 || column >= kHallColumns)
    throw std::out_of_range("hallGridPosition: bad grid index");
  return {kFirstColumnX + column * kColumnSpacing, kRowYs[row]};
}

OfficeHall makeOfficeHall() {
  FloorPlan plan(kHallWidth, kHallHeight);

  // Outer walls.
  plan.addWall({{0.0, 0.0}, {kHallWidth, 0.0}});
  plan.addWall({{kHallWidth, 0.0}, {kHallWidth, kHallHeight}});
  plan.addWall({{kHallWidth, kHallHeight}, {0.0, kHallHeight}});
  plan.addWall({{0.0, kHallHeight}, {0.0, 0.0}});

  // Partition boards.  P1 severs the vertical legs between the north two
  // rows at columns 2 and 3; P2 severs the leg between the south two rows
  // at column 5.  Locations on either side stay geometrically close but
  // are only reachable via a detour along the aisles.
  plan.addWall({{12.0, 12.0}, {23.0, 12.0}});
  plan.addWall({{28.0, 4.0}, {35.5, 4.0}});

  // Structural pillars, placed off the aisles so they attenuate radio
  // paths without blocking walking legs.
  addPillar(plan, {6.15, 4.0}, 0.35);
  addPillar(plan, {17.55, 8.0}, 0.35);
  addPillar(plan, {28.95, 12.0}, 0.35);
  addPillar(plan, {34.65, 4.0}, 0.35);

  // Reference locations, row-major from the north row to match the
  // paper's numbering in Fig. 5.
  for (int row = 0; row < kHallRows; ++row)
    for (int col = 0; col < kHallColumns; ++col)
      plan.addReferenceLocation(hallGridPosition(row, col));

  OfficeHall hall{std::move(plan),
                  WalkGraph{},
                  {
                      // The first four AP sites sit nearly symmetric
                      // under reflection about both hall mid-lines
                      // (x = 20.4, y = 8), so with 4 APs every grid
                      // location has up to three near-"fingerprint
                      // twins" — the ambiguity the paper studies.  The
                      // ~0.5 m off-axis jitter keeps the degeneracy
                      // from being exact (real deployments are never
                      // perfectly symmetric), and APs 5-6 break the
                      // mirrors further, so accuracy climbs with AP
                      // count as in the paper's 4/5/6-AP evaluations.
                      {2.0, 8.9},    // west mid-wall
                      {19.4, 15.5},  // north mid-wall
                      {21.3, 0.5},   // south mid-wall
                      {38.8, 7.3},   // east mid-wall
                      {11.0, 9.5},   // off-axis ceiling mount (west)
                      {29.0, 7.0},   // off-axis ceiling mount (east)
                  }};
  hall.graph = WalkGraph::build(hall.plan, kHallAdjacency);
  return hall;
}

}  // namespace moloc::env
