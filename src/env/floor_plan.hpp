#pragma once

#include <span>
#include <vector>

#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

namespace moloc::env {

/// Index of a reference location within a floor plan (0-based).
///
/// The paper numbers the 28 office-hall locations 1..28 (Fig. 5); we use
/// 0-based ids internally, so paper location n is id n-1.
using LocationId = int;

/// A surveyed reference location: a point for which the fingerprint
/// database holds RSS samples and between which the motion database
/// stores relative location measurements.
struct ReferenceLocation {
  LocationId id = 0;
  geometry::Vec2 pos;
};

/// Static description of an indoor environment: outer bounds, walls and
/// partitions (as segments), and the set of reference locations.
///
/// The plan is consumed by three subsystems: the radio model (each wall
/// crossed attenuates a signal), the walk graph (a leg crossing a wall is
/// not walkable), and the evaluation harness (ground-truth coordinates).
class FloorPlan {
 public:
  /// An empty rectangular plan of the given size in metres.
  /// Bounds must be strictly positive; throws std::invalid_argument.
  FloorPlan(double width, double height);

  double width() const { return width_; }
  double height() const { return height_; }

  /// Registers a wall or partition segment.
  void addWall(const geometry::Segment& wall);

  /// Registers a reference location and returns its id (assigned
  /// sequentially).  Throws std::invalid_argument if `pos` lies outside
  /// the plan bounds.
  LocationId addReferenceLocation(geometry::Vec2 pos);

  std::span<const geometry::Segment> walls() const { return walls_; }
  std::span<const ReferenceLocation> locations() const { return locations_; }

  std::size_t locationCount() const { return locations_.size(); }

  /// Bounds-checked access; throws std::out_of_range for a bad id.
  const ReferenceLocation& location(LocationId id) const;

  /// True iff `id` names a registered reference location.
  bool isValid(LocationId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < locations_.size();
  }

  /// Number of walls crossed by the straight segment a -> b.
  int wallCrossings(geometry::Vec2 a, geometry::Vec2 b) const;

  /// True when the straight segment a -> b crosses at least one wall.
  bool lineBlocked(geometry::Vec2 a, geometry::Vec2 b) const;

 private:
  double width_;
  double height_;
  std::vector<geometry::Segment> walls_;
  std::vector<ReferenceLocation> locations_;
};

}  // namespace moloc::env
