#pragma once

#include "env/site.hpp"

namespace moloc::env {

/// A second synthetic deployment, topologically unlike the open office
/// hall: a 60 m x 12 m office floor with a central corridor and six
/// walled rooms on each side, each connected to the corridor through a
/// 2 m door gap.
///
/// The layout stresses different properties than the hall does:
/// corridor locations form a 1-D chain (motion is highly informative),
/// room locations are walled dead ends (strong RSS attenuation, a
/// single walkable leg in and out), and room pairs across the corridor
/// are classic twin candidates.
///
/// Reference locations: 11 corridor points (ids 0-10, west to east at
/// x = 5, 10, ..., 55 on the corridor centreline) and 12 room centres
/// (ids 11-16 the north rooms west to east, ids 17-22 the south rooms).
struct CorridorBuildingLayout {
  static constexpr double kWidth = 60.0;
  static constexpr double kHeight = 12.0;
  static constexpr int kCorridorLocations = 11;
  static constexpr int kRoomsPerSide = 6;
  static constexpr int kLocations =
      kCorridorLocations + 2 * kRoomsPerSide;
  /// Covers the 5 m corridor spacing and the 3.5 m room-door legs,
  /// excludes room-to-room and diagonal pairs.
  static constexpr double kAdjacency = 5.2;
};

/// Builds the corridor building with 4 candidate AP positions.
Site makeCorridorBuilding();

}  // namespace moloc::env
