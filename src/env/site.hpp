#pragma once

#include <vector>

#include "env/floor_plan.hpp"
#include "env/walk_graph.hpp"

namespace moloc::env {

/// A deployable site: the floor plan, its walkable-aisle graph, and
/// the candidate AP positions.  Factories under env/ build concrete
/// sites (the paper's office hall, the corridor building); experiments
/// and the evaluation harness consume any Site interchangeably.
struct Site {
  FloorPlan plan;
  WalkGraph graph;
  /// Candidate AP sites; experiments use a prefix of this list.
  std::vector<geometry::Vec2> apPositions;
};

}  // namespace moloc::env
