#pragma once

#include <optional>
#include <span>
#include <vector>

#include "env/floor_plan.hpp"

namespace moloc::env {

/// One directed aisle edge out of a reference location.
struct WalkEdge {
  LocationId to = 0;
  double length = 0.0;       ///< Walkable length of the leg, metres.
  double headingDeg = 0.0;   ///< Compass heading of the leg.
};

/// Ground-truth relative location measurement between adjacent
/// locations — the quantity the crowdsourced motion database estimates.
struct GroundTruthRlm {
  double directionDeg = 0.0;
  double offsetMeters = 0.0;
};

/// A shortest walkable route between two reference locations.
struct WalkPath {
  std::vector<LocationId> nodes;  ///< Including both endpoints.
  double length = 0.0;            ///< Total walkable length, metres.
};

/// One undirected walkable leg for WalkGraph::fromEdges.  `headingDeg`
/// is the compass heading of the a -> b direction; the reverse edge
/// gets the 180-degree-reversed heading.
struct UndirectedEdge {
  LocationId a = 0;
  LocationId b = 0;
  double length = 0.0;
  double headingDeg = 0.0;
};

/// The walkable-aisle graph over a floor plan's reference locations.
///
/// Two locations are adjacent iff they are within `maxAdjacencyDist` of
/// each other *and* the straight leg between them crosses no wall — this
/// is the paper's "principle of consistency": geometric closeness does
/// not imply walkability when a partition intervenes.  The graph feeds
/// (a) ground-truth RLMs for validating the crowdsourced motion database
/// (Fig. 6), (b) random-walk trajectory generation, and (c) the HMM
/// baseline's transition model.
class WalkGraph {
 public:
  /// Builds the graph from the plan's reference locations.
  ///
  /// All-pairs construction is O(n^2) and only suitable for paper-scale
  /// plans; large generated venues build their edge list analytically
  /// and use fromEdges instead.
  static WalkGraph build(const FloorPlan& plan, double maxAdjacencyDist);

  /// Builds the graph from an explicit undirected edge list over
  /// `nodeCount` locations (ids 0..nodeCount-1).  Each edge adds both
  /// directed legs, the reverse with reverseHeadingDeg.  Throws
  /// std::invalid_argument on out-of-range ids, self-loops, or
  /// non-positive lengths.
  static WalkGraph fromEdges(std::size_t nodeCount,
                             std::span<const UndirectedEdge> edges);

  std::size_t nodeCount() const { return adjacency_.size(); }

  /// Outgoing edges of `id`; throws std::out_of_range for a bad id.
  std::span<const WalkEdge> neighbors(LocationId id) const;

  /// True iff i and j share a direct aisle leg (i != j).
  bool adjacent(LocationId i, LocationId j) const;

  /// Direct leg length between adjacent i, j; nullopt otherwise.
  std::optional<double> edgeLength(LocationId i, LocationId j) const;

  /// Map-derived RLM for the direct leg i -> j (adjacent pairs only).
  std::optional<GroundTruthRlm> groundTruthRlm(LocationId i,
                                               LocationId j) const;

  /// Dijkstra shortest walkable route; nullopt when disconnected.
  /// i == j yields the trivial single-node path of length 0.
  std::optional<WalkPath> shortestPath(LocationId i, LocationId j) const;

  /// Length of the shortest walkable route; +infinity when disconnected.
  double walkableDistance(LocationId i, LocationId j) const;

  /// True when every node can reach every other node.
  bool isConnected() const;

  /// Total number of undirected edges.
  std::size_t edgeCount() const;

 private:
  void checkId(LocationId id) const;

  std::vector<std::vector<WalkEdge>> adjacency_;
};

}  // namespace moloc::env
