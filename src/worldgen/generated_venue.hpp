#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/motion_database.hpp"
#include "env/site.hpp"
#include "geometry/vec2.hpp"
#include "radio/access_point.hpp"
#include "radio/fingerprint_database.hpp"
#include "radio/propagation.hpp"
#include "util/rng.hpp"
#include "worldgen/venue_spec.hpp"

namespace moloc::worldgen {

/// One floor strip of the generated campus.
struct FloorInfo {
  int building = 0;
  int floor = 0;
  std::size_t firstLocation = 0;   ///< Global LocationId of cell (0,0).
  std::size_t locationCount = 0;   ///< gridCols * gridRows.
  std::size_t firstAp = 0;         ///< Global id of the floor's first AP.
  std::size_t apCount = 0;
  geometry::Vec2 origin;           ///< Strip offset in the global plan.
};

/// A deterministic, seeded campus-scale venue: the city-scale world of
/// ROADMAP item 2.
///
/// Every floor of every building is one strip of the global FloorPlan
/// (location ids are floor-major, so per-floor row ranges are
/// contiguous — exactly the shard boundaries the tiered index wants,
/// exposed as shardStarts()).  Radio is modeled per floor: each floor
/// carries its own wall set and its own radio::LogDistanceModel over
/// its own APs, and a location hears only same-floor APs within the
/// spec's visibility radius — everything else reports the detection
/// floor.  That sparse visibility is both physically motivated
/// (cross-floor attenuation) and what keeps a 64k x 192 survey
/// tractable: the full RadioEnvironment would evaluate every AP at
/// every location.
///
/// The construction composes the existing pipeline pieces: per-floor
/// grids with banded partition walls -> analytic WalkGraph edges
/// (grid legs dropped when a partition blocks them, stairs between
/// floors, ground-floor bridges between buildings) via
/// WalkGraph::fromEdges; a survey-protocol radio map (trainSamples
/// noisy kSurvey scans per location, cycling N/E/S/W facings,
/// averaged per AP) into a radio::FingerprintDatabase; and
/// map-derived RLM entries for every walk edge into a sparse
/// core::MotionDatabase.  The result plugs into
/// LocalizationService / molocd unchanged.
class GeneratedVenue {
 public:
  /// Generates the venue; cost is O(locations * (visible APs +
  /// walls-per-floor)).  Throws std::invalid_argument on a bad spec.
  explicit GeneratedVenue(VenueSpec spec);

  const VenueSpec& spec() const { return spec_; }
  const env::Site& site() const { return site_; }
  std::span<const FloorInfo> floors() const { return floors_; }
  std::size_t locationCount() const { return site_.plan.locationCount(); }
  std::size_t apCount() const { return aps_.size(); }

  /// The surveyed radio map (row order == location id order).
  const radio::FingerprintDatabase& fingerprints() const {
    return *fingerprints_;
  }
  /// Shared handle for consumers that keep the database alive past the
  /// venue (index::TieredIndex, WorldSnapshot).
  std::shared_ptr<const radio::FingerprintDatabase> sharedFingerprints()
      const {
    return fingerprints_;
  }

  /// Map-derived motion database (one RLM pair per walk edge).
  const core::MotionDatabase& motion() const { return motion_; }

  /// Per-floor first rows — natural shard boundaries for the index.
  const std::vector<std::size_t>& shardStarts() const {
    return shardStarts_;
  }

  /// One serving-epoch scan at a reference location: noisy samples of
  /// the location's visible APs, detection floor everywhere else.
  /// Deterministic in (venue, rng state); throws std::out_of_range on
  /// a bad id.
  radio::Fingerprint scanAt(env::LocationId location,
                            double orientationDeg, util::Rng& rng,
                            radio::Epoch epoch =
                                radio::Epoch::kServing) const;

  /// The floor strip containing `location`.
  const FloorInfo& floorOf(env::LocationId location) const;

  /// Global APs (strip coordinates), id order.
  std::span<const radio::AccessPoint> accessPoints() const {
    return aps_;
  }

 private:
  struct Floor {
    /// Walls in strip-local coordinates; the propagation model holds a
    /// pointer to this plan, so it lives behind a stable allocation.
    std::unique_ptr<env::FloorPlan> localPlan;
    std::unique_ptr<radio::LogDistanceModel> model;
    /// The floor's APs in strip-local coordinates, global ids.
    std::vector<radio::AccessPoint> aps;
  };

  geometry::Vec2 localCellPos(int col, int row) const;
  void fillScan(env::LocationId location, double orientationDeg,
                util::Rng& rng, radio::Epoch epoch,
                std::vector<double>& values) const;

  VenueSpec spec_;
  std::vector<Floor> floorData_;
  std::vector<FloorInfo> floors_;
  env::Site site_;
  std::vector<radio::AccessPoint> aps_;
  std::shared_ptr<radio::FingerprintDatabase> fingerprints_;
  core::MotionDatabase motion_;
  std::vector<std::size_t> shardStarts_;
  /// Flattened per-location visible-AP lists (indices into the
  /// location's floor's `aps`): visibleAps_[visibleStart_[l] ..
  /// visibleStart_[l + 1]).
  std::vector<std::uint32_t> visibleStart_;
  std::vector<std::uint16_t> visibleAps_;
};

}  // namespace moloc::worldgen
