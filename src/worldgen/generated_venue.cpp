#include "worldgen/generated_venue.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "env/walk_graph.hpp"
#include "geometry/angles.hpp"
#include "geometry/segment.hpp"

namespace moloc::worldgen {

namespace {

/// Strip layout: floors sit side by side in the global plan, separated
/// by a dead gap no walk edge crosses (stairs and bridges are explicit
/// edges with their own lengths).
constexpr double kStripGapMeters = 8.0;
/// Vertical legs: one storey of stairs / one inter-building bridge.
constexpr double kStairLengthMeters = 5.0;
constexpr double kBridgeLengthMeters = 10.0;
/// Partition walls split each floor into bands this many rows tall.
constexpr int kBandRows = 8;
/// Door gap (one cell wide) in every band wall, this many columns
/// apart.
constexpr int kDoorEveryCols = 16;
/// Map-derived RLM uncertainty assigned to every walkable leg; the
/// fixed sigmas mirror the office world's survey-derived spread.
constexpr double kRlmSigmaDirectionDeg = 10.0;
constexpr double kRlmSigmaOffsetMeters = 0.3;
constexpr int kRlmSampleCount = 12;

constexpr double kCardinal[4] = {0.0, 90.0, 180.0, 270.0};

/// Independent deterministic sub-streams of the venue seed.  The
/// per-location stream matches the loadgen idiom (seed * 1000003 +
/// salt); the offsets keep the streams from colliding below
/// kMaxVenueLocations.
std::uint64_t locationSeed(std::uint64_t seed, std::size_t location) {
  return seed * 1000003ULL + location;
}
std::uint64_t floorSeed(std::uint64_t seed, std::size_t strip) {
  return seed * 1000003ULL + 0x40000000ULL + strip;
}

}  // namespace

geometry::Vec2 GeneratedVenue::localCellPos(int col, int row) const {
  const double s = spec_.spacingMeters;
  return {s + (col + 0.5) * s, s + (row + 0.5) * s};
}

GeneratedVenue::GeneratedVenue(VenueSpec spec)
    : spec_(spec),
      site_{env::FloorPlan(1.0, 1.0), env::WalkGraph{}, {}},
      fingerprints_(std::make_shared<radio::FingerprintDatabase>()) {
  validateVenueSpec(spec_);

  const int cols = spec_.gridCols;
  const int rows = spec_.gridRows;
  const double s = spec_.spacingMeters;
  const double margin = s;
  const double floorW = 2.0 * margin + cols * s;
  const double floorH = 2.0 * margin + rows * s;
  const std::size_t stripCount =
      static_cast<std::size_t>(spec_.buildings) *
      static_cast<std::size_t>(spec_.floorsPerBuilding);
  const std::size_t locsPerFloor =
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows);
  const std::size_t n = worldgen::locationCount(spec_);

  env::FloorPlan globalPlan(
      stripCount * (floorW + kStripGapMeters) - kStripGapMeters, floorH);

  // Door-gap columns of the band walls; every band keeps at least one
  // doorway so each floor stays connected.
  std::vector<int> doorCols;
  for (int c = kDoorEveryCols / 2; c < cols; c += kDoorEveryCols)
    doorCols.push_back(c);
  if (doorCols.empty()) doorCols.push_back(cols / 2);

  floorData_.reserve(stripCount);
  floors_.reserve(stripCount);
  for (std::size_t strip = 0; strip < stripCount; ++strip) {
    const geometry::Vec2 origin{
        static_cast<double>(strip) * (floorW + kStripGapMeters), 0.0};

    Floor floor;
    floor.localPlan = std::make_unique<env::FloorPlan>(floorW, floorH);

    // Banded partition walls with one-cell door gaps.
    for (int bandRow = kBandRows; bandRow < rows; bandRow += kBandRows) {
      const double y = margin + bandRow * s;
      double segStart = 0.0;
      for (const int door : doorCols) {
        const double gapLo = margin + door * s;
        const double gapHi = margin + (door + 1) * s;
        if (gapLo > segStart)
          floor.localPlan->addWall({{segStart, y}, {gapLo, y}});
        segStart = gapHi;
      }
      if (segStart < floorW)
        floor.localPlan->addWall({{segStart, y}, {floorW, y}});
    }

    // Jittered-grid AP placement: full coverage without regularity.
    const int apCols = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(spec_.apsPerFloor))));
    const int apRows = (spec_.apsPerFloor + apCols - 1) / apCols;
    const double apCellW = floorW / apCols;
    const double apCellH = floorH / apRows;
    util::Rng apRng(floorSeed(spec_.seed, strip));
    floor.aps.reserve(static_cast<std::size_t>(spec_.apsPerFloor));
    for (int a = 0; a < spec_.apsPerFloor; ++a) {
      const int apCol = a % apCols;
      const int apRow = a / apCols;
      const geometry::Vec2 pos{
          (apCol + 0.5) * apCellW + apRng.uniform(-0.25, 0.25) * apCellW,
          (apRow + 0.5) * apCellH + apRng.uniform(-0.25, 0.25) * apCellH};
      radio::AccessPoint ap;
      ap.id = static_cast<int>(strip) * spec_.apsPerFloor + a;
      ap.pos = pos;
      floor.aps.push_back(ap);
    }

    floor.model = std::make_unique<radio::LogDistanceModel>(
        spec_.propagation, *floor.localPlan);

    // Mirror the strip into the global plan: outline, walls,
    // reference locations (floor-major id order), global AP list.
    globalPlan.addWall({origin, origin + geometry::Vec2{floorW, 0.0}});
    globalPlan.addWall({origin + geometry::Vec2{0.0, floorH},
                        origin + geometry::Vec2{floorW, floorH}});
    globalPlan.addWall({origin, origin + geometry::Vec2{0.0, floorH}});
    globalPlan.addWall({origin + geometry::Vec2{floorW, 0.0},
                        origin + geometry::Vec2{floorW, floorH}});
    for (const auto& wall : floor.localPlan->walls())
      globalPlan.addWall({origin + wall.a, origin + wall.b});

    FloorInfo info;
    info.building = static_cast<int>(
        strip / static_cast<std::size_t>(spec_.floorsPerBuilding));
    info.floor = static_cast<int>(
        strip % static_cast<std::size_t>(spec_.floorsPerBuilding));
    info.firstLocation = strip * locsPerFloor;
    info.locationCount = locsPerFloor;
    info.firstAp = strip * static_cast<std::size_t>(spec_.apsPerFloor);
    info.apCount = static_cast<std::size_t>(spec_.apsPerFloor);
    info.origin = origin;
    floors_.push_back(info);

    for (int row = 0; row < rows; ++row)
      for (int col = 0; col < cols; ++col)
        globalPlan.addReferenceLocation(origin + localCellPos(col, row));
    for (const auto& ap : floor.aps) {
      radio::AccessPoint globalAp = ap;
      globalAp.pos = origin + ap.pos;
      aps_.push_back(globalAp);
    }

    floorData_.push_back(std::move(floor));
    shardStarts_.push_back(info.firstLocation);
  }

  // Analytic walk edges: grid legs (dropped when a partition blocks
  // them), stairs between consecutive floors, ground-floor bridges
  // between consecutive buildings.  All-pairs WalkGraph::build is
  // O(n^2) and intractable here.
  std::vector<env::UndirectedEdge> edges;
  edges.reserve(n * 2);
  const auto globalLocs = globalPlan.locations();
  const auto cellId = [&](std::size_t strip, int col,
                          int row) -> env::LocationId {
    return static_cast<env::LocationId>(
        strip * locsPerFloor +
        static_cast<std::size_t>(row) * static_cast<std::size_t>(cols) +
        static_cast<std::size_t>(col));
  };
  const auto addEdge = [&](env::LocationId a, env::LocationId b,
                           double length) {
    edges.push_back({a, b, length,
                     geometry::headingBetweenDeg(globalLocs[a].pos,
                                                 globalLocs[b].pos)});
  };

  for (std::size_t strip = 0; strip < stripCount; ++strip) {
    const env::FloorPlan& local = *floorData_[strip].localPlan;
    for (int row = 0; row < rows; ++row) {
      for (int col = 0; col < cols; ++col) {
        const geometry::Vec2 here = localCellPos(col, row);
        if (col + 1 < cols &&
            !local.lineBlocked(here, localCellPos(col + 1, row)))
          addEdge(cellId(strip, col, row), cellId(strip, col + 1, row),
                  s);
        if (row + 1 < rows &&
            !local.lineBlocked(here, localCellPos(col, row + 1)))
          addEdge(cellId(strip, col, row), cellId(strip, col, row + 1),
                  s);
      }
    }
  }
  for (int b = 0; b < spec_.buildings; ++b) {
    const std::size_t base =
        static_cast<std::size_t>(b) *
        static_cast<std::size_t>(spec_.floorsPerBuilding);
    for (int f = 0; f + 1 < spec_.floorsPerBuilding; ++f)
      addEdge(cellId(base + f, 0, 0), cellId(base + f + 1, 0, 0),
              kStairLengthMeters);
    if (b + 1 < spec_.buildings)
      addEdge(cellId(base, cols - 1, 0),
              cellId(base + static_cast<std::size_t>(
                                spec_.floorsPerBuilding),
                     0, 0),
              kBridgeLengthMeters);
  }

  site_.plan = std::move(globalPlan);
  site_.graph = env::WalkGraph::fromEdges(n, edges);
  site_.apPositions.reserve(aps_.size());
  for (const auto& ap : aps_) site_.apPositions.push_back(ap.pos);

  // Sparse visibility: a location hears only same-floor APs within the
  // spec radius.
  visibleStart_.reserve(n + 1);
  visibleStart_.push_back(0);
  for (std::size_t loc = 0; loc < n; ++loc) {
    const std::size_t strip = loc / locsPerFloor;
    const std::size_t cell = loc % locsPerFloor;
    const geometry::Vec2 pos = localCellPos(
        static_cast<int>(cell % static_cast<std::size_t>(cols)),
        static_cast<int>(cell / static_cast<std::size_t>(cols)));
    const auto& floorAps = floorData_[strip].aps;
    for (std::size_t a = 0; a < floorAps.size(); ++a)
      if (geometry::distance(pos, floorAps[a].pos) <=
          spec_.apVisibilityRadiusMeters)
        visibleAps_.push_back(static_cast<std::uint16_t>(a));
    visibleStart_.push_back(
        static_cast<std::uint32_t>(visibleAps_.size()));
  }

  // Site survey: trainSamples noisy kSurvey scans per location,
  // cycling the four cardinal facings (the paper's quarter-split
  // protocol), averaged per AP into the radio-map entry.  Unheard APs
  // read exactly the detection floor, keeping the dense fingerprint
  // dimensionality the matching pipeline expects.
  const std::size_t totalAps = aps_.size();
  std::vector<double> values(totalAps);
  std::vector<double> sums;
  for (std::size_t loc = 0; loc < n; ++loc) {
    const std::size_t strip = loc / locsPerFloor;
    const std::size_t cell = loc % locsPerFloor;
    const geometry::Vec2 pos = localCellPos(
        static_cast<int>(cell % static_cast<std::size_t>(cols)),
        static_cast<int>(cell / static_cast<std::size_t>(cols)));
    const Floor& floor = floorData_[strip];
    util::Rng rng(locationSeed(spec_.seed, loc));

    const std::uint32_t visBegin = visibleStart_[loc];
    const std::uint32_t visEnd = visibleStart_[loc + 1];
    sums.assign(visEnd - visBegin, 0.0);
    for (int sample = 0; sample < spec_.trainSamples; ++sample) {
      const double orientation = kCardinal[sample % 4];
      for (std::uint32_t v = visBegin; v < visEnd; ++v)
        sums[v - visBegin] += floor.model->sampleRssDbm(
            floor.aps[visibleAps_[v]], pos, orientation, rng,
            radio::Epoch::kSurvey);
    }
    values.assign(totalAps, spec_.propagation.detectionFloorDbm);
    for (std::uint32_t v = visBegin; v < visEnd; ++v)
      values[floors_[strip].firstAp + visibleAps_[v]] =
          sums[v - visBegin] / spec_.trainSamples;
    fingerprints_->addLocation(static_cast<env::LocationId>(loc),
                               radio::Fingerprint(values));
  }

  // Map-derived motion database: one RLM pair (and its mirror) per
  // walk edge.
  motion_ = core::MotionDatabase(n);
  for (const auto& edge : edges) {
    core::RlmStats stats;
    stats.muDirectionDeg = edge.headingDeg;
    stats.sigmaDirectionDeg = kRlmSigmaDirectionDeg;
    stats.muOffsetMeters = edge.length;
    stats.sigmaOffsetMeters = kRlmSigmaOffsetMeters;
    stats.sampleCount = kRlmSampleCount;
    motion_.setEntryWithMirror(edge.a, edge.b, stats);
  }
}

void GeneratedVenue::fillScan(env::LocationId location,
                              double orientationDeg, util::Rng& rng,
                              radio::Epoch epoch,
                              std::vector<double>& values) const {
  const std::size_t locsPerFloor =
      static_cast<std::size_t>(spec_.gridCols) *
      static_cast<std::size_t>(spec_.gridRows);
  const std::size_t loc = static_cast<std::size_t>(location);
  const std::size_t strip = loc / locsPerFloor;
  const std::size_t cell = loc % locsPerFloor;
  const geometry::Vec2 pos = localCellPos(
      static_cast<int>(cell % static_cast<std::size_t>(spec_.gridCols)),
      static_cast<int>(cell / static_cast<std::size_t>(spec_.gridCols)));
  const Floor& floor = floorData_[strip];
  values.assign(aps_.size(), spec_.propagation.detectionFloorDbm);
  for (std::uint32_t v = visibleStart_[loc]; v < visibleStart_[loc + 1];
       ++v)
    values[floors_[strip].firstAp + visibleAps_[v]] =
        floor.model->sampleRssDbm(floor.aps[visibleAps_[v]], pos,
                                  orientationDeg, rng, epoch);
}

radio::Fingerprint GeneratedVenue::scanAt(env::LocationId location,
                                          double orientationDeg,
                                          util::Rng& rng,
                                          radio::Epoch epoch) const {
  if (!site_.plan.isValid(location))
    throw std::out_of_range("GeneratedVenue: bad location id " +
                            std::to_string(location));
  std::vector<double> values;
  fillScan(location, orientationDeg, rng, epoch, values);
  return radio::Fingerprint(std::move(values));
}

const FloorInfo& GeneratedVenue::floorOf(env::LocationId location) const {
  if (!site_.plan.isValid(location))
    throw std::out_of_range("GeneratedVenue: bad location id " +
                            std::to_string(location));
  const std::size_t locsPerFloor =
      static_cast<std::size_t>(spec_.gridCols) *
      static_cast<std::size_t>(spec_.gridRows);
  return floors_[static_cast<std::size_t>(location) / locsPerFloor];
}

}  // namespace moloc::worldgen
