#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "radio/propagation.hpp"

namespace moloc::worldgen {

/// Parameters of a generated campus venue: `buildings` identical
/// multi-floor buildings, each floor a `gridCols` x `gridRows` lattice
/// of reference locations `spacingMeters` apart, with `apsPerFloor`
/// access points per floor.  Fully determined by the spec (seed
/// included) — two processes constructing the same spec get
/// bit-identical venues, which is what lets moloc_loadgen verify a
/// remote molocd against an in-process service.
struct VenueSpec {
  int buildings = 1;
  int floorsPerBuilding = 2;
  int gridCols = 16;
  int gridRows = 32;
  double spacingMeters = 3.0;
  int apsPerFloor = 12;
  /// A location hears only its own floor's APs within this radius —
  /// the sparse-visibility model (everything else reports the
  /// detection floor).
  double apVisibilityRadiusMeters = 60.0;
  /// Survey samples averaged into each radio-map entry (cycling the
  /// four cardinal facings).  The paper uses 60 at 28 locations; the
  /// default keeps a 64k-location build fast while still averaging
  /// every orientation.
  int trainSamples = 4;
  std::uint64_t seed = 42;
  radio::PropagationParams propagation;
};

/// Reference locations the spec will generate.
std::size_t locationCount(const VenueSpec& spec);

/// Total access points the spec will generate.
std::size_t apCount(const VenueSpec& spec);

/// Throws std::invalid_argument when the spec is not generatable
/// (non-positive dimensions, bad radius/spacing, too many locations).
void validateVenueSpec(const VenueSpec& spec);

/// Upper bound on locationCount() — worldgen targets the 10k-100k
/// range; the cap only exists to turn typos into errors.
inline constexpr std::size_t kMaxVenueLocations = 1u << 20;

/// Parses a venue spec string: either a named preset
/// ("campus-1k" | "campus-4k" | "campus-16k" | "campus-64k") or a
/// comma-separated key=value list over the defaults (keys: buildings,
/// floors, cols, rows, spacing, aps-per-floor, ap-radius,
/// train-samples).  The seed is set separately (--venue-seed).
/// Throws std::invalid_argument on unknown presets or keys.
VenueSpec parseVenueSpec(std::string_view spec);

/// The preset whose locationCount() is exactly `locations` (the bench
/// sweep's sizes); throws std::invalid_argument for unsupported sizes.
VenueSpec venueSpecForLocations(std::size_t locations);

/// Canonical "key=value,..." form of `spec` (diagnostics and bench
/// JSON).
std::string describeVenueSpec(const VenueSpec& spec);

}  // namespace moloc::worldgen
