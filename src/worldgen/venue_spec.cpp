#include "util/error.hpp"
#include "worldgen/venue_spec.hpp"

#include <cmath>
#include <stdexcept>

namespace moloc::worldgen {

namespace {

VenueSpec presetCampus1k() {
  VenueSpec spec;
  spec.buildings = 1;
  spec.floorsPerBuilding = 2;
  spec.gridCols = 16;
  spec.gridRows = 32;
  return spec;  // 1 * 2 * 16 * 32 = 1024 locations, 24 APs.
}

VenueSpec presetCampus4k() {
  VenueSpec spec;
  spec.buildings = 2;
  spec.floorsPerBuilding = 2;
  spec.gridCols = 32;
  spec.gridRows = 32;
  return spec;  // 2 * 2 * 32 * 32 = 4096 locations, 48 APs.
}

// The larger presets hold AP density at roughly one AP per ~770 m^2
// of floor (typical enterprise WiFi) instead of reusing the default
// 12 per floor: a 192 m-square floor covered by 12 APs leaves most
// locations hearing only 2-3 of them, which starves both tiers of
// signal — the paper's dissimilarity has almost nothing to compare
// and the prefilter's shard lower bounds collapse toward zero.

VenueSpec presetCampus16k() {
  VenueSpec spec;
  spec.buildings = 2;
  spec.floorsPerBuilding = 4;
  spec.gridCols = 32;
  spec.gridRows = 64;
  spec.apsPerFloor = 24;  // 96 m x 192 m floor.
  return spec;  // 2 * 4 * 32 * 64 = 16384 locations, 192 APs.
}

VenueSpec presetCampus64k() {
  VenueSpec spec;
  spec.buildings = 4;
  spec.floorsPerBuilding = 4;
  spec.gridCols = 64;
  spec.gridRows = 64;
  spec.apsPerFloor = 48;  // 192 m x 192 m floor.
  return spec;  // 4 * 4 * 64 * 64 = 65536 locations, 768 APs.
}

double parseDouble(std::string_view key, std::string_view value) {
  try {
    return std::stod(std::string(value));
  } catch (const std::exception&) {
    throw util::ConfigError("VenueSpec: bad value '" +
                                std::string(value) + "' for key '" +
                                std::string(key) + "'");
  }
}

int parseInt(std::string_view key, std::string_view value) {
  const double d = parseDouble(key, value);
  if (d != std::floor(d))
    throw util::ConfigError("VenueSpec: key '" + std::string(key) +
                                "' expects an integer");
  return static_cast<int>(d);
}

}  // namespace

std::size_t locationCount(const VenueSpec& spec) {
  return static_cast<std::size_t>(spec.buildings) *
         static_cast<std::size_t>(spec.floorsPerBuilding) *
         static_cast<std::size_t>(spec.gridCols) *
         static_cast<std::size_t>(spec.gridRows);
}

std::size_t apCount(const VenueSpec& spec) {
  return static_cast<std::size_t>(spec.buildings) *
         static_cast<std::size_t>(spec.floorsPerBuilding) *
         static_cast<std::size_t>(spec.apsPerFloor);
}

void validateVenueSpec(const VenueSpec& spec) {
  if (spec.buildings < 1 || spec.floorsPerBuilding < 1 ||
      spec.gridCols < 2 || spec.gridRows < 2)
    throw util::ConfigError(
        "VenueSpec: need >= 1 building/floor and a grid of at least "
        "2x2");
  if (!(spec.spacingMeters > 0.0) || !std::isfinite(spec.spacingMeters))
    throw util::ConfigError(
        "VenueSpec: spacingMeters must be positive and finite");
  if (spec.apsPerFloor < 1)
    throw util::ConfigError("VenueSpec: apsPerFloor must be >= 1");
  if (!(spec.apVisibilityRadiusMeters > 0.0) ||
      !std::isfinite(spec.apVisibilityRadiusMeters))
    throw util::ConfigError(
        "VenueSpec: apVisibilityRadiusMeters must be positive and "
        "finite");
  if (spec.trainSamples < 1)
    throw util::ConfigError("VenueSpec: trainSamples must be >= 1");
  if (locationCount(spec) > kMaxVenueLocations)
    throw util::ConfigError(
        "VenueSpec: " + std::to_string(locationCount(spec)) +
        " locations exceeds the supported maximum " +
        std::to_string(kMaxVenueLocations));
}

VenueSpec parseVenueSpec(std::string_view spec) {
  if (spec == "campus-1k") return presetCampus1k();
  if (spec == "campus-4k") return presetCampus4k();
  if (spec == "campus-16k") return presetCampus16k();
  if (spec == "campus-64k") return presetCampus64k();
  if (spec.find('=') == std::string_view::npos)
    throw util::ConfigError(
        "VenueSpec: unknown preset '" + std::string(spec) +
        "' (expected campus-{1k,4k,16k,64k} or a key=value list)");

  VenueSpec out;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view item =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw util::ConfigError("VenueSpec: expected key=value, got '" +
                                  std::string(item) + "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    if (key == "buildings") {
      out.buildings = parseInt(key, value);
    } else if (key == "floors") {
      out.floorsPerBuilding = parseInt(key, value);
    } else if (key == "cols") {
      out.gridCols = parseInt(key, value);
    } else if (key == "rows") {
      out.gridRows = parseInt(key, value);
    } else if (key == "spacing") {
      out.spacingMeters = parseDouble(key, value);
    } else if (key == "aps-per-floor") {
      out.apsPerFloor = parseInt(key, value);
    } else if (key == "ap-radius") {
      out.apVisibilityRadiusMeters = parseDouble(key, value);
    } else if (key == "train-samples") {
      out.trainSamples = parseInt(key, value);
    } else {
      throw util::ConfigError("VenueSpec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  validateVenueSpec(out);
  return out;
}

VenueSpec venueSpecForLocations(std::size_t locations) {
  for (const VenueSpec& preset :
       {presetCampus1k(), presetCampus4k(), presetCampus16k(),
        presetCampus64k()})
    if (locationCount(preset) == locations) return preset;
  throw util::ConfigError(
      "venueSpecForLocations: no preset with exactly " +
      std::to_string(locations) +
      " locations (supported: 1024, 4096, 16384, 65536)");
}

std::string describeVenueSpec(const VenueSpec& spec) {
  return "buildings=" + std::to_string(spec.buildings) +
         ",floors=" + std::to_string(spec.floorsPerBuilding) +
         ",cols=" + std::to_string(spec.gridCols) +
         ",rows=" + std::to_string(spec.gridRows) +
         ",aps-per-floor=" + std::to_string(spec.apsPerFloor);
}

}  // namespace moloc::worldgen
