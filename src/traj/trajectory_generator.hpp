#pragma once

#include <vector>

#include "env/walk_graph.hpp"
#include "util/rng.hpp"

namespace moloc::traj {

/// Generates random walks over the aisle graph — the "user randomly
/// walked along the aisles" workload of the paper's data collection.
///
/// Walks avoid immediately reversing onto the leg just walked (with the
/// configured probability) because people rarely U-turn mid-aisle; this
/// also spreads coverage over the whole hall faster.  With
/// `pauseProbability` > 0, a step may repeat the current node instead of
/// moving — the user lingers for one localization interval (phones keep
/// scanning while their owners read a message), which exercises the
/// engine's stationary handling.
struct TrajectoryParams {
  double uturnProbability = 0.1;  ///< Chance of allowing a U-turn.
  double pauseProbability = 0.0;  ///< Chance of lingering per step.
};

class TrajectoryGenerator {
 public:
  /// Throws std::invalid_argument if the graph has no nodes.
  TrajectoryGenerator(const env::WalkGraph& graph,
                      TrajectoryParams params = {});

  /// A walk of `numLegs` aisle legs starting at `start`.  Each
  /// consecutive pair in the result is adjacent in the graph.  Throws
  /// std::out_of_range for a bad start and std::runtime_error if the
  /// start node is isolated.
  std::vector<env::LocationId> randomWalk(env::LocationId start,
                                          int numLegs,
                                          util::Rng& rng) const;

  /// A walk starting at a uniformly random node.
  std::vector<env::LocationId> randomWalk(int numLegs,
                                          util::Rng& rng) const;

 private:
  const env::WalkGraph& graph_;
  TrajectoryParams params_;
};

}  // namespace moloc::traj
