#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace moloc::traj {

/// A walking user carrying the phone.
///
/// The *actual* gait (true step length, cadence, hence speed) is what
/// the simulator walks with; the *estimated* step length (derived from
/// the profile height/weight, Sec. IV.B.1 / ref. [25]) is what the
/// motion processing unit multiplies step counts by.  The gap between
/// the two is a genuine error source the paper's offset-error numbers
/// include.
struct UserProfile {
  std::string name;
  double heightMeters = 1.75;
  double weightKg = 70.0;
  double trueStepLengthMeters = 0.72;
  double cadenceHz = 1.8;  ///< Steps per second.
  /// The carried device's soft-iron compass distortion (see
  /// sensors::CompassDistortion): a heading-dependent reading error of
  /// up to this amplitude, at a device-specific phase.  This is the
  /// error source behind the paper's observed 10-20 degree reversal
  /// bias (Sec. VI.B.1).
  double softIronAmplitudeDeg = 4.0;
  double softIronPhaseRad = 0.0;
  /// Constant heading offset from how the user habitually carries the
  /// phone.  Zero models a Zee-corrected front end (the paper's
  /// assumption); non-zero values exercise the map-aided calibration
  /// fallback (sensors::CompassCalibrator).
  double placementBiasDeg = 0.0;

  /// Walking speed implied by the true gait.
  double speedMps() const { return trueStepLengthMeters * cadenceHz; }

  /// What the motion processor believes the step length to be.
  double estimatedStepLengthMeters() const;
};

/// The paper's cohort: four users "with diverse height and walking
/// speed" (Sec. VI.A).  True step lengths deviate a few percent from
/// the height-derived estimate, as real gaits do.
std::vector<UserProfile> makeDefaultUsers();

/// A randomized user for property-style sweeps: plausible height,
/// weight, cadence, and a true step length within +-4 % of the
/// anthropometric estimate.
UserProfile makeRandomUser(util::Rng& rng, const std::string& name);

}  // namespace moloc::traj
