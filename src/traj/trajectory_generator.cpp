#include "traj/trajectory_generator.hpp"

#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace moloc::traj {

TrajectoryGenerator::TrajectoryGenerator(const env::WalkGraph& graph,
                                         TrajectoryParams params)
    : graph_(graph), params_(params) {
  if (graph_.nodeCount() == 0)
    throw util::ConfigError("TrajectoryGenerator: empty graph");
}

std::vector<env::LocationId> TrajectoryGenerator::randomWalk(
    env::LocationId start, int numLegs, util::Rng& rng) const {
  std::vector<env::LocationId> walk{start};
  env::LocationId previous = -1;
  env::LocationId current = start;

  for (int leg = 0; leg < numLegs; ++leg) {
    if (rng.chance(params_.pauseProbability)) {
      walk.push_back(current);  // Linger for one interval.
      continue;
    }
    const auto neighbors = graph_.neighbors(current);
    if (neighbors.empty())
      throw util::DataError("TrajectoryGenerator: isolated node");

    // Prefer not to U-turn; fall back to it at a dead end.
    std::vector<env::LocationId> options;
    options.reserve(neighbors.size());
    for (const auto& e : neighbors)
      if (e.to != previous) options.push_back(e.to);

    env::LocationId next;
    if (options.empty() ||
        (previous != -1 && rng.chance(params_.uturnProbability))) {
      next = neighbors[static_cast<std::size_t>(rng.uniformInt(
                           0, static_cast<int>(neighbors.size()) - 1))]
                 .to;
    } else {
      next = options[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<int>(options.size()) - 1))];
    }
    walk.push_back(next);
    previous = current;
    current = next;
  }
  return walk;
}

std::vector<env::LocationId> TrajectoryGenerator::randomWalk(
    int numLegs, util::Rng& rng) const {
  const auto start = static_cast<env::LocationId>(
      rng.uniformInt(0, static_cast<int>(graph_.nodeCount()) - 1));
  return randomWalk(start, numLegs, rng);
}

}  // namespace moloc::traj
