#include "traj/user_profile.hpp"

#include "sensors/step_length.hpp"

namespace moloc::traj {

double UserProfile::estimatedStepLengthMeters() const {
  return sensors::estimateStepLength(heightMeters, weightKg);
}

std::vector<UserProfile> makeDefaultUsers() {
  // True step lengths sit within a few percent of the 0.41 x height
  // estimate, with individual spread in cadence (and hence speed).
  // All four users carry the same prototype phone, as in the paper's
  // deployment, so they share one soft-iron distortion — which is why
  // its heading-dependent error does not average out of the motion
  // database (the paper's 10-20 degree reversal-bias observation).
  constexpr double kDeviceSoftIronDeg = 7.0;
  constexpr double kDeviceSoftIronPhase = 1.0;
  return {
      {"alice", 1.62, 54.0, 0.655, 1.95, kDeviceSoftIronDeg,
       kDeviceSoftIronPhase},
      {"bob", 1.78, 82.0, 0.715, 1.75, kDeviceSoftIronDeg,
       kDeviceSoftIronPhase},
      {"carol", 1.70, 63.0, 0.705, 1.85, kDeviceSoftIronDeg,
       kDeviceSoftIronPhase},
      {"dave", 1.88, 90.0, 0.755, 1.65, kDeviceSoftIronDeg,
       kDeviceSoftIronPhase},
  };
}

UserProfile makeRandomUser(util::Rng& rng, const std::string& name) {
  UserProfile user;
  user.name = name;
  user.heightMeters = rng.uniform(1.50, 1.95);
  user.weightKg = rng.uniform(48.0, 100.0);
  user.cadenceHz = rng.uniform(1.5, 2.1);
  const double estimate = user.estimatedStepLengthMeters();
  user.trueStepLengthMeters = estimate * rng.uniform(0.96, 1.04);
  user.softIronAmplitudeDeg = rng.uniform(2.0, 7.0);
  user.softIronPhaseRad = rng.uniform(0.0, 2.0 * 3.14159265358979);
  return user;
}

}  // namespace moloc::traj
