#include "traj/trace_simulator.hpp"

#include <cmath>
#include <stdexcept>

#include "geometry/angles.hpp"
#include "util/error.hpp"

namespace moloc::traj {

TraceSimulator::TraceSimulator(const radio::RadioEnvironment& radio,
                               const env::WalkGraph& graph,
                               TraceSimulatorParams params)
    : radio_(radio), graph_(graph), params_(params) {}

radio::Fingerprint TraceSimulator::scanAt(env::LocationId location,
                                          double orientationDeg,
                                          util::Rng& rng) const {
  if (scanProvider_) return scanProvider_(location, orientationDeg, rng);
  return radio_.scan(radio_.plan().location(location).pos,
                     orientationDeg, rng);
}

Trace TraceSimulator::simulate(const UserProfile& user,
                               const std::vector<env::LocationId>& route,
                               util::Rng& rng) const {
  if (route.empty())
    throw util::ConfigError("TraceSimulator: empty route");

  const sensors::CompassModel compass(params_.compass);
  const sensors::GyroscopeModel gyro(params_.gyro);
  sensors::AccelerometerModel accel(params_.accel);

  Trace trace;
  trace.user = user;
  trace.compassBiasDeg = compass.drawResidualBias(rng);
  const double gyroBias = gyro.drawBias(rng);
  trace.startTruth = route.front();

  // The initial scan: facing the direction of the upcoming first leg
  // (or north when the route has no legs).
  double initialFacing = 0.0;
  if (route.size() > 1) {
    const auto rlm = graph_.groundTruthRlm(route[0], route[1]);
    if (rlm) initialFacing = rlm->directionDeg;
  }
  trace.initialScan = scanAt(route.front(), initialFacing, rng);

  double lastHeading = initialFacing;
  for (std::size_t leg = 0; leg + 1 < route.size(); ++leg) {
    const env::LocationId from = route[leg];
    const env::LocationId to = route[leg + 1];

    if (from == to) {
      // The user lingers: idle accelerometer, compass around the last
      // facing, a fresh scan at the same location.
      LocalizationInterval interval;
      interval.fromTruth = from;
      interval.toTruth = to;
      interval.trueDirectionDeg = lastHeading;
      interval.trueOffsetMeters = 0.0;

      const auto sampleCount = static_cast<std::size_t>(std::max(
          1.0,
          std::round(params_.pauseDurationSec * params_.accel.sampleRateHz)));
      const auto accelSeries = accel.idleSamples(sampleCount, rng);
      const sensors::CompassDistortion distortion{
          trace.compassBiasDeg + user.placementBiasDeg,
          user.softIronAmplitudeDeg, user.softIronPhaseRad};
      const auto compassSeries =
          compass.readings(lastHeading, distortion, sampleCount, rng);
      const auto gyroSeries =
          gyro.straightWalkRates(sampleCount, gyroBias, rng);

      sensors::ImuTrace imu(params_.accel.sampleRateHz);
      const double dt = 1.0 / params_.accel.sampleRateHz;
      for (std::size_t i = 0; i < sampleCount; ++i)
        imu.append({static_cast<double>(i) * dt, accelSeries[i],
                    compassSeries[i], gyroSeries[i]});
      interval.imu = std::move(imu);
      interval.scanAtArrival = scanAt(to, lastHeading, rng);
      trace.intervals.push_back(std::move(interval));
      continue;
    }

    const auto rlm = graph_.groundTruthRlm(from, to);
    if (!rlm)
      throw util::ConfigError(
          "TraceSimulator: route legs must be adjacent in the graph");

    LocalizationInterval interval;
    interval.fromTruth = from;
    interval.toTruth = to;
    interval.trueDirectionDeg = rlm->directionDeg;
    interval.trueOffsetMeters = rlm->offsetMeters;
    lastHeading = rlm->directionDeg;

    const double duration = rlm->offsetMeters / user.speedMps();
    const auto sampleCount = static_cast<std::size_t>(
        std::max(1.0, std::round(duration * params_.accel.sampleRateHz)));

    const auto accelSeries =
        accel.walkingSamples(sampleCount, user.cadenceHz, rng);
    const sensors::CompassDistortion distortion{
        trace.compassBiasDeg + user.placementBiasDeg,
        user.softIronAmplitudeDeg, user.softIronPhaseRad};
    auto compassSeries = compass.readings(rlm->directionDeg, distortion,
                                          sampleCount, rng);
    compass.maybeDisturb(compassSeries, rng);
    // Aisle legs are straight, so the true yaw rate is zero throughout.
    const auto gyroSeries =
        gyro.straightWalkRates(sampleCount, gyroBias, rng);

    sensors::ImuTrace imu(params_.accel.sampleRateHz);
    const double dt = 1.0 / params_.accel.sampleRateHz;
    for (std::size_t i = 0; i < sampleCount; ++i)
      imu.append({static_cast<double>(i) * dt, accelSeries[i],
                  compassSeries[i], gyroSeries[i]});
    interval.imu = std::move(imu);

    // On arrival the user still faces the walking direction.
    interval.scanAtArrival = scanAt(to, rlm->directionDeg, rng);

    trace.intervals.push_back(std::move(interval));
  }
  return trace;
}

}  // namespace moloc::traj
