#pragma once

#include <functional>
#include <vector>

#include "env/walk_graph.hpp"
#include "radio/radio_environment.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/compass_model.hpp"
#include "sensors/gyroscope_model.hpp"
#include "sensors/imu_trace.hpp"
#include "traj/user_profile.hpp"
#include "util/rng.hpp"

namespace moloc::traj {

/// One localization interval: the user walked one aisle leg, the phone
/// recorded IMU data throughout and scanned WiFi on arrival.
struct LocalizationInterval {
  env::LocationId fromTruth = 0;  ///< Ground-truth leg start.
  env::LocationId toTruth = 0;    ///< Ground-truth leg end.
  double trueDirectionDeg = 0.0;  ///< Map heading of the leg.
  double trueOffsetMeters = 0.0;  ///< Map length of the leg.
  sensors::ImuTrace imu;          ///< Raw sensor data for the leg.
  radio::Fingerprint scanAtArrival;  ///< WiFi scan at the leg's end.
};

/// One full walk: a starting scan plus a sequence of intervals.  Traces
/// feed both the crowdsourced motion-database construction (training
/// traces) and the localization evaluation (test traces).
struct Trace {
  UserProfile user;
  double compassBiasDeg = 0.0;  ///< Residual bias drawn for this walk.
  env::LocationId startTruth = 0;
  radio::Fingerprint initialScan;  ///< Scan at the starting location.
  std::vector<LocalizationInterval> intervals;
};

/// Sensor/radio fidelity knobs for trace generation.
struct TraceSimulatorParams {
  sensors::AccelParams accel;
  sensors::CompassParams compass;
  sensors::GyroParams gyro;
  /// Length of a lingering interval (a repeated node in the route).
  double pauseDurationSec = 3.0;
};

/// Source of the WiFi scan observed at a reference location.  The
/// default draws a fresh sample from the radio model; the paper's
/// trace-driven protocol instead replays held-out site-survey samples
/// (Sec. VI.A), which a custom provider implements.
using ScanProvider = std::function<radio::Fingerprint(
    env::LocationId location, double orientationDeg, util::Rng& rng)>;

/// Walks a user along a node sequence, synthesizing ground truth, IMU
/// data, and WiFi scans — the "data collection" unit of Fig. 2.
class TraceSimulator {
 public:
  TraceSimulator(const radio::RadioEnvironment& radio,
                 const env::WalkGraph& graph,
                 TraceSimulatorParams params = {});

  /// Replaces the scan source (empty provider restores the default).
  void setScanProvider(ScanProvider provider) {
    scanProvider_ = std::move(provider);
  }

  /// Simulates the user walking `route` (consecutive entries must be
  /// adjacent in the graph; throws std::invalid_argument otherwise, or
  /// when the route is empty).
  Trace simulate(const UserProfile& user,
                 const std::vector<env::LocationId>& route,
                 util::Rng& rng) const;

 private:
  radio::Fingerprint scanAt(env::LocationId location,
                            double orientationDeg, util::Rng& rng) const;

  const radio::RadioEnvironment& radio_;
  const env::WalkGraph& graph_;
  TraceSimulatorParams params_;
  ScanProvider scanProvider_;
};

}  // namespace moloc::traj
