#pragma once

#include <vector>

#include "env/floor_plan.hpp"
#include "radio/fingerprint_database.hpp"

namespace moloc::eval {

/// A pair of reference locations whose radio-map fingerprints are
/// nearly identical while the locations themselves are far apart —
/// the paper's "fingerprint twins" (its Sec. VI.B.3 names the pairs
/// (2,15), (10,27) and (13,26) in its hall).
struct TwinPair {
  env::LocationId a = 0;
  env::LocationId b = 0;
  double fingerprintGapDb = 0.0;   ///< phi between radio-map entries.
  double geometricGapMeters = 0.0; ///< Distance between the locations.
};

/// Thresholds defining a twin: fingerprints closer than
/// `maxFingerprintGapDb` while locations farther than
/// `minGeometricGapMeters`.
struct TwinCriteria {
  double maxFingerprintGapDb = 8.0;
  double minGeometricGapMeters = 6.0;
};

/// Scans the radio map for twin pairs, sorted by ascending fingerprint
/// gap (the most confusable first).
std::vector<TwinPair> findFingerprintTwins(
    const radio::FingerprintDatabase& db, const env::FloorPlan& plan,
    TwinCriteria criteria = {});

/// An overall ambiguity score for one location: the geometric distance
/// (metres) to the location with the most similar fingerprint.  High
/// values mean a confusion would be a *large* error — the locations
/// the paper's Fig. 8 isolates.
struct AmbiguityScore {
  env::LocationId location = 0;
  env::LocationId nearestInSignalSpace = 0;
  double fingerprintGapDb = 0.0;
  double errorIfConfusedMeters = 0.0;
};

/// Per-location ambiguity, sorted by descending error-if-confused.
std::vector<AmbiguityScore> ambiguityScores(
    const radio::FingerprintDatabase& db, const env::FloorPlan& plan);

}  // namespace moloc::eval
