#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "env/floor_plan.hpp"
#include "util/stats.hpp"

namespace moloc::eval {

/// One localization outcome: what a method answered vs. the ground
/// truth, with the metric error between the two reference points.
struct LocalizationRecord {
  env::LocationId estimated = 0;
  env::LocationId truth = 0;
  double errorMeters = 0.0;

  /// The paper's "accurate" criterion: the estimate names the
  /// ground-truth reference location.
  bool accurate() const { return estimated == truth; }
};

/// Accumulates localization records and answers the questions the
/// paper's evaluation asks: accuracy (fraction of exact fixes), mean /
/// max / median / percentile error, and the error CDF (Figs. 7-8).
class ErrorStats {
 public:
  void add(const LocalizationRecord& record);
  void addAll(std::span<const LocalizationRecord> records);

  std::size_t count() const { return errors_.size(); }
  bool empty() const { return errors_.empty(); }

  /// Fraction of fixes whose estimate equals the ground truth.
  double accuracy() const;

  double meanError() const { return util::mean(errors_); }
  double maxError() const { return util::maxValue(errors_); }
  double medianError() const { return util::median(errors_); }
  double percentileError(double pct) const {
    return util::percentile(errors_, pct);
  }

  std::span<const double> errors() const { return errors_; }

  /// Empirical CDF of the errors (full resolution).
  std::vector<util::CdfPoint> cdf() const {
    return util::empiricalCdf(errors_);
  }

  /// CDF downsampled for printing.
  std::vector<util::CdfPoint> cdf(std::size_t points) const {
    return util::sampledCdf(errors_, points);
  }

 private:
  std::vector<double> errors_;
  std::size_t exact_ = 0;
};

}  // namespace moloc::eval
