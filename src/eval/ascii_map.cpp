#include "eval/ascii_map.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::eval {

AsciiMap::AsciiMap(const env::FloorPlan& plan, double metersPerCell)
    : plan_(plan), metersPerCell_(metersPerCell) {
  if (metersPerCell <= 0.0)
    throw util::ConfigError("AsciiMap: resolution must be positive");
  // Two characters per horizontal cell approximates square cells in a
  // terminal font.
  columns_ = static_cast<std::size_t>(
                 std::ceil(plan.width() / metersPerCell)) *
                 2 +
             1;
  rows_ = static_cast<std::size_t>(
              std::ceil(plan.height() / metersPerCell)) +
          1;
  grid_.assign(rows_, std::string(columns_, ' '));

  // Rasterize walls by sampling each segment.
  for (const auto& wall : plan.walls()) {
    const double length = wall.length();
    const int samples =
        std::max(2, static_cast<int>(length / (metersPerCell * 0.25)));
    for (int s = 0; s <= samples; ++s) {
      const auto p = wall.pointAt(static_cast<double>(s) / samples);
      grid_[rowOf(p.y)][columnOf(p.x)] = '#';
    }
  }

  // Reference locations as two-digit ids (mod 100).
  for (const auto& loc : plan.locations()) {
    const auto row = rowOf(loc.pos.y);
    const auto col = columnOf(loc.pos.x);
    const int id = loc.id % 100;
    grid_[row][col] = static_cast<char>('0' + id / 10);
    if (col + 1 < columns_)
      grid_[row][col + 1] = static_cast<char>('0' + id % 10);
  }
}

std::size_t AsciiMap::columnOf(double x) const {
  const double clamped = std::clamp(x, 0.0, plan_.width());
  const auto col = static_cast<std::size_t>(clamped / metersPerCell_) * 2;
  return std::min(col, columns_ - 1);
}

std::size_t AsciiMap::rowOf(double y) const {
  const double clamped = std::clamp(y, 0.0, plan_.height());
  // North (max y) at the top row.
  const auto fromBottom =
      static_cast<std::size_t>(clamped / metersPerCell_);
  return rows_ - 1 - std::min(fromBottom, rows_ - 1);
}

void AsciiMap::mark(geometry::Vec2 pos, char symbol) {
  grid_[rowOf(pos.y)][columnOf(pos.x)] = symbol;
}

void AsciiMap::markLocation(env::LocationId id, char symbol) {
  mark(plan_.location(id).pos, symbol);
}

std::string AsciiMap::render() const {
  std::string out;
  out.reserve(rows_ * (columns_ + 1));
  for (const auto& row : grid_) {
    out += row;
    out += '\n';
  }
  return out;
}

}  // namespace moloc::eval
