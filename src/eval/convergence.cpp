#include "eval/convergence.hpp"

namespace moloc::eval {

ConvergenceStats analyzeConvergence(
    std::span<const std::vector<LocalizationRecord>> walks,
    bool onlyErroneousInitial) {
  ConvergenceStats stats;
  double elSum = 0.0;
  ErrorStats subsequent;

  for (const auto& walk : walks) {
    if (walk.empty()) continue;
    if (onlyErroneousInitial && walk.front().accurate()) continue;

    ++stats.tracesAnalyzed;

    std::size_t firstAccurate = walk.size();
    for (std::size_t i = 0; i < walk.size(); ++i) {
      if (walk[i].accurate()) {
        firstAccurate = i;
        break;
      }
    }

    elSum += static_cast<double>(firstAccurate);
    if (firstAccurate == walk.size()) {
      ++stats.tracesNeverAccurate;
      continue;
    }
    for (std::size_t i = firstAccurate + 1; i < walk.size(); ++i)
      subsequent.add(walk[i]);
  }

  if (stats.tracesAnalyzed > 0)
    stats.meanErroneousBeforeFirstAccurate =
        elSum / static_cast<double>(stats.tracesAnalyzed);
  stats.subsequentAccuracy = subsequent.accuracy();
  stats.subsequentMeanError = subsequent.meanError();
  stats.subsequentMaxError = subsequent.maxError();
  return stats;
}

}  // namespace moloc::eval
