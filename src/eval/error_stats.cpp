#include "eval/error_stats.hpp"

namespace moloc::eval {

void ErrorStats::add(const LocalizationRecord& record) {
  errors_.push_back(record.errorMeters);
  if (record.accurate()) ++exact_;
}

void ErrorStats::addAll(std::span<const LocalizationRecord> records) {
  for (const auto& r : records) add(r);
}

double ErrorStats::accuracy() const {
  if (errors_.empty()) return 0.0;
  return static_cast<double>(exact_) / static_cast<double>(errors_.size());
}

}  // namespace moloc::eval
