#pragma once

#include <span>
#include <vector>

#include "eval/error_stats.hpp"

namespace moloc::eval {

/// Convergence summary (Table I of the paper): over walks whose initial
/// estimate was erroneous, how many erroneous localizations (EL) precede
/// the first accurate one, and how the method performs afterwards.
struct ConvergenceStats {
  double meanErroneousBeforeFirstAccurate = 0.0;  ///< "EL" in Table I.
  double subsequentAccuracy = 0.0;   ///< Exact-fix rate after converging.
  double subsequentMeanError = 0.0;  ///< Metres.
  double subsequentMaxError = 0.0;   ///< Metres.
  std::size_t tracesAnalyzed = 0;    ///< Walks entering the statistics.
  std::size_t tracesNeverAccurate = 0;  ///< Walks with no accurate fix.
};

/// Analyzes per-walk record sequences (each inner span is one walk's
/// fixes in order, the initial fix first).
///
/// When `onlyErroneousInitial` is set (the paper's Table I protocol),
/// walks whose very first fix was already accurate are skipped.  A walk
/// that never produces an accurate fix contributes its full length to
/// the EL average and nothing to the subsequent statistics.
ConvergenceStats analyzeConvergence(
    std::span<const std::vector<LocalizationRecord>> walks,
    bool onlyErroneousInitial = true);

}  // namespace moloc::eval
