#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/moloc_engine.hpp"
#include "core/motion_database.hpp"
#include "core/motion_database_builder.hpp"
#include "env/office_hall.hpp"
#include "eval/error_stats.hpp"
#include "radio/fingerprint_database.hpp"
#include "radio/radio_environment.hpp"
#include "radio/site_survey.hpp"
#include "sensors/motion_processor.hpp"
#include "traj/trace_simulator.hpp"
#include "traj/trajectory_generator.hpp"
#include "traj/user_profile.hpp"
#include "util/rng.hpp"

namespace moloc::eval {

/// Everything needed to stand up the paper's experiment (Sec. VI.A) in
/// one object: the office hall, the radio environment with the chosen
/// AP count, the surveyed fingerprint database, and a motion database
/// crowdsourced from simulated training walks.
struct WorldConfig {
  int apCount = 6;            ///< 4, 5 or 6 in the paper.
  std::uint64_t seed = 42;    ///< Master seed; everything derives.
  radio::PropagationParams propagation;
  radio::SurveyConfig survey;
  traj::TraceSimulatorParams traceSim;
  sensors::MotionProcessorParams motionProc;
  core::BuilderConfig builder;
  core::MoLocConfig moloc;
  int trainingTraces = 150;       ///< Paper: 150 training walks.
  int legsPerTrainingTrace = 20;  ///< Aisle legs per training walk.
  /// The paper's trace-driven protocol (Sec. VI.A): instead of fresh
  /// radio-model draws, walkers' scans replay held-out site-survey
  /// samples — the `motionEstimate` partition during motion-DB
  /// training and the `test` partition during evaluation, cycling
  /// within each location.
  bool replayHeldOutScans = false;
  /// Map-aided compass calibration (the Zee fallback): estimate each
  /// user's constant heading bias from the training legs and subtract
  /// it from training observations and evaluation-time measurements.
  bool calibrateCompass = false;
  /// Build the motion database with the incremental
  /// core::OnlineMotionDatabase (deployment mode) instead of the batch
  /// builder.  The builder report then carries the online counters.
  bool useOnlineBuilder = false;
  /// Overrides every user's placement bias (degrees); models a cohort
  /// without a placement-correcting front end.
  double userPlacementBiasDeg = 0.0;
};

class ExperimentWorld {
 public:
  /// The paper's office hall.
  explicit ExperimentWorld(WorldConfig config = {});

  /// Any other deployment site (e.g. env::makeCorridorBuilding()).
  /// `config.apCount` indexes into the site's AP positions.
  ExperimentWorld(env::Site site, WorldConfig config);

  const WorldConfig& config() const { return config_; }
  const env::OfficeHall& hall() const { return hall_; }
  const radio::RadioEnvironment& radio() const { return *radio_; }
  const radio::FingerprintDatabase& fingerprintDb() const {
    return fingerprintDb_;
  }
  const core::MotionDatabase& motionDb() const { return motionDb_; }
  const core::BuilderReport& builderReport() const {
    return builderReport_;
  }
  const std::vector<traj::UserProfile>& users() const { return users_; }

  /// The RNG stream for evaluation-time draws (test traces); training
  /// used an independent stream, so adding test work never perturbs the
  /// trained databases.
  util::Rng& evalRng() { return evalRng_; }

  /// Simulates one walk of `numLegs` aisle legs by `user` from a random
  /// start.
  traj::Trace makeTrace(const traj::UserProfile& user, int numLegs,
                        util::Rng& rng) const;

  /// Runs the motion processing unit on one interval of a trace.
  std::optional<sensors::MotionMeasurement> processInterval(
      const traj::LocalizationInterval& interval,
      const traj::UserProfile& user) const;

  /// A fresh MoLoc engine bound to this world's databases.
  core::MoLocEngine makeEngine() const;

  /// The calibrated heading-bias correction for `user` (degrees); 0
  /// when calibration is disabled or the user is unknown.
  double compassBiasCorrectionDeg(const traj::UserProfile& user) const;

  /// Euclidean distance between two reference locations (metres).
  double locationDistance(env::LocationId a, env::LocationId b) const;

 private:
  void buildMotionDatabase(util::Rng& trainingRng);

  WorldConfig config_;
  env::OfficeHall hall_;
  std::unique_ptr<radio::RadioEnvironment> radio_;
  radio::SurveyData surveyData_;
  radio::FingerprintDatabase fingerprintDb_;
  core::MotionDatabase motionDb_;
  core::BuilderReport builderReport_;
  std::vector<traj::UserProfile> users_;
  std::vector<double> userBiasCorrections_;  ///< Parallel to users_.
  std::unique_ptr<traj::TraceSimulator> traceSim_;
  std::unique_ptr<traj::TrajectoryGenerator> trajectories_;
  util::Rng evalRng_;
};

/// Paired per-interval outcomes of MoLoc and the WiFi baseline on one
/// test walk.  The first entry is the initial fix at the walk's start.
struct ComparisonOutcome {
  std::vector<LocalizationRecord> moloc;
  std::vector<LocalizationRecord> wifi;
};

/// Runs `numTraces` test walks (users cycled round-robin) through both
/// MoLoc and the WiFi baseline and returns the paired records.
std::vector<ComparisonOutcome> runComparison(ExperimentWorld& world,
                                             int numTraces,
                                             int legsPerTrace);

}  // namespace moloc::eval
