#include "eval/ambiguity.hpp"

#include <algorithm>
#include <limits>

namespace moloc::eval {

std::vector<TwinPair> findFingerprintTwins(
    const radio::FingerprintDatabase& db, const env::FloorPlan& plan,
    TwinCriteria criteria) {
  const auto ids = db.locationIds();
  std::vector<TwinPair> twins;
  for (std::size_t x = 0; x < ids.size(); ++x) {
    for (std::size_t y = x + 1; y < ids.size(); ++y) {
      const double fingerprintGap =
          radio::dissimilarity(db.entry(ids[x]), db.entry(ids[y]));
      if (fingerprintGap > criteria.maxFingerprintGapDb) continue;
      const double geometricGap = geometry::distance(
          plan.location(ids[x]).pos, plan.location(ids[y]).pos);
      if (geometricGap < criteria.minGeometricGapMeters) continue;
      twins.push_back({ids[x], ids[y], fingerprintGap, geometricGap});
    }
  }
  std::sort(twins.begin(), twins.end(),
            [](const TwinPair& a, const TwinPair& b) {
              return a.fingerprintGapDb < b.fingerprintGapDb;
            });
  return twins;
}

std::vector<AmbiguityScore> ambiguityScores(
    const radio::FingerprintDatabase& db, const env::FloorPlan& plan) {
  const auto ids = db.locationIds();
  std::vector<AmbiguityScore> scores;
  scores.reserve(ids.size());
  for (const auto id : ids) {
    AmbiguityScore score;
    score.location = id;
    score.fingerprintGapDb = std::numeric_limits<double>::infinity();
    for (const auto other : ids) {
      if (other == id) continue;
      const double gap =
          radio::dissimilarity(db.entry(id), db.entry(other));
      if (gap < score.fingerprintGapDb) {
        score.fingerprintGapDb = gap;
        score.nearestInSignalSpace = other;
      }
    }
    if (!ids.empty() && ids.size() > 1)
      score.errorIfConfusedMeters = geometry::distance(
          plan.location(id).pos,
          plan.location(score.nearestInSignalSpace).pos);
    scores.push_back(score);
  }
  std::sort(scores.begin(), scores.end(),
            [](const AmbiguityScore& a, const AmbiguityScore& b) {
              return a.errorIfConfusedMeters > b.errorIfConfusedMeters;
            });
  return scores;
}

}  // namespace moloc::eval
