#include "eval/experiment_world.hpp"

#include <memory>
#include <stdexcept>

#include "baseline/wifi_fingerprinting.hpp"
#include "geometry/angles.hpp"
#include "core/online_motion_database.hpp"
#include "sensors/compass_calibrator.hpp"
#include "util/error.hpp"

namespace moloc::eval {

namespace {

/// A replay provider cycling through one sample partition per location
/// (the paper's trace-driven protocol).  The shared cursor state makes
/// consecutive visits to a location see different held-out samples.
traj::ScanProvider makeReplayProvider(
    const radio::SurveyData& survey,
    std::vector<radio::Fingerprint> radio::LocationSamples::*partition) {
  auto cursors =
      std::make_shared<std::vector<std::size_t>>(survey.samples.size(), 0);
  return [&survey, partition, cursors](
             env::LocationId location, double /*orientationDeg*/,
             util::Rng& /*rng*/) -> radio::Fingerprint {
    const auto& samples =
        survey.samples.at(static_cast<std::size_t>(location)).*partition;
    if (samples.empty())
      throw util::StateError(
          "ExperimentWorld: replay partition is empty");
    auto& cursor = (*cursors)[static_cast<std::size_t>(location)];
    const auto& sample = samples[cursor % samples.size()];
    ++cursor;
    return sample;
  };
}

}  // namespace

ExperimentWorld::ExperimentWorld(WorldConfig config)
    : ExperimentWorld(env::makeOfficeHall(), config) {}

ExperimentWorld::ExperimentWorld(env::Site site, WorldConfig config)
    : config_(config), hall_(std::move(site)), evalRng_(0) {
  if (config_.apCount < 1 ||
      static_cast<std::size_t>(config_.apCount) >
          hall_.apPositions.size())
    throw util::ConfigError("ExperimentWorld: bad AP count");

  // Independent derived streams: survey, motion training, evaluation.
  util::Rng master(config_.seed);
  util::Rng surveyRng = master.split();
  util::Rng trainingRng = master.split();
  evalRng_ = master.split();

  std::vector<radio::AccessPoint> aps;
  for (int i = 0; i < config_.apCount; ++i)
    aps.push_back({i, hall_.apPositions[static_cast<std::size_t>(i)]});
  radio_ = std::make_unique<radio::RadioEnvironment>(
      hall_.plan, std::move(aps), config_.propagation);

  surveyData_ = radio::conductSurvey(*radio_, config_.survey, surveyRng);
  fingerprintDb_ = surveyData_.buildDatabase();

  users_ = traj::makeDefaultUsers();
  if (config_.userPlacementBiasDeg != 0.0)
    for (auto& user : users_)
      user.placementBiasDeg = config_.userPlacementBiasDeg;
  userBiasCorrections_.assign(users_.size(), 0.0);
  traceSim_ = std::make_unique<traj::TraceSimulator>(*radio_, hall_.graph,
                                                     config_.traceSim);
  trajectories_ =
      std::make_unique<traj::TrajectoryGenerator>(hall_.graph);

  if (config_.replayHeldOutScans)
    traceSim_->setScanProvider(makeReplayProvider(
        surveyData_, &radio::LocationSamples::motionEstimate));

  buildMotionDatabase(trainingRng);

  if (config_.replayHeldOutScans)
    traceSim_->setScanProvider(
        makeReplayProvider(surveyData_, &radio::LocationSamples::test));
}

void ExperimentWorld::buildMotionDatabase(util::Rng& trainingRng) {
  const sensors::MotionProcessor processor(config_.motionProc);
  const baseline::WifiFingerprinting wifi(fingerprintDb_);

  // Crowdsourcing (Sec. IV.B): the walker's phone self-localizes by
  // plain fingerprinting at each interval boundary and logs the RLM
  // measured in between.  Observations are collected first so the
  // optional compass calibration can run before the database is built.
  struct Observation {
    std::size_t userIndex;
    env::LocationId estimatedStart;
    env::LocationId estimatedEnd;
    double directionDeg;
    double offsetMeters;
  };
  std::vector<Observation> observations;

  for (int t = 0; t < config_.trainingTraces; ++t) {
    const auto userIndex = static_cast<std::size_t>(t) % users_.size();
    const auto& user = users_[userIndex];
    const auto route = trajectories_->randomWalk(
        config_.legsPerTrainingTrace, trainingRng);
    const auto trace = traceSim_->simulate(user, route, trainingRng);

    env::LocationId estimatedStart = wifi.localize(trace.initialScan);
    for (const auto& interval : trace.intervals) {
      const env::LocationId estimatedEnd =
          wifi.localize(interval.scanAtArrival);
      const auto motion = processor.process(
          interval.imu, user.estimatedStepLengthMeters());
      if (motion)
        observations.push_back({userIndex, estimatedStart, estimatedEnd,
                                motion->directionDeg,
                                motion->offsetMeters});
      estimatedStart = estimatedEnd;
    }
  }

  if (config_.calibrateCompass) {
    // Map-aided calibration: legs whose estimated endpoints are
    // map-adjacent vote for each user's constant heading bias; the
    // robust (median) estimate resists mis-estimated legs.
    std::vector<sensors::CompassCalibrator> calibrators(users_.size());
    for (const auto& obs : observations) {
      const auto rlm =
          hall_.graph.groundTruthRlm(obs.estimatedStart, obs.estimatedEnd);
      if (!rlm) continue;
      calibrators[obs.userIndex].addLeg(obs.directionDeg,
                                        rlm->directionDeg);
    }
    for (std::size_t u = 0; u < users_.size(); ++u)
      userBiasCorrections_[u] = calibrators[u].robustBiasDeg();
  }

  if (config_.useOnlineBuilder) {
    core::OnlineMotionDatabase online(hall_.plan, config_.builder);
    for (const auto& obs : observations)
      online.addObservation(
          obs.estimatedStart, obs.estimatedEnd,
          obs.directionDeg - userBiasCorrections_[obs.userIndex],
          obs.offsetMeters);
    motionDb_ = online.database();
    builderReport_ = core::BuilderReport{};
    builderReport_.observations = online.counters().observations;
    builderReport_.rejectedCoarse = online.counters().rejectedCoarse;
    builderReport_.droppedSelfPairs = online.counters().droppedSelfPairs;
    builderReport_.pairsStored = motionDb_.entryCount() / 2;
    return;
  }

  core::MotionDatabaseBuilder builder(hall_.plan, config_.builder);
  for (const auto& obs : observations)
    builder.addObservation(
        obs.estimatedStart, obs.estimatedEnd,
        obs.directionDeg - userBiasCorrections_[obs.userIndex],
        obs.offsetMeters);
  motionDb_ = builder.build(builderReport_);
}

traj::Trace ExperimentWorld::makeTrace(const traj::UserProfile& user,
                                       int numLegs, util::Rng& rng) const {
  const auto route = trajectories_->randomWalk(numLegs, rng);
  return traceSim_->simulate(user, route, rng);
}

std::optional<sensors::MotionMeasurement> ExperimentWorld::processInterval(
    const traj::LocalizationInterval& interval,
    const traj::UserProfile& user) const {
  const sensors::MotionProcessor processor(config_.motionProc);
  auto motion =
      processor.process(interval.imu, user.estimatedStepLengthMeters());
  if (motion) {
    const double correction = compassBiasCorrectionDeg(user);
    if (correction != 0.0)
      motion->directionDeg =
          geometry::normalizeDeg(motion->directionDeg - correction);
  }
  return motion;
}

double ExperimentWorld::compassBiasCorrectionDeg(
    const traj::UserProfile& user) const {
  for (std::size_t u = 0; u < users_.size(); ++u)
    if (users_[u].name == user.name) return userBiasCorrections_[u];
  return 0.0;
}

core::MoLocEngine ExperimentWorld::makeEngine() const {
  return core::MoLocEngine(fingerprintDb_, motionDb_, config_.moloc);
}

double ExperimentWorld::locationDistance(env::LocationId a,
                                         env::LocationId b) const {
  return geometry::distance(hall_.plan.location(a).pos,
                            hall_.plan.location(b).pos);
}

std::vector<ComparisonOutcome> runComparison(ExperimentWorld& world,
                                             int numTraces,
                                             int legsPerTrace) {
  std::vector<ComparisonOutcome> outcomes;
  outcomes.reserve(static_cast<std::size_t>(numTraces));

  const baseline::WifiFingerprinting wifi(world.fingerprintDb());
  auto engine = world.makeEngine();
  const auto& users = world.users();

  for (int t = 0; t < numTraces; ++t) {
    const auto& user = users[static_cast<std::size_t>(t) % users.size()];
    const auto trace = world.makeTrace(user, legsPerTrace, world.evalRng());

    ComparisonOutcome outcome;
    engine.reset();

    auto record = [&world](env::LocationId estimated,
                           env::LocationId truth) {
      return LocalizationRecord{estimated, truth,
                                world.locationDistance(estimated, truth)};
    };

    // Initial fix at the walk's start (no motion yet).
    const auto initial = engine.localize(trace.initialScan, std::nullopt);
    outcome.moloc.push_back(record(initial.location, trace.startTruth));
    outcome.wifi.push_back(
        record(wifi.localize(trace.initialScan), trace.startTruth));

    for (const auto& interval : trace.intervals) {
      const auto motion = world.processInterval(interval, user);
      const auto estimate = engine.localize(interval.scanAtArrival, motion);
      outcome.moloc.push_back(record(estimate.location, interval.toTruth));
      outcome.wifi.push_back(
          record(wifi.localize(interval.scanAtArrival), interval.toTruth));
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

}  // namespace moloc::eval
