#pragma once

#include <string>
#include <vector>

#include "env/floor_plan.hpp"

namespace moloc::eval {

/// Renders a floor plan as ASCII art for terminal output: reference
/// locations (two-digit ids), walls ('#'), and optional per-run marks
/// (e.g. 'T' for the ground truth, 'M'/'W' for method estimates).
///
/// Used by the examples to show where estimates land relative to the
/// truth without leaving the terminal.
class AsciiMap {
 public:
  /// `metersPerCell` controls resolution; each cell is one character
  /// (plans render roughly 2x wider than tall to compensate for
  /// character aspect).  Throws std::invalid_argument for non-positive
  /// resolution.
  AsciiMap(const env::FloorPlan& plan, double metersPerCell = 1.0);

  /// Overlays a single-character mark at a world position (clamped to
  /// the plan bounds).  Later marks overwrite earlier ones.
  void mark(geometry::Vec2 pos, char symbol);

  /// Overlays a mark at a reference location.
  void markLocation(env::LocationId id, char symbol);

  /// The rendered map, row per line, north at the top.
  std::string render() const;

 private:
  std::size_t columnOf(double x) const;
  std::size_t rowOf(double y) const;

  const env::FloorPlan& plan_;
  double metersPerCell_;
  std::size_t columns_;
  std::size_t rows_;
  std::vector<std::string> grid_;
};

}  // namespace moloc::eval
