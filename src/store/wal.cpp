#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "store/crc32c.hpp"
#include "store/posix_file.hpp"
#include "util/error.hpp"
#include "util/posix_error.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::store {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'L', 'O', 'C', 'W', 'A', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = sizeof kMagic + 4 + 8;
constexpr std::uint8_t kObservationType = 1;
// type + seq + start + end + direction + offset.
constexpr std::uint32_t kObservationPayloadBytes = 1 + 8 + 4 + 4 + 8 + 8;
constexpr std::size_t kFrameOverhead = 4 + 4;  // length + crc32c.
/// Parsing sanity bound; real v1 payloads are 33 bytes, but the frame
/// format is length-prefixed so future record types can grow.
constexpr std::uint32_t kMaxPayloadBytes = 4096;

std::string errnoMessage(const std::string& what,
                         const std::string& path) {
  return what + " '" + path + "': " + util::errnoMessage(errno);
}

std::string segmentFileName(std::uint64_t index) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "wal-%016llu.log",
                static_cast<unsigned long long>(index));
  return buffer;
}

bool parseSegmentIndex(const std::string& name, std::uint64_t& index) {
  if (name.size() != 24 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(20, 4, ".log") != 0)
    return false;
  index = 0;
  for (int i = 4; i < 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    index = index * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return true;
}

/// True when a complete, CRC-valid v1 observation frame starts at any
/// offset in [from, end of buffer) — the probe distinguishing a
/// damaged *tail* (nothing valid follows; crash fallout) from damage
/// *inside* the log (valid acknowledged records follow; corruption).
/// Scanning every byte offset is O(n * record) but runs only when a
/// record already failed its checksum.
bool validRecordAfter(const std::string& buffer, std::size_t from) {
  if (buffer.size() < kFrameOverhead + kObservationPayloadBytes)
    return false;
  const std::size_t lastStart =
      buffer.size() - kFrameOverhead - kObservationPayloadBytes;
  for (std::size_t o = from; o <= lastStart; ++o) {
    detail::Cursor frame(buffer.data() + o, kFrameOverhead);
    const std::uint32_t length = frame.readU32();
    if (length != kObservationPayloadBytes) continue;
    if (o + kFrameOverhead + length > buffer.size()) continue;
    const std::uint32_t storedCrc = frame.readU32();
    const unsigned char* payload =
        reinterpret_cast<const unsigned char*>(buffer.data()) + o +
        kFrameOverhead;
    if (payload[0] != kObservationType) continue;
    if (crc32c(payload, length) == storedCrc) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(std::string dir, WalConfig config,
                     std::uint64_t nextSeq, std::uint64_t segmentIndex)
    : dir_(std::move(dir)),
      config_(config),
      nextSeq_(nextSeq),
      segmentIndex_(segmentIndex) {
  if (config_.fsync == FsyncPolicy::kEveryN && config_.fsyncEveryN == 0)
    throw util::ConfigError(
        "WalWriter: fsyncEveryN must be >= 1 under FsyncPolicy::kEveryN");
  if (nextSeq_ == 0 || segmentIndex_ == 0)
    throw util::ConfigError(
        "WalWriter: sequence numbers and segment indices are 1-based");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw StoreError("cannot create directory '" + dir_ +
                     "': " + ec.message());
  openSegment();
}

WalWriter::~WalWriter() {
  if (fd_ < 0) return;
  // Best-effort: never throw from a destructor.  kNone stays honest
  // and skips the sync even here.
  if (config_.fsync != FsyncPolicy::kNone && unsyncedRecords_ > 0)
    util::retryEintr([&] { return ::fsync(fd_); });
  ::close(fd_);
}

void WalWriter::openSegment() {
  const std::string path = dir_ + "/" + segmentFileName(segmentIndex_);
  // O_EXCL: segments are immutable once closed; silently reopening one
  // (an index-allocation bug, or a leftover file) must fail loudly
  // rather than append over history.
  fd_ = util::retryEintr(
      [&] { return ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644); });
  if (fd_ < 0)
    throw StoreError(errnoMessage("cannot create WAL segment", path));

  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kMagic, sizeof kMagic);
  detail::putU32(header, kVersion);
  detail::putU64(header, nextSeq_);
  detail::writeAll(fd_, header.data(), header.size(), path);
  if (config_.fsync != FsyncPolicy::kNone) {
    detail::fsyncFd(fd_, path);
    detail::fsyncDirectory(dir_);
  }

  active_ = SegmentInfo{segmentIndex_, path, nextSeq_, 0, 0};
  activeBytes_ = kHeaderBytes;
  unsyncedRecords_ = 0;
  ++segmentIndex_;
  ++stats_.segmentsCreated;
}

void WalWriter::maybeRotate(std::size_t incomingFrameBytes) {
  if (active_.records == 0) return;  // Always fit one record.
  if (activeBytes_ + incomingFrameBytes <= config_.segmentMaxBytes)
    return;
  if (config_.fsync != FsyncPolicy::kNone && unsyncedRecords_ > 0)
    syncActive();
  ::close(fd_);
  fd_ = -1;
  closed_.push_back(active_);
  openSegment();
}

std::uint64_t WalWriter::append(env::LocationId estimatedStart,
                                env::LocationId estimatedEnd,
                                double directionDeg,
                                double offsetMeters) {
  std::string frame;
  frame.reserve(kFrameOverhead + kObservationPayloadBytes);
  detail::putU32(frame, kObservationPayloadBytes);
  detail::putU32(frame, 0);  // CRC backpatched below.
  detail::putU8(frame, kObservationType);
  detail::putU64(frame, nextSeq_);
  detail::putI32(frame, estimatedStart);
  detail::putI32(frame, estimatedEnd);
  detail::putF64(frame, directionDeg);
  detail::putF64(frame, offsetMeters);
  const std::uint32_t crc =
      crc32c(frame.data() + kFrameOverhead, kObservationPayloadBytes);
  frame[4] = static_cast<char>(crc & 0xff);
  frame[5] = static_cast<char>((crc >> 8) & 0xff);
  frame[6] = static_cast<char>((crc >> 16) & 0xff);
  frame[7] = static_cast<char>((crc >> 24) & 0xff);

  maybeRotate(frame.size());
  detail::writeAll(fd_, frame.data(), frame.size(), active_.path);

  activeBytes_ += frame.size();
  stats_.bytes += frame.size();
  ++stats_.records;
  ++active_.records;
  active_.lastSeq = nextSeq_;
  ++unsyncedRecords_;
  switch (config_.fsync) {
    case FsyncPolicy::kEveryRecord:
      syncActive();
      break;
    case FsyncPolicy::kEveryN:
      if (unsyncedRecords_ >= config_.fsyncEveryN) syncActive();
      break;
    case FsyncPolicy::kNone:
      break;
  }
  return nextSeq_++;
}

void WalWriter::sync() {
  if (unsyncedRecords_ > 0) syncActive();
}

void WalWriter::syncActive() {
  detail::fsyncFd(fd_, active_.path);
  ++stats_.fsyncs;
  unsyncedRecords_ = 0;
}

std::vector<SegmentInfo> WalWriter::takeClosedSegments() {
  return std::exchange(closed_, {});
}

SegmentInfo WalWriter::activeSegment() const { return active_; }

// ---------------------------------------------------------------------------
// WalReader

WalReader::WalReader(std::string dir) : dir_(std::move(dir)) {}

namespace {

struct SegmentFile {
  std::uint64_t index = 0;
  std::string path;
};

std::vector<SegmentFile> listSegments(const std::string& dir) {
  std::vector<SegmentFile> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return files;  // Missing directory reads as an empty log.
  for (const auto& entry : it) {
    std::uint64_t index = 0;
    if (!entry.is_regular_file()) continue;
    if (!parseSegmentIndex(entry.path().filename().string(), index))
      continue;
    files.push_back({index, entry.path().string()});
  }
  std::sort(files.begin(), files.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.index < b.index;
            });
  return files;
}

}  // namespace

WalScan WalReader::replay(
    const std::function<void(const ObservationRecord&)>& fn) const {
  WalScan out;
  const auto files = listSegments(dir_);
  if (files.empty()) return out;
  out.nextSegmentIndex = files.back().index + 1;

  std::uint64_t prevSeq = 0;
  bool chainStarted = false;
  for (std::size_t f = 0; f < files.size(); ++f) {
    const bool isLast = f + 1 == files.size();
    const std::string& path = files[f].path;
    std::string buffer;
    if (!detail::readFile(path, buffer))
      throw StoreError(errnoMessage("cannot open WAL segment", path));

    if (isLast) out.tailPath = path;

    if (buffer.size() < kHeaderBytes) {
      // Crash during segment creation: tolerable only on the final
      // segment (writers never leave a headerless file behind a
      // later one).
      if (!isLast)
        throw CorruptionError("truncated segment header in '" + path +
                              "'");
      out.tailDamaged = true;
      out.tailValidBytes = 0;
      out.tailBytesDropped += buffer.size();
      break;
    }
    detail::Cursor header(buffer.data(), kHeaderBytes);
    char magic[sizeof kMagic];
    header.readBytes(magic, sizeof magic);
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
      throw CorruptionError("bad segment magic in '" + path + "'");
    const std::uint32_t version = header.readU32();
    if (version != kVersion)
      throw CorruptionError("unsupported WAL segment version " +
                            std::to_string(version) + " in '" + path +
                            "'");
    const std::uint64_t firstSeq = header.readU64();
    if (firstSeq == 0)
      throw CorruptionError("bad segment header firstSeq 0 in '" + path +
                            "' (sequence numbers are 1-based)");
    if (chainStarted && firstSeq != prevSeq + 1)
      throw CorruptionError(
          "sequence gap: '" + path + "' starts at seq " +
          std::to_string(firstSeq) + ", expected " +
          std::to_string(prevSeq + 1) + " (missing or reordered segment)");
    chainStarted = true;
    // The header pins a sequence lower bound even when no record
    // follows: a segment starting at firstSeq means seqs 1..firstSeq-1
    // were already assigned (and possibly checkpoint-compacted away).
    // Without this, a restart behind a record-free active segment would
    // report lastSeq = 0 and the next writer would reissue
    // checkpoint-covered sequence numbers — which recovery then skips
    // as already applied, silently losing acknowledged records.
    prevSeq = std::max(prevSeq, firstSeq - 1);

    SegmentInfo info{files[f].index, path, firstSeq, 0, 0};
    std::size_t offset = kHeaderBytes;
    bool stop = false;
    while (offset < buffer.size()) {
      // On a bad frame: decide torn tail (tolerate, stop) vs mid-log
      // corruption (raise).  Only the final segment can carry a torn
      // tail, and only when no valid record follows the damage.
      const auto damaged = [&](const std::string& why) {
        if (!isLast)
          throw CorruptionError(why + " in '" + path + "' at offset " +
                                std::to_string(offset) +
                                " (mid-log corruption)");
        if (validRecordAfter(buffer, offset + 1))
          throw CorruptionError(
              why + " in '" + path + "' at offset " +
              std::to_string(offset) +
              ", with valid records after it (mid-log corruption)");
        out.tailDamaged = true;
        out.tailValidBytes = offset;
        out.tailBytesDropped += buffer.size() - offset;
        stop = true;
      };

      const std::size_t remaining = buffer.size() - offset;
      if (remaining < kFrameOverhead) {
        damaged("truncated record frame");
        break;
      }
      detail::Cursor frame(buffer.data() + offset, remaining);
      const std::uint32_t length = frame.readU32();
      const std::uint32_t storedCrc = frame.readU32();
      if (length > kMaxPayloadBytes) {
        damaged("implausible record length " + std::to_string(length));
        break;
      }
      if (kFrameOverhead + length > remaining) {
        damaged("record extends past end of segment");
        break;
      }
      const char* payload = buffer.data() + offset + kFrameOverhead;
      if (crc32c(payload, length) != storedCrc) {
        damaged("record checksum mismatch");
        break;
      }

      // CRC-valid frame: structural violations past this point cannot
      // be torn writes and always raise.
      detail::Cursor body(payload, length);
      const std::uint8_t type = body.readU8();
      if (type != kObservationType)
        throw CorruptionError("unknown record type " +
                              std::to_string(type) + " in '" + path +
                              "' at offset " + std::to_string(offset));
      if (length != kObservationPayloadBytes)
        throw CorruptionError("bad observation record size in '" + path +
                              "' at offset " + std::to_string(offset));
      ObservationRecord record;
      record.seq = body.readU64();
      record.estimatedStart = body.readI32();
      record.estimatedEnd = body.readI32();
      record.directionDeg = body.readF64();
      record.offsetMeters = body.readF64();
      if (record.seq <= prevSeq)
        throw CorruptionError(
            "sequence regression (seq " + std::to_string(record.seq) +
            " after " + std::to_string(prevSeq) + ") in '" + path + "'");

      if (fn) fn(record);
      prevSeq = record.seq;
      info.lastSeq = record.seq;
      ++info.records;
      ++out.records;
      offset += kFrameOverhead + length;
    }
    if (isLast && !out.tailDamaged) out.tailValidBytes = buffer.size();
    out.segments.push_back(info);
    if (stop) break;
  }
  out.lastSeq = prevSeq;
  return out;
}

WalScan WalReader::scan() const { return replay(nullptr); }

WalScan WalReader::repair() const {
  WalScan first = scan();
  if (!first.tailDamaged) return first;
  if (first.tailValidBytes == 0) {
    // Even the header was torn: the file holds nothing; remove it so a
    // later segment never sits behind an unparseable one.
    const auto slash = first.tailPath.find_last_of('/');
    detail::removeFileDurably(
        first.tailPath,
        slash == std::string::npos ? "." : first.tailPath.substr(0, slash));
  } else {
    if (util::retryEintr([&] {
          return ::truncate(first.tailPath.c_str(),
                            static_cast<off_t>(first.tailValidBytes));
        }) != 0)
      throw StoreError(
          errnoMessage("cannot truncate damaged tail of", first.tailPath));
    const int fd = util::retryEintr(
        [&] { return ::open(first.tailPath.c_str(), O_WRONLY); });
    if (fd < 0)
      throw StoreError(errnoMessage("cannot reopen", first.tailPath));
    const int rc = util::retryEintr([&] { return ::fsync(fd); });
    ::close(fd);
    if (rc != 0)
      throw StoreError(errnoMessage("fsync failed on", first.tailPath));
  }
  WalScan repaired = scan();
  // Never reuse an index the damaged file may have burned.
  repaired.nextSegmentIndex =
      std::max(repaired.nextSegmentIndex, first.nextSegmentIndex);
  repaired.tailBytesDropped = first.tailBytesDropped;
  return repaired;
}

}  // namespace moloc::store
