#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/online_motion_database.hpp"
#include "radio/fingerprint_database.hpp"

namespace moloc::store {

/// One checkpoint: the full intake state as of WAL sequence
/// `throughSeq`, plus (optionally) the radio map, which a deployment
/// usually wants co-located with the motion state it was serving.
struct CheckpointData {
  /// Every WAL record with seq <= throughSeq is subsumed by this
  /// checkpoint; recovery replays only records after it.
  std::uint64_t throughSeq = 0;
  core::OnlineMotionDatabase::Snapshot snapshot;
  std::optional<radio::FingerprintDatabase> fingerprints;
};

/// Serializes `data` (binary, little-endian, CRC32C-sealed) and
/// publishes it atomically as `dir`/checkpoint-<throughSeq>.ckpt via
/// the tmp + fsync + rename + dir-fsync sequence: a crash at any
/// instant leaves the previous checkpoints intact and at worst a stray
/// .tmp that readers ignore.  Returns the published path.  Throws
/// StoreError on I/O failure.
std::string writeCheckpointFile(const std::string& dir,
                                const CheckpointData& data);

struct CheckpointLoadResult {
  CheckpointData data;
  std::string path;
  /// Newer checkpoint files that failed validation (bad CRC, torn
  /// rename fallout, wrong version) and were skipped on the way to
  /// this one.
  std::uint64_t skippedInvalid = 0;
};

/// Loads the newest checkpoint in `dir` that validates (magic,
/// version, CRC32C, structural parse).  Invalid files are skipped —
/// never deleted — and counted; nullopt when no valid checkpoint
/// exists (including a missing directory).
std::optional<CheckpointLoadResult> loadNewestCheckpoint(
    const std::string& dir);

/// Removes all but the newest `keep` valid-looking checkpoint files
/// (by sequence in the file name).  keep >= 1; the newest is never
/// removed.  Returns the number deleted.
std::size_t pruneCheckpoints(const std::string& dir, std::size_t keep);

}  // namespace moloc::store
