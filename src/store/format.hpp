#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace moloc::store {

/// Base class of every durable-store failure: I/O errors, invalid
/// directories, write failures.  Carries a plain what() message that
/// always names the offending path.
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what)
      : std::runtime_error("moloc::store: " + what) {}
};

/// Unrecoverable on-disk damage: a WAL record or checkpoint that fails
/// its CRC (or structural validation) in a position crash semantics
/// cannot explain — i.e. *not* the torn tail of the final segment,
/// which recovery tolerates and truncates.  Raised instead of silently
/// dropping data, so an operator decides what to salvage.
class CorruptionError : public StoreError {
 public:
  explicit CorruptionError(const std::string& what) : StoreError(what) {}
};

namespace detail {

/// Fixed little-endian primitives: the WAL and checkpoint formats are
/// byte-for-byte identical across platforms, so a database written on
/// one host recovers on any other.

inline void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline void putU64(std::string& out, std::uint64_t v) {
  putU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  putU32(out, static_cast<std::uint32_t>(v >> 32));
}

inline void putU8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

inline void putI32(std::string& out, std::int32_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
}

inline void putF64(std::string& out, double v) {
  putU64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over one in-memory buffer.
/// Overruns throw CorruptionError — a structurally short buffer is
/// damage by definition once the outer CRC passed or the caller opted
/// into strict parsing.
class Cursor {
 public:
  Cursor(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}
  Cursor(const char* data, std::size_t size)
      : Cursor(reinterpret_cast<const unsigned char*>(data), size) {}

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }

  std::uint8_t readU8() {
    need(1);
    return data_[offset_++];
  }

  std::uint32_t readU32() {
    need(4);
    std::uint32_t v = static_cast<std::uint32_t>(data_[offset_]) |
                      (static_cast<std::uint32_t>(data_[offset_ + 1]) << 8) |
                      (static_cast<std::uint32_t>(data_[offset_ + 2]) << 16) |
                      (static_cast<std::uint32_t>(data_[offset_ + 3]) << 24);
    offset_ += 4;
    return v;
  }

  std::uint64_t readU64() {
    const std::uint64_t lo = readU32();
    const std::uint64_t hi = readU32();
    return lo | (hi << 32);
  }

  std::int32_t readI32() { return static_cast<std::int32_t>(readU32()); }

  double readF64() { return std::bit_cast<double>(readU64()); }

  void readBytes(void* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + offset_, n);
    offset_ += n;
  }

 private:
  void need(std::size_t n) const {
    if (size_ - offset_ < n)
      throw CorruptionError("truncated data at offset " +
                            std::to_string(offset_));
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

}  // namespace detail

}  // namespace moloc::store
