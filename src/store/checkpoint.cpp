#include "store/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <vector>

#include "store/crc32c.hpp"
#include "util/checked_cast.hpp"
#include "store/format.hpp"
#include "store/posix_file.hpp"
#include "util/error.hpp"

namespace moloc::store {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'L', 'O', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kCrcBytes = 4;
/// Smallest possible encoding: magic(8) + version(4) + throughSeq(8) +
/// config(46) + capacity/locationCount(16) + rng(32) + counters(48) +
/// two zero counts(16) + absent fingerprints(1) + CRC(4).
constexpr std::size_t kMinFileBytes =
    8 + 4 + 8 + 46 + 16 + 32 + 48 + 16 + 1 + kCrcBytes;

std::string checkpointFileName(std::uint64_t throughSeq) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "checkpoint-%020llu.ckpt",
                static_cast<unsigned long long>(throughSeq));
  return buffer;
}

bool parseCheckpointSeq(const std::string& name, std::uint64_t& seq) {
  // checkpoint-<20 digits>.ckpt
  if (name.size() != 36 || name.compare(0, 11, "checkpoint-") != 0 ||
      name.compare(31, 5, ".ckpt") != 0)
    return false;
  seq = 0;
  for (int i = 11; i < 31; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    const auto digit = static_cast<std::uint64_t>(name[i] - '0');
    // 20 digits can exceed uint64; a wrapped sequence would silently
    // mis-order checkpoints, so reject the name instead.
    if (seq > (std::numeric_limits<std::uint64_t>::max() - digit) / 10)
      return false;
    seq = seq * 10 + digit;
  }
  return true;
}

void encodeSnapshot(std::string& out,
                    const core::OnlineMotionDatabase::Snapshot& s) {
  detail::putF64(out, s.config.coarseDirectionThresholdDeg);
  detail::putF64(out, s.config.coarseOffsetThresholdMeters);
  detail::putF64(out, s.config.fineSigmaMultiplier);
  detail::putI32(out, s.config.minSamplesPerPair);
  detail::putF64(out, s.config.minDirectionSigmaDeg);
  detail::putF64(out, s.config.minOffsetSigmaMeters);
  detail::putU8(out, s.config.enableCoarseFilter ? 1 : 0);
  detail::putU8(out, s.config.enableFineFilter ? 1 : 0);

  detail::putU64(out, s.capacity);
  detail::putU64(out, s.locationCount);
  for (const std::uint64_t word : s.rngState) detail::putU64(out, word);

  detail::putU64(out, s.counters.observations);
  detail::putU64(out, s.counters.accepted);
  detail::putU64(out, s.counters.rejectedCoarse);
  detail::putU64(out, s.counters.droppedSelfPairs);
  detail::putU64(out, s.counters.rejectedFine);
  detail::putU64(out, s.counters.staleInvalidations);

  detail::putU64(out, s.reservoirs.size());
  for (const auto& pair : s.reservoirs) {
    detail::putI32(out, pair.i);
    detail::putI32(out, pair.j);
    detail::putU64(out, pair.seen);
    detail::putU32(
        out, util::checkedU32(pair.samples.size(), "reservoir sample count"));
    for (const auto& sample : pair.samples) {
      detail::putF64(out, sample.directionDeg);
      detail::putF64(out, sample.offsetMeters);
    }
  }

  detail::putU64(out, s.entries.size());
  for (const auto& entry : s.entries) {
    detail::putI32(out, entry.i);
    detail::putI32(out, entry.j);
    detail::putF64(out, entry.stats.muDirectionDeg);
    detail::putF64(out, entry.stats.sigmaDirectionDeg);
    detail::putF64(out, entry.stats.muOffsetMeters);
    detail::putF64(out, entry.stats.sigmaOffsetMeters);
    detail::putI32(out, entry.stats.sampleCount);
  }
}

/// Guards a count field against allocation bombs: a corrupt count must
/// not reserve gigabytes before the Cursor notices the buffer ended.
std::uint64_t checkedCount(detail::Cursor& in, std::size_t minEntryBytes) {
  const std::uint64_t count = in.readU64();
  if (count > in.remaining() / minEntryBytes)
    throw CorruptionError("count " + std::to_string(count) +
                          " exceeds remaining data");
  return count;
}

core::OnlineMotionDatabase::Snapshot decodeSnapshot(detail::Cursor& in) {
  core::OnlineMotionDatabase::Snapshot s;
  s.config.coarseDirectionThresholdDeg = in.readF64();
  s.config.coarseOffsetThresholdMeters = in.readF64();
  s.config.fineSigmaMultiplier = in.readF64();
  s.config.minSamplesPerPair = in.readI32();
  s.config.minDirectionSigmaDeg = in.readF64();
  s.config.minOffsetSigmaMeters = in.readF64();
  s.config.enableCoarseFilter = in.readU8() != 0;
  s.config.enableFineFilter = in.readU8() != 0;

  s.capacity = in.readU64();
  s.locationCount = in.readU64();
  for (auto& word : s.rngState) word = in.readU64();

  s.counters.observations = in.readU64();
  s.counters.accepted = in.readU64();
  s.counters.rejectedCoarse = in.readU64();
  s.counters.droppedSelfPairs = in.readU64();
  s.counters.rejectedFine = in.readU64();
  s.counters.staleInvalidations = in.readU64();

  const std::uint64_t pairCount = checkedCount(in, 4 + 4 + 8 + 4);
  s.reservoirs.reserve(pairCount);
  for (std::uint64_t p = 0; p < pairCount; ++p) {
    core::OnlineMotionDatabase::Snapshot::PairState pair;
    pair.i = in.readI32();
    pair.j = in.readI32();
    pair.seen = in.readU64();
    const std::uint32_t sampleCount = in.readU32();
    if (sampleCount > in.remaining() / 16)
      throw CorruptionError("sample count " + std::to_string(sampleCount) +
                            " exceeds remaining data");
    pair.samples.reserve(sampleCount);
    for (std::uint32_t k = 0; k < sampleCount; ++k) {
      core::OnlineMotionDatabase::ReservoirSample sample;
      sample.directionDeg = in.readF64();
      sample.offsetMeters = in.readF64();
      pair.samples.push_back(sample);
    }
    s.reservoirs.push_back(std::move(pair));
  }

  const std::uint64_t entryCount = checkedCount(in, 4 + 4 + 4 * 8 + 4);
  s.entries.reserve(entryCount);
  for (std::uint64_t e = 0; e < entryCount; ++e) {
    core::OnlineMotionDatabase::Snapshot::Entry entry;
    entry.i = in.readI32();
    entry.j = in.readI32();
    entry.stats.muDirectionDeg = in.readF64();
    entry.stats.sigmaDirectionDeg = in.readF64();
    entry.stats.muOffsetMeters = in.readF64();
    entry.stats.sigmaOffsetMeters = in.readF64();
    entry.stats.sampleCount = in.readI32();
    s.entries.push_back(entry);
  }
  return s;
}

void encodeFingerprints(std::string& out,
                        const std::optional<radio::FingerprintDatabase>& db) {
  if (!db) {
    detail::putU8(out, 0);
    return;
  }
  detail::putU8(out, 1);
  const auto ids = db->locationIds();
  detail::putU64(out, ids.size());
  detail::putU64(out, db->apCount());
  for (const env::LocationId id : ids) {
    detail::putI32(out, id);
    for (const double rss : db->entry(id).values()) detail::putF64(out, rss);
  }
}

std::optional<radio::FingerprintDatabase> decodeFingerprints(
    detail::Cursor& in) {
  if (in.readU8() == 0) return std::nullopt;
  const std::uint64_t count = checkedCount(in, 4);
  const std::uint64_t apCount = in.readU64();
  // The zero-location case must be bounded too: sizing `rss` from an
  // unvalidated apCount was an allocation bomb when count == 0 (found
  // by the checkpoint fuzz target; fuzz/corpus/regressions).
  if (count == 0) {
    if (apCount != 0)
      throw CorruptionError(
          "fingerprint block claims " + std::to_string(apCount) +
          " APs with no locations");
    return radio::FingerprintDatabase{};
  }
  if (apCount > in.remaining() / (8 * count))
    throw CorruptionError("fingerprint dimensions exceed remaining data");
  radio::FingerprintDatabase db;
  std::vector<double> rss(apCount);
  for (std::uint64_t e = 0; e < count; ++e) {
    const env::LocationId id = in.readI32();
    for (auto& value : rss) value = in.readF64();
    db.addLocation(id, radio::Fingerprint(rss));
  }
  return db;
}

struct CheckpointFile {
  std::uint64_t seq = 0;
  std::string path;
};

std::vector<CheckpointFile> listCheckpoints(const std::string& dir) {
  std::vector<CheckpointFile> files;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return files;
  for (const auto& entry : it) {
    std::uint64_t seq = 0;
    if (!entry.is_regular_file()) continue;
    if (!parseCheckpointSeq(entry.path().filename().string(), seq))
      continue;
    files.push_back({seq, entry.path().string()});
  }
  std::sort(files.begin(), files.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.seq > b.seq;  // Newest first.
            });
  return files;
}

CheckpointData decodeCheckpoint(const std::string& buffer,
                                const std::string& path) {
  if (buffer.size() < kMinFileBytes)
    throw CorruptionError("checkpoint '" + path + "' is too short");
  const std::size_t bodyBytes = buffer.size() - kCrcBytes;
  detail::Cursor trailer(buffer.data() + bodyBytes, kCrcBytes);
  if (crc32c(buffer.data(), bodyBytes) != trailer.readU32())
    throw CorruptionError("checkpoint '" + path +
                          "' failed its CRC32C check");

  detail::Cursor in(buffer.data(), bodyBytes);
  char magic[sizeof kMagic];
  in.readBytes(magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw CorruptionError("bad checkpoint magic in '" + path + "'");
  const std::uint32_t version = in.readU32();
  if (version != kVersion)
    throw CorruptionError("unsupported checkpoint version " +
                          std::to_string(version) + " in '" + path + "'");

  CheckpointData data;
  data.throughSeq = in.readU64();
  data.snapshot = decodeSnapshot(in);
  data.fingerprints = decodeFingerprints(in);
  if (in.remaining() != 0)
    throw CorruptionError("trailing garbage in checkpoint '" + path + "'");
  return data;
}

}  // namespace

std::string writeCheckpointFile(const std::string& dir,
                                const CheckpointData& data) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec)
    throw StoreError("cannot create directory '" + dir +
                     "': " + ec.message());

  std::string body;
  body.reserve(1024);
  body.append(kMagic, sizeof kMagic);
  detail::putU32(body, kVersion);
  detail::putU64(body, data.throughSeq);
  encodeSnapshot(body, data.snapshot);
  encodeFingerprints(body, data.fingerprints);
  detail::putU32(body, crc32c(body.data(), body.size()));

  const std::string path = dir + "/" + checkpointFileName(data.throughSeq);
  detail::atomicWriteFile(path, body);
  return path;
}

std::optional<CheckpointLoadResult> loadNewestCheckpoint(
    const std::string& dir) {
  CheckpointLoadResult result;
  for (const auto& file : listCheckpoints(dir)) {
    std::string buffer;
    if (!detail::readFile(file.path, buffer)) {
      ++result.skippedInvalid;
      continue;
    }
    try {
      result.data = decodeCheckpoint(buffer, file.path);
    } catch (const CorruptionError&) {
      ++result.skippedInvalid;
      continue;
    } catch (const std::exception&) {
      // Structurally invalid contents (e.g. a fingerprint id repeated):
      // same treatment as a CRC failure — skip, keep looking.
      ++result.skippedInvalid;
      continue;
    }
    if (result.data.throughSeq != file.seq) {
      // The name is the compaction key; a file whose contents disagree
      // with its own name is not trustworthy.
      ++result.skippedInvalid;
      continue;
    }
    result.path = file.path;
    return result;
  }
  return std::nullopt;
}

std::size_t pruneCheckpoints(const std::string& dir, std::size_t keep) {
  if (keep == 0)
    throw util::ConfigError(
        "pruneCheckpoints: keep must be >= 1 (the newest checkpoint is "
        "never removed)");
  const auto files = listCheckpoints(dir);  // Newest first.
  std::size_t removed = 0;
  for (std::size_t f = keep; f < files.size(); ++f) {
    detail::removeFileDurably(files[f].path, dir);
    ++removed;
  }
  return removed;
}

}  // namespace moloc::store
