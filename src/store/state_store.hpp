#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/online_motion_database.hpp"
#include "image/image_loader.hpp"
#include "image/image_writer.hpp"
#include "obs/metrics.hpp"
#include "radio/fingerprint_database.hpp"
#include "store/checkpoint.hpp"
#include "store/wal.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace moloc::store {

struct StoreConfig {
  WalConfig wal;
  /// Checkpoint files retained after each new checkpoint (>= 1).  Two
  /// means one fallback generation survives a checkpoint that lands
  /// corrupt on disk.
  std::size_t keepCheckpoints = 2;
  /// Receives the moloc_store_* series when non-null (see
  /// docs/observability.md); inert under MOLOC_METRICS=OFF.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What one checkpoint() call did.
struct CheckpointInfo {
  std::uint64_t throughSeq = 0;
  std::string path;
  std::size_t compactedSegments = 0;  ///< WAL segments deleted.
  std::size_t prunedCheckpoints = 0;  ///< Old checkpoint files deleted.
  double seconds = 0.0;               ///< Wall time, serialize + publish.
};

/// The durability frontend: a WAL appender (as the database's
/// ObservationSink) plus the checkpoint/compaction cycle, over one
/// store directory.
///
/// Opening a StateStore repairs any torn WAL tail left by a crash and
/// then starts a *fresh* segment continuing the sequence — existing
/// segments are never appended to, so acknowledged history is
/// immutable.  All public methods are thread-safe (internally mutexed);
/// what the store cannot provide is atomicity *across* the database
/// and the log — callers that feed addObservation from several threads
/// must serialize intake themselves (LocalizationService does) so the
/// WAL order matches the database's update order.
class StateStore final : public core::ObservationSink {
 public:
  /// Throws StoreError when the directory cannot be created/opened and
  /// CorruptionError when the existing log carries mid-log damage.
  explicit StateStore(std::string dir, StoreConfig config = {});

  /// ObservationSink: durably appends one accepted observation.  Called
  /// by OnlineMotionDatabase::addObservation *before* the reservoir
  /// mutates; a StoreError thrown here aborts that update (write-ahead
  /// discipline).
  void onAccepted(env::LocationId estimatedStart,
                  env::LocationId estimatedEnd, double directionDeg,
                  double offsetMeters) override;

  /// Publishes `snapshot` (captured by the caller at WAL position
  /// `throughSeq`) as a checkpoint file, then prunes old checkpoints
  /// and deletes WAL segments wholly covered by it.  The WAL is synced
  /// first, so the checkpoint never claims a sequence the log has not
  /// durably reached.
  ///
  /// Correctness requires that `snapshot` reflect exactly the records
  /// with seq <= throughSeq — capture both under the same intake lock
  /// (snapshot() and lastSeq() with no addObservation between them).
  CheckpointInfo checkpoint(
      const core::OnlineMotionDatabase::Snapshot& snapshot,
      std::uint64_t throughSeq,
      const std::optional<radio::FingerprintDatabase>& fingerprints =
          std::nullopt);

  /// Convenience for single-threaded callers (examples, tests, batch
  /// jobs): snapshots `db` and checkpoints it at the current lastSeq().
  /// Requires that no other thread is feeding `db` concurrently.
  CheckpointInfo checkpointNow(
      const core::OnlineMotionDatabase& db,
      const std::optional<radio::FingerprintDatabase>& fingerprints =
          std::nullopt);

  /// Forces the WAL to disk regardless of fsync policy.
  void sync();

  /// Highest sequence number appended (0 when nothing was ever logged).
  std::uint64_t lastSeq() const;

  /// Sequence the newest checkpoint covers (0 when none).
  std::uint64_t lastCheckpointSeq() const;

  /// Records appended since the last checkpoint — the background
  /// checkpoint trigger LocalizationService polls.
  std::uint64_t recordsSinceCheckpoint() const;

  WalWriter::Stats walStats() const;

  const std::string& directory() const { return dir_; }

  // ---- Venue image (src/image) --------------------------------------
  //
  // The store can keep one venue image alongside its checkpoint/WAL
  // lineage.  The image is a *serving-world cache*, not part of the
  // durability contract: the checkpoint + WAL remain the source of
  // truth, recovery still replays the WAL tail on top of the newest
  // checkpoint exactly as before, and a missing/damaged image only
  // costs the rebuild it would have skipped.  The intended boot:
  // openImage() to mmap the serving structures in milliseconds, then
  // recover() into a fresh OnlineMotionDatabase so the intake side
  // continues from the durable lineage.

  /// The fixed image path inside this store's directory.
  std::string imagePath() const { return dir_ + "/venue.img"; }

  /// True when imagePath() exists (no validation; openImage validates).
  bool hasImage() const;

  /// Atomically publishes `world` as this store's venue image
  /// (tmp+fsync+rename, like a checkpoint).  Thread-safe against
  /// concurrent WAL appends and checkpoints — the image file is
  /// independent of both.  Throws image::ImageError / StoreError.
  image::ImageWriteInfo saveImage(const core::WorldSnapshot& world);

  /// Opens and validates this store's venue image.  Throws
  /// image::ImageError on damage and StoreError when absent.
  image::VenueImage openImage(image::LoadOptions options = {}) const;

 private:
  /// Serializes whole checkpoint() calls (the publish step runs
  /// outside mu_, and two concurrent publishes share a .tmp path).
  /// Lock order: checkpointMu_ before mu_, never the reverse — declared
  /// to the analysis via ACQUIRED_AFTER below.
  util::Mutex checkpointMu_;
  mutable util::Mutex mu_ MOLOC_ACQUIRED_AFTER(checkpointMu_);
  std::string dir_;
  StoreConfig config_;
  std::unique_ptr<WalWriter> wal_ MOLOC_GUARDED_BY(mu_);
  /// Closed segments not yet compacted (pre-existing ones from the
  /// opening scan plus everything rotation closes).
  std::vector<SegmentInfo> closed_ MOLOC_GUARDED_BY(mu_);
  std::uint64_t lastCheckpointSeq_ MOLOC_GUARDED_BY(mu_) = 0;
  /// Stats already pushed to counters.
  WalWriter::Stats reported_ MOLOC_GUARDED_BY(mu_);

#if MOLOC_METRICS_ENABLED
  struct Metrics {
    obs::Counter* recordsAppended = nullptr;
    obs::Counter* bytesWritten = nullptr;
    obs::Counter* fsyncs = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* compactedSegments = nullptr;
    obs::Histogram* checkpointSeconds = nullptr;
    obs::Gauge* segments = nullptr;
    obs::Gauge* sinceCheckpoint = nullptr;
  };
  Metrics metrics_;
#endif
};

/// What store::recover() reconstructed.
struct RecoveryResult {
  bool checkpointLoaded = false;
  std::uint64_t checkpointSeq = 0;  ///< 0 when none loaded.
  std::string checkpointPath;
  /// Newer checkpoint files skipped because they failed validation.
  std::uint64_t invalidCheckpoints = 0;
  std::uint64_t replayedRecords = 0;  ///< WAL records fed to the db.
  std::uint64_t skippedRecords = 0;   ///< Subsumed by the checkpoint.
  bool droppedTornTail = false;
  std::uint64_t tailBytesDropped = 0;
  std::uint64_t lastSeq = 0;  ///< Highest sequence recovered.
  /// The radio map the newest checkpoint carried, if any.
  std::optional<radio::FingerprintDatabase> fingerprints;
};

/// Rebuilds `db` from the store directory: loads the newest valid
/// checkpoint (skipping corrupt ones), then replays the WAL tail
/// through the normal addObservation intake.  The result is
/// bit-identical to the database state after the last durably logged
/// record — including reservoir contents, RNG position, and every
/// published Gaussian.
///
/// Read-only on disk (a torn tail is tolerated, not truncated — open a
/// StateStore afterwards to repair and resume logging).  Requirements
/// and failure modes:
///   - `db` must be freshly constructed with the same floor plan; a
///     checkpoint that does not fit throws std::invalid_argument.
///     When no checkpoint exists the replay starts from `db`'s own
///     initial state, so bit-identical recovery additionally requires
///     the same constructor seed, config, and capacity the original
///     was born with (a loaded checkpoint restores all of these).
///   - `db` must have no sink attached (throws StoreError — replaying
///     into a live sink would re-log every record).
///   - A WAL that does not reach back to the checkpoint (or to seq 1
///     when no checkpoint survives) throws CorruptionError: the gap
///     means acknowledged data is gone, which must not be silent.
RecoveryResult recover(const std::string& dir,
                       core::OnlineMotionDatabase& db,
                       obs::MetricsRegistry* metrics = nullptr);

}  // namespace moloc::store
