#include "store/state_store.hpp"

#include <sys/stat.h>

#include <chrono>
#include <utility>

#include "store/posix_file.hpp"
#include "util/error.hpp"

namespace moloc::store {

StateStore::StateStore(std::string dir, StoreConfig config)
    : dir_(std::move(dir)), config_(config) {
  if (config_.keepCheckpoints == 0)
    throw util::ConfigError("StateStore: keepCheckpoints must be >= 1");

  // Repair first: a torn tail left by the previous process must be
  // truncated away before it becomes a non-final segment (where damage
  // would read as mid-log corruption forever after).
  const WalScan scan = WalReader(dir_).repair();
  std::uint64_t lastKnownSeq = scan.lastSeq;
  if (const auto newest = loadNewestCheckpoint(dir_)) {
    lastCheckpointSeq_ = newest->data.throughSeq;
    // A checkpoint's throughSeq is a second durable lower bound on the
    // sequence stream (segment headers are the first): even if every
    // WAL segment is gone, the writer must not reissue sequence
    // numbers the checkpoint already covers — recovery would skip them
    // as already applied.
    lastKnownSeq = std::max(lastKnownSeq, lastCheckpointSeq_);
  }
  wal_ = std::make_unique<WalWriter>(dir_, config_.wal, lastKnownSeq + 1,
                                     scan.nextSegmentIndex);
  // Every pre-existing segment is closed by construction (the writer
  // just opened a fresh one) and thus compaction-eligible.
  closed_ = scan.segments;
  reported_ = wal_->stats();

#if MOLOC_METRICS_ENABLED
  if (auto* reg = config_.metrics) {
    metrics_.recordsAppended =
        &reg->counter("moloc_store_wal_records_appended_total",
                      "Observation records appended to the WAL");
    metrics_.bytesWritten =
        &reg->counter("moloc_store_wal_bytes_written_total",
                      "Record-frame bytes appended to the WAL");
    metrics_.fsyncs = &reg->counter("moloc_store_wal_fsyncs_total",
                                    "fsync calls issued on WAL segments");
    metrics_.checkpoints = &reg->counter(
        "moloc_store_checkpoints_total", "Checkpoints published");
    metrics_.compactedSegments =
        &reg->counter("moloc_store_compacted_segments_total",
                      "WAL segments deleted by checkpoint compaction");
    metrics_.checkpointSeconds = &reg->histogram(
        "moloc_store_checkpoint_seconds",
        "Wall time to serialize and publish one checkpoint",
        obs::Histogram::exponentialBuckets(1e-4, 2.0, 16));
    metrics_.segments = &reg->gauge("moloc_store_wal_segments",
                                    "WAL segment files currently live");
    metrics_.sinceCheckpoint =
        &reg->gauge("moloc_store_records_since_checkpoint",
                    "Records appended after the newest checkpoint");
    metrics_.segments->set(static_cast<double>(closed_.size() + 1));
    metrics_.sinceCheckpoint->set(static_cast<double>(
        lastKnownSeq > lastCheckpointSeq_
            ? lastKnownSeq - lastCheckpointSeq_
            : 0));
  }
#endif
}

bool StateStore::hasImage() const {
  struct stat st{};
  return ::stat(imagePath().c_str(), &st) == 0;
}

image::ImageWriteInfo StateStore::saveImage(
    const core::WorldSnapshot& world) {
  // No store lock: writeVenueImage streams to its own .tmp and
  // rename-publishes, so it cannot tear against WAL appends or a
  // concurrent checkpoint (which use different files in the same
  // directory).
  return image::writeVenueImage(imagePath(), world);
}

image::VenueImage StateStore::openImage(image::LoadOptions options) const {
  return image::VenueImage::open(imagePath(), options);
}

void StateStore::onAccepted(env::LocationId estimatedStart,
                            env::LocationId estimatedEnd,
                            double directionDeg, double offsetMeters) {
  const util::MutexLock lock(mu_);
  const std::uint64_t seq =
      wal_->append(estimatedStart, estimatedEnd, directionDeg, offsetMeters);
#if MOLOC_METRICS_ENABLED
  if (config_.metrics) {
    const WalWriter::Stats& now = wal_->stats();
    metrics_.recordsAppended->inc(
        static_cast<double>(now.records - reported_.records));
    metrics_.bytesWritten->inc(
        static_cast<double>(now.bytes - reported_.bytes));
    metrics_.fsyncs->inc(
        static_cast<double>(now.fsyncs - reported_.fsyncs));
    metrics_.segments->inc(static_cast<double>(now.segmentsCreated -
                                               reported_.segmentsCreated));
    reported_ = now;
    metrics_.sinceCheckpoint->set(
        static_cast<double>(seq - lastCheckpointSeq_));
  }
#else
  (void)seq;
#endif
}

CheckpointInfo StateStore::checkpoint(
    const core::OnlineMotionDatabase::Snapshot& snapshot,
    std::uint64_t throughSeq,
    const std::optional<radio::FingerprintDatabase>& fingerprints) {
  const auto start = std::chrono::steady_clock::now();
  // Serializes concurrent checkpoint() calls: two at once would write
  // the same '<path>.tmp' (O_TRUNC) and could interleave, publishing a
  // corrupt file.  A dedicated mutex (always taken before mu_, never
  // while holding it) keeps appends flowing during the slow
  // serialize-and-publish below.
  const util::MutexLock checkpointLock(checkpointMu_);
  {
    // The checkpoint must not claim a sequence the log has not durably
    // reached; sync before publishing.
    const util::MutexLock lock(mu_);
    if (throughSeq > wal_->lastSeq())
      throw util::ConfigError(
          "StateStore::checkpoint: throughSeq " +
          std::to_string(throughSeq) + " exceeds WAL lastSeq " +
          std::to_string(wal_->lastSeq()));
    wal_->sync();
  }

  CheckpointInfo info;
  info.throughSeq = throughSeq;
  // Serialization and the atomic publish run outside the mutex:
  // appends keep flowing while the (potentially large) file is built.
  CheckpointData data;
  data.throughSeq = throughSeq;
  data.snapshot = snapshot;
  data.fingerprints = fingerprints;
  info.path = writeCheckpointFile(dir_, data);

  {
    const util::MutexLock lock(mu_);
    const auto rotated = wal_->takeClosedSegments();
    closed_.insert(closed_.end(), rotated.begin(), rotated.end());
    std::vector<SegmentInfo> kept;
    for (const SegmentInfo& seg : closed_) {
      // Monotonic seqs make covered segments a prefix; record-free
      // segments (crash fallout) hold nothing and always go.
      if (seg.records == 0 || seg.lastSeq <= throughSeq) {
        detail::removeFileDurably(seg.path, dir_);
        ++info.compactedSegments;
      } else {
        kept.push_back(seg);
      }
    }
    closed_ = std::move(kept);
    if (throughSeq > lastCheckpointSeq_) lastCheckpointSeq_ = throughSeq;
    info.prunedCheckpoints = pruneCheckpoints(dir_, config_.keepCheckpoints);
    info.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
#if MOLOC_METRICS_ENABLED
    if (config_.metrics) {
      metrics_.checkpoints->inc();
      metrics_.compactedSegments->inc(
          static_cast<double>(info.compactedSegments));
      metrics_.checkpointSeconds->observe(info.seconds);
      metrics_.segments->set(static_cast<double>(closed_.size() + 1));
      metrics_.sinceCheckpoint->set(static_cast<double>(
          wal_->lastSeq() - lastCheckpointSeq_));
      const WalWriter::Stats& now = wal_->stats();
      metrics_.fsyncs->inc(
          static_cast<double>(now.fsyncs - reported_.fsyncs));
      reported_ = now;
    }
#endif
  }
  return info;
}

CheckpointInfo StateStore::checkpointNow(
    const core::OnlineMotionDatabase& db,
    const std::optional<radio::FingerprintDatabase>& fingerprints) {
  return checkpoint(db.snapshot(), lastSeq(), fingerprints);
}

void StateStore::sync() {
  const util::MutexLock lock(mu_);
  wal_->sync();
#if MOLOC_METRICS_ENABLED
  if (config_.metrics) {
    const WalWriter::Stats& now = wal_->stats();
    metrics_.fsyncs->inc(
        static_cast<double>(now.fsyncs - reported_.fsyncs));
    reported_ = now;
  }
#endif
}

std::uint64_t StateStore::lastSeq() const {
  const util::MutexLock lock(mu_);
  return wal_->lastSeq();
}

std::uint64_t StateStore::lastCheckpointSeq() const {
  const util::MutexLock lock(mu_);
  return lastCheckpointSeq_;
}

std::uint64_t StateStore::recordsSinceCheckpoint() const {
  const util::MutexLock lock(mu_);
  const std::uint64_t last = wal_->lastSeq();
  return last > lastCheckpointSeq_ ? last - lastCheckpointSeq_ : 0;
}

WalWriter::Stats StateStore::walStats() const {
  const util::MutexLock lock(mu_);
  return wal_->stats();
}

RecoveryResult recover(const std::string& dir,
                       core::OnlineMotionDatabase& db,
                       obs::MetricsRegistry* metrics) {
  if (db.sink() != nullptr)
    throw StoreError(
        "recover: detach the database's sink first (replaying into a "
        "live sink would re-log every record)");

  RecoveryResult result;
  if (auto loaded = loadNewestCheckpoint(dir)) {
    db.restore(loaded->data.snapshot);
    result.checkpointLoaded = true;
    result.checkpointSeq = loaded->data.throughSeq;
    result.checkpointPath = loaded->path;
    result.invalidCheckpoints = loaded->skippedInvalid;
    result.fingerprints = std::move(loaded->data.fingerprints);
    result.lastSeq = result.checkpointSeq;
  }

  const std::uint64_t through = result.checkpointSeq;
  bool coverageChecked = false;
  const WalScan scan =
      WalReader(dir).replay([&](const ObservationRecord& record) {
        if (record.seq <= through) {
          ++result.skippedRecords;
          return;
        }
        if (!coverageChecked) {
          // Sequences are dense, so the first record past the
          // checkpoint must be exactly the next one; anything later
          // means compaction outran the surviving checkpoints and
          // acknowledged records are unrecoverable.
          if (record.seq != through + 1)
            throw CorruptionError(
                "WAL does not reach back to " +
                (through == 0
                     ? std::string("seq 1 (no checkpoint survives)")
                     : "checkpoint seq " + std::to_string(through)) +
                ": first record past it has seq " +
                std::to_string(record.seq));
          coverageChecked = true;
        }
        db.addObservation(record.estimatedStart, record.estimatedEnd,
                          record.directionDeg, record.offsetMeters);
        ++result.replayedRecords;
        result.lastSeq = record.seq;
      });
  result.droppedTornTail = scan.tailDamaged;
  result.tailBytesDropped = scan.tailBytesDropped;

#if MOLOC_METRICS_ENABLED
  if (metrics) {
    metrics
        ->counter("moloc_store_replayed_records_total",
                  "WAL records replayed through intake during recovery")
        .inc(static_cast<double>(result.replayedRecords));
    metrics
        ->counter("moloc_store_corruption_dropped_bytes_total",
                  "Torn-tail bytes dropped during recovery")
        .inc(static_cast<double>(result.tailBytesDropped));
    metrics
        ->counter("moloc_store_invalid_checkpoints_total",
                  "Checkpoint files skipped as invalid during recovery")
        .inc(static_cast<double>(result.invalidCheckpoints));
  }
#else
  (void)metrics;
#endif
  return result;
}

}  // namespace moloc::store
