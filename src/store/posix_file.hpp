#pragma once

#include <string>

namespace moloc::store::detail {

/// POSIX plumbing shared by the WAL and checkpoint writers.  All
/// failures surface as StoreError naming the path.

/// Reads a whole file into `out`; returns false when the file cannot
/// be opened (the caller decides whether that is an error).
bool readFile(const std::string& path, std::string& out);

/// Loop-until-complete write on an open descriptor.
void writeAll(int fd, const char* data, std::size_t size,
              const std::string& path);

void fsyncFd(int fd, const std::string& path);

/// fsyncs the directory itself, making renames/creates/unlinks under
/// it durable (a renamed file is not crash-safe until its directory
/// entry is).
void fsyncDirectory(const std::string& dir);

/// The full atomic-publish sequence: write `contents` to `path`.tmp,
/// fsync it, rename onto `path`, fsync the directory.  A crash at any
/// point leaves either the old file or the new one — never a torn
/// mixture.  The stray .tmp a crash can leave is ignored by readers
/// and overwritten by the next write.
void atomicWriteFile(const std::string& path, const std::string& contents);

/// unlink + directory fsync.  Missing files are not an error.
void removeFileDurably(const std::string& path, const std::string& dir);

}  // namespace moloc::store::detail
