#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace moloc::store::testing {

/// Test-only fault injector: mutates files the way real crashes and
/// media errors do, so the recovery tests can exercise every damage
/// class without an actual kill -9.
///
///   truncateTo / chopBytes — a torn write: the tail of the file never
///     reached the platter.
///   flipByte / flipBit — latent media corruption: a record that was
///     acknowledged but no longer reads back as written.
///
/// All methods throw store::StoreError (naming the path) on I/O
/// failure or out-of-range offsets.
class FaultFile {
 public:
  explicit FaultFile(std::string path);

  std::uint64_t size() const;

  /// Truncates the file to exactly `newSize` bytes (must be <= size()).
  void truncateTo(std::uint64_t newSize) const;

  /// Removes the last `n` bytes (n <= size()).
  void chopBytes(std::uint64_t n) const;

  /// XORs the byte at `offset` with `mask` (default flips every bit;
  /// mask 0 is rejected — it would be a no-op masquerading as damage).
  void flipByte(std::uint64_t offset, std::uint8_t mask = 0xff) const;

  /// Flips a single bit: bit `bit` (0..7) of the byte at `offset`.
  void flipBit(std::uint64_t offset, unsigned bit) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace moloc::store::testing
