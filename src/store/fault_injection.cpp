#include "store/fault_injection.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

#include "store/format.hpp"
#include "util/posix_error.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::store::testing {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw StoreError("FaultFile: " + what + " '" + path +
                           "': " + util::errnoMessage(errno));
}

}  // namespace

FaultFile::FaultFile(std::string path) : path_(std::move(path)) {
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0) fail("cannot stat", path_);
}

std::uint64_t FaultFile::size() const {
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0) fail("cannot stat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void FaultFile::truncateTo(std::uint64_t newSize) const {
  if (newSize > size())
    throw StoreError(
        "FaultFile: truncateTo would grow '" + path_ +
        "' (faults only destroy data)");
  if (util::retryEintr([&] {
        return ::truncate(path_.c_str(), static_cast<off_t>(newSize));
      }) != 0)
    fail("cannot truncate", path_);
}

void FaultFile::chopBytes(std::uint64_t n) const {
  const std::uint64_t current = size();
  if (n > current)
    throw StoreError("FaultFile: chopBytes(" + std::to_string(n) +
                             ") exceeds size of '" + path_ + "'");
  truncateTo(current - n);
}

void FaultFile::flipByte(std::uint64_t offset, std::uint8_t mask) const {
  if (mask == 0)
    throw StoreError(
        "FaultFile: a zero mask would not damage '" + path_ + "'");
  if (offset >= size())
    throw StoreError("FaultFile: offset " + std::to_string(offset) +
                             " is past the end of '" + path_ + "'");
  const int fd =
      util::retryEintr([&] { return ::open(path_.c_str(), O_RDWR); });
  if (fd < 0) fail("cannot open", path_);
  unsigned char byte = 0;
  if (util::retryEintr([&] {
        return ::pread(fd, &byte, 1, static_cast<off_t>(offset));
      }) != 1) {
    ::close(fd);
    fail("cannot read byte from", path_);
  }
  byte ^= mask;
  if (util::retryEintr([&] {
        return ::pwrite(fd, &byte, 1, static_cast<off_t>(offset));
      }) != 1) {
    ::close(fd);
    fail("cannot write byte to", path_);
  }
  ::close(fd);
}

void FaultFile::flipBit(std::uint64_t offset, unsigned bit) const {
  if (bit > 7)
    throw StoreError("FaultFile: bit index " + std::to_string(bit) +
                             " out of range (0..7)");
  flipByte(offset, static_cast<std::uint8_t>(1u << bit));
}

}  // namespace moloc::store::testing
