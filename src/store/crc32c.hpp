#pragma once

#include <cstddef>
#include <cstdint>

namespace moloc::store {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the
/// checksum guarding every WAL record frame and checkpoint file.
/// Chosen over plain CRC-32 for its better error-detection properties
/// on short records and because it is the de-facto standard for
/// storage framing (iSCSI, ext4, leveldb), so on-disk files stay
/// checkable by standard tools.
///
/// crc32c(data, n) computes the checksum of one buffer; the
/// (crc, data, n) overload continues a running checksum, so large
/// checkpoints can be checksummed in pieces without concatenation.
/// Both are pure functions of the bytes — no global state.
std::uint32_t crc32c(const void* data, std::size_t length);
std::uint32_t crc32c(std::uint32_t crc, const void* data,
                     std::size_t length);

}  // namespace moloc::store
