#include "store/crc32c.hpp"

#include <array>

namespace moloc::store {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // 0x1EDC6F41 reflected.

/// Slice-by-8 lookup tables: table[0] is the classic byte-at-a-time
/// table, table[k] advances a byte seen k positions earlier, so the
/// inner loop folds 8 input bytes per iteration (~8x the throughput
/// of byte-at-a-time — WAL framing should never be the intake
/// bottleneck, even with fsync=none).
struct Tables {
  std::uint32_t t[8][256];
};

Tables buildTables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (int k = 1; k < 8; ++k)
      tables.t[k][i] =
          (tables.t[k - 1][i] >> 8) ^ tables.t[0][tables.t[k - 1][i] & 0xff];
  return tables;
}

const Tables& tables() {
  static const Tables instance = buildTables();
  return instance;
}

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data,
                     std::size_t length) {
  const auto* p = static_cast<const unsigned char*>(data);
  const Tables& tb = tables();
  crc = ~crc;
  while (length >= 8) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = tb.t[7][crc & 0xff] ^ tb.t[6][(crc >> 8) & 0xff] ^
          tb.t[5][(crc >> 16) & 0xff] ^ tb.t[4][(crc >> 24) & 0xff] ^
          tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    length -= 8;
  }
  while (length-- > 0) crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
  return ~crc;
}

std::uint32_t crc32c(const void* data, std::size_t length) {
  return crc32c(0, data, length);
}

}  // namespace moloc::store
