#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "env/floor_plan.hpp"
#include "store/format.hpp"

namespace moloc::store {

/// When appended records reach the disk platter.
///
///   kEveryRecord — fsync after every append.  A crash loses nothing
///     that was acknowledged; throughput is bounded by device sync
///     latency (~ms on disks, ~100 us on good NVMe).
///   kEveryN — fsync once per `fsyncEveryN` appends (and on rotation
///     and explicit sync()).  A crash loses at most the last window.
///   kNone — never fsync; the OS page cache decides.  A crash loses
///     whatever had not been written back (typically up to ~30 s);
///     process-only death (SIGKILL) still loses nothing, because the
///     records were write()n.
///
/// All three keep the *prefix property*: whatever survives is a clean
/// prefix of the appended stream (plus at most one torn record, which
/// recovery detects and drops).  See docs/persistence.md.
enum class FsyncPolicy { kEveryRecord, kEveryN, kNone };

struct WalConfig {
  FsyncPolicy fsync = FsyncPolicy::kEveryRecord;
  /// Appends per fsync under kEveryN; must be >= 1 (throws
  /// std::invalid_argument).
  std::uint64_t fsyncEveryN = 64;
  /// Rotate to a fresh segment file once the active one reaches this
  /// size.  Small segments make checkpoint-time truncation reclaim
  /// space sooner; large segments amortize file creation.
  std::uint64_t segmentMaxBytes = 16ull * 1024 * 1024;
};

/// One durably logged intake event: the original (pre-reassembly)
/// arguments of an accepted OnlineMotionDatabase::addObservation call.
/// Replaying these through the normal intake reproduces the database
/// bit-identically — the WAL stores inputs, not derived state.
struct ObservationRecord {
  std::uint64_t seq = 0;  ///< 1-based, strictly increasing, log-wide.
  env::LocationId estimatedStart = 0;
  env::LocationId estimatedEnd = 0;
  double directionDeg = 0.0;
  double offsetMeters = 0.0;
};

/// One WAL segment file as found on disk.
struct SegmentInfo {
  std::uint64_t index = 0;  ///< From the file name, 1-based.
  std::string path;
  std::uint64_t firstSeq = 0;  ///< From the header (next seq at creation).
  std::uint64_t lastSeq = 0;   ///< Highest valid record; 0 when empty.
  std::uint64_t records = 0;   ///< Valid records in the segment.
};

/// What a full scan of a WAL directory found.
struct WalScan {
  std::vector<SegmentInfo> segments;  ///< Sorted by index.
  std::uint64_t records = 0;          ///< Valid records, all segments.
  /// Highest sequence number the log accounts for: the max of every
  /// record seq and every segment header's firstSeq - 1 (a record-free
  /// segment still pins the stream — its header proves the earlier
  /// seqs existed before compaction removed them).  0 when the log is
  /// empty.  Seed a continuing WalWriter with lastSeq + 1.
  std::uint64_t lastSeq = 0;
  std::uint64_t nextSegmentIndex = 1;
  /// Damaged-tail bookkeeping (only ever the final segment):
  bool tailDamaged = false;
  std::uint64_t tailBytesDropped = 0;
  /// Valid-data length of the final segment — where a repair
  /// truncates.  0 when even the header is unusable (repair deletes).
  std::uint64_t tailValidBytes = 0;
  std::string tailPath;  ///< Path of the final segment file.
};

/// Append side of the log.  Always starts a *fresh* segment — existing
/// segments are never reopened, so a previously torn tail can never be
/// appended over.  Not thread-safe; StateStore serializes access.
class WalWriter {
 public:
  /// Opens `dir`/wal-<index>.log and writes its header.  `nextSeq` is
  /// the sequence number the first append will get (continue a log by
  /// passing scan.lastSeq + 1 and scan.nextSegmentIndex).  Throws
  /// StoreError when the directory or segment cannot be created.
  WalWriter(std::string dir, WalConfig config, std::uint64_t nextSeq = 1,
            std::uint64_t segmentIndex = 1);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record, assigns it the next sequence number (returned)
  /// and applies the fsync policy.  Rotates beforehand when the active
  /// segment is full.  Throws StoreError on any I/O failure — in which
  /// case the record must be considered not logged.
  std::uint64_t append(env::LocationId estimatedStart,
                       env::LocationId estimatedEnd, double directionDeg,
                       double offsetMeters);

  /// Forces an fsync of the active segment regardless of policy (the
  /// barrier checkpoints use before declaring a sequence durable).
  void sync();

  std::uint64_t lastSeq() const { return nextSeq_ - 1; }

  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;  ///< Payload frames; excludes headers.
    std::uint64_t fsyncs = 0;
    std::uint64_t segmentsCreated = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Segments closed by rotation since the last call — the compaction
  /// feed: a checkpoint through seq S may delete every closed segment
  /// with lastSeq <= S.
  std::vector<SegmentInfo> takeClosedSegments();

  SegmentInfo activeSegment() const;

  const std::string& directory() const { return dir_; }

 private:
  void openSegment();
  void maybeRotate(std::size_t incomingFrameBytes);
  void syncActive();

  std::string dir_;
  WalConfig config_;
  std::uint64_t nextSeq_;
  std::uint64_t segmentIndex_;  ///< Index the *next* openSegment uses.
  int fd_ = -1;
  SegmentInfo active_;
  std::uint64_t activeBytes_ = 0;
  std::uint64_t unsyncedRecords_ = 0;
  std::vector<SegmentInfo> closed_;
  Stats stats_;
};

/// Read side: scans and replays a WAL directory.
///
/// Damage semantics (the contract tests/test_wal.cpp pins):
///   - A *torn tail* — the final segment ending in a truncated or
///     bit-flipped record with no valid record after it — is expected
///     crash fallout: replay stops there, reports it in WalScan, and
///     the records before it are all delivered.
///   - *Mid-log* damage — a bad record in a non-final segment, or one
///     followed by still-valid records in the final segment — cannot
///     come from a torn write and raises CorruptionError instead of
///     silently dropping acknowledged data.
class WalReader {
 public:
  /// A missing directory reads as an empty log.
  explicit WalReader(std::string dir);

  /// Parses every segment in index order, calling `fn` for each valid
  /// record.  Records arrive in strictly increasing seq order (a seq
  /// regression raises CorruptionError).
  WalScan replay(
      const std::function<void(const ObservationRecord&)>& fn) const;

  /// replay() without a consumer.
  WalScan scan() const;

  /// scan(), then truncates a damaged final-segment tail to its last
  /// valid byte (deleting the segment entirely when even its header is
  /// torn) so the next writer leaves no damage behind it.  Returns the
  /// post-repair scan.
  WalScan repair() const;

 private:
  std::string dir_;
};

}  // namespace moloc::store
