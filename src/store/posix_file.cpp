#include "store/posix_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "store/format.hpp"
#include "util/posix_error.hpp"
#include "util/retry_eintr.hpp"

namespace moloc::store::detail {

namespace {

std::string errnoMessage(const std::string& what,
                         const std::string& path) {
  return what + " '" + path + "': " + util::errnoMessage(errno);
}

}  // namespace

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = std::move(buffer).str();
  return true;
}

void writeAll(int fd, const char* data, std::size_t size,
              const std::string& path) {
  while (size > 0) {
    const ssize_t n =
        util::retryEintr([&] { return ::write(fd, data, size); });
    if (n < 0) throw StoreError(errnoMessage("write failed on", path));
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void fsyncFd(int fd, const std::string& path) {
  if (util::retryEintr([&] { return ::fsync(fd); }) != 0)
    throw StoreError(errnoMessage("fsync failed on", path));
}

void fsyncDirectory(const std::string& dir) {
  const int fd = util::retryEintr(
      [&] { return ::open(dir.c_str(), O_RDONLY | O_DIRECTORY); });
  if (fd < 0)
    throw StoreError(errnoMessage("cannot open directory", dir));
  const int rc = util::retryEintr([&] { return ::fsync(fd); });
  const int savedErrno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = savedErrno;
    throw StoreError(errnoMessage("fsync failed on directory", dir));
  }
}

void atomicWriteFile(const std::string& path,
                     const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = util::retryEintr(
      [&] { return ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644); });
  if (fd < 0)
    throw StoreError(errnoMessage("cannot open for writing", tmp));
  try {
    writeAll(fd, contents.data(), contents.size(), tmp);
    fsyncFd(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw StoreError(errnoMessage("close failed on", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw StoreError(errnoMessage("rename failed onto", path));
  }
  const auto slash = path.find_last_of('/');
  fsyncDirectory(slash == std::string::npos ? "."
                                            : path.substr(0, slash));
}

void removeFileDurably(const std::string& path, const std::string& dir) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT)
    throw StoreError(errnoMessage("cannot remove", path));
  fsyncDirectory(dir);
}

}  // namespace moloc::store::detail
