#pragma once

/// Umbrella header: the full public API of the MoLoc library.
///
/// Downstream code can include individual headers for faster builds;
/// this header exists so a quick experiment is one include away:
///
///   #include "moloc.hpp"
///   moloc::eval::ExperimentWorld world({.apCount = 6});

// Utilities.
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

// Geometry.
#include "geometry/angles.hpp"
#include "geometry/segment.hpp"
#include "geometry/vec2.hpp"

// Environments.
#include "env/corridor_building.hpp"
#include "env/floor_plan.hpp"
#include "env/office_hall.hpp"
#include "env/site.hpp"
#include "env/walk_graph.hpp"

// Radio substrate.
#include "radio/access_point.hpp"
#include "radio/fingerprint.hpp"
#include "radio/fingerprint_database.hpp"
#include "radio/probabilistic_database.hpp"
#include "radio/propagation.hpp"
#include "radio/radio_environment.hpp"
#include "radio/site_survey.hpp"

// Sensor substrate.
#include "sensors/accelerometer_model.hpp"
#include "sensors/compass_calibrator.hpp"
#include "sensors/compass_model.hpp"
#include "sensors/gyroscope_model.hpp"
#include "sensors/heading_filter.hpp"
#include "sensors/imu_trace.hpp"
#include "sensors/motion_processor.hpp"
#include "sensors/step_counter.hpp"
#include "sensors/step_detector.hpp"
#include "sensors/step_length.hpp"
#include "sensors/walking_detector.hpp"

// Trajectories.
#include "traj/trace_simulator.hpp"
#include "traj/trajectory_generator.hpp"
#include "traj/user_profile.hpp"

// The MoLoc core.
#include "core/candidate_estimator.hpp"
#include "core/construction_methods.hpp"
#include "core/localization_session.hpp"
#include "core/moloc_engine.hpp"
#include "core/motion_database.hpp"
#include "core/motion_database_builder.hpp"
#include "core/motion_matcher.hpp"
#include "core/online_motion_database.hpp"
#include "core/trace_smoother.hpp"

// Baselines.
#include "baseline/dead_reckoning.hpp"
#include "baseline/hmm_localizer.hpp"
#include "baseline/knn_averaging.hpp"
#include "baseline/particle_filter.hpp"
#include "baseline/wifi_fingerprinting.hpp"

// Evaluation.
#include "eval/ambiguity.hpp"
#include "eval/ascii_map.hpp"
#include "eval/convergence.hpp"
#include "eval/error_stats.hpp"
#include "eval/experiment_world.hpp"

// Persistence.
#include "io/serialization.hpp"
#include "io/trace_io.hpp"

// Concurrent serving layer.
#include "service/localization_service.hpp"
#include "service/thread_pool.hpp"
