#include "io/trace_io.hpp"

#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/error.hpp"

namespace moloc::io {

namespace {

constexpr char kTraceHeader[] = "moloc-trace v1";

/// Upper bound on the trace count a collection header may claim.
/// The header is untrusted input: without a cap, `1e18 traces` sizes
/// the vector reservation from the raw count before a single trace
/// line is read — the same allocation-bomb class as the motion-db
/// `locations` header fixed in src/io/serialization.cpp
/// (kMaxMotionLocations).  Generous: the largest committed sweeps use
/// tens of thousands of traces.
constexpr std::size_t kMaxTraceCount = 10'000'000;

[[noreturn]] void fail(int line, const std::string& what) {
  throw util::ParseError("moloc::io: line " + std::to_string(line) +
                         ": " + what);
}

void writeFingerprint(std::ostream& out, const char* keyword,
                      const radio::Fingerprint& fp) {
  out << keyword;
  for (std::size_t i = 0; i < fp.size(); ++i) out << ' ' << fp[i];
  out << '\n';
}

radio::Fingerprint parseFingerprint(std::istringstream& row) {
  std::vector<double> rss;
  double value = 0.0;
  while (row >> value) rss.push_back(value);
  return radio::Fingerprint(std::move(rss));
}

class LineReader {
 public:
  explicit LineReader(std::istream& in) : in_(in) {}

  /// Next non-empty line, or throws mentioning `expectation`.
  std::string expectLine(const std::string& expectation) {
    if (auto line = nextLine()) return *line;
    fail(lineNo_, "unexpected end of file, expected " + expectation);
  }

  /// Next non-empty line, or nullopt at EOF.
  std::optional<std::string> nextLine() {
    if (pushedBack_) {
      auto line = std::move(*pushedBack_);
      pushedBack_.reset();
      return line;
    }
    std::string line;
    while (std::getline(in_, line)) {
      ++lineNo_;
      if (!line.empty()) return line;
    }
    return std::nullopt;
  }

  /// Returns the last line to the reader (single-slot).
  void pushBack(std::string line) { pushedBack_ = std::move(line); }

  int lineNo() const { return lineNo_; }

 private:
  std::istream& in_;
  int lineNo_ = 0;
  std::optional<std::string> pushedBack_;
};

}  // namespace

void saveTrace(const traj::Trace& trace, std::ostream& out) {
  out.precision(17);
  out << kTraceHeader << '\n';
  out << "user " << trace.user.name << ' ' << trace.user.heightMeters
      << ' ' << trace.user.weightKg << ' '
      << trace.user.trueStepLengthMeters << ' ' << trace.user.cadenceHz
      << '\n';
  out << "compass_bias " << trace.compassBiasDeg << '\n';
  out << "start " << trace.startTruth << '\n';
  writeFingerprint(out, "initial_scan", trace.initialScan);
  for (const auto& interval : trace.intervals) {
    out << "interval " << interval.fromTruth << ' ' << interval.toTruth
        << ' ' << interval.trueDirectionDeg << ' '
        << interval.trueOffsetMeters << '\n';
    writeFingerprint(out, "scan", interval.scanAtArrival);
    out << "imu " << interval.imu.sampleRateHz() << ' '
        << interval.imu.size() << '\n';
    for (const auto& sample : interval.imu.samples())
      out << sample.t << ' ' << sample.accelMagnitude << ' '
          << sample.compassDeg << ' ' << sample.gyroRateDegPerSec
          << '\n';
  }
}

namespace {

traj::Trace loadTraceFromReader(LineReader& reader) {
  if (reader.expectLine("header") != kTraceHeader)
    fail(reader.lineNo(), "bad trace header");

  traj::Trace trace;
  std::string keyword;
  {
    std::istringstream row(reader.expectLine("'user'"));
    if (!(row >> keyword >> trace.user.name >>
          trace.user.heightMeters >> trace.user.weightKg >>
          trace.user.trueStepLengthMeters >> trace.user.cadenceHz) ||
        keyword != "user")
      fail(reader.lineNo(), "expected 'user ...'");
  }
  {
    std::istringstream row(reader.expectLine("'compass_bias'"));
    if (!(row >> keyword >> trace.compassBiasDeg) ||
        keyword != "compass_bias")
      fail(reader.lineNo(), "expected 'compass_bias <deg>'");
  }
  {
    std::istringstream row(reader.expectLine("'start'"));
    if (!(row >> keyword >> trace.startTruth) || keyword != "start")
      fail(reader.lineNo(), "expected 'start <id>'");
  }
  {
    std::istringstream row(reader.expectLine("'initial_scan'"));
    if (!(row >> keyword) || keyword != "initial_scan")
      fail(reader.lineNo(), "expected 'initial_scan <rss...>'");
    trace.initialScan = parseFingerprint(row);
    if (trace.initialScan.empty())
      fail(reader.lineNo(), "initial scan has no RSS values");
  }

  while (auto line = reader.nextLine()) {
    if (line->rfind("interval", 0) != 0) {
      // Start of the next trace (multi-trace stream): hand it back.
      reader.pushBack(std::move(*line));
      break;
    }
    traj::LocalizationInterval interval;
    {
      std::istringstream row(*line);
      if (!(row >> keyword >> interval.fromTruth >> interval.toTruth >>
            interval.trueDirectionDeg >> interval.trueOffsetMeters) ||
          keyword != "interval")
        fail(reader.lineNo(), "expected 'interval ...'");
    }
    {
      std::istringstream row(reader.expectLine("'scan'"));
      if (!(row >> keyword) || keyword != "scan")
        fail(reader.lineNo(), "expected 'scan <rss...>'");
      interval.scanAtArrival = parseFingerprint(row);
      if (interval.scanAtArrival.size() != trace.initialScan.size())
        fail(reader.lineNo(), "scan dimensionality mismatch");
    }
    double rate = 0.0;
    std::size_t count = 0;
    {
      std::istringstream row(reader.expectLine("'imu'"));
      if (!(row >> keyword >> rate >> count) || keyword != "imu" ||
          rate <= 0.0)
        fail(reader.lineNo(), "expected 'imu <rate> <n>'");
    }
    sensors::ImuTrace imu(rate);
    for (std::size_t s = 0; s < count; ++s) {
      std::istringstream row(reader.expectLine("IMU sample"));
      sensors::ImuSample sample;
      if (!(row >> sample.t >> sample.accelMagnitude >>
            sample.compassDeg >> sample.gyroRateDegPerSec))
        fail(reader.lineNo(), "bad IMU sample");
      imu.append(sample);
    }
    interval.imu = std::move(imu);
    trace.intervals.push_back(std::move(interval));
  }
  return trace;
}

}  // namespace

traj::Trace loadTrace(std::istream& in) {
  LineReader reader(in);
  return loadTraceFromReader(reader);
}

void saveTraces(const std::vector<traj::Trace>& traces,
                const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw util::IoError("moloc::io: cannot open for writing: " + path);
  out << traces.size() << " traces\n";
  for (const auto& trace : traces) saveTrace(trace, out);
}

std::vector<traj::Trace> loadTraces(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw util::IoError("moloc::io: cannot open for reading: " + path);
  std::size_t count = 0;
  std::string keyword;
  if (!(in >> count >> keyword) || keyword != "traces")
    throw util::ParseError("moloc::io: bad trace-collection header");
  if (count > kMaxTraceCount)
    throw util::ParseError("moloc::io: trace count " +
                           std::to_string(count) + " exceeds the " +
                           std::to_string(kMaxTraceCount) + " limit");
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');

  std::vector<traj::Trace> traces;
  traces.reserve(count);
  LineReader reader(in);
  for (std::size_t t = 0; t < count; ++t)
    traces.push_back(loadTraceFromReader(reader));
  return traces;
}

}  // namespace moloc::io
