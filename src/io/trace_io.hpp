#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "traj/trace_simulator.hpp"

namespace moloc::io {

/// Persistence for walk traces — the raw material of the paper's
/// trace-driven methodology ("we applied a trace-driven approach to
/// collecting and analyzing data", Sec. VI.A).  Recorded traces can be
/// re-run against different engine configurations without re-simulating
/// (or, with real data, without re-walking the building).
///
/// Line-oriented text format:
///
///   moloc-trace v1
///   user <name> <height> <weight> <step_len> <cadence>
///   compass_bias <deg>
///   start <location_id>
///   initial_scan <rss...>
///   interval <from> <to> <true_dir> <true_off>
///   scan <rss...>
///   imu <rate_hz> <n>
///   <t> <accel> <compass> <gyro>     (n sample lines)
///
/// Readers throw util::ParseError with line numbers on malformed
/// input.

void saveTrace(const traj::Trace& trace, std::ostream& out);
traj::Trace loadTrace(std::istream& in);

void saveTraces(const std::vector<traj::Trace>& traces,
                const std::string& path);
std::vector<traj::Trace> loadTraces(const std::string& path);

}  // namespace moloc::io
