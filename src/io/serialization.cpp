#include "io/serialization.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>
#include "util/error.hpp"

#include "util/posix_error.hpp"

namespace moloc::io {

namespace {

constexpr char kFingerprintHeader[] = "moloc-fingerprint-db v1";
constexpr char kMotionHeader[] = "moloc-motion-db v1";

/// Upper bound on a motion database's 'locations' header field.  The
/// loader must refuse counts no real venue can reach before trusting
/// them; storage is sparse (O(entries)), so the cap only bounds the id
/// space, and it must admit the worldgen campus venues (up to 64k
/// locations) that the cold-start benches round-trip through this
/// format.
constexpr std::size_t kMaxMotionLocations = 1u << 20;

[[noreturn]] void fail(int line, const std::string& what) {
  throw util::ParseError("moloc::io: line " + std::to_string(line) +
                           ": " + what);
}

/// Saves the caller's formatting state and restores it on scope exit,
/// so the precision-17 we need for bit-exact double round-trips never
/// leaks into a caller-owned stream.
class ScopedStreamFormat {
 public:
  explicit ScopedStreamFormat(std::ostream& out)
      : out_(out), precision_(out.precision()), flags_(out.flags()) {}
  ~ScopedStreamFormat() {
    out_.precision(precision_);
    out_.flags(flags_);
  }
  ScopedStreamFormat(const ScopedStreamFormat&) = delete;
  ScopedStreamFormat& operator=(const ScopedStreamFormat&) = delete;

 private:
  std::ostream& out_;
  std::streamsize precision_;
  std::ios_base::fmtflags flags_;
};

/// Reads one non-empty line; returns false at a clean EOF.  A final
/// line missing its trailing '\n' fails with the line number: every
/// saver ends the file with a newline, so a missing one means the file
/// was truncated mid-write and the last record cannot be trusted.
bool nextLine(std::istream& in, std::string& line, int& lineNo) {
  while (std::getline(in, line)) {
    ++lineNo;
    if (in.eof())
      fail(lineNo, "missing trailing newline (file truncated?)");
    if (!line.empty()) return true;
  }
  return false;
}

/// Header check distinguishing "not this format at all" from "this
/// format, another version" — the latter names the found version so an
/// operator knows an upgrade (not a corrupt file) is the problem.
void checkHeader(const std::string& line, int lineNo,
                 const std::string& name, const std::string& version) {
  if (line == name + " " + version) return;
  if (line.size() > name.size() + 1 &&
      line.compare(0, name.size() + 1, name + " ") == 0)
    fail(lineNo, "unsupported " + name + " version '" +
                     line.substr(name.size() + 1) + "' (expected '" +
                     version + "')");
  fail(lineNo, "expected header '" + name + " " + version + "'");
}

std::ifstream openForRead(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw util::IoError("moloc::io: cannot open for reading: " +
                             path);
  return in;
}

/// fsyncs an already-written file — ofstream cannot express this, and
/// without it a power loss can let the rename survive while the data
/// blocks do not (delayed allocation), replacing the old database with
/// an empty or partial file.
void fsyncFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0)
    throw util::IoError("moloc::io: cannot reopen for fsync: " +
                             path + ": " + util::errnoMessage(errno));
  const int rc = ::fsync(fd);
  const int savedErrno = errno;
  ::close(fd);
  if (rc != 0)
    throw util::IoError("moloc::io: fsync failed: " + path + ": " +
                             util::errnoMessage(savedErrno));
}

/// fsyncs the directory holding `path`, making the rename itself
/// durable (a renamed file is not crash-safe until its directory entry
/// is).
void fsyncParentDirectory(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0)
    throw util::IoError("moloc::io: cannot open directory: " + dir +
                             ": " + util::errnoMessage(errno));
  const int rc = ::fsync(fd);
  const int savedErrno = errno;
  ::close(fd);
  if (rc != 0)
    throw util::IoError("moloc::io: fsync failed on directory: " +
                             dir + ": " + util::errnoMessage(savedErrno));
}

/// Crash-safe path save: streams through `body` into `path`.tmp,
/// flushes and fsyncs it, renames onto `path`, then fsyncs the
/// directory — so a crash or power loss at any point leaves either the
/// old file or the new one, never a torn half-written database.
/// Failures throw util::IoError naming the path and remove the
/// temporary.
template <typename SaveBody>
void atomicSave(const std::string& path, SaveBody&& body) {
  const std::string tmpPath = path + ".tmp";
  {
    std::ofstream out(tmpPath);
    if (!out)
      throw util::IoError("moloc::io: cannot open for writing: " +
                               tmpPath);
    body(out);
    out.flush();
    if (!out) {
      std::remove(tmpPath.c_str());
      throw util::IoError("moloc::io: write failed: " + tmpPath);
    }
  }
  try {
    fsyncFile(tmpPath);
  } catch (...) {
    std::remove(tmpPath.c_str());
    throw;
  }
  if (std::rename(tmpPath.c_str(), path.c_str()) != 0) {
    const std::string reason = util::errnoMessage(errno);
    std::remove(tmpPath.c_str());
    throw util::IoError("moloc::io: cannot rename '" + tmpPath +
                             "' onto '" + path + "': " + reason);
  }
  fsyncParentDirectory(path);
}

}  // namespace

void saveFingerprintDatabase(const radio::FingerprintDatabase& db,
                             std::ostream& out) {
  const ScopedStreamFormat guard(out);
  out << kFingerprintHeader << '\n';
  out << "aps " << db.apCount() << '\n';
  out.precision(17);
  // With the database's id index this loop is O(n * aps); before the
  // index each entry(id) re-scanned the whole database.
  for (const env::LocationId id : db.locationIds()) {
    const auto& fp = db.entry(id);
    out << "location " << id;
    for (std::size_t i = 0; i < fp.size(); ++i) out << ' ' << fp[i];
    out << '\n';
  }
}

radio::FingerprintDatabase loadFingerprintDatabase(std::istream& in) {
  int lineNo = 0;
  std::string line;
  if (!nextLine(in, line, lineNo))
    fail(lineNo, "expected header '" + std::string(kFingerprintHeader) +
                     "'");
  checkHeader(line, lineNo, "moloc-fingerprint-db", "v1");

  if (!nextLine(in, line, lineNo)) fail(lineNo, "missing 'aps' line");
  std::istringstream apsLine(line);
  std::string keyword;
  std::size_t apCount = 0;
  if (!(apsLine >> keyword >> apCount) || keyword != "aps")
    fail(lineNo, "expected 'aps <n>'");
  if (apCount == 0) fail(lineNo, "aps must be >= 1");

  radio::FingerprintDatabase db;
  while (nextLine(in, line, lineNo)) {
    std::istringstream row(line);
    env::LocationId id = 0;
    if (!(row >> keyword >> id) || keyword != "location")
      fail(lineNo, "expected 'location <id> <rss...>'");
    if (id < 0) fail(lineNo, "negative location id");
    std::vector<double> rss;
    double value = 0.0;
    while (row >> value) rss.push_back(value);
    if (rss.size() != apCount)
      fail(lineNo, "expected " + std::to_string(apCount) +
                       " RSS values, got " + std::to_string(rss.size()));
    try {
      db.addLocation(id, radio::Fingerprint(std::move(rss)));
    } catch (const std::invalid_argument& e) {
      fail(lineNo, e.what());
    }
  }
  return db;
}

void saveMotionDatabase(const core::MotionDatabase& db,
                        std::ostream& out) {
  const ScopedStreamFormat guard(out);
  out << kMotionHeader << '\n';
  out << "locations " << db.locationCount() << '\n';
  out.precision(17);
  // forEachEntry iterates in row-major (i, then j) order, so the file
  // layout is identical to the historical dense double loop.
  db.forEachEntry([&out](env::LocationId i, env::LocationId j,
                         const core::RlmStats& entry) {
    out << "entry " << i << ' ' << j << ' ' << entry.muDirectionDeg
        << ' ' << entry.sigmaDirectionDeg << ' ' << entry.muOffsetMeters
        << ' ' << entry.sigmaOffsetMeters << ' ' << entry.sampleCount
        << '\n';
  });
}

core::MotionDatabase loadMotionDatabase(std::istream& in) {
  int lineNo = 0;
  std::string line;
  if (!nextLine(in, line, lineNo))
    fail(lineNo,
         "expected header '" + std::string(kMotionHeader) + "'");
  checkHeader(line, lineNo, "moloc-motion-db", "v1");

  if (!nextLine(in, line, lineNo))
    fail(lineNo, "missing 'locations' line");
  std::istringstream head(line);
  std::string keyword;
  std::size_t locationCount = 0;
  if (!(head >> keyword >> locationCount) || keyword != "locations")
    fail(lineNo, "expected 'locations <n>'");
  // The count must be validated before it is trusted: a corrupt
  // 'locations' line used to reserve n^2 dense entries sight unseen
  // (found by the serialization fuzz target; fuzz/corpus/regressions).
  // MotionDatabase is sparse now, but the cap keeps a corrupt header
  // from legitimizing an absurd id space in this text format, which
  // stays O(entries).
  if (locationCount > kMaxMotionLocations)
    fail(lineNo, "locations " + std::to_string(locationCount) +
                     " exceeds the supported maximum " +
                     std::to_string(kMaxMotionLocations));

  core::MotionDatabase db(locationCount);
  while (nextLine(in, line, lineNo)) {
    std::istringstream row(line);
    env::LocationId i = 0;
    env::LocationId j = 0;
    core::RlmStats stats;
    if (!(row >> keyword >> i >> j >> stats.muDirectionDeg >>
          stats.sigmaDirectionDeg >> stats.muOffsetMeters >>
          stats.sigmaOffsetMeters >> stats.sampleCount) ||
        keyword != "entry")
      fail(lineNo, "expected 'entry <i> <j> <mu_d> <s_d> <mu_o> <s_o> "
                   "<samples>'");
    std::string extra;
    if (row >> extra) fail(lineNo, "trailing data");
    try {
      if (db.hasEntry(i, j))
        fail(lineNo, "duplicate entry for pair (" + std::to_string(i) +
                         ", " + std::to_string(j) + ")");
      db.setEntry(i, j, stats);
    } catch (const std::out_of_range& e) {
      fail(lineNo, e.what());
    }
  }
  return db;
}

void saveProbabilisticDatabase(
    const radio::ProbabilisticFingerprintDatabase& db,
    std::ostream& out) {
  const ScopedStreamFormat guard(out);
  out << "moloc-probabilistic-db v1\n";
  out << "aps " << db.apCount() << '\n';
  out.precision(17);
  for (const env::LocationId id : db.locationIds()) {
    out << "location " << id << " mu";
    for (double v : db.mu(id)) out << ' ' << v;
    out << " sigma";
    for (double v : db.sigma(id)) out << ' ' << v;
    out << '\n';
  }
}

radio::ProbabilisticFingerprintDatabase loadProbabilisticDatabase(
    std::istream& in) {
  int lineNo = 0;
  std::string line;
  if (!nextLine(in, line, lineNo))
    fail(lineNo, "expected header 'moloc-probabilistic-db v1'");
  checkHeader(line, lineNo, "moloc-probabilistic-db", "v1");

  if (!nextLine(in, line, lineNo)) fail(lineNo, "missing 'aps' line");
  std::istringstream apsLine(line);
  std::string keyword;
  std::size_t apCount = 0;
  if (!(apsLine >> keyword >> apCount) || keyword != "aps" ||
      apCount == 0)
    fail(lineNo, "expected 'aps <n>' with n >= 1");

  radio::ProbabilisticFingerprintDatabase db;
  while (nextLine(in, line, lineNo)) {
    std::istringstream row(line);
    env::LocationId id = 0;
    if (!(row >> keyword >> id) || keyword != "location" || id < 0)
      fail(lineNo, "expected 'location <id> mu ... sigma ...'");

    if (!(row >> keyword) || keyword != "mu")
      fail(lineNo, "expected 'mu' marker");
    std::vector<double> mu;
    std::vector<double> sigma;
    double value = 0.0;
    std::string token;
    while (row >> token) {
      if (token == "sigma") break;
      try {
        mu.push_back(std::stod(token));
      } catch (const std::exception&) {
        fail(lineNo, "bad mu value '" + token + "'");
      }
    }
    if (token != "sigma") fail(lineNo, "missing 'sigma' marker");
    while (row >> value) sigma.push_back(value);
    if (mu.size() != apCount || sigma.size() != apCount)
      fail(lineNo, "expected " + std::to_string(apCount) +
                       " mu and sigma values");
    try {
      db.addFittedLocation(id, std::move(mu), std::move(sigma));
    } catch (const std::invalid_argument& e) {
      fail(lineNo, e.what());
    }
  }
  return db;
}

void saveFingerprintDatabase(const radio::FingerprintDatabase& db,
                             const std::string& path) {
  atomicSave(path,
             [&](std::ostream& out) { saveFingerprintDatabase(db, out); });
}

radio::FingerprintDatabase loadFingerprintDatabase(
    const std::string& path) {
  auto in = openForRead(path);
  return loadFingerprintDatabase(in);
}

void saveMotionDatabase(const core::MotionDatabase& db,
                        const std::string& path) {
  atomicSave(path,
             [&](std::ostream& out) { saveMotionDatabase(db, out); });
}

core::MotionDatabase loadMotionDatabase(const std::string& path) {
  auto in = openForRead(path);
  return loadMotionDatabase(in);
}

}  // namespace moloc::io
