#pragma once

#include <iosfwd>
#include <string>

#include "core/motion_database.hpp"
#include "radio/fingerprint_database.hpp"
#include "radio/probabilistic_database.hpp"

namespace moloc::io {

/// Persistence for the two databases a deployed MoLoc installation
/// carries between sessions: the radio map from the site survey and
/// the crowdsourced motion database.
///
/// The format is a line-oriented text format with a versioned header —
/// diff-friendly, greppable, and stable across platforms:
///
///   moloc-fingerprint-db v1
///   aps <n>
///   location <id> <rss_1> ... <rss_n>
///
///   moloc-motion-db v1
///   locations <n>
///   entry <i> <j> <mu_dir> <sigma_dir> <mu_off> <sigma_off> <samples>
///
/// Readers throw util::ParseError with a line-numbered message on any
/// malformed input; partially-read data is never returned.

void saveFingerprintDatabase(const radio::FingerprintDatabase& db,
                             std::ostream& out);
radio::FingerprintDatabase loadFingerprintDatabase(std::istream& in);

void saveMotionDatabase(const core::MotionDatabase& db,
                        std::ostream& out);
core::MotionDatabase loadMotionDatabase(std::istream& in);

/// Horus-style probabilistic radio map:
///   moloc-probabilistic-db v1
///   aps <n>
///   location <id> mu <mu_1..n> sigma <sigma_1..n>
void saveProbabilisticDatabase(
    const radio::ProbabilisticFingerprintDatabase& db, std::ostream& out);
radio::ProbabilisticFingerprintDatabase loadProbabilisticDatabase(
    std::istream& in);

/// File-path conveniences.  Saves are crash-safe: they stream into
/// `<path>.tmp`, flush and fsync it, rename onto `path`, and fsync the
/// directory, so a crash, power loss, or full disk leaves either the
/// previous file or the complete new one — never a torn half-write.
/// All failures throw util::IoError naming the path.
void saveFingerprintDatabase(const radio::FingerprintDatabase& db,
                             const std::string& path);
radio::FingerprintDatabase loadFingerprintDatabase(
    const std::string& path);
void saveMotionDatabase(const core::MotionDatabase& db,
                        const std::string& path);
core::MotionDatabase loadMotionDatabase(const std::string& path);

}  // namespace moloc::io
