// Twin analysis: operationalizes "fingerprint ambiguity" (Sec. I /
// Sec. VI.B.3).  Scans the surveyed radio map for fingerprint twins —
// far-apart locations with near-identical fingerprints — per AP count,
// the way the paper identifies its pairs (2,15), (10,27), (13,26), and
// cross-checks that the twin fixes are where the WiFi baseline's large
// errors actually happen.

#include <cstdio>
#include <set>

#include "bench/common.hpp"
#include "eval/ambiguity.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Fingerprint-twin analysis of the office hall ===\n");
  std::printf("criteria: fingerprint gap <= 8 dB, geometric gap >= 6 m\n"
              "(ids are 0-based; the paper's Fig. 5 ids are these "
              "plus one)\n\n");

  util::CsvWriter csv(bench::resultsDir() + "/twin_analysis.csv",
                      {"aps", "loc_a", "loc_b", "fingerprint_gap_db",
                       "geometric_gap_m"});

  for (int aps : {4, 5, 6}) {
    eval::WorldConfig config;
    config.apCount = aps;
    eval::ExperimentWorld world(config);

    const auto twins = eval::findFingerprintTwins(
        world.fingerprintDb(), world.hall().plan);
    std::printf("--- %d APs: %zu twin pairs ---\n", aps, twins.size());
    int printed = 0;
    for (const auto& twin : twins) {
      if (printed++ >= 8) {
        std::printf("  ... and %zu more\n", twins.size() - 8);
        break;
      }
      std::printf("  (%2d, %2d): fingerprints %.1f dB apart, locations "
                  "%.1f m apart\n",
                  twin.a, twin.b, twin.fingerprintGapDb,
                  twin.geometricGapMeters);
    }
    for (const auto& twin : twins)
      csv.cell(aps).cell(twin.a).cell(twin.b).cell(twin.fingerprintGapDb)
          .cell(twin.geometricGapMeters).endRow();

    // Cross-check: are the WiFi baseline's large errors concentrated
    // at twin locations?
    std::set<env::LocationId> twinLocations;
    for (const auto& twin : twins) {
      twinLocations.insert(twin.a);
      twinLocations.insert(twin.b);
    }
    const auto outcomes = eval::runComparison(world, bench::kTestTraces,
                                              bench::kLegsPerTrace);
    std::size_t largeErrors = 0;
    std::size_t largeErrorsAtTwins = 0;
    for (const auto& outcome : outcomes) {
      for (const auto& record : outcome.wifi) {
        if (record.errorMeters <= 6.0) continue;
        ++largeErrors;
        if (twinLocations.count(record.truth)) ++largeErrorsAtTwins;
      }
    }
    std::printf("  wifi errors > 6 m: %zu, of which %zu (%.0f%%) at "
                "twin locations\n\n",
                largeErrors, largeErrorsAtTwins,
                largeErrors ? 100.0 * largeErrorsAtTwins / largeErrors
                            : 0.0);
  }
  std::printf("rows written to %s/twin_analysis.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
