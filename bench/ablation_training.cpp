// Ablation A7: crowdsourcing volume.  The paper's efficiency principle
// argues crowdsourcing makes motion-database construction cheap; this
// sweep shows how much walking the crowd actually has to do — accuracy
// and motion-DB coverage as a function of the number of training walks.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Ablation A7: crowdsourcing training volume "
              "(6 APs) ===\n");
  std::printf("%-10s %-8s %-10s %-12s\n", "walks", "pairs", "accuracy",
              "mean_err_m");

  util::CsvWriter csv(bench::resultsDir() + "/ablation_training.csv",
                      {"training_walks", "pairs_learned", "accuracy",
                       "mean_err_m"});

  for (int walks : {10, 25, 50, 100, 150, 300}) {
    eval::WorldConfig config;
    config.trainingTraces = walks;
    eval::ExperimentWorld world(config);
    eval::ErrorStats moloc;
    for (const auto& outcome : eval::runComparison(
             world, bench::kTestTraces, bench::kLegsPerTrace))
      moloc.addAll(outcome.moloc);

    std::printf("%-10d %-8zu %-10.3f %-12.2f%s\n", walks,
                world.builderReport().pairsStored, moloc.accuracy(),
                moloc.meanError(),
                walks == 150 ? "   <- paper's volume" : "");
    csv.cell(walks).cell(world.builderReport().pairsStored)
        .cell(moloc.accuracy()).cell(moloc.meanError()).endRow();
  }
  std::printf("rows written to %s/ablation_training.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
