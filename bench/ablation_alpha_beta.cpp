// Ablation A4: the Gaussian discretization intervals alpha (direction)
// and beta (offset) of Eq. 5.  The paper sets alpha = 20 deg and
// beta = 1 m "based on the standard deviations of the direction and
// offset measurements in the motion database"; this sweep shows the
// sensitivity around those choices.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Ablation A4: discretization intervals alpha / beta "
              "(6 APs) ===\n\n");

  util::CsvWriter csv(bench::resultsDir() + "/ablation_alpha_beta.csv",
                      {"alpha_deg", "beta_m", "accuracy", "mean_err_m"});

  std::printf("alpha sweep (beta = 1 m):\n");
  std::printf("%-10s %-10s %-10s\n", "alpha_deg", "accuracy", "mean_err");
  for (double alpha : {5.0, 10.0, 20.0, 30.0, 45.0, 90.0}) {
    eval::WorldConfig config;
    config.moloc.matcher.alphaDeg = alpha;
    const auto run = bench::runPaired(config);
    std::printf("%-10.0f %-10.3f %-10.2f%s\n", alpha,
                run.moloc.accuracy(), run.moloc.meanError(),
                alpha == 20.0 ? "   <- paper's setting" : "");
    csv.cell(alpha).cell(1.0).cell(run.moloc.accuracy())
        .cell(run.moloc.meanError()).endRow();
  }

  std::printf("\nbeta sweep (alpha = 20 deg):\n");
  std::printf("%-10s %-10s %-10s\n", "beta_m", "accuracy", "mean_err");
  for (double beta : {0.25, 0.5, 1.0, 2.0, 3.0}) {
    eval::WorldConfig config;
    config.moloc.matcher.betaMeters = beta;
    const auto run = bench::runPaired(config);
    std::printf("%-10.2f %-10.3f %-10.2f%s\n", beta,
                run.moloc.accuracy(), run.moloc.meanError(),
                beta == 1.0 ? "   <- paper's setting" : "");
    csv.cell(20.0).cell(beta).cell(run.moloc.accuracy())
        .cell(run.moloc.meanError()).endRow();
  }
  std::printf("rows written to %s/ablation_alpha_beta.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
