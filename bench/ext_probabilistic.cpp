// Extension E3: deterministic (Eq. 1-4) vs Horus-style probabilistic
// fingerprint matching (the paper's related work [17]) — both as a
// standalone localizer and as MoLoc's candidate source.  Shows that the
// motion term composes with either matcher, which is the paper's
// compatibility claim ("regardless of fingerprint types").

#include <cstdio>

#include "baseline/wifi_fingerprinting.hpp"
#include "bench/common.hpp"
#include "radio/probabilistic_database.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Extension E3: deterministic vs probabilistic "
              "matching (6 APs) ===\n");

  eval::WorldConfig config;
  eval::ExperimentWorld world(config);

  // Build the probabilistic radio map from the same survey the
  // deterministic one used.
  util::Rng surveyRng(config.seed);
  util::Rng derived = surveyRng.split();
  const auto survey =
      radio::conductSurvey(world.radio(), config.survey, derived);
  const auto probDb =
      radio::ProbabilisticFingerprintDatabase::fromSurvey(survey);

  const baseline::WifiFingerprinting nearest(world.fingerprintDb());
  core::MoLocEngine molocDet = world.makeEngine();
  core::MoLocEngine molocProb(probDb, world.motionDb(), config.moloc);

  eval::ErrorStats nearestStats, horusStats, molocDetStats,
      molocProbStats;

  for (int t = 0; t < bench::kTestTraces; ++t) {
    const auto& user =
        world.users()[static_cast<std::size_t>(t) % world.users().size()];
    const auto trace =
        world.makeTrace(user, bench::kLegsPerTrace, world.evalRng());
    molocDet.reset();
    molocProb.reset();

    auto record = [&world](env::LocationId estimated,
                           env::LocationId truth) {
      return eval::LocalizationRecord{
          estimated, truth, world.locationDistance(estimated, truth)};
    };

    nearestStats.add(
        record(nearest.localize(trace.initialScan), trace.startTruth));
    horusStats.add(
        record(probDb.mostLikely(trace.initialScan), trace.startTruth));
    molocDetStats.add(record(
        molocDet.localize(trace.initialScan, std::nullopt).location,
        trace.startTruth));
    molocProbStats.add(record(
        molocProb.localize(trace.initialScan, std::nullopt).location,
        trace.startTruth));

    for (const auto& interval : trace.intervals) {
      const auto motion = world.processInterval(interval, user);
      nearestStats.add(record(nearest.localize(interval.scanAtArrival),
                              interval.toTruth));
      horusStats.add(record(probDb.mostLikely(interval.scanAtArrival),
                            interval.toTruth));
      molocDetStats.add(
          record(molocDet.localize(interval.scanAtArrival, motion).location,
                 interval.toTruth));
      molocProbStats.add(record(
          molocProb.localize(interval.scanAtArrival, motion).location,
          interval.toTruth));
    }
  }

  std::printf("%-26s %-10s %-12s %-10s\n", "method", "accuracy",
              "mean_err_m", "max_err_m");
  util::CsvWriter csv(bench::resultsDir() + "/ext_probabilistic.csv",
                      {"method", "accuracy", "mean_err_m", "max_err_m"});
  const struct {
    const char* name;
    const eval::ErrorStats* stats;
  } rows[] = {{"nearest (Eq. 2)", &nearestStats},
              {"horus-ml", &horusStats},
              {"moloc + deterministic", &molocDetStats},
              {"moloc + probabilistic", &molocProbStats}};
  for (const auto& row : rows) {
    std::printf("%-26s %-10.3f %-12.2f %-10.2f\n", row.name,
                row.stats->accuracy(), row.stats->meanError(),
                row.stats->maxError());
    csv.cell(row.name).cell(row.stats->accuracy())
        .cell(row.stats->meanError()).cell(row.stats->maxError()).endRow();
  }
  std::printf("\nexpected: motion lifts both matchers far above their "
              "standalone accuracy.\n");
  std::printf("rows written to %s/ext_probabilistic.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
