// Ablation A3: the data sanitation pipeline (Sec. IV.B.2).  Toggles
// the coarse (map comparison) and fine (2-sigma) filters and reports
// both motion-database quality (vs ground truth) and end-to-end
// localization accuracy.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "geometry/angles.hpp"
#include "util/stats.hpp"

namespace {

using namespace moloc;

struct Variant {
  const char* name;
  bool coarse;
  bool fine;
};

}  // namespace

int main() {
  std::printf("=== Ablation A3: crowdsourcing data sanitation ===\n");
  std::printf("%-14s %-8s %-8s %-10s %-10s %-10s %-10s\n", "variant",
              "pairs", "rejected", "dir_err", "off_err", "accuracy",
              "mean_err");

  util::CsvWriter csv(
      bench::resultsDir() + "/ablation_sanitation.csv",
      {"variant", "pairs", "rejected", "dir_err_deg", "off_err_m",
       "accuracy", "mean_err_m"});

  const Variant variants[] = {
      {"both", true, true},
      {"coarse-only", true, false},
      {"fine-only", false, true},
      {"none", false, false},
  };

  for (const auto& variant : variants) {
    eval::WorldConfig config;
    config.builder.enableCoarseFilter = variant.coarse;
    config.builder.enableFineFilter = variant.fine;
    eval::ExperimentWorld world(config);

    // Motion-DB quality vs map ground truth.
    std::vector<double> directionErrors;
    std::vector<double> offsetErrors;
    const auto& graph = world.hall().graph;
    for (env::LocationId i = 0;
         i < static_cast<env::LocationId>(graph.nodeCount()); ++i) {
      for (const auto& edge : graph.neighbors(i)) {
        if (edge.to < i) continue;
        const auto learned = world.motionDb().entry(i, edge.to);
        if (!learned) continue;
        directionErrors.push_back(geometry::angularDistDeg(
            learned->muDirectionDeg, edge.headingDeg));
        offsetErrors.push_back(
            std::abs(learned->muOffsetMeters - edge.length));
      }
    }

    eval::ErrorStats moloc;
    for (const auto& outcome : eval::runComparison(
             world, bench::kTestTraces, bench::kLegsPerTrace))
      moloc.addAll(outcome.moloc);

    const auto& report = world.builderReport();
    const auto rejected = report.rejectedCoarse + report.rejectedFine;
    std::printf("%-14s %-8zu %-8zu %-10.1f %-10.2f %-10.3f %-10.2f\n",
                variant.name, report.pairsStored, rejected,
                util::mean(directionErrors), util::mean(offsetErrors),
                moloc.accuracy(), moloc.meanError());
    csv.cell(variant.name).cell(report.pairsStored).cell(rejected)
        .cell(util::mean(directionErrors)).cell(util::mean(offsetErrors))
        .cell(moloc.accuracy()).cell(moloc.meanError()).endRow();
  }
  std::printf("\n(dir_err / off_err: mean gap between learned RLM means "
              "and the map's walkable legs)\n");
  std::printf("rows written to %s/ablation_sanitation.csv\n",
              moloc::bench::resultsDir().c_str());
  return 0;
}
