// Reproduces Fig. 6: validity of the crowdsourced motion database.
// For every learned pair, the direction / offset means are compared
// with the map-derived ground truth of the same walkable leg, and the
// error CDFs are printed (paper: direction median 3 deg / max 15 deg;
// offset median 0.13 m / max 0.46 m).

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "geometry/angles.hpp"
#include "util/stats.hpp"

int main() {
  using namespace moloc;

  eval::WorldConfig config;  // 6 APs, paper-scale training.
  eval::ExperimentWorld world(config);

  const auto& graph = world.hall().graph;
  const auto& motionDb = world.motionDb();

  std::vector<double> directionErrors;
  std::vector<double> offsetErrors;
  std::size_t learnedPairs = 0;
  std::size_t truePairs = 0;

  for (env::LocationId i = 0;
       i < static_cast<env::LocationId>(graph.nodeCount()); ++i) {
    for (const auto& edge : graph.neighbors(i)) {
      if (edge.to < i) continue;  // Each undirected leg once.
      ++truePairs;
      const auto learned = motionDb.entry(i, edge.to);
      if (!learned) continue;
      ++learnedPairs;
      directionErrors.push_back(geometry::angularDistDeg(
          learned->muDirectionDeg, edge.headingDeg));
      offsetErrors.push_back(
          std::abs(learned->muOffsetMeters - edge.length));
    }
  }

  const auto& report = world.builderReport();
  std::printf("=== Fig. 6: validity of the motion database ===\n");
  std::printf("training: %d crowdsourced walks, %zu observations "
              "(%zu rejected coarse, %zu rejected fine)\n",
              config.trainingTraces, report.observations,
              report.rejectedCoarse, report.rejectedFine);
  std::printf("coverage: %zu of %zu walkable legs learned\n\n",
              learnedPairs, truePairs);

  std::printf("(a) direction errors [deg]   (paper: median 3, max 15)\n");
  std::printf("    median %.1f  mean %.1f  max %.1f\n",
              util::median(directionErrors), util::mean(directionErrors),
              util::maxValue(directionErrors));
  for (const auto& point : util::sampledCdf(directionErrors, 10))
    std::printf("    %6.2f deg -> %.3f\n", point.value, point.cumulative);

  std::printf("\n(b) offset errors [m]        (paper: median 0.13, "
              "max 0.46)\n");
  std::printf("    median %.2f  mean %.2f  max %.2f\n",
              util::median(offsetErrors), util::mean(offsetErrors),
              util::maxValue(offsetErrors));
  for (const auto& point : util::sampledCdf(offsetErrors, 10))
    std::printf("    %6.2f m   -> %.3f\n", point.value, point.cumulative);

  util::CsvWriter csv(bench::resultsDir() + "/fig6_motion_db.csv",
                      {"metric", "error", "cumulative"});
  for (const auto& point : util::empiricalCdf(directionErrors))
    csv.cell("direction_deg").cell(point.value).cell(point.cumulative)
        .endRow();
  for (const auto& point : util::empiricalCdf(offsetErrors))
    csv.cell("offset_m").cell(point.value).cell(point.cumulative)
        .endRow();
  std::printf("\nseries written to %s/fig6_motion_db.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
