// Reproduces Table I: convergence to accurate localization.  Over the
// test walks whose *initial* estimate is erroneous, how many erroneous
// localizations (EL) precede the first accurate one, and the accuracy /
// mean error / max error of all subsequent fixes.
//
// Paper's Table I:
//   Setting      EL    Accuracy  Mean err  Max err
//   4-AP WiFi    3.28  34 %      4.91      16.64
//   4-AP MoLoc   1.57  89 %      0.67       7.92
//   5-AP WiFi    2.71  39 %      4.33      14.7
//   5-AP MoLoc   1.42  93 %      0.36       6.25
//   6-AP WiFi    2.25  48 %      3.27      13.6
//   6-AP MoLoc   1.13  96 %      0.22       6.88

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Table I: convergence of accurate localization ===\n");
  std::printf("%-12s %-6s %-9s %-10s %-10s %-8s\n", "Setting", "EL",
              "Accuracy", "Mean err", "Max err", "walks");

  util::CsvWriter csv(bench::resultsDir() + "/tab1_convergence.csv",
                      {"aps", "method", "el", "accuracy", "mean_err_m",
                       "max_err_m", "walks"});

  for (int aps : {4, 5, 6}) {
    eval::WorldConfig config;
    config.apCount = aps;
    // More walks than Fig. 7's 34 so that the erroneous-initial subset
    // is large enough for stable statistics.
    const auto run = bench::runPaired(config, 100, bench::kLegsPerTrace);

    const auto convWifi = eval::analyzeConvergence(run.wifiWalks);
    const auto convMoloc = eval::analyzeConvergence(run.molocWalks);

    std::printf("%d-AP WiFi    %-6.2f %-9.0f %-10.2f %-10.2f %zu\n", aps,
                convWifi.meanErroneousBeforeFirstAccurate,
                convWifi.subsequentAccuracy * 100.0,
                convWifi.subsequentMeanError, convWifi.subsequentMaxError,
                convWifi.tracesAnalyzed);
    std::printf("%d-AP MoLoc   %-6.2f %-9.0f %-10.2f %-10.2f %zu\n", aps,
                convMoloc.meanErroneousBeforeFirstAccurate,
                convMoloc.subsequentAccuracy * 100.0,
                convMoloc.subsequentMeanError,
                convMoloc.subsequentMaxError, convMoloc.tracesAnalyzed);

    csv.cell(aps).cell("wifi")
        .cell(convWifi.meanErroneousBeforeFirstAccurate)
        .cell(convWifi.subsequentAccuracy)
        .cell(convWifi.subsequentMeanError)
        .cell(convWifi.subsequentMaxError)
        .cell(convWifi.tracesAnalyzed)
        .endRow();
    csv.cell(aps).cell("moloc")
        .cell(convMoloc.meanErroneousBeforeFirstAccurate)
        .cell(convMoloc.subsequentAccuracy)
        .cell(convMoloc.subsequentMeanError)
        .cell(convMoloc.subsequentMaxError)
        .cell(convMoloc.tracesAnalyzed)
        .endRow();
  }
  std::printf("\n(EL = erroneous localizations before the first accurate "
              "fix,\n over walks with an erroneous initial estimate; "
              "subsequent-fix stats follow.)\n");
  std::printf("rows written to %s/tab1_convergence.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
