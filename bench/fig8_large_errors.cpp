// Reproduces Fig. 8: performance at the locations where WiFi
// fingerprinting has large errors (> 6 m) — the "fingerprint twins".
// The paper extracts the fixes where the baseline errs over 6 m and
// shows MoLoc cutting mean error there by ~6.8 m and max error by ~4 m.

#include <cstdio>
#include <map>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Fig. 8: localization at large-error (twin) "
              "locations ===\n");
  std::printf("criterion: fixes where the WiFi baseline errs > 6 m\n\n");

  for (int aps : {4, 5, 6}) {
    eval::WorldConfig config;
    config.apCount = aps;
    eval::ExperimentWorld world(config);
    const auto outcomes =
        eval::runComparison(world, bench::kTestTraces, bench::kLegsPerTrace);

    // Identify the twin-prone ground-truth locations and collect the
    // paired records at every fix whose truth is such a location.
    std::map<env::LocationId, int> largeErrorCounts;
    for (const auto& outcome : outcomes)
      for (const auto& record : outcome.wifi)
        if (record.errorMeters > 6.0) ++largeErrorCounts[record.truth];

    eval::ErrorStats moloc;
    eval::ErrorStats wifi;
    for (const auto& outcome : outcomes) {
      for (std::size_t i = 0; i < outcome.wifi.size(); ++i) {
        if (largeErrorCounts.count(outcome.wifi[i].truth) == 0) continue;
        wifi.add(outcome.wifi[i]);
        moloc.add(outcome.moloc[i]);
      }
    }

    std::printf("--- %d APs ---\n", aps);
    std::printf("  twin-prone locations (0-based ids):");
    for (const auto& [id, count] : largeErrorCounts)
      std::printf(" %d(x%d)", id, count);
    std::printf("\n");
    std::printf("  fixes analyzed: %zu\n", wifi.count());
    std::printf("  mean error: moloc %.2f m  wifi %.2f m  "
                "(reduction %.1f m)\n",
                moloc.meanError(), wifi.meanError(),
                wifi.meanError() - moloc.meanError());
    std::printf("  max error:  moloc %.2f m  wifi %.2f m  "
                "(reduction %.1f m)\n",
                moloc.maxError(), wifi.maxError(),
                wifi.maxError() - moloc.maxError());
    bench::printCdf("moloc", moloc.cdf(10));
    bench::printCdf("wifi", wifi.cdf(10));

    bench::writeCdfCsv(bench::resultsDir() + "/fig8_large_errors_" +
                           std::to_string(aps) + "ap.csv",
                       moloc, wifi);
    std::printf("\n");
  }
  std::printf("series written to %s/fig8_large_errors_{4,5,6}ap.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
