// Ablation A1: the candidate-set size k.  The paper keeps k implicit;
// this sweep shows the trade-off the engine design implies: k = 1
// degenerates to plain fingerprinting (no candidate set to carry), and
// accuracy saturates once the set reliably contains the truth.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Ablation A1: candidate-set size k (6 APs) ===\n");
  std::printf("%-4s %-10s %-12s %-10s\n", "k", "accuracy", "mean_err_m",
              "max_err_m");

  util::CsvWriter csv(bench::resultsDir() + "/ablation_k.csv",
                      {"k", "accuracy", "mean_err_m", "max_err_m"});

  for (std::size_t k : {1, 2, 4, 8, 12, 20, 28}) {
    eval::WorldConfig config;
    config.moloc.candidateCount = k;
    const auto run = bench::runPaired(config);
    std::printf("%-4zu %-10.3f %-12.2f %-10.2f\n", k,
                run.moloc.accuracy(), run.moloc.meanError(),
                run.moloc.maxError());
    csv.cell(k).cell(run.moloc.accuracy()).cell(run.moloc.meanError())
        .cell(run.moloc.maxError()).endRow();
  }
  std::printf("rows written to %s/ablation_k.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
