// Reproduces Fig. 4: the acceleration signature of 10 steps, with each
// detected step marked.  The paper's plot shows a repetitive magnitude
// trace swinging roughly between 6 and 15 m/s^2 with one dominant peak
// per step; the detector must recover all 10.

#include <cstdio>

#include "bench/common.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/step_counter.hpp"
#include "sensors/step_detector.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

int main() {
  using namespace moloc;

  const double cadence = 1.8;   // Steps per second.
  const int trueSteps = 10;
  sensors::AccelParams params;  // 50 Hz, Fig. 4-like envelope.
  sensors::AccelerometerModel model(params);
  util::Rng rng(2013);

  const auto sampleCount = static_cast<std::size_t>(
      trueSteps / cadence * params.sampleRateHz);
  const auto accel = model.walkingSamples(sampleCount, cadence, rng);

  const sensors::StepDetector detector;
  const auto peaks = detector.detect(accel, params.sampleRateHz);
  const auto peakTimes = detector.detectTimes(accel, params.sampleRateHz);

  std::printf("=== Fig. 4: acceleration signature of %d steps ===\n",
              trueSteps);
  std::printf("trace: %.1f s at %.0f Hz, cadence %.1f steps/s\n",
              static_cast<double>(sampleCount) / params.sampleRateHz,
              params.sampleRateHz, cadence);
  std::printf("magnitude range: %.1f .. %.1f m/s^2 (paper: ~6 .. ~15)\n",
              util::minValue(accel), util::maxValue(accel));
  std::printf("detected steps: %zu of %d true steps, at t =",
              peaks.size(), trueSteps);
  for (double t : peakTimes) std::printf(" %.2f", t);
  std::printf(" s\n");

  const auto dsc = sensors::discreteStepCount(peakTimes);
  const auto csc = sensors::continuousStepCount(
      peakTimes, static_cast<double>(sampleCount) / params.sampleRateHz);
  std::printf("DSC count: %.2f steps | CSC count: %.2f steps "
              "(true: %d)\n",
              dsc.totalSteps(), csc.totalSteps(), trueSteps);

  // ASCII rendering of the trace with detected peaks marked 'x'.
  std::printf("\ntrace (one row per 0.1 s; '#' = magnitude, 'x' = "
              "detected step):\n");
  for (std::size_t i = 0; i < accel.size(); i += 5) {
    const bool isPeak = [&] {
      for (std::size_t p : peaks)
        if (p >= i && p < i + 5) return true;
      return false;
    }();
    const int bars =
        static_cast<int>((accel[i] - 4.0) / 12.0 * 50.0);
    std::printf("  %4.1fs |", static_cast<double>(i) / params.sampleRateHz);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("%s\n", isPeak ? " x" : "");
  }

  // CSV series for offline plotting.
  util::CsvWriter csv(bench::resultsDir() + "/fig4_steps.csv",
                      {"t_s", "accel_mps2", "is_step_peak"});
  for (std::size_t i = 0; i < accel.size(); ++i) {
    const bool isPeak = [&] {
      for (std::size_t p : peaks)
        if (p == i) return true;
      return false;
    }();
    csv.cell(static_cast<double>(i) / params.sampleRateHz)
        .cell(accel[i])
        .cell(isPeak ? 1 : 0)
        .endRow();
  }
  std::printf("\nseries written to %s/fig4_steps.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
