// Micro-benchmarks backing the paper's efficiency claims (Sec. V.C):
// MoLoc "minimizes the computational complexity so as to save energy",
// and the related-work HMM carries "high computational overhead".
// Measures the per-query cost of each pipeline stage and of the
// full-state HMM comparator on the paper-scale world.
//
// Besides the google-benchmark suite, the binary always runs a JSON
// perf-trajectory harness (bench_results/BENCH_micro_engine.json, see
// docs/performance.md) comparing the pre-kernel reference
// implementations against the src/kernel paths — scalar-forced and
// runtime-dispatched — so kernel speedups are tracked as data across
// commits.  `--smoke` skips the google-benchmark suite and shortens
// the harness for CI; MOLOC_BENCH_ROUNDS overrides the sample count.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

#include "baseline/hmm_localizer.hpp"
#include "baseline/particle_filter.hpp"
#include "bench/common.hpp"
#include "core/localization_session.hpp"
#include "baseline/wifi_fingerprinting.hpp"
#include "eval/experiment_world.hpp"
#include "kernel/fingerprint_kernel.hpp"

namespace {

using namespace moloc;

/// One world shared by all benchmarks (construction is not measured).
eval::ExperimentWorld& world() {
  static eval::ExperimentWorld instance{eval::WorldConfig{}};
  return instance;
}

radio::Fingerprint probeScan() {
  static const radio::Fingerprint scan = [] {
    util::Rng rng(77);
    return world().radio().scan({20.4, 8.0}, 90.0, rng);
  }();
  return scan;
}

void BM_FingerprintNearest(benchmark::State& state) {
  const baseline::WifiFingerprinting wifi(world().fingerprintDb());
  const auto scan = probeScan();
  for (auto _ : state) benchmark::DoNotOptimize(wifi.localize(scan));
}
BENCHMARK(BM_FingerprintNearest);

void BM_CandidateQuery(benchmark::State& state) {
  const auto scan = probeScan();
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(world().fingerprintDb().query(scan, k));
}
BENCHMARK(BM_CandidateQuery)->Arg(1)->Arg(5)->Arg(12)->Arg(28);

void BM_MotionPairProbability(benchmark::State& state) {
  const core::MotionMatcher matcher(world().motionDb());
  const sensors::MotionMeasurement motion{90.0, 5.7};
  for (auto _ : state)
    benchmark::DoNotOptimize(matcher.pairProbability(0, 1, motion));
}
BENCHMARK(BM_MotionPairProbability);

void BM_MoLocLocalize(benchmark::State& state) {
  auto engine = world().makeEngine();
  const auto scan = probeScan();
  engine.localize(scan, std::nullopt);
  const sensors::MotionMeasurement motion{90.0, 5.7};
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.localize(scan, motion));
}
BENCHMARK(BM_MoLocLocalize);

void BM_HmmUpdate(benchmark::State& state) {
  baseline::HmmLocalizer hmm(world().fingerprintDb(),
                             world().hall().graph);
  const auto scan = probeScan();
  hmm.update(scan, std::nullopt);
  for (auto _ : state) benchmark::DoNotOptimize(hmm.update(scan, 5.7));
}
BENCHMARK(BM_HmmUpdate);

void BM_MotionDbLookup(benchmark::State& state) {
  const auto& db = world().motionDb();
  for (auto _ : state) benchmark::DoNotOptimize(db.entry(0, 1));
}
BENCHMARK(BM_MotionDbLookup);

void BM_MotionDbBuild(benchmark::State& state) {
  // Rebuild the sanitation pipeline over a synthetic intake of the
  // given size.
  const auto observations = state.range(0);
  core::MotionDatabaseBuilder builder(world().hall().plan);
  util::Rng rng(5);
  const auto& graph = world().hall().graph;
  for (long i = 0; i < observations; ++i) {
    const auto from = static_cast<env::LocationId>(
        rng.uniformInt(0, static_cast<int>(graph.nodeCount()) - 1));
    const auto neighbors = graph.neighbors(from);
    if (neighbors.empty()) continue;
    const auto& edge = neighbors[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(neighbors.size()) - 1))];
    builder.addObservation(from, edge.to,
                           edge.headingDeg + rng.normal(0.0, 4.0),
                           edge.length + rng.normal(0.0, 0.2));
  }
  for (auto _ : state) benchmark::DoNotOptimize(builder.build());
}
BENCHMARK(BM_MotionDbBuild)->Arg(300)->Arg(3000);

void BM_WifiScanSimulation(benchmark::State& state) {
  util::Rng rng(9);
  for (auto _ : state)
    benchmark::DoNotOptimize(world().radio().scan({20.4, 8.0}, 90.0, rng));
}
BENCHMARK(BM_WifiScanSimulation);

void BM_ParticleFilterUpdate(benchmark::State& state) {
  baseline::ParticleFilter filter(world().hall().plan,
                                  world().fingerprintDb());
  const auto scan = probeScan();
  filter.update(scan, std::nullopt);
  const sensors::MotionMeasurement motion{90.0, 5.7};
  for (auto _ : state)
    benchmark::DoNotOptimize(filter.update(scan, motion));
}
BENCHMARK(BM_ParticleFilterUpdate);

void BM_SessionOnScanWithImu(benchmark::State& state) {
  // The full phone-side cost: motion processing over a 3 s IMU trace
  // plus one engine round.
  core::LocalizationSession session(world().fingerprintDb(),
                                    world().motionDb(), 0.72);
  const auto scan = probeScan();
  util::Rng rng(11);
  sensors::AccelerometerModel accel;
  const auto accelSeries = accel.walkingSamples(150, 1.8, rng);
  const sensors::CompassModel compassModel;
  const auto compassSeries = compassModel.readings(90.0, 0.0, 150, rng);
  sensors::ImuTrace imu(50.0);
  for (std::size_t i = 0; i < 150; ++i)
    imu.append({i / 50.0, accelSeries[i], compassSeries[i]});
  session.onScan(scan, sensors::ImuTrace(50.0));
  for (auto _ : state)
    benchmark::DoNotOptimize(session.onScan(scan, imu));
}
BENCHMARK(BM_SessionOnScanWithImu);

// ---- JSON perf-trajectory harness ----------------------------------

/// Times `fn` over `rounds` samples of `reps` calls each (plus warmup)
/// and returns per-operation statistics; `opsPerCall` spreads one
/// call's cost over the logical operations it performs (e.g. a batch
/// of 64 queries).
template <typename Fn>
bench::LatencySummary measureOp(std::size_t rounds, std::size_t reps,
                                double opsPerCall, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  for (int warm = 0; warm < 3; ++warm) fn();
  std::vector<double> ns;
  ns.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    const auto start = clock::now();
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double elapsedNs =
        std::chrono::duration<double, std::nano>(clock::now() - start)
            .count();
    ns.push_back(elapsedNs / (static_cast<double>(reps) * opsPerCall));
  }
  return bench::summarizeNs(std::move(ns));
}

/// A fingerprint database flattened back into the pre-kernel access
/// pattern (entry pointers in insertion order), so the reference
/// implementations below pay the same memory layout the old code did
/// and nothing else.
struct ReferenceView {
  std::vector<env::LocationId> ids;
  std::vector<const radio::Fingerprint*> entries;
};

ReferenceView referenceView(const radio::FingerprintDatabase& db) {
  ReferenceView view;
  view.ids = db.locationIds();
  view.entries.reserve(view.ids.size());
  for (const auto id : view.ids) view.entries.push_back(&db.entry(id));
  return view;
}

/// The pre-kernel queryInto, kept verbatim as the perf baseline: one
/// sqrt-bearing dissimilarity per entry, a materialized size-L match
/// vector, and a partial_sort.
void referenceQuery(const ReferenceView& view,
                    const radio::Fingerprint& query, std::size_t k,
                    std::vector<radio::Match>& out) {
  constexpr double kMinDissimilarity = 0.5;
  out.clear();
  out.reserve(view.entries.size());
  for (std::size_t i = 0; i < view.entries.size(); ++i)
    out.push_back(
        {view.ids[i], radio::dissimilarity(query, *view.entries[i]), 0.0});
  const std::size_t kept = std::min(k, out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<long>(kept),
                    out.end(), [](const radio::Match& a,
                                  const radio::Match& b) {
                      return a.dissimilarity < b.dissimilarity;
                    });
  out.resize(kept);
  double invSum = 0.0;
  for (const auto& m : out)
    invSum += 1.0 / std::max(m.dissimilarity, kMinDissimilarity);
  for (auto& m : out)
    m.probability =
        (1.0 / std::max(m.dissimilarity, kMinDissimilarity)) / invSum;
}

/// The pre-kernel nearest (including its first-entry double
/// evaluation).
env::LocationId referenceNearest(const ReferenceView& view,
                                 const radio::Fingerprint& query) {
  std::size_t best = 0;
  double bestDis = radio::squaredDissimilarity(query, *view.entries[0]);
  for (std::size_t i = 0; i < view.entries.size(); ++i) {
    const double dis =
        radio::squaredDissimilarity(query, *view.entries[i]);
    if (dis < bestDis) {
      bestDis = dis;
      best = i;
    }
  }
  return view.ids[best];
}

/// The pre-kernel Eq. 6: one dense-matrix pairProbability per
/// (previous candidate, target) pair.
double referenceSetProbability(
    const core::MotionMatcher& matcher,
    std::span<const core::WeightedCandidate> prev, env::LocationId j,
    const sensors::MotionMeasurement& motion) {
  double acc = 0.0;
  for (const auto& candidate : prev)
    acc += candidate.probability *
           matcher.pairProbability(candidate.location, j, motion);
  return acc;
}

radio::FingerprintDatabase makeSyntheticDb(std::size_t locations,
                                           std::size_t aps) {
  radio::FingerprintDatabase db;
  util::Rng rng(123);
  std::vector<double> values(aps);
  for (std::size_t i = 0; i < locations; ++i) {
    for (auto& v : values) v = rng.uniform(-95.0, -35.0);
    db.addLocation(static_cast<env::LocationId>(i),
                   radio::Fingerprint(values));
  }
  return db;
}

std::vector<radio::Fingerprint> makeQueries(
    const radio::FingerprintDatabase& db, std::size_t count,
    std::uint64_t seed) {
  util::Rng rng(seed);
  const auto ids = db.locationIds();
  std::vector<radio::Fingerprint> queries;
  queries.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const auto& base = db.entry(
        ids[static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<int>(ids.size()) - 1))]);
    std::vector<double> values(base.size());
    for (std::size_t i = 0; i < base.size(); ++i)
      values[i] = base[i] + rng.normal(0.0, 2.0);
    queries.emplace_back(values);
  }
  return queries;
}

struct SectionSpeedup {
  std::string section;
  double bestSpeedupVsReference = 0.0;
};

/// One fingerprint-matching section: reference vs forced-scalar kernel
/// vs dispatched kernel, rotating over a pool of queries.
SectionSpeedup emitQuerySection(bench::JsonWriter& json, const char* name,
                                const radio::FingerprintDatabase& db,
                                std::size_t k, std::size_t rounds) {
  const auto view = referenceView(db);
  const auto queries = makeQueries(db, 32, 7u);
  std::vector<radio::Match> matches;
  std::size_t next = 0;
  const auto rotate = [&]() -> const radio::Fingerprint& {
    return queries[next++ % queries.size()];
  };

  const auto reference = measureOp(rounds, 8, 1.0, [&] {
    referenceQuery(view, rotate(), k, matches);
    benchmark::DoNotOptimize(matches.data());
  });
  kernel::setForceScalar(true);
  const auto kernelScalar = measureOp(rounds, 8, 1.0, [&] {
    db.queryInto(rotate(), k, matches);
    benchmark::DoNotOptimize(matches.data());
  });
  kernel::setForceScalar(false);
  const auto kernelDispatch = measureOp(rounds, 8, 1.0, [&] {
    db.queryInto(rotate(), k, matches);
    benchmark::DoNotOptimize(matches.data());
  });

  json.beginObject()
      .field("name", name)
      .field("unit", "ns_per_query")
      .field("entries", static_cast<double>(db.size()))
      .field("ap_count", static_cast<double>(db.apCount()))
      .field("k", static_cast<double>(k));
  json.beginArray("variants");
  bench::writeVariant(json, "reference", reference);
  bench::writeVariant(json, "kernel_scalar", kernelScalar);
  bench::writeVariant(json, "kernel", kernelDispatch);
  json.endArray();
  const double speedup = kernelDispatch.bestNs > 0.0
                             ? reference.bestNs / kernelDispatch.bestNs
                             : 0.0;
  json.field("speedup_best_vs_reference", speedup).endObject();
  return {name, speedup};
}

void runPerfTrajectory(bool smoke) {
  const std::size_t rounds = bench::envRounds(smoke ? 60 : 400);
  const auto& db = world().fingerprintDb();
  bench::JsonWriter json;
  json.beginObject()
      .field("bench", "micro_engine")
      .field("schema_version", 1.0);
  json.beginObject("config")
      .field("simd_compiled", static_cast<bool>(MOLOC_SIMD_ENABLED))
      .field("simd_active",
             kernel::simdLevelName(kernel::activeSimdLevel()))
      .field("metrics_compiled", static_cast<bool>(MOLOC_METRICS_ENABLED))
      .field("rounds", static_cast<double>(rounds))
      .field("smoke", smoke)
      .field("world_locations", static_cast<double>(db.size()))
      .field("ap_count", static_cast<double>(db.apCount()))
      .endObject();
  json.beginArray("sections");

  std::vector<SectionSpeedup> speedups;

  // Single-query candidate matching at the paper's k, on the
  // paper-scale radio map and on a larger synthetic one (where the
  // flat-matrix layout has more rows to stream).
  speedups.push_back(
      emitQuerySection(json, "fingerprint_query_world", db, 12, rounds));
  const auto largeDb = makeSyntheticDb(1024, 6);
  speedups.push_back(emitQuerySection(json, "fingerprint_query_1k",
                                      largeDb, 12, rounds));

  // Eq. 2 nearest (the plain WiFi baseline's inner loop).
  {
    const auto view = referenceView(db);
    const auto queries = makeQueries(db, 32, 11u);
    std::size_t next = 0;
    const auto rotate = [&]() -> const radio::Fingerprint& {
      return queries[next++ % queries.size()];
    };
    const auto reference = measureOp(rounds, 16, 1.0, [&] {
      benchmark::DoNotOptimize(referenceNearest(view, rotate()));
    });
    const auto kernelPath = measureOp(rounds, 16, 1.0, [&] {
      benchmark::DoNotOptimize(db.nearest(rotate()));
    });
    json.beginObject()
        .field("name", "fingerprint_nearest_world")
        .field("unit", "ns_per_query");
    json.beginArray("variants");
    bench::writeVariant(json, "reference", reference);
    bench::writeVariant(json, "kernel", kernelPath);
    json.endArray();
    const double speedup = kernelPath.bestNs > 0.0
                               ? reference.bestNs / kernelPath.bestNs
                               : 0.0;
    json.field("speedup_best_vs_reference", speedup).endObject();
    speedups.push_back({"fingerprint_nearest_world", speedup});
  }

  // The serving layer's batch entry point vs a per-query loop over the
  // same scans (ns normalized per query in both variants).
  {
    constexpr std::size_t kBatch = 64;
    const auto queries = makeQueries(db, kBatch, 13u);
    std::vector<const radio::Fingerprint*> pointers;
    for (const auto& q : queries) pointers.push_back(&q);
    std::vector<radio::Match> matches;
    std::vector<std::vector<radio::Match>> batchOut;
    const auto perQuery = measureOp(
        rounds, 2, static_cast<double>(kBatch), [&] {
          for (const auto* q : pointers) {
            db.queryInto(*q, 12, matches);
            benchmark::DoNotOptimize(matches.data());
          }
        });
    const auto batched = measureOp(
        rounds, 2, static_cast<double>(kBatch), [&] {
          db.queryBatchInto(pointers, 12, batchOut);
          benchmark::DoNotOptimize(batchOut.data());
        });
    json.beginObject()
        .field("name", "fingerprint_batch_world")
        .field("unit", "ns_per_query")
        .field("batch_size", static_cast<double>(kBatch));
    json.beginArray("variants");
    bench::writeVariant(json, "per_query_loop", perQuery);
    bench::writeVariant(json, "batch", batched);
    json.endArray();
    json.field("speedup_best_vs_reference",
               batched.bestNs > 0.0 ? perQuery.bestNs / batched.bestNs
                                    : 0.0)
        .endObject();
  }

  // Eq. 6 motion scoring over a candidate set: dense per-pair lookups
  // (reference) vs the CSR adjacency path, per-candidate ns.
  {
    const auto& motionDb = world().motionDb();
    const core::MotionMatcher matcher(motionDb);
    const std::size_t m = std::min<std::size_t>(
        12, motionDb.locationCount());
    std::vector<core::WeightedCandidate> prev;
    std::vector<env::LocationId> targets;
    for (std::size_t i = 0; i < m; ++i) {
      prev.push_back({static_cast<env::LocationId>(i),
                      1.0 / static_cast<double>(m)});
      targets.push_back(static_cast<env::LocationId>(i));
    }
    const sensors::MotionMeasurement motion{90.0, 5.7};
    std::vector<double> scores;
    const auto ops = static_cast<double>(m);
    const auto reference = measureOp(rounds, 4, ops, [&] {
      for (const auto j : targets)
        benchmark::DoNotOptimize(
            referenceSetProbability(matcher, prev, j, motion));
    });
    const auto setProb = measureOp(rounds, 4, ops, [&] {
      for (const auto j : targets)
        benchmark::DoNotOptimize(matcher.setProbability(prev, j, motion));
    });
    const auto batch = measureOp(rounds, 4, ops, [&] {
      matcher.scoreCandidates(prev, targets, motion, scores);
      benchmark::DoNotOptimize(scores.data());
    });
    json.beginObject()
        .field("name", "motion_set_probability")
        .field("unit", "ns_per_candidate")
        .field("candidates", static_cast<double>(m))
        .field("motion_entries", static_cast<double>(motionDb.entryCount()));
    json.beginArray("variants");
    bench::writeVariant(json, "reference", reference);
    bench::writeVariant(json, "set_probability", setProb);
    bench::writeVariant(json, "score_candidates", batch);
    json.endArray();
    const double speedup =
        batch.bestNs > 0.0 ? reference.bestNs / batch.bestNs : 0.0;
    json.field("speedup_best_vs_reference", speedup).endObject();
    speedups.push_back({"motion_set_probability", speedup});
  }

  // One full engine round (fingerprint + motion + fusion), for the
  // end-to-end trajectory.
  {
    auto engine = world().makeEngine();
    const auto queries = makeQueries(db, 32, 17u);
    std::size_t next = 0;
    engine.localize(queries[0], std::nullopt);
    const sensors::MotionMeasurement motion{90.0, 5.7};
    const auto localize = measureOp(rounds, 4, 1.0, [&] {
      benchmark::DoNotOptimize(
          engine.localize(queries[next++ % queries.size()], motion));
    });
    json.beginObject()
        .field("name", "engine_localize")
        .field("unit", "ns_per_round");
    json.beginArray("variants");
    bench::writeVariant(json, "kernel", localize);
    json.endArray();
    json.endObject();
  }

  json.endArray().endObject();

  const std::string path =
      bench::resultsDir() + "/BENCH_micro_engine.json";
  if (!json.writeTo(path)) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    return;
  }
  std::printf("\nperf trajectory: %s (simd=%s, rounds=%zu)\n",
              path.c_str(),
              kernel::simdLevelName(kernel::activeSimdLevel()), rounds);
  for (const auto& s : speedups)
    std::printf("  %-28s best-of speedup vs reference: %.2fx\n",
                s.section.c_str(), s.bestSpeedupVsReference);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filteredArgc = static_cast<int>(args.size());
  benchmark::Initialize(&filteredArgc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filteredArgc, args.data()))
    return 1;
  if (!smoke) benchmark::RunSpecifiedBenchmarks();
  runPerfTrajectory(smoke);
  benchmark::Shutdown();
  return 0;
}
