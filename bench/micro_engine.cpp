// Micro-benchmarks backing the paper's efficiency claims (Sec. V.C):
// MoLoc "minimizes the computational complexity so as to save energy",
// and the related-work HMM carries "high computational overhead".
// Measures the per-query cost of each pipeline stage and of the
// full-state HMM comparator on the paper-scale world.

#include <benchmark/benchmark.h>

#include <optional>

#include "baseline/hmm_localizer.hpp"
#include "baseline/particle_filter.hpp"
#include "core/localization_session.hpp"
#include "baseline/wifi_fingerprinting.hpp"
#include "eval/experiment_world.hpp"

namespace {

using namespace moloc;

/// One world shared by all benchmarks (construction is not measured).
eval::ExperimentWorld& world() {
  static eval::ExperimentWorld instance{eval::WorldConfig{}};
  return instance;
}

radio::Fingerprint probeScan() {
  static const radio::Fingerprint scan = [] {
    util::Rng rng(77);
    return world().radio().scan({20.4, 8.0}, 90.0, rng);
  }();
  return scan;
}

void BM_FingerprintNearest(benchmark::State& state) {
  const baseline::WifiFingerprinting wifi(world().fingerprintDb());
  const auto scan = probeScan();
  for (auto _ : state) benchmark::DoNotOptimize(wifi.localize(scan));
}
BENCHMARK(BM_FingerprintNearest);

void BM_CandidateQuery(benchmark::State& state) {
  const auto scan = probeScan();
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(world().fingerprintDb().query(scan, k));
}
BENCHMARK(BM_CandidateQuery)->Arg(1)->Arg(5)->Arg(12)->Arg(28);

void BM_MotionPairProbability(benchmark::State& state) {
  const core::MotionMatcher matcher(world().motionDb());
  const sensors::MotionMeasurement motion{90.0, 5.7};
  for (auto _ : state)
    benchmark::DoNotOptimize(matcher.pairProbability(0, 1, motion));
}
BENCHMARK(BM_MotionPairProbability);

void BM_MoLocLocalize(benchmark::State& state) {
  auto engine = world().makeEngine();
  const auto scan = probeScan();
  engine.localize(scan, std::nullopt);
  const sensors::MotionMeasurement motion{90.0, 5.7};
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.localize(scan, motion));
}
BENCHMARK(BM_MoLocLocalize);

void BM_HmmUpdate(benchmark::State& state) {
  baseline::HmmLocalizer hmm(world().fingerprintDb(),
                             world().hall().graph);
  const auto scan = probeScan();
  hmm.update(scan, std::nullopt);
  for (auto _ : state) benchmark::DoNotOptimize(hmm.update(scan, 5.7));
}
BENCHMARK(BM_HmmUpdate);

void BM_MotionDbLookup(benchmark::State& state) {
  const auto& db = world().motionDb();
  for (auto _ : state) benchmark::DoNotOptimize(db.entry(0, 1));
}
BENCHMARK(BM_MotionDbLookup);

void BM_MotionDbBuild(benchmark::State& state) {
  // Rebuild the sanitation pipeline over a synthetic intake of the
  // given size.
  const auto observations = state.range(0);
  core::MotionDatabaseBuilder builder(world().hall().plan);
  util::Rng rng(5);
  const auto& graph = world().hall().graph;
  for (long i = 0; i < observations; ++i) {
    const auto from = static_cast<env::LocationId>(
        rng.uniformInt(0, static_cast<int>(graph.nodeCount()) - 1));
    const auto neighbors = graph.neighbors(from);
    if (neighbors.empty()) continue;
    const auto& edge = neighbors[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(neighbors.size()) - 1))];
    builder.addObservation(from, edge.to,
                           edge.headingDeg + rng.normal(0.0, 4.0),
                           edge.length + rng.normal(0.0, 0.2));
  }
  for (auto _ : state) benchmark::DoNotOptimize(builder.build());
}
BENCHMARK(BM_MotionDbBuild)->Arg(300)->Arg(3000);

void BM_WifiScanSimulation(benchmark::State& state) {
  util::Rng rng(9);
  for (auto _ : state)
    benchmark::DoNotOptimize(world().radio().scan({20.4, 8.0}, 90.0, rng));
}
BENCHMARK(BM_WifiScanSimulation);

void BM_ParticleFilterUpdate(benchmark::State& state) {
  baseline::ParticleFilter filter(world().hall().plan,
                                  world().fingerprintDb());
  const auto scan = probeScan();
  filter.update(scan, std::nullopt);
  const sensors::MotionMeasurement motion{90.0, 5.7};
  for (auto _ : state)
    benchmark::DoNotOptimize(filter.update(scan, motion));
}
BENCHMARK(BM_ParticleFilterUpdate);

void BM_SessionOnScanWithImu(benchmark::State& state) {
  // The full phone-side cost: motion processing over a 3 s IMU trace
  // plus one engine round.
  core::LocalizationSession session(world().fingerprintDb(),
                                    world().motionDb(), 0.72);
  const auto scan = probeScan();
  util::Rng rng(11);
  sensors::AccelerometerModel accel;
  const auto accelSeries = accel.walkingSamples(150, 1.8, rng);
  const sensors::CompassModel compassModel;
  const auto compassSeries = compassModel.readings(90.0, 0.0, 150, rng);
  sensors::ImuTrace imu(50.0);
  for (std::size_t i = 0; i < 150; ++i)
    imu.append({i / 50.0, accelSeries[i], compassSeries[i]});
  session.onScan(scan, sensors::ImuTrace(50.0));
  for (auto _ : state)
    benchmark::DoNotOptimize(session.onScan(scan, imu));
}
BENCHMARK(BM_SessionOnScanWithImu);

}  // namespace

BENCHMARK_MAIN();
