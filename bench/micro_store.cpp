// Micro-benchmark of the durable state subsystem (src/store):
//
//   1. WAL append throughput under each fsync policy.  every_record is
//      bounded by device sync latency, every_n amortizes it over a
//      window, none measures the pure write() + CRC path.  Record
//      counts are scaled per policy so each run takes comparable wall
//      time.
//   2. Recovery time vs WAL length: a log of N accepted observations
//      is replayed through the normal OnlineMotionDatabase intake (the
//      bit-identical path store::recover uses), with and without a
//      checkpoint covering the full log — the difference is what a
//      checkpoint buys at restart.
//
// Output: tables on stdout plus bench_results/micro_store_append.csv
// (policy,records,seconds,records_per_sec,mb_per_sec,fsyncs) and
// bench_results/micro_store_recovery.csv
// (wal_records,checkpointed,seconds,records_per_sec).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/online_motion_database.hpp"
#include "env/floor_plan.hpp"
#include "store/state_store.hpp"
#include "store/wal.hpp"
#include "util/csv.hpp"

namespace {

using namespace moloc;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string scratchDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("moloc_micro_store_" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

/// A corridor with three reference locations; every benchmark record
/// is an accepted observation on it.
env::FloorPlan benchPlan() {
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  return plan;
}

struct AppendRow {
  std::string policy;
  std::uint64_t records = 0;
  double seconds = 0.0;
  std::uint64_t fsyncs = 0;
  std::uint64_t bytes = 0;
};

AppendRow benchAppend(const std::string& name, store::WalConfig config,
                      std::uint64_t records) {
  const std::string dir = scratchDir("append_" + name);
  AppendRow row;
  row.policy = name;
  row.records = records;
  {
    store::WalWriter writer(dir, config);
    const auto start = Clock::now();
    for (std::uint64_t k = 0; k < records; ++k)
      writer.append(static_cast<env::LocationId>(k % 2),
                    static_cast<env::LocationId>(1 + k % 2),
                    88.0 + 0.2 * static_cast<double>(k % 9),
                    3.7 + 0.02 * static_cast<double>(k % 11));
    writer.sync();
    row.seconds = secondsSince(start);
    row.fsyncs = writer.stats().fsyncs;
    row.bytes = writer.stats().bytes;
  }
  std::filesystem::remove_all(dir);
  return row;
}

struct RecoveryRow {
  std::uint64_t walRecords = 0;
  bool checkpointed = false;
  double seconds = 0.0;
  std::uint64_t replayed = 0;
};

/// Builds a store holding `records` accepted observations, optionally
/// checkpointing at the end, then times a cold recover().
RecoveryRow benchRecovery(const env::FloorPlan& plan,
                          std::uint64_t records, bool checkpointed) {
  const std::string dir = scratchDir(
      "recover_" + std::to_string(records) +
      (checkpointed ? "_ckpt" : "_wal"));
  {
    core::OnlineMotionDatabase db(plan, {}, /*reservoirCapacity=*/64,
                                  /*seed=*/7);
    store::StoreConfig config;
    config.wal.fsync = store::FsyncPolicy::kNone;
    store::StateStore store(dir, config);
    db.setSink(&store);
    for (std::uint64_t k = 0; k < records; ++k)
      db.addObservation(static_cast<env::LocationId>(k % 2),
                        static_cast<env::LocationId>(1 + k % 2),
                        88.0 + 0.2 * static_cast<double>(k % 9),
                        3.7 + 0.02 * static_cast<double>(k % 11));
    if (checkpointed) store.checkpointNow(db);
  }

  RecoveryRow row;
  row.walRecords = records;
  row.checkpointed = checkpointed;
  core::OnlineMotionDatabase db(plan, {}, 64, 7);
  const auto start = Clock::now();
  const auto result = store::recover(dir, db);
  row.seconds = secondsSince(start);
  row.replayed = result.replayedRecords;
  std::filesystem::remove_all(dir);
  return row;
}

}  // namespace

int main() {
  std::printf("== micro_store: WAL append throughput ==\n");
  std::printf("%-14s %10s %10s %14s %10s %8s\n", "policy", "records",
              "seconds", "records/s", "MB/s", "fsyncs");

  std::vector<AppendRow> appendRows;
  {
    store::WalConfig everyRecord;
    everyRecord.fsync = store::FsyncPolicy::kEveryRecord;
    appendRows.push_back(benchAppend("every_record", everyRecord, 500));

    store::WalConfig everyN;
    everyN.fsync = store::FsyncPolicy::kEveryN;
    everyN.fsyncEveryN = 64;
    appendRows.push_back(benchAppend("every_n_64", everyN, 20000));

    store::WalConfig none;
    none.fsync = store::FsyncPolicy::kNone;
    appendRows.push_back(benchAppend("none", none, 200000));
  }
  for (const auto& row : appendRows) {
    const double rps = static_cast<double>(row.records) / row.seconds;
    const double mbps = static_cast<double>(row.bytes) / row.seconds /
                        (1024.0 * 1024.0);
    std::printf("%-14s %10llu %10.4f %14.0f %10.2f %8llu\n",
                row.policy.c_str(),
                static_cast<unsigned long long>(row.records), row.seconds,
                rps, mbps, static_cast<unsigned long long>(row.fsyncs));
  }

  std::printf("\n== micro_store: recovery time vs WAL length ==\n");
  std::printf("%-12s %12s %10s %14s\n", "wal_records", "checkpointed",
              "seconds", "replayed/s");
  const auto plan = benchPlan();
  std::vector<RecoveryRow> recoveryRows;
  for (const std::uint64_t records : {1000ull, 5000ull, 20000ull,
                                      50000ull}) {
    recoveryRows.push_back(benchRecovery(plan, records, false));
    recoveryRows.push_back(benchRecovery(plan, records, true));
  }
  for (const auto& row : recoveryRows) {
    const double rps =
        row.replayed == 0
            ? 0.0
            : static_cast<double>(row.replayed) / row.seconds;
    std::printf("%-12llu %12s %10.4f %14.0f\n",
                static_cast<unsigned long long>(row.walRecords),
                row.checkpointed ? "yes" : "no", row.seconds, rps);
  }

  {
    util::CsvWriter csv(bench::resultsDir() + "/micro_store_append.csv",
                        {"policy", "records", "seconds",
                         "records_per_sec", "mb_per_sec", "fsyncs"});
    for (const auto& row : appendRows)
      csv.cell(row.policy)
          .cell(row.records)
          .cell(row.seconds)
          .cell(static_cast<double>(row.records) / row.seconds)
          .cell(static_cast<double>(row.bytes) / row.seconds /
                (1024.0 * 1024.0))
          .cell(row.fsyncs)
          .endRow();
  }
  {
    util::CsvWriter csv(
        bench::resultsDir() + "/micro_store_recovery.csv",
        {"wal_records", "checkpointed", "seconds", "records_per_sec"});
    for (const auto& row : recoveryRows)
      csv.cell(row.walRecords)
          .cell(row.checkpointed ? 1 : 0)
          .cell(row.seconds)
          .cell(row.replayed == 0
                    ? 0.0
                    : static_cast<double>(row.replayed) / row.seconds)
          .endRow();
  }
  std::printf("\nCSV: %s/micro_store_append.csv, "
              "%s/micro_store_recovery.csv\n",
              bench::resultsDir().c_str(), bench::resultsDir().c_str());
  return 0;
}
