// Micro-benchmark of the durable state subsystem (src/store) and the
// venue-image cold-start path (src/image):
//
//   1. WAL append throughput under each fsync policy.  every_record is
//      bounded by device sync latency, every_n amortizes it over a
//      window, none measures the pure write() + CRC path.  Record
//      counts are scaled per policy so each run takes comparable wall
//      time.
//   2. Recovery time vs WAL length: a log of N accepted observations
//      is replayed through the normal OnlineMotionDatabase intake (the
//      bit-identical path store::recover uses), with and without a
//      checkpoint covering the full log — the difference is what a
//      checkpoint buys at restart.
//   3. Cold start vs venue size (campus-1k .. campus-64k): time from
//      "files on disk" to "the three serving structures are ready"
//      (FingerprintDatabase + MotionAdjacency + TieredIndex), along
//      four paths:
//        text_load          — legacy text radio map + motion db parse,
//                             then CSR + index rebuild (the ROADMAP
//                             item-2 baseline)
//        binary_deserialize — venue image via the read() fallback:
//                             whole-file read + full CRC + views over
//                             the private heap copy
//        mmap_image_full    — mmap + CRC every section
//        mmap_image_bulk    — mmap + metadata-only CRC (the
//                             millisecond cold-attach path)
//      Every loaded variant answers one probe query bitwise-identical
//      to the generator's own database before its time is accepted.
//      Times are process cold start with a warm page cache — the
//      restart/failover case the image format exists for.
//
// Output: tables on stdout plus the machine-readable snapshot
// bench_results/BENCH_micro_store.json (schema in
// docs/performance.md), gated by tools/check_bench_json.py in CI.
//
// Modes: the no-arg default sweeps cold start at 1k/4k/16k; --full
// adds the 64k venue the acceptance numbers quote; --smoke is the
// minimal perf-smoke run (1k only, shortened append/recovery loops).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "core/online_motion_database.hpp"
#include "core/world_snapshot.hpp"
#include "env/floor_plan.hpp"
#include "image/image_loader.hpp"
#include "image/image_writer.hpp"
#include "index/tiered_index.hpp"
#include "io/serialization.hpp"
#include "kernel/motion_kernel.hpp"
#include "radio/fingerprint_database.hpp"
#include "store/state_store.hpp"
#include "store/wal.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "worldgen/generated_venue.hpp"
#include "worldgen/venue_spec.hpp"

namespace {

using namespace moloc;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kProbeTopK = 8;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string scratchDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("moloc_micro_store_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// A corridor with three reference locations; every benchmark record
/// is an accepted observation on it.
env::FloorPlan benchPlan() {
  env::FloorPlan plan(12.0, 4.0);
  plan.addReferenceLocation({2.0, 2.0});
  plan.addReferenceLocation({6.0, 2.0});
  plan.addReferenceLocation({10.0, 2.0});
  return plan;
}

struct AppendRow {
  std::string policy;
  std::uint64_t records = 0;
  double seconds = 0.0;
  std::uint64_t fsyncs = 0;
  std::uint64_t bytes = 0;
};

AppendRow benchAppend(const std::string& name, store::WalConfig config,
                      std::uint64_t records) {
  const std::string dir = scratchDir("append_" + name);
  AppendRow row;
  row.policy = name;
  row.records = records;
  {
    store::WalWriter writer(dir, config);
    const auto start = Clock::now();
    for (std::uint64_t k = 0; k < records; ++k)
      writer.append(static_cast<env::LocationId>(k % 2),
                    static_cast<env::LocationId>(1 + k % 2),
                    88.0 + 0.2 * static_cast<double>(k % 9),
                    3.7 + 0.02 * static_cast<double>(k % 11));
    writer.sync();
    row.seconds = secondsSince(start);
    row.fsyncs = writer.stats().fsyncs;
    row.bytes = writer.stats().bytes;
  }
  std::filesystem::remove_all(dir);
  return row;
}

struct RecoveryRow {
  std::uint64_t walRecords = 0;
  bool checkpointed = false;
  double seconds = 0.0;
  std::uint64_t replayed = 0;
};

/// Builds a store holding `records` accepted observations, optionally
/// checkpointing at the end, then times a cold recover().
RecoveryRow benchRecovery(const env::FloorPlan& plan,
                          std::uint64_t records, bool checkpointed) {
  const std::string dir = scratchDir(
      "recover_" + std::to_string(records) +
      (checkpointed ? "_ckpt" : "_wal"));
  {
    core::OnlineMotionDatabase db(plan, {}, /*reservoirCapacity=*/64,
                                  /*seed=*/7);
    store::StoreConfig config;
    config.wal.fsync = store::FsyncPolicy::kNone;
    store::StateStore store(dir, config);
    db.setSink(&store);
    for (std::uint64_t k = 0; k < records; ++k)
      db.addObservation(static_cast<env::LocationId>(k % 2),
                        static_cast<env::LocationId>(1 + k % 2),
                        88.0 + 0.2 * static_cast<double>(k % 9),
                        3.7 + 0.02 * static_cast<double>(k % 11));
    if (checkpointed) store.checkpointNow(db);
  }

  RecoveryRow row;
  row.walRecords = records;
  row.checkpointed = checkpointed;
  core::OnlineMotionDatabase db(plan, {}, 64, 7);
  const auto start = Clock::now();
  const auto result = store::recover(dir, db);
  row.seconds = secondsSince(start);
  row.replayed = result.replayedRecords;
  std::filesystem::remove_all(dir);
  return row;
}

// ---- Cold start: text parse vs binary deserialize vs mmap ----------

struct ColdVariant {
  std::string name;
  double seconds = 0.0;      ///< Best of `reps` runs.
  double meanSeconds = 0.0;
};

struct ColdStartRow {
  std::size_t locations = 0;
  std::size_t apCount = 0;
  std::uint64_t textBytes = 0;
  std::uint64_t imageBytes = 0;
  double imageWriteSeconds = 0.0;
  std::vector<ColdVariant> variants;  ///< text_load first.
};

bool matchesBitwise(const std::vector<radio::Match>& a,
                    const std::vector<radio::Match>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].location != b[i].location ||
        a[i].dissimilarity != b[i].dissimilarity ||
        a[i].probability != b[i].probability)
      return false;
  return true;
}

/// The loaded structures a cold-start variant must produce before its
/// clock stops: the radio map, the CSR adjacency, and the index.
struct LoadedWorld {
  std::shared_ptr<const radio::FingerprintDatabase> fingerprints;
  std::shared_ptr<const kernel::MotionAdjacency> adjacency;
  std::shared_ptr<const index::TieredIndex> index;
};

ColdVariant timeColdVariant(
    const std::string& name, std::size_t reps,
    const radio::Fingerprint& probe,
    const std::vector<radio::Match>& expected,
    const std::function<LoadedWorld()>& loadOnce) {
  ColdVariant variant;
  variant.name = name;
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    const LoadedWorld world = loadOnce();
    samples.push_back(secondsSince(start));

    // Correctness guard, outside the timed region: a load path that
    // got faster by serving different bytes is not a data point.
    std::vector<radio::Match> got;
    world.fingerprints->queryInto(probe, kProbeTopK, got);
    if (!matchesBitwise(got, expected)) {
      std::fprintf(stderr,
                   "FAIL: %s served a probe query differing from the "
                   "generator's database\n",
                   name.c_str());
      std::exit(EXIT_FAILURE);
    }
    if (world.adjacency == nullptr || world.index == nullptr) {
      std::fprintf(stderr, "FAIL: %s produced an incomplete world\n",
                   name.c_str());
      std::exit(EXIT_FAILURE);
    }
  }
  double best = samples.front();
  double sum = 0.0;
  for (const double s : samples) {
    best = std::min(best, s);
    sum += s;
  }
  variant.seconds = best;
  variant.meanSeconds = sum / static_cast<double>(samples.size());
  return variant;
}

ColdStartRow benchColdStart(std::size_t locations, std::size_t reps) {
  const std::string dir =
      scratchDir("cold_" + std::to_string(locations));
  const std::string radioPath = dir + "/radio_map.txt";
  const std::string motionPath = dir + "/motion_db.txt";
  const std::string imagePath = dir + "/venue.img";

  // Setup (untimed): generate the venue, build the index once, publish
  // both the legacy text pair and the venue image.
  worldgen::VenueSpec spec = worldgen::venueSpecForLocations(locations);
  const worldgen::GeneratedVenue venue(spec);
  const std::shared_ptr<const radio::FingerprintDatabase> db =
      venue.sharedFingerprints();
  index::IndexConfig indexConfig;
  const auto index = std::make_shared<const index::TieredIndex>(
      db, indexConfig, venue.shardStarts());
  const core::WorldSnapshot world(db, venue.motion(), /*generation=*/1,
                                  /*intakeRecords=*/0, index);

  io::saveFingerprintDatabase(*db, radioPath);
  io::saveMotionDatabase(venue.motion(), motionPath);

  ColdStartRow row;
  row.locations = venue.locationCount();
  row.apCount = venue.apCount();
  row.textBytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(radioPath)) +
      static_cast<std::uint64_t>(std::filesystem::file_size(motionPath));
  {
    const auto start = Clock::now();
    row.imageBytes = image::writeVenueImage(imagePath, world).bytes;
    row.imageWriteSeconds = secondsSince(start);
  }

  // The probe every variant must answer identically (drawn outside the
  // timed region, fixed across variants).
  util::Rng rng(spec.seed * 6151 + locations);
  const radio::Fingerprint probe = venue.scanAt(
      static_cast<env::LocationId>(rng.uniformIndex(row.locations)), 0.0,
      rng);
  std::vector<radio::Match> expected;
  db->queryInto(probe, kProbeTopK, expected);

  const std::vector<std::size_t> shardStarts = venue.shardStarts();
  row.variants.push_back(timeColdVariant(
      "text_load", reps, probe, expected, [&]() -> LoadedWorld {
        LoadedWorld loaded;
        loaded.fingerprints =
            std::make_shared<const radio::FingerprintDatabase>(
                io::loadFingerprintDatabase(radioPath));
        const core::MotionDatabase motion =
            io::loadMotionDatabase(motionPath);
        loaded.adjacency =
            std::make_shared<const kernel::MotionAdjacency>(motion);
        loaded.index = std::make_shared<const index::TieredIndex>(
            loaded.fingerprints, indexConfig, shardStarts);
        return loaded;
      }));

  const auto imageVariant = [&](const char* name,
                                image::LoadOptions options) {
    row.variants.push_back(timeColdVariant(
        name, reps, probe, expected, [&]() -> LoadedWorld {
          const image::VenueImage img =
              image::VenueImage::open(imagePath, options);
          return LoadedWorld{img.fingerprints(), img.adjacency(),
                             img.tieredIndex()};
        }));
  };
  imageVariant("binary_deserialize",
               {image::LoadMode::kReadFallback, image::VerifyMode::kFull});
  imageVariant("mmap_image_full",
               {image::LoadMode::kMmap, image::VerifyMode::kFull});
  imageVariant("mmap_image_bulk", {image::LoadMode::kMmap,
                                   image::VerifyMode::kBulkUnverified});

  std::filesystem::remove_all(dir);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "Durable-store and venue-image cold-start benchmark "
      "(emits bench_results/BENCH_micro_store.json)");
  args.addSwitch("smoke",
                 "minimal fast run for CI (1k cold start, short loops)");
  args.addSwitch("full",
                 "full acceptance sweep including the 64k venue");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_store: %s\n%s", e.what(),
                 args.usage().c_str());
    return 2;
  }
  const bool smoke = args.getSwitch("smoke");
  const bool full = args.getSwitch("full");

  std::printf("== micro_store: WAL append throughput ==\n");
  std::printf("%-14s %10s %10s %14s %10s %8s\n", "policy", "records",
              "seconds", "records/s", "MB/s", "fsyncs");

  std::vector<AppendRow> appendRows;
  {
    store::WalConfig everyRecord;
    everyRecord.fsync = store::FsyncPolicy::kEveryRecord;
    appendRows.push_back(
        benchAppend("every_record", everyRecord, smoke ? 100 : 500));

    store::WalConfig everyN;
    everyN.fsync = store::FsyncPolicy::kEveryN;
    everyN.fsyncEveryN = 64;
    appendRows.push_back(
        benchAppend("every_n_64", everyN, smoke ? 4000 : 20000));

    store::WalConfig none;
    none.fsync = store::FsyncPolicy::kNone;
    appendRows.push_back(
        benchAppend("none", none, smoke ? 40000 : 200000));
  }
  for (const auto& row : appendRows) {
    const double rps = static_cast<double>(row.records) / row.seconds;
    const double mbps = static_cast<double>(row.bytes) / row.seconds /
                        (1024.0 * 1024.0);
    std::printf("%-14s %10llu %10.4f %14.0f %10.2f %8llu\n",
                row.policy.c_str(),
                static_cast<unsigned long long>(row.records), row.seconds,
                rps, mbps, static_cast<unsigned long long>(row.fsyncs));
  }

  std::printf("\n== micro_store: recovery time vs WAL length ==\n");
  std::printf("%-12s %12s %10s %14s\n", "wal_records", "checkpointed",
              "seconds", "replayed/s");
  const auto plan = benchPlan();
  std::vector<RecoveryRow> recoveryRows;
  std::vector<std::uint64_t> recoverySizes{1000, 5000};
  if (!smoke) {
    recoverySizes.push_back(20000);
    recoverySizes.push_back(50000);
  }
  for (const std::uint64_t records : recoverySizes) {
    recoveryRows.push_back(benchRecovery(plan, records, false));
    recoveryRows.push_back(benchRecovery(plan, records, true));
  }
  for (const auto& row : recoveryRows) {
    const double rps =
        row.replayed == 0
            ? 0.0
            : static_cast<double>(row.replayed) / row.seconds;
    std::printf("%-12llu %12s %10.4f %14.0f\n",
                static_cast<unsigned long long>(row.walRecords),
                row.checkpointed ? "yes" : "no", row.seconds, rps);
  }

  std::printf("\n== micro_store: cold start vs venue size ==\n");
  std::printf("  %9s %5s %10s %10s %12s %12s %12s %12s\n", "locations",
              "aps", "text_mb", "image_mb", "text_s", "binary_s",
              "mmap_full_s", "mmap_bulk_s");

  std::vector<std::size_t> coldSizes{1024};
  if (!smoke) {
    coldSizes.push_back(4096);
    coldSizes.push_back(16384);
  }
  if (full) coldSizes.push_back(65536);

  std::vector<ColdStartRow> coldRows;
  for (const std::size_t locations : coldSizes) {
    // One rep at the big sizes (the text parse alone runs minutes at
    // 64k); best-of-3 where reruns are cheap enough to smooth noise.
    const std::size_t reps = locations >= 16384 ? 1 : 3;
    coldRows.push_back(benchColdStart(locations, reps));
    const ColdStartRow& r = coldRows.back();
    std::printf("  %9zu %5zu %10.1f %10.1f %12.4f %12.4f %12.4f %12.4f\n",
                r.locations, r.apCount,
                static_cast<double>(r.textBytes) / (1024.0 * 1024.0),
                static_cast<double>(r.imageBytes) / (1024.0 * 1024.0),
                r.variants[0].seconds, r.variants[1].seconds,
                r.variants[2].seconds, r.variants[3].seconds);
  }
  {
    const ColdStartRow& r = coldRows.back();
    const double text = r.variants[0].seconds;
    const double bulk = r.variants[3].seconds;
    std::printf("  at %zu locations: mmap_image_bulk %.1fx faster than "
                "text_load (%.4fs vs %.4fs)\n",
                r.locations, bulk > 0.0 ? text / bulk : 0.0, bulk, text);
  }
  std::printf("  determinism: every load path answered the probe query "
              "bitwise-identical to the generator's database\n");

  bench::JsonWriter json;
  json.beginObject()
      .field("bench", "micro_store")
      .field("schema_version", 1.0);
  json.beginObject("config")
      .field("smoke", smoke)
      .field("full", full)
      .endObject();

  json.beginArray("append");
  for (const auto& row : appendRows) {
    json.beginObject()
        .field("policy", row.policy)
        .field("records", static_cast<double>(row.records))
        .field("seconds", row.seconds)
        .field("records_per_sec",
               static_cast<double>(row.records) / row.seconds)
        .field("mb_per_sec", static_cast<double>(row.bytes) /
                                 row.seconds / (1024.0 * 1024.0))
        .field("fsyncs", static_cast<double>(row.fsyncs))
        .endObject();
  }
  json.endArray();

  json.beginArray("recovery");
  for (const auto& row : recoveryRows) {
    json.beginObject()
        .field("wal_records", static_cast<double>(row.walRecords))
        .field("checkpointed", row.checkpointed)
        .field("seconds", row.seconds)
        .field("records_per_sec",
               row.replayed == 0
                   ? 0.0
                   : static_cast<double>(row.replayed) / row.seconds)
        .endObject();
  }
  json.endArray();

  json.beginArray("cold_start");
  for (const ColdStartRow& r : coldRows) {
    const double text = r.variants[0].seconds;
    json.beginObject()
        .field("locations", static_cast<double>(r.locations))
        .field("ap_count", static_cast<double>(r.apCount))
        .field("text_bytes", static_cast<double>(r.textBytes))
        .field("image_bytes", static_cast<double>(r.imageBytes))
        .field("image_write_seconds", r.imageWriteSeconds);
    json.beginArray("variants");
    for (const ColdVariant& v : r.variants) {
      json.beginObject()
          .field("name", v.name)
          .field("seconds", v.seconds)
          .field("mean_seconds", v.meanSeconds)
          .field("speedup_vs_text",
                 v.seconds > 0.0 ? text / v.seconds : 0.0)
          .endObject();
    }
    json.endArray();
    json.endObject();
  }
  json.endArray();

  // Flat acceptance summary: the headline figure at the largest venue
  // measured, so the trajectory (and CI) need not walk the sweep.
  {
    const ColdStartRow& r = coldRows.back();
    const double text = r.variants[0].seconds;
    const double mmapFull = r.variants[2].seconds;
    const double mmapBulk = r.variants[3].seconds;
    json.beginObject("cold_start_summary")
        .field("max_locations", static_cast<double>(r.locations))
        .field("speedup_mmap_full_vs_text",
               mmapFull > 0.0 ? text / mmapFull : 0.0)
        .field("speedup_mmap_bulk_vs_text",
               mmapBulk > 0.0 ? text / mmapBulk : 0.0)
        .endObject();
  }
  json.field("determinism_bitwise", true).endObject();

  const std::string jsonPath =
      bench::resultsDir() + "/BENCH_micro_store.json";
  if (json.writeTo(jsonPath))
    std::printf("  perf trajectory: %s\n", jsonPath.c_str());
  return EXIT_SUCCESS;
}
