// moloc_loadgen: trace-replay load generator for molocd.
//
// Builds the same seeded world as the daemon — the office-hall
// ExperimentWorld by default, or with --venue the same generated
// campus venue (worldgen::GeneratedVenue; spec and --venue-seed must
// match the daemon's) — simulates a cohort of walking users, and
// replays every user's scan sequence over real TCP connections using
// the binary wire protocol — thousands of concurrent sessions
// multiplexed over a handful of pipelined connections, exactly the
// shape of a production deployment.
//
// Phases:
//   1. Measured localize phase: every user's walk replayed end to end;
//      per-request latency and aggregate QPS recorded.
//   2. Observation phase: ground-truth reachability observations
//      reported through the intake (Report/Flush/Stats round trip).
//   3. Verification phase: the identical scan sequences replayed
//      through an in-process LocalizationService built from the same
//      seed; estimates must be bitwise identical to what the network
//      returned (the service's determinism contract extended across
//      the wire).
//
// Emits bench_results/BENCH_micro_net.json (schema gated by
// tools/check_bench_json.py).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/online_motion_database.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "service/localization_service.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "worldgen/generated_venue.hpp"
#include "worldgen/venue_spec.hpp"

namespace {

using namespace moloc;
using Clock = std::chrono::steady_clock;

/// One pre-encoded localize request plus its bookkeeping.
struct PlannedRequest {
  std::uint64_t tag = 0;
  std::size_t userIndex = 0;
  std::size_t round = 0;
  std::string frame;
};

/// One user's walk as a replayable scan sequence.
struct UserScript {
  std::uint64_t sessionId = 0;
  std::vector<radio::Fingerprint> scans;
  std::vector<sensors::ImuTrace> imus;  ///< Parallel; [0] is empty.
};

/// One ground-truth relative-location observation for phase 2.
struct ObservationTruth {
  env::LocationId from = 0;
  env::LocationId to = 0;
  double directionDeg = 0.0;
  double offsetMeters = 0.0;
};

struct CompletedRequest {
  std::uint64_t tag = 0;
  std::size_t userIndex = 0;
  std::size_t round = 0;
  double latencyNs = 0.0;
  net::Status status = net::Status::kOk;
  core::LocationEstimate estimate;
};

/// Per-connection worker result.
struct WorkerResult {
  std::vector<CompletedRequest> completed;
  std::uint64_t protocolErrors = 0;
  std::string error;  ///< Non-empty when the worker aborted.
};

std::uint64_t makeTag(std::size_t userIndex, std::size_t round) {
  return (static_cast<std::uint64_t>(userIndex) << 16) | round;
}

/// Replays `rounds` interleaved across this connection's users: one
/// request per user per round, pipelined within the round, responses
/// drained before the next round begins.  Pending requests therefore
/// never exceed the user count per connection, which stays far below
/// the server's pipelining bound.
void runConnection(const std::string& host, std::uint16_t port,
                   const std::vector<PlannedRequest>* const* rounds,
                   std::size_t roundCount, WorkerResult* result) {
  try {
    net::Client client(host, port);
    for (std::size_t r = 0; r < roundCount; ++r) {
      const std::vector<PlannedRequest>& round = *rounds[r];
      std::vector<Clock::time_point> sentAt(round.size());
      for (std::size_t i = 0; i < round.size(); ++i) {
        sentAt[i] = Clock::now();
        client.send(round[i].frame);
      }
      for (std::size_t i = 0; i < round.size(); ++i) {
        const net::Frame frame = client.recvFrame();
        if (frame.type != net::MsgType::kLocalizeResponse) {
          ++result->protocolErrors;
          continue;
        }
        const net::LocalizeResponse response =
            net::decodeLocalizeResponse(frame.payload);
        const auto now = Clock::now();
        // Responses arrive in request order; resolve by tag anyway so
        // a reordering bug surfaces as a status error, not a crash.
        const std::size_t idx =
            i < round.size() && round[i].tag == response.tag
                ? i
                : round.size();
        CompletedRequest done;
        done.tag = response.tag;
        done.status = response.status;
        done.estimate = response.estimate;
        if (idx < round.size()) {
          done.userIndex = round[idx].userIndex;
          done.round = round[idx].round;
          done.latencyNs =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  now - sentAt[idx])
                  .count();
        } else {
          ++result->protocolErrors;
        }
        result->completed.push_back(std::move(done));
      }
    }
  } catch (const net::ProtocolError& e) {
    ++result->protocolErrors;
    result->error = e.what();
  } catch (const std::exception& e) {
    result->error = e.what();
  }
}

bool bitwiseEqual(const core::LocationEstimate& a,
                  const core::LocationEstimate& b) {
  if (a.location != b.location ||
      a.candidates.size() != b.candidates.size())
    return false;
  if (std::memcmp(&a.probability, &b.probability, sizeof(double)) != 0)
    return false;
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    if (a.candidates[i].location != b.candidates[i].location) return false;
    if (std::memcmp(&a.candidates[i].probability,
                    &b.candidates[i].probability, sizeof(double)) != 0)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "moloc_loadgen: trace-replay load generator for molocd "
      "(see docs/serving.md); the daemon must run with the same "
      "--seed/--ap-count and default engine config for the bitwise "
      "verification to hold");
  args.addOption("host", "127.0.0.1", "daemon address");
  args.addOption("port", "0", "daemon port");
  args.addOption("port-file", "",
                 "read the daemon port from this file (overrides "
                 "--port)");
  args.addOption("users", "1024", "concurrent simulated users");
  args.addOption("connections", "16", "TCP connections to spread over");
  args.addOption("legs", "4", "walk legs per user (requests = legs+1)");
  args.addOption("seed", "42", "world seed (must match the daemon)");
  args.addOption("ap-count", "6", "world AP count (must match)");
  args.addOption("venue", "",
                 "replay against a generated campus venue instead of "
                 "the office hall (must match the daemon's --venue)");
  args.addOption("venue-seed", "42",
                 "venue generation seed (must match the daemon)");
  args.addOption("observations", "64",
                 "ground-truth observations to report in phase 2");
  args.addOption("out", "", "output JSON path (default bench_results/)");
  args.addSwitch("smoke", "small fast run for CI (128 users, 2 legs)");
  args.addSwitch("skip-verify", "skip the in-process bitwise check");
  args.addSwitch("server-no-intake",
                 "daemon runs --no-intake: skip the observation phase "
                 "and verify against an intake-less service");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moloc_loadgen: %s\n%s", e.what(),
                 args.usage().c_str());
    return 2;
  }

  const bool smoke = args.getSwitch("smoke");
  const std::size_t users =
      smoke ? 128 : static_cast<std::size_t>(args.getInt("users"));
  const std::size_t connections = std::min<std::size_t>(
      smoke ? 4 : static_cast<std::size_t>(args.getInt("connections")),
      std::max<std::size_t>(users, 1));
  const int legs = smoke ? 2 : args.getInt("legs");
  const std::string host = args.getString("host");

  std::uint16_t port = static_cast<std::uint16_t>(args.getInt("port"));
  const std::string portFile = args.getString("port-file");
  if (!portFile.empty()) {
    std::FILE* f = std::fopen(portFile.c_str(), "r");
    unsigned filePort = 0;
    if (f == nullptr || std::fscanf(f, "%u", &filePort) != 1) {
      std::fprintf(stderr, "moloc_loadgen: cannot read port from '%s'\n",
                   portFile.c_str());
      if (f) std::fclose(f);
      return 2;
    }
    std::fclose(f);
    port = static_cast<std::uint16_t>(filePort);
  }
  if (port == 0) {
    std::fprintf(stderr,
                 "moloc_loadgen: --port or --port-file is required\n");
    return 2;
  }

  eval::WorldConfig worldConfig;
  worldConfig.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  worldConfig.apCount = args.getInt("ap-count");
  std::unique_ptr<eval::ExperimentWorld> world;
  std::unique_ptr<worldgen::GeneratedVenue> venue;
  const std::string venueText = args.getString("venue");
  if (!venueText.empty()) {
    worldgen::VenueSpec spec = worldgen::parseVenueSpec(venueText);
    spec.seed = static_cast<std::uint64_t>(args.getInt("venue-seed"));
    std::printf("moloc_loadgen: generating venue %s (seed %llu)...\n",
                worldgen::describeVenueSpec(spec).c_str(),
                static_cast<unsigned long long>(spec.seed));
    venue = std::make_unique<worldgen::GeneratedVenue>(spec);
  } else {
    std::printf("moloc_loadgen: building world (seed %llu, %d APs)...\n",
                static_cast<unsigned long long>(worldConfig.seed),
                worldConfig.apCount);
    world = std::make_unique<eval::ExperimentWorld>(worldConfig);
  }

  // ---- Script generation: one deterministic walk per user ----------
  std::printf("moloc_loadgen: scripting %zu users x %d legs...\n", users,
              legs);
  std::vector<UserScript> scripts(users);
  std::vector<std::vector<ObservationTruth>> truths(users);
  if (venue) {
    // Venue mode: random walks over the venue's walk graph, scans
    // drawn from the serving-epoch radio model, fingerprint-only
    // rounds (empty IMU).  Steps stay on one floor — stair and bridge
    // legs have no straight-line geometry, which the intake's
    // map-consistency filter would reject.
    const env::WalkGraph& graph = venue->site().graph;
    for (std::size_t u = 0; u < users; ++u) {
      util::Rng rng(venue->spec().seed * 1000003ULL + 0x70000000ULL + u);
      UserScript& script = scripts[u];
      script.sessionId = u + 1;
      env::LocationId loc = static_cast<env::LocationId>(
          rng.uniformIndex(venue->locationCount()));
      script.scans.push_back(venue->scanAt(loc, 0.0, rng));
      script.imus.emplace_back();
      for (int leg = 0; leg < legs; ++leg) {
        const auto neighbors = graph.neighbors(loc);
        env::LocationId next = loc;
        double stepHeading = 0.0;
        double stepLength = 0.0;
        for (int attempt = 0; attempt < 8; ++attempt) {
          const auto& edge =
              neighbors[static_cast<std::size_t>(rng.uniformIndex(
                  static_cast<std::uint64_t>(neighbors.size())))];
          if (&venue->floorOf(edge.to) != &venue->floorOf(loc)) continue;
          next = edge.to;
          stepHeading = edge.headingDeg;
          stepLength = edge.length;
          break;
        }
        if (next != loc)
          truths[u].push_back({loc, next, stepHeading, stepLength});
        loc = next;
        script.scans.push_back(venue->scanAt(loc, stepHeading, rng));
        script.imus.emplace_back();
      }
    }
  } else {
    for (std::size_t u = 0; u < users; ++u) {
      const auto& profile = world->users()[u % world->users().size()];
      // Per-user stream derived from the master seed: identical
      // between runs and independent of user count ordering.
      util::Rng rng(worldConfig.seed * 1000003ULL + u);
      const traj::Trace trace = world->makeTrace(profile, legs, rng);
      UserScript& script = scripts[u];
      script.sessionId = u + 1;
      script.scans.push_back(trace.initialScan);
      script.imus.emplace_back();
      for (const auto& interval : trace.intervals) {
        script.scans.push_back(interval.scanAtArrival);
        script.imus.push_back(interval.imu);
        truths[u].push_back({interval.fromTruth, interval.toTruth,
                             interval.trueDirectionDeg,
                             interval.trueOffsetMeters});
      }
    }
  }

  // Rounds: request r of every user, partitioned by connection.
  const std::size_t roundCount = static_cast<std::size_t>(legs) + 1;
  std::vector<std::vector<std::vector<PlannedRequest>>> plan(
      connections,
      std::vector<std::vector<PlannedRequest>>(roundCount));
  for (std::size_t u = 0; u < users; ++u) {
    const std::size_t c = u % connections;
    for (std::size_t r = 0; r < roundCount; ++r) {
      PlannedRequest request;
      request.tag = makeTag(u, r);
      request.userIndex = u;
      request.round = r;
      net::LocalizeRequest wire;
      wire.tag = request.tag;
      wire.scan = {scripts[u].sessionId, scripts[u].scans[r],
                   scripts[u].imus[r]};
      request.frame = net::encodeLocalizeRequest(wire);
      plan[c][r].push_back(std::move(request));
    }
  }

  // ---- Phase 1: measured localize replay ---------------------------
  const std::size_t totalRequests = users * roundCount;
  std::printf(
      "moloc_loadgen: replaying %zu requests over %zu connections to "
      "%s:%u...\n",
      totalRequests, connections, host.c_str(), unsigned{port});
  std::vector<WorkerResult> results(connections);
  std::vector<std::vector<const std::vector<PlannedRequest>*>> roundPtrs(
      connections);
  for (std::size_t c = 0; c < connections; ++c)
    for (std::size_t r = 0; r < roundCount; ++r)
      roundPtrs[c].push_back(&plan[c][r]);

  const auto startTime = Clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(connections);
    for (std::size_t c = 0; c < connections; ++c)
      workers.emplace_back(runConnection, host, port,
                           roundPtrs[c].data(), roundCount, &results[c]);
    for (auto& worker : workers) worker.join();
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - startTime).count();

  std::uint64_t protocolErrors = 0;
  std::uint64_t statusErrors = 0;
  std::size_t completed = 0;
  std::vector<double> latenciesNs;
  latenciesNs.reserve(totalRequests);
  // estimate per (user, round) for the verification phase.
  std::vector<std::vector<core::LocationEstimate>> served(
      users, std::vector<core::LocationEstimate>(roundCount));
  std::vector<std::vector<bool>> haveServed(
      users, std::vector<bool>(roundCount, false));
  for (const auto& result : results) {
    protocolErrors += result.protocolErrors;
    if (!result.error.empty())
      std::fprintf(stderr, "moloc_loadgen: worker error: %s\n",
                   result.error.c_str());
    for (const auto& done : result.completed) {
      ++completed;
      if (done.status != net::Status::kOk) {
        ++statusErrors;
        continue;
      }
      latenciesNs.push_back(done.latencyNs);
      if (done.userIndex < users && done.round < roundCount) {
        served[done.userIndex][done.round] = done.estimate;
        haveServed[done.userIndex][done.round] = true;
      }
    }
  }
  const bench::LatencySummary latency = bench::summarizeNs(latenciesNs);
  const double qps =
      seconds > 0.0 ? static_cast<double>(completed) / seconds : 0.0;
  std::printf(
      "moloc_loadgen: %zu/%zu responses in %.2fs (%.0f qps, p50 %.2fms "
      "p95 %.2fms p99 %.2fms, %llu protocol errors, %llu status "
      "errors)\n",
      completed, totalRequests, seconds, qps, latency.p50Ns / 1e6,
      latency.p95Ns / 1e6, latency.p99Ns / 1e6,
      static_cast<unsigned long long>(protocolErrors),
      static_cast<unsigned long long>(statusErrors));

  // ---- Phase 2: observation round trip (Report/Flush/Stats) --------
  const bool serverHasIntake = !args.getSwitch("server-no-intake");
  std::uint64_t observationsReported = 0;
  std::uint64_t observationsAccepted = 0;
  bool flushOk = false;
  net::ServerStats serverStats;
  try {
    net::Client control(host, port);
    if (serverHasIntake) {
      std::size_t available = 0;
      for (const auto& userTruths : truths) available += userTruths.size();
      const std::size_t toReport = std::min<std::size_t>(
          static_cast<std::size_t>(args.getInt("observations")),
          available);
      std::size_t reported = 0;
      for (std::size_t u = 0; u < users && reported < toReport; ++u) {
        for (const auto& truth : truths[u]) {
          if (reported >= toReport) break;
          const auto response = control.reportObservation(
              makeTag(u, 9000 + reported), truth.from, truth.to,
              truth.directionDeg, truth.offsetMeters);
          ++reported;
          ++observationsReported;
          if (response.status == net::Status::kOk && response.accepted)
            ++observationsAccepted;
        }
      }
      const auto flushResponse = control.flush(1);
      flushOk = flushResponse.status == net::Status::kOk;
    }
    const auto statsResponse = control.stats(2);
    if (statsResponse.status == net::Status::kOk)
      serverStats = statsResponse.stats;
    control.shutdownWrites();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "moloc_loadgen: control phase error: %s\n",
                 e.what());
  }
  std::printf(
      "moloc_loadgen: observations %llu reported / %llu accepted, "
      "flush %s, server generation %llu\n",
      static_cast<unsigned long long>(observationsReported),
      static_cast<unsigned long long>(observationsAccepted),
      flushOk ? "ok" : "skipped",
      static_cast<unsigned long long>(serverStats.worldGeneration));

  // ---- Phase 3: in-process bitwise verification --------------------
  bool verified = true;
  std::size_t compared = 0;
  const bool verify = !args.getSwitch("skip-verify");
  if (verify) {
    std::printf("moloc_loadgen: verifying against in-process service"
                "...\n");
    // Mirror the daemon's construction exactly: same databases, same
    // default engine config (venue mode includes the same tiered-index
    // shard boundaries), and the same (empty) intake database —
    // attaching intake publishes generation 1, which the sessions
    // adopt, so skipping it would verify against the wrong world.
    core::OnlineMotionDatabase verifyDb(venue ? venue->site().plan
                                              : world->hall().plan);
    service::ServiceConfig verifyConfig;
    verifyConfig.threadCount = 1;
    if (venue) verifyConfig.indexShardStarts = venue->shardStarts();
    service::LocalizationService reference(
        venue ? venue->fingerprints() : world->fingerprintDb(),
        venue ? venue->motion() : world->motionDb(), verifyConfig);
    if (serverHasIntake) reference.attachIntake(&verifyDb);
    for (std::size_t u = 0; u < users; ++u) {
      for (std::size_t r = 0; r < roundCount; ++r) {
        const auto estimate = reference.submitScan(
            scripts[u].sessionId, scripts[u].scans[r],
            scripts[u].imus[r]);
        if (!haveServed[u][r]) {
          verified = false;
          continue;
        }
        ++compared;
        if (!bitwiseEqual(estimate, served[u][r])) {
          verified = false;
          std::fprintf(stderr,
                       "moloc_loadgen: MISMATCH user %zu round %zu "
                       "(served %d, local %d)\n",
                       u, r, served[u][r].location, estimate.location);
        }
      }
    }
    std::printf("moloc_loadgen: bitwise verification %s (%zu requests "
                "compared)\n",
                verified ? "PASSED" : "FAILED", compared);
  }

  // ---- JSON snapshot ------------------------------------------------
  std::string outPath = args.getString("out");
  if (outPath.empty())
    outPath = bench::resultsDir() + "/BENCH_micro_net.json";
  bench::JsonWriter json;
  json.beginObject()
      .field("bench", "micro_net")
      .field("schema_version", 1.0)
      .beginObject("config")
      .field("users", static_cast<double>(users))
      .field("connections", static_cast<double>(connections))
      .field("requests_per_user", static_cast<double>(roundCount))
      .field("seed", static_cast<double>(worldConfig.seed))
      .field("ap_count", static_cast<double>(worldConfig.apCount))
      .field("venue", venueText)
      .field("venue_locations",
             venue ? static_cast<double>(venue->locationCount()) : 0.0)
      .field("smoke", smoke)
      .endObject()
      .beginObject("totals")
      .field("queries", static_cast<double>(completed))
      .field("seconds", seconds)
      .field("qps", qps)
      .field("protocol_errors", static_cast<double>(protocolErrors))
      .field("status_errors", static_cast<double>(statusErrors))
      .endObject()
      .beginArray("latency");
  bench::writeVariant(json, "localize", latency);
  json.endArray()
      .beginObject("observations")
      .field("reported", static_cast<double>(observationsReported))
      .field("accepted", static_cast<double>(observationsAccepted))
      .field("flush_ok", flushOk)
      .endObject()
      .beginObject("verification")
      .field("enabled", verify)
      .field("requests_compared", static_cast<double>(compared))
      .field("bitwise_identical", verified)
      .endObject()
      .beginObject("server")
      .field("requests_served",
             static_cast<double>(serverStats.requestsServed))
      .field("world_generation",
             static_cast<double>(serverStats.worldGeneration))
      .field("clean_disconnects",
             static_cast<double>(serverStats.cleanDisconnects))
      .field("overload_rejections",
             static_cast<double>(serverStats.overloadRejections))
      .field("server_protocol_errors",
             static_cast<double>(serverStats.protocolErrors))
      .endObject()
      .endObject();
  if (!json.writeTo(outPath)) {
    std::fprintf(stderr, "moloc_loadgen: cannot write %s\n",
                 outPath.c_str());
    return 1;
  }
  std::printf("moloc_loadgen: wrote %s\n", outPath.c_str());

  const bool healthy = protocolErrors == 0 && statusErrors == 0 &&
                       completed == totalRequests &&
                       (!verify || verified);
  return healthy ? 0 : 1;
}
