// Ablation A6: motion-database construction methods (Sec. IV.A).
// The paper weighs three options — manual configuration (accurate,
// labour-intensive), map computation (cheap, violates consistency when
// walls intervene), and crowdsourcing (cheap and consistent) — and
// picks crowdsourcing.  This bench measures the choice: consistency
// violations, RLM fidelity, and end-to-end localization accuracy per
// method on the same world.

#include <cstdio>

#include "baseline/wifi_fingerprinting.hpp"
#include "bench/common.hpp"
#include "core/construction_methods.hpp"

namespace {

using namespace moloc;

eval::ErrorStats evaluateWith(eval::ExperimentWorld& world,
                              const core::MotionDatabase& motionDb) {
  core::MoLocEngine engine(world.fingerprintDb(), motionDb,
                           world.config().moloc);
  eval::ErrorStats stats;
  for (int t = 0; t < bench::kTestTraces; ++t) {
    const auto& user =
        world.users()[static_cast<std::size_t>(t) % world.users().size()];
    const auto trace =
        world.makeTrace(user, bench::kLegsPerTrace, world.evalRng());
    engine.reset();
    const auto initial = engine.localize(trace.initialScan, std::nullopt);
    stats.add({initial.location, trace.startTruth,
               world.locationDistance(initial.location, trace.startTruth)});
    for (const auto& interval : trace.intervals) {
      const auto motion = world.processInterval(interval, user);
      const auto fix = engine.localize(interval.scanAtArrival, motion);
      stats.add({fix.location, interval.toTruth,
                 world.locationDistance(fix.location, interval.toTruth)});
    }
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("=== Ablation A6: motion-DB construction methods "
              "(6 APs) ===\n");

  eval::WorldConfig config;
  eval::ExperimentWorld world(config);
  const auto& hall = world.hall();

  const auto manual = core::buildMotionDatabaseManually(hall.graph);
  const auto fromMap =
      core::buildMotionDatabaseFromMap(hall.plan, env::kHallAdjacency);
  const auto& crowdsourced = world.motionDb();

  struct Row {
    const char* name;
    const core::MotionDatabase* db;
  } rows[] = {{"manual", &manual},
              {"map-computed", &fromMap},
              {"crowdsourced", &crowdsourced}};

  std::printf("%-14s %-8s %-12s %-10s %-10s\n", "method", "pairs",
              "unwalkable", "accuracy", "mean_err");
  util::CsvWriter csv(
      bench::resultsDir() + "/ablation_construction.csv",
      {"method", "pairs", "unwalkable", "accuracy", "mean_err_m"});
  for (const auto& row : rows) {
    const auto stats = evaluateWith(world, *row.db);
    const auto unwalkable =
        core::countUnwalkableEntries(*row.db, hall.graph);
    std::printf("%-14s %-8zu %-12zu %-10.3f %-10.2f\n", row.name,
                row.db->entryCount() / 2, unwalkable, stats.accuracy(),
                stats.meanError());
    csv.cell(row.name).cell(row.db->entryCount() / 2).cell(unwalkable)
        .cell(stats.accuracy()).cell(stats.meanError()).endRow();
  }
  std::printf(
      "\n(manual = ground-truth legs, the upper bound the paper calls "
      "too labour-intensive;\n map-computed includes %zu "
      "partition-blocked pairs — the consistency violation of "
      "Sec. IV.A;\n crowdsourced is MoLoc's method.)\n",
      core::countUnwalkableEntries(fromMap, hall.graph));
  std::printf("rows written to %s/ablation_construction.csv\n",
              moloc::bench::resultsDir().c_str());
  return 0;
}
