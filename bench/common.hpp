#pragma once

// Shared plumbing for the figure/table reproduction binaries: the
// paper's test protocol (34 walks, 12 legs each, users cycled) and
// uniform printing of error CDFs and summary rows.  Each binary also
// dumps its series to CSV under bench_results/ so the figures can be
// re-plotted offline.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/convergence.hpp"
#include "eval/experiment_world.hpp"
#include "util/csv.hpp"

namespace moloc::bench {

/// The paper's test workload (Sec. VI.A): 34 held-out walks.
inline constexpr int kTestTraces = 34;
inline constexpr int kLegsPerTrace = 12;

/// Where CSV series land; created on demand.
inline std::string resultsDir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Paired per-walk records for one AP configuration.
struct PairedRun {
  int apCount = 0;
  eval::ErrorStats moloc;
  eval::ErrorStats wifi;
  std::vector<std::vector<eval::LocalizationRecord>> molocWalks;
  std::vector<std::vector<eval::LocalizationRecord>> wifiWalks;
};

/// Runs the paper's test protocol against a freshly built world.
inline PairedRun runPaired(const eval::WorldConfig& config,
                           int traces = kTestTraces,
                           int legs = kLegsPerTrace) {
  eval::ExperimentWorld world(config);
  PairedRun run;
  run.apCount = config.apCount;
  for (const auto& outcome : eval::runComparison(world, traces, legs)) {
    run.moloc.addAll(outcome.moloc);
    run.wifi.addAll(outcome.wifi);
    run.molocWalks.push_back(outcome.moloc);
    run.wifiWalks.push_back(outcome.wifi);
  }
  return run;
}

/// Prints one CDF as "value cumulative" rows, downsampled.
inline void printCdf(const char* label,
                     const std::vector<util::CdfPoint>& cdf) {
  std::printf("  %s CDF (error_m -> cumulative):\n", label);
  for (const auto& point : cdf)
    std::printf("    %6.2f  %.3f\n", point.value, point.cumulative);
}

/// Writes paired CDFs to CSV: columns method,error_m,cumulative.
inline void writeCdfCsv(const std::string& path,
                        const eval::ErrorStats& moloc,
                        const eval::ErrorStats& wifi) {
  util::CsvWriter csv(path, {"method", "error_m", "cumulative"});
  for (const auto& point : moloc.cdf())
    csv.cell("moloc").cell(point.value).cell(point.cumulative).endRow();
  for (const auto& point : wifi.cdf())
    csv.cell("wifi").cell(point.value).cell(point.cumulative).endRow();
}

}  // namespace moloc::bench
