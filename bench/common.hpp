#pragma once

// Shared plumbing for the figure/table reproduction binaries: the
// paper's test protocol (34 walks, 12 legs each, users cycled) and
// uniform printing of error CDFs and summary rows.  Each binary also
// dumps its series to CSV under bench_results/ so the figures can be
// re-plotted offline.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/convergence.hpp"
#include "eval/experiment_world.hpp"
#include "util/csv.hpp"

namespace moloc::bench {

/// The paper's test workload (Sec. VI.A): 34 held-out walks.
inline constexpr int kTestTraces = 34;
inline constexpr int kLegsPerTrace = 12;

/// Where CSV series land; created on demand.
inline std::string resultsDir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Paired per-walk records for one AP configuration.
struct PairedRun {
  int apCount = 0;
  eval::ErrorStats moloc;
  eval::ErrorStats wifi;
  std::vector<std::vector<eval::LocalizationRecord>> molocWalks;
  std::vector<std::vector<eval::LocalizationRecord>> wifiWalks;
};

/// Runs the paper's test protocol against a freshly built world.
inline PairedRun runPaired(const eval::WorldConfig& config,
                           int traces = kTestTraces,
                           int legs = kLegsPerTrace) {
  eval::ExperimentWorld world(config);
  PairedRun run;
  run.apCount = config.apCount;
  for (const auto& outcome : eval::runComparison(world, traces, legs)) {
    run.moloc.addAll(outcome.moloc);
    run.wifi.addAll(outcome.wifi);
    run.molocWalks.push_back(outcome.moloc);
    run.wifiWalks.push_back(outcome.wifi);
  }
  return run;
}

/// Prints one CDF as "value cumulative" rows, downsampled.
inline void printCdf(const char* label,
                     const std::vector<util::CdfPoint>& cdf) {
  std::printf("  %s CDF (error_m -> cumulative):\n", label);
  for (const auto& point : cdf)
    std::printf("    %6.2f  %.3f\n", point.value, point.cumulative);
}

/// Writes paired CDFs to CSV: columns method,error_m,cumulative.
inline void writeCdfCsv(const std::string& path,
                        const eval::ErrorStats& moloc,
                        const eval::ErrorStats& wifi) {
  util::CsvWriter csv(path, {"method", "error_m", "cumulative"});
  for (const auto& point : moloc.cdf())
    csv.cell("moloc").cell(point.value).cell(point.cumulative).endRow();
  for (const auto& point : wifi.cdf())
    csv.cell("wifi").cell(point.value).cell(point.cumulative).endRow();
}

// ---- Perf-trajectory plumbing (BENCH_*.json) ------------------------
//
// The micro benches emit machine-readable JSON snapshots under
// bench_results/ (schema in docs/performance.md) so perf can be
// tracked as a trajectory across commits.  The emitter is deliberately
// dependency-free: a JSON library would be a new third-party
// requirement for every bench binary.

/// The shared measurement-length override: MOLOC_BENCH_ROUNDS=N
/// replaces `fallback` when set to a positive integer.
inline std::size_t envRounds(std::size_t fallback) {
  if (const char* env = std::getenv("MOLOC_BENCH_ROUNDS"))
    if (const long parsed = std::atol(env); parsed > 0)
      return static_cast<std::size_t>(parsed);
  return fallback;
}

/// Percentile summary of per-operation latency samples.  bestNs (the
/// fastest sample) is the statistic speedups are computed from: on a
/// shared/virtualized host, scheduler steal inflates every percentile
/// of a CPU-bound microbenchmark, while the best sample approaches the
/// true cost of the code under test.
struct LatencySummary {
  double bestNs = 0.0;
  double p50Ns = 0.0;
  double p95Ns = 0.0;
  double p99Ns = 0.0;
  double meanNs = 0.0;
  double opsPerSec = 0.0;
  std::size_t samples = 0;
};

/// Summarizes per-op nanosecond samples (nearest-rank percentiles).
inline LatencySummary summarizeNs(std::vector<double> ns) {
  LatencySummary s;
  if (ns.empty()) return s;
  std::sort(ns.begin(), ns.end());
  s.bestNs = ns.front();
  const auto rank = [&](double q) {
    const auto i = static_cast<std::size_t>(
        q * static_cast<double>(ns.size() - 1) + 0.5);
    return ns[std::min(i, ns.size() - 1)];
  };
  s.p50Ns = rank(0.50);
  s.p95Ns = rank(0.95);
  s.p99Ns = rank(0.99);
  double sum = 0.0;
  for (const double v : ns) sum += v;
  s.meanNs = sum / static_cast<double>(ns.size());
  s.opsPerSec = s.meanNs > 0.0 ? 1e9 / s.meanNs : 0.0;
  s.samples = ns.size();
  return s;
}

/// Minimal streaming JSON emitter: objects, arrays, and scalar fields
/// with correct comma/escape handling.  Numbers that hold integral
/// values print as integers; everything else uses shortest-ish %.9g.
class JsonWriter {
 public:
  JsonWriter& beginObject(const char* key = nullptr) {
    open(key, '{');
    return *this;
  }
  JsonWriter& endObject() { return close('}'); }
  JsonWriter& beginArray(const char* key = nullptr) {
    open(key, '[');
    return *this;
  }
  JsonWriter& endArray() { return close(']'); }

  JsonWriter& field(const char* key, double value) {
    prefix(key);
    out_ += number(value);
    return *this;
  }
  JsonWriter& field(const char* key, bool value) {
    prefix(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  JsonWriter& field(const char* key, const char* value) {
    prefix(key);
    quoted(value);
    return *this;
  }
  JsonWriter& field(const char* key, const std::string& value) {
    return field(key, value.c_str());
  }

  const std::string& str() const { return out_; }

  /// Writes the document to `path`; returns whether the write worked.
  bool writeTo(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (!file) return false;
    std::fputs(out_.c_str(), file);
    std::fputc('\n', file);
    std::fclose(file);
    return true;
  }

 private:
  static std::string number(double value) {
    if (!std::isfinite(value)) return "null";
    char buf[64];
    if (value == std::floor(value) && std::abs(value) < 1e15)
      std::snprintf(buf, sizeof(buf), "%.0f", value);
    else
      std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
  }
  void quoted(const char* text) {
    out_ += '"';
    for (const char* p = text; *p != '\0'; ++p) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += static_cast<char>(c);
      } else if (c < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out_ += buf;
      } else {
        out_ += static_cast<char>(c);
      }
    }
    out_ += '"';
  }
  void prefix(const char* key) {
    if (!needComma_.empty() && needComma_.back()) out_ += ',';
    if (!needComma_.empty()) needComma_.back() = true;
    if (key) {
      quoted(key);
      out_ += ':';
    }
  }
  void open(const char* key, char bracket) {
    prefix(key);
    out_ += bracket;
    needComma_.push_back(false);
  }
  JsonWriter& close(char bracket) {
    needComma_.pop_back();
    out_ += bracket;
    return *this;
  }

  std::string out_;
  std::vector<bool> needComma_;
};

/// Appends one latency summary as an object named `name` to an open
/// array: {"name": ..., "best_ns": ..., "p50_ns": ..., "p95_ns": ...,
/// "p99_ns": ..., "mean_ns": ..., "ops_per_sec": ..., "samples": ...}.
inline void writeVariant(JsonWriter& json, const char* name,
                         const LatencySummary& s) {
  json.beginObject()
      .field("name", name)
      .field("best_ns", s.bestNs)
      .field("p50_ns", s.p50Ns)
      .field("p95_ns", s.p95Ns)
      .field("p99_ns", s.p99Ns)
      .field("mean_ns", s.meanNs)
      .field("ops_per_sec", s.opsPerSec)
      .field("samples", static_cast<double>(s.samples))
      .endObject();
}

}  // namespace moloc::bench
