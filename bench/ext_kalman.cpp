// Extension E2: gyroscope + Kalman heading fusion — the paper's named
// future work ("we may achieve highly accurate direction estimation by
// using gyroscope and advanced filtering techniques such as the Kalman
// filter", Sec. IV.B.2).  Compares circular-mean compass headings with
// the innovation-gated Kalman fusion, in a hall with transient magnetic
// disturbances near the steel pillars, on both direction error and
// end-to-end localization.

#include <cstdio>

#include "bench/common.hpp"
#include "geometry/angles.hpp"
#include "sensors/motion_processor.hpp"
#include "util/stats.hpp"

namespace {

using namespace moloc;

struct Row {
  double directionErrMean = 0.0;
  double directionErrMax = 0.0;
  double accuracy = 0.0;
  double meanErr = 0.0;
};

Row evaluate(sensors::HeadingMode mode, double disturbanceProb) {
  eval::WorldConfig config;
  config.motionProc.heading = mode;
  config.traceSim.compass.disturbanceProbability = disturbanceProb;
  eval::ExperimentWorld world(config);

  // Direction error of the motion processing unit, measured directly
  // against each test leg's ground truth.
  util::RunningStats directionErrors;
  const sensors::MotionProcessor processor(config.motionProc);
  for (int t = 0; t < 10; ++t) {
    const auto& user =
        world.users()[static_cast<std::size_t>(t) % world.users().size()];
    const auto trace = world.makeTrace(user, 12, world.evalRng());
    for (const auto& interval : trace.intervals) {
      const auto motion = processor.process(
          interval.imu, user.estimatedStepLengthMeters());
      if (!motion) continue;
      directionErrors.add(geometry::angularDistDeg(
          motion->directionDeg, interval.trueDirectionDeg));
    }
  }

  eval::ErrorStats moloc;
  for (const auto& outcome : eval::runComparison(world, bench::kTestTraces,
                                                 bench::kLegsPerTrace))
    moloc.addAll(outcome.moloc);

  return {directionErrors.mean(), directionErrors.max(),
          moloc.accuracy(), moloc.meanError()};
}

}  // namespace

int main() {
  std::printf("=== Extension E2: gyro + Kalman heading fusion ===\n\n");

  util::CsvWriter csv(bench::resultsDir() + "/ext_kalman.csv",
                      {"disturbance_prob", "heading_mode",
                       "dir_err_mean_deg", "dir_err_max_deg", "accuracy",
                       "mean_err_m"});

  for (double disturbanceProb : {0.0, 0.25, 0.5}) {
    std::printf("--- magnetic disturbance probability %.2f per leg "
                "---\n",
                disturbanceProb);
    std::printf("%-14s %-14s %-14s %-10s %-10s\n", "heading",
                "dir_err_mean", "dir_err_max", "accuracy", "mean_err");
    for (const auto mode : {sensors::HeadingMode::kCircularMean,
                            sensors::HeadingMode::kKalmanFusion}) {
      const auto row = evaluate(mode, disturbanceProb);
      const char* name = mode == sensors::HeadingMode::kCircularMean
                             ? "circular-mean"
                             : "kalman-fusion";
      std::printf("%-14s %-14.1f %-14.1f %-10.3f %-10.2f\n", name,
                  row.directionErrMean, row.directionErrMax,
                  row.accuracy, row.meanErr);
      csv.cell(disturbanceProb).cell(name).cell(row.directionErrMean)
          .cell(row.directionErrMax).cell(row.accuracy).cell(row.meanErr)
          .endRow();
    }
    std::printf("\n");
  }
  std::printf("expected: the two modes tie on clean legs; fusion wins "
              "increasingly as disturbances appear.\n");
  std::printf("rows written to %s/ext_kalman.csv\n",
              moloc::bench::resultsDir().c_str());
  return 0;
}
