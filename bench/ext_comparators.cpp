// Extension E1: the related-work comparators on the same test workload.
//  - HMM (accelerometer-assisted, ref. [23]): full-state belief with
//    offset-matched transitions but no direction information.
//  - Dead reckoning: the initial fingerprint fix plus pure inertial
//    integration (no re-anchoring).
// The paper argues MoLoc beats the HMM on both accuracy-convergence and
// computational cost; this bench reproduces the accuracy side (the cost
// side is in micro_engine).

#include <cstdio>

#include "baseline/dead_reckoning.hpp"
#include "baseline/hmm_localizer.hpp"
#include "baseline/knn_averaging.hpp"
#include "baseline/particle_filter.hpp"
#include "baseline/wifi_fingerprinting.hpp"
#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Extension E1: comparator methods (6 APs) ===\n");
  std::printf("%-16s %-10s %-12s %-10s\n", "method", "accuracy",
              "mean_err_m", "max_err_m");

  eval::WorldConfig config;
  eval::ExperimentWorld world(config);

  const baseline::WifiFingerprinting wifi(world.fingerprintDb());
  baseline::HmmLocalizer hmm(world.fingerprintDb(), world.hall().graph);
  baseline::ParticleFilter particles(world.hall().plan,
                                     world.fingerprintDb());
  const baseline::KnnAveraging knn(world.hall().plan,
                                   world.fingerprintDb(), 3);
  auto engine = world.makeEngine();

  eval::ErrorStats wifiStats, hmmStats, molocStats, drStats, pfStats,
      knnStats;

  for (int t = 0; t < bench::kTestTraces; ++t) {
    const auto& user =
        world.users()[static_cast<std::size_t>(t) % world.users().size()];
    const auto trace =
        world.makeTrace(user, bench::kLegsPerTrace, world.evalRng());

    engine.reset();
    hmm.reset();
    particles.reset();
    baseline::DeadReckoning dr(world.hall().plan, world.fingerprintDb());

    auto record = [&world](env::LocationId estimated,
                           env::LocationId truth) {
      return eval::LocalizationRecord{
          estimated, truth, world.locationDistance(estimated, truth)};
    };

    const auto initialMoloc = engine.localize(trace.initialScan,
                                              std::nullopt);
    const auto initialWifi = wifi.localize(trace.initialScan);
    const auto initialHmm = hmm.update(trace.initialScan, std::nullopt);
    const auto initialPf = particles.update(trace.initialScan,
                                            std::nullopt);
    dr.initialize(trace.initialScan);
    pfStats.add(record(initialPf, trace.startTruth));
    knnStats.add(record(knn.localize(trace.initialScan), trace.startTruth));
    molocStats.add(record(initialMoloc.location, trace.startTruth));
    wifiStats.add(record(initialWifi, trace.startTruth));
    hmmStats.add(record(initialHmm, trace.startTruth));

    for (const auto& interval : trace.intervals) {
      const auto motion = world.processInterval(interval, user);

      const auto molocFix = engine.localize(interval.scanAtArrival,
                                            motion);
      molocStats.add(record(molocFix.location, interval.toTruth));

      wifiStats.add(
          record(wifi.localize(interval.scanAtArrival), interval.toTruth));

      const auto hmmFix = hmm.update(
          interval.scanAtArrival,
          motion ? std::optional<double>(motion->offsetMeters)
                 : std::nullopt);
      hmmStats.add(record(hmmFix, interval.toTruth));

      const auto pfFix = particles.update(interval.scanAtArrival, motion);
      pfStats.add(record(pfFix, interval.toTruth));

      knnStats.add(record(knn.localize(interval.scanAtArrival),
                          interval.toTruth));

      if (motion) {
        drStats.add(record(dr.update(*motion), interval.toTruth));
      }
    }
  }

  util::CsvWriter csv(bench::resultsDir() + "/ext_comparators.csv",
                      {"method", "accuracy", "mean_err_m", "max_err_m"});
  const struct {
    const char* name;
    const eval::ErrorStats* stats;
  } rows[] = {{"moloc", &molocStats},
              {"particle-filter", &pfStats},
              {"hmm", &hmmStats},
              {"knn-averaging", &knnStats},
              {"wifi", &wifiStats},
              {"dead-reckoning", &drStats}};
  for (const auto& row : rows) {
    std::printf("%-16s %-10.3f %-12.2f %-10.2f\n", row.name,
                row.stats->accuracy(), row.stats->meanError(),
                row.stats->maxError());
    csv.cell(row.name).cell(row.stats->accuracy())
        .cell(row.stats->meanError()).cell(row.stats->maxError()).endRow();
  }
  std::printf("\nexpected ordering: moloc > particle-filter/hmm > wifi; dead "
              "reckoning drifts over the walk.\n(knn-averaging scores low on "
              "*exact-location* accuracy by construction: averaging pulls\n"
              "the estimate off the grid, and between twins it lands in "
              "no-man's-land.)\n");
  std::printf("rows written to %s/ext_comparators.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
