// Reproduces Fig. 7: CDFs of overall localization error, MoLoc vs the
// WiFi fingerprinting baseline, with 4, 5 and 6 APs.  The paper reports
// average accuracies of 75/82/86 % for MoLoc vs 31/36/43 % for WiFi,
// a ~4 m reduction in maximum error, and (headline) a MoLoc mean error
// under 1 m.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Fig. 7: overall localization error, MoLoc vs WiFi "
              "===\n");
  std::printf("protocol: %d test walks x %d legs, users cycled\n\n",
              bench::kTestTraces, bench::kLegsPerTrace);

  for (int aps : {4, 5, 6}) {
    eval::WorldConfig config;
    config.apCount = aps;
    const auto run = bench::runPaired(config);

    std::printf("--- %d APs ---\n", aps);
    std::printf("  accuracy: moloc %.0f%%  wifi %.0f%%  (paper: "
                "%s)\n",
                run.moloc.accuracy() * 100.0, run.wifi.accuracy() * 100.0,
                aps == 4   ? "75% vs 31%"
                : aps == 5 ? "82% vs 36%"
                           : "86% vs 43%");
    std::printf("  mean error: moloc %.2f m  wifi %.2f m\n",
                run.moloc.meanError(), run.wifi.meanError());
    std::printf("  max error:  moloc %.2f m  wifi %.2f m\n",
                run.moloc.maxError(), run.wifi.maxError());
    bench::printCdf("moloc", run.moloc.cdf(10));
    bench::printCdf("wifi", run.wifi.cdf(10));

    bench::writeCdfCsv(bench::resultsDir() + "/fig7_overall_" +
                           std::to_string(aps) + "ap.csv",
                       run.moloc, run.wifi);
    std::printf("\n");
  }
  std::printf("series written to %s/fig7_overall_{4,5,6}ap.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
