// Ablation A2: Continuous vs Discrete Step Counting (Sec. IV.B.1).
// DSC drops the "odd time" before the first and after the last
// detected step; CSC recovers it as decimal steps.  This bench sweeps
// walk segments whose duration is not an integer number of gait cycles
// and reports the offset error of each method, then shows the
// end-to-end effect on localization accuracy.

#include <cmath>
#include <cstdio>

#include "bench/common.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/motion_processor.hpp"
#include "util/stats.hpp"

namespace {

using namespace moloc;

/// Offset errors of one counting mode over odd-duration segments.
util::RunningStats offsetErrors(sensors::StepCountingMode mode) {
  sensors::MotionProcessorParams params;
  params.mode = mode;
  const sensors::MotionProcessor processor(params);

  const double stepLength = 0.72;
  const double cadence = 1.8;
  const double rate = 50.0;

  util::RunningStats errors;
  util::Rng rng(99);
  // Durations sweeping the fractional part of the gait cycle.
  for (double duration = 2.0; duration <= 5.0; duration += 0.13) {
    sensors::AccelerometerModel accel;
    const auto count = static_cast<std::size_t>(duration * rate);
    const auto accelSeries = accel.walkingSamples(count, cadence, rng);
    sensors::ImuTrace trace(rate);
    for (std::size_t i = 0; i < count; ++i)
      trace.append({static_cast<double>(i) / rate, accelSeries[i], 90.0});

    const auto motion = processor.process(trace, stepLength);
    if (!motion) continue;
    const double trueOffset = duration * cadence * stepLength;
    errors.add(std::abs(motion->offsetMeters - trueOffset));
  }
  return errors;
}

}  // namespace

int main() {
  std::printf("=== Ablation A2: CSC vs DSC step counting ===\n\n");

  const auto dsc = offsetErrors(sensors::StepCountingMode::kDiscrete);
  const auto csc = offsetErrors(sensors::StepCountingMode::kContinuous);

  std::printf("offset error over %zu odd-duration segments [m]:\n",
              dsc.count());
  std::printf("  DSC: mean %.3f  max %.3f\n", dsc.mean(), dsc.max());
  std::printf("  CSC: mean %.3f  max %.3f\n", csc.mean(), csc.max());
  std::printf("  (paper: DSC may lose one or two steps per interval; "
              "a step is ~0.7 m)\n\n");

  // End-to-end: localization accuracy with each counting mode.
  std::printf("end-to-end localization (6 APs):\n");
  util::CsvWriter csv(bench::resultsDir() + "/ablation_csc_dsc.csv",
                      {"mode", "offset_mean_err_m", "offset_max_err_m",
                       "accuracy", "mean_err_m"});
  for (const auto mode : {sensors::StepCountingMode::kDiscrete,
                          sensors::StepCountingMode::kContinuous}) {
    eval::WorldConfig config;
    config.motionProc.mode = mode;
    const auto run = bench::runPaired(config);
    const char* name =
        mode == sensors::StepCountingMode::kDiscrete ? "DSC" : "CSC";
    std::printf("  %s: accuracy %.3f  mean error %.2f m\n", name,
                run.moloc.accuracy(), run.moloc.meanError());
    const auto& offsets =
        mode == sensors::StepCountingMode::kDiscrete ? dsc : csc;
    csv.cell(name).cell(offsets.mean()).cell(offsets.max())
        .cell(run.moloc.accuracy()).cell(run.moloc.meanError()).endRow();
  }
  std::printf("rows written to %s/ablation_csc_dsc.csv\n",
              moloc::bench::resultsDir().c_str());
  return 0;
}
