// Extension E4: map-aided compass calibration.  The paper assumes a
// Zee front end removes the phone-placement heading offset; this bench
// asks what happens without one — a cohort whose phones carry a
// constant placement bias — and whether the CompassCalibrator fallback
// (estimating each user's bias from map-adjacent training legs)
// restores MoLoc's accuracy.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Extension E4: map-aided compass calibration "
              "(6 APs) ===\n");
  std::printf("%-14s %-14s %-12s %-10s %-12s\n", "placement", "calibration",
              "est_bias", "accuracy", "mean_err_m");

  util::CsvWriter csv(bench::resultsDir() + "/ext_calibration.csv",
                      {"placement_bias_deg", "calibrated",
                       "estimated_bias_deg", "accuracy", "mean_err_m"});

  for (double bias : {0.0, 10.0, 20.0, 30.0}) {
    for (bool calibrate : {false, true}) {
      eval::WorldConfig config;
      config.userPlacementBiasDeg = bias;
      config.calibrateCompass = calibrate;
      eval::ExperimentWorld world(config);

      eval::ErrorStats moloc;
      for (const auto& outcome : eval::runComparison(
               world, bench::kTestTraces, bench::kLegsPerTrace))
        moloc.addAll(outcome.moloc);

      // Mean estimated correction across the cohort (0 when off).
      double estBias = 0.0;
      for (const auto& user : world.users())
        estBias += world.compassBiasCorrectionDeg(user);
      estBias /= static_cast<double>(world.users().size());

      std::printf("%-14.0f %-14s %-12.1f %-10.3f %-12.2f\n", bias,
                  calibrate ? "on" : "off", estBias, moloc.accuracy(),
                  moloc.meanError());
      csv.cell(bias).cell(calibrate ? 1 : 0).cell(estBias)
          .cell(moloc.accuracy()).cell(moloc.meanError()).endRow();
    }
  }
  std::printf("\nexpected: without calibration accuracy collapses as "
              "the placement bias\napproaches the coarse filter's "
              "20-degree gate; with calibration it is restored.\n");
  std::printf("rows written to %s/ext_calibration.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
