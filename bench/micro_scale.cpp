// Scaling benchmark of the tiered candidate index against the exact
// full-scan kernel, swept across generated campus venues (worldgen
// presets campus-1k .. campus-64k).  For each venue size it measures
// per-query latency of FingerprintDatabase::queryInto (exact AVX2
// full scan) and TieredIndex::queryInto (bit-sliced prefilter +
// exact re-rank), verifies the two return bitwise-identical matches,
// and audits prefilter recall with a separate exhaustive-check pass
// outside the timed region.
//
// Output: paper-style rows on stdout plus the machine-readable sweep
// as bench_results/BENCH_micro_scale.json (schema in
// docs/performance.md) so the index's scaling curve is tracked as a
// perf trajectory across commits.
//
// Modes: the no-arg default sweeps 1k/4k/16k (bounded for the CI step
// that runs every bench binary); --full adds the 64k venue the
// acceptance numbers quote; --smoke is the minimal perf-smoke run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "index/tiered_index.hpp"
#include "kernel/fingerprint_kernel.hpp"
#include "radio/fingerprint_database.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "worldgen/generated_venue.hpp"
#include "worldgen/venue_spec.hpp"

namespace {

using namespace moloc;

constexpr std::size_t kTopK = 8;

double secondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool matchesBitwise(const std::vector<radio::Match>& a,
                    const std::vector<radio::Match>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].location != b[i].location ||
        a[i].dissimilarity != b[i].dissimilarity ||
        a[i].probability != b[i].probability)
      return false;
  return true;
}

struct SizeResult {
  std::size_t locations = 0;
  std::size_t apCount = 0;
  std::size_t shardCount = 0;
  double indexBuildSeconds = 0.0;
  bench::LatencySummary exact;
  bench::LatencySummary tiered;
  double shortlistMean = 0.0;
  double scannedEntriesMean = 0.0;
  double recall = 0.0;
  double speedupBest = 0.0;
};

SizeResult runSize(std::size_t locations, std::size_t queryCount) {
  worldgen::VenueSpec spec = worldgen::venueSpecForLocations(locations);
  const worldgen::GeneratedVenue venue(spec);
  const std::shared_ptr<const radio::FingerprintDatabase> db =
      venue.sharedFingerprints();

  SizeResult result;
  result.locations = venue.locationCount();
  result.apCount = venue.apCount();

  index::IndexConfig config;
  const auto buildStart = std::chrono::steady_clock::now();
  const index::TieredIndex index(db, config, venue.shardStarts());
  result.indexBuildSeconds = secondsSince(buildStart);
  result.shardCount = index.shardCount();

  // Pre-generate the query stream: serving-epoch scans at random
  // locations, identical across the exact and tiered passes.
  util::Rng rng(spec.seed * 7919 + locations);
  std::vector<radio::Fingerprint> queries;
  queries.reserve(queryCount);
  for (std::size_t q = 0; q < queryCount; ++q) {
    const auto loc = static_cast<env::LocationId>(
        rng.uniformIndex(venue.locationCount()));
    queries.push_back(venue.scanAt(loc, 0.0, rng));
  }

  std::vector<radio::Match> exactOut;
  std::vector<radio::Match> tieredOut;
  // Warm both paths (page-in, thread-local workspace growth) before
  // the timed samples.
  db->queryInto(queries.front(), kTopK, exactOut);
  index.queryInto(queries.front(), kTopK, tieredOut);

  std::vector<double> exactNs;
  std::vector<double> tieredNs;
  exactNs.reserve(queryCount);
  tieredNs.reserve(queryCount);
  double shortlistSum = 0.0;
  double scannedSum = 0.0;
  for (const radio::Fingerprint& query : queries) {
    auto start = std::chrono::steady_clock::now();
    db->queryInto(query, kTopK, exactOut);
    exactNs.push_back(secondsSince(start) * 1e9);

    index::QueryStats stats;
    start = std::chrono::steady_clock::now();
    index.queryInto(query, kTopK, tieredOut, &stats);
    tieredNs.push_back(secondsSince(start) * 1e9);
    shortlistSum += static_cast<double>(stats.shortlistSize);
    scannedSum += static_cast<double>(stats.scannedEntries);

    if (!matchesBitwise(exactOut, tieredOut)) {
      std::fprintf(stderr,
                   "FAIL: tiered matches differ from the exact scan "
                   "(locations=%zu)\n",
                   result.locations);
      std::exit(EXIT_FAILURE);
    }
  }
  result.exact = bench::summarizeNs(std::move(exactNs));
  result.tiered = bench::summarizeNs(std::move(tieredNs));
  const auto n = static_cast<double>(queryCount);
  result.shortlistMean = shortlistSum / n;
  result.scannedEntriesMean = scannedSum / n;
  result.speedupBest = result.tiered.bestNs > 0.0
                           ? result.exact.bestNs / result.tiered.bestNs
                           : 0.0;

  // Recall audit outside the timed region: the exhaustive-check index
  // full-scans every query and counts true top-k rows the shortlist
  // dropped (and throws, which we tally rather than propagate).
  index::IndexConfig auditConfig = config;
  auditConfig.exhaustiveCheck = true;
  const index::TieredIndex audit(db, auditConfig, venue.shardStarts());
  std::size_t missed = 0;
  for (const radio::Fingerprint& query : queries) {
    index::QueryStats stats;
    try {
      audit.queryInto(query, kTopK, tieredOut, &stats);
    } catch (const std::logic_error&) {
      // stats.missedTopK was populated before the throw.
    }
    missed += stats.missedTopK;
  }
  result.recall =
      1.0 - static_cast<double>(missed) /
                (static_cast<double>(queryCount) * kTopK);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(
      "Tiered-index scaling sweep over generated campus venues "
      "(emits bench_results/BENCH_micro_scale.json)");
  args.addSwitch("smoke", "minimal fast run for CI (1k/4k venues)");
  args.addSwitch("full",
                 "full acceptance sweep including the 64k venue");
  try {
    if (!args.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_scale: %s\n%s", e.what(),
                 args.usage().c_str());
    return 2;
  }
  const bool smoke = args.getSwitch("smoke");
  const bool full = args.getSwitch("full");

  std::vector<std::size_t> sizes{1024, 4096};
  if (!smoke) sizes.push_back(16384);
  if (full) sizes.push_back(65536);
  const std::size_t queryCount =
      moloc::bench::envRounds(smoke ? 12 : (full ? 48 : 32));

  std::printf("Tiered index vs exact scan (k=%zu, %zu queries/size,"
              " simd=%s)\n",
              kTopK, queryCount,
              kernel::simdLevelName(kernel::activeSimdLevel()));
  std::printf("  %9s %5s %7s %12s %12s %9s %10s %7s\n", "locations",
              "aps", "shards", "exact_ns", "tiered_ns", "speedup",
              "shortlist", "recall");

  std::vector<SizeResult> results;
  for (const std::size_t locations : sizes) {
    results.push_back(runSize(locations, queryCount));
    const SizeResult& r = results.back();
    std::printf("  %9zu %5zu %7zu %12.0f %12.0f %8.2fx %10.1f %7.4f\n",
                r.locations, r.apCount, r.shardCount, r.exact.bestNs,
                r.tiered.bestNs, r.speedupBest, r.shortlistMean,
                r.recall);
  }
  std::printf("  determinism: tiered matches bitwise-identical to the"
              " exact scan at every size\n");

  bench::JsonWriter json;
  json.beginObject()
      .field("bench", "micro_scale")
      .field("schema_version", 1.0);
  json.beginObject("config")
      .field("k", static_cast<double>(kTopK))
      .field("queries", static_cast<double>(queryCount))
      .field("smoke", smoke)
      .field("full", full)
      .field("simd_compiled", static_cast<bool>(MOLOC_SIMD_ENABLED))
      .field("simd_active",
             kernel::simdLevelName(kernel::activeSimdLevel()))
      .endObject();
  json.beginArray("sweep");
  for (const SizeResult& r : results) {
    json.beginObject()
        .field("locations", static_cast<double>(r.locations))
        .field("ap_count", static_cast<double>(r.apCount))
        .field("shard_count", static_cast<double>(r.shardCount))
        .field("index_build_seconds", r.indexBuildSeconds)
        .field("shortlist_mean", r.shortlistMean)
        .field("scanned_entries_mean", r.scannedEntriesMean)
        .field("recall", r.recall)
        .field("speedup_best", r.speedupBest);
    json.beginArray("variants");
    bench::writeVariant(json, "exact_scan", r.exact);
    bench::writeVariant(json, "tiered_index", r.tiered);
    json.endArray();
    json.endObject();
  }
  json.endArray();

  // Flat scaling summary: measured cost growth smallest -> largest
  // venue, so CI (and the perf trajectory) can assert sublinearity
  // without walking the sweep array.
  {
    const SizeResult& lo = results.front();
    const SizeResult& hi = results.back();
    const double sizeRatio = static_cast<double>(hi.locations) /
                             static_cast<double>(lo.locations);
    const double exactRatio =
        lo.exact.bestNs > 0.0 ? hi.exact.bestNs / lo.exact.bestNs : 0.0;
    const double tieredRatio = lo.tiered.bestNs > 0.0
                                   ? hi.tiered.bestNs / lo.tiered.bestNs
                                   : 0.0;
    json.beginObject("scaling")
        .field("size_ratio", sizeRatio)
        .field("exact_cost_ratio", exactRatio)
        .field("tiered_cost_ratio", tieredRatio)
        .field("tiered_sublinear",
               tieredRatio > 0.0 && tieredRatio < sizeRatio)
        .field("speedup_at_max", results.back().speedupBest)
        .endObject();
    std::printf("  scaling %zu -> %zu: exact %.1fx cost, tiered %.1fx"
                " cost (size %.0fx)\n",
                lo.locations, hi.locations, exactRatio, tieredRatio,
                sizeRatio);
  }
  json.field("determinism_bitwise", true).endObject();

  const std::string jsonPath =
      moloc::bench::resultsDir() + "/BENCH_micro_scale.json";
  if (json.writeTo(jsonPath))
    std::printf("  perf trajectory: %s\n", jsonPath.c_str());
  return EXIT_SUCCESS;
}
