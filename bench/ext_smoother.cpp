// Extension E5: offline trace smoothing.  The causal engine pays an
// EL penalty after an erroneous initial fix (Table I); a server that
// sees the whole walk can run Viterbi over the same fingerprint and
// motion models and fix early errors retroactively.  This bench
// measures how much of Table I's EL the offline pass recovers.

#include <cstdio>

#include "bench/common.hpp"
#include "core/trace_smoother.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Extension E5: online engine vs offline Viterbi "
              "smoothing ===\n");
  std::printf("%-6s %-14s %-14s %-16s %-16s\n", "APs", "online_acc",
              "offline_acc", "online_initacc", "offline_initacc");

  util::CsvWriter csv(bench::resultsDir() + "/ext_smoother.csv",
                      {"aps", "online_accuracy", "offline_accuracy",
                       "online_initial_accuracy",
                       "offline_initial_accuracy"});

  for (int aps : {4, 5, 6}) {
    eval::WorldConfig config;
    config.apCount = aps;
    eval::ExperimentWorld world(config);
    const core::TraceSmoother smoother(world.fingerprintDb(),
                                       world.motionDb(), config.moloc);
    auto engine = world.makeEngine();

    eval::ErrorStats online;
    eval::ErrorStats offline;
    int initialTotal = 0;
    int onlineInitialCorrect = 0;
    int offlineInitialCorrect = 0;

    for (int t = 0; t < bench::kTestTraces; ++t) {
      const auto& user = world.users()[static_cast<std::size_t>(t) %
                                       world.users().size()];
      const auto trace =
          world.makeTrace(user, bench::kLegsPerTrace, world.evalRng());

      std::vector<radio::Fingerprint> scans{trace.initialScan};
      std::vector<std::optional<sensors::MotionMeasurement>> motions;
      std::vector<env::LocationId> truth{trace.startTruth};
      for (const auto& interval : trace.intervals) {
        scans.push_back(interval.scanAtArrival);
        motions.push_back(world.processInterval(interval, user));
        truth.push_back(interval.toTruth);
      }

      engine.reset();
      std::vector<env::LocationId> onlinePath;
      onlinePath.push_back(
          engine.localize(scans[0], std::nullopt).location);
      for (std::size_t s = 1; s < scans.size(); ++s)
        onlinePath.push_back(
            engine.localize(scans[s], motions[s - 1]).location);

      const auto offlinePath = smoother.smooth(scans, motions);

      for (std::size_t s = 0; s < truth.size(); ++s) {
        online.add({onlinePath[s], truth[s],
                    world.locationDistance(onlinePath[s], truth[s])});
        offline.add({offlinePath[s], truth[s],
                     world.locationDistance(offlinePath[s], truth[s])});
      }
      ++initialTotal;
      if (onlinePath[0] == truth[0]) ++onlineInitialCorrect;
      if (offlinePath[0] == truth[0]) ++offlineInitialCorrect;
    }

    const double onlineInit =
        static_cast<double>(onlineInitialCorrect) / initialTotal;
    const double offlineInit =
        static_cast<double>(offlineInitialCorrect) / initialTotal;
    std::printf("%-6d %-14.3f %-14.3f %-16.3f %-16.3f\n", aps,
                online.accuracy(), offline.accuracy(), onlineInit,
                offlineInit);
    csv.cell(aps).cell(online.accuracy()).cell(offline.accuracy())
        .cell(onlineInit).cell(offlineInit).endRow();
  }
  std::printf("\n(initacc = accuracy of the *first* fix of each walk — "
              "the fix the causal engine\ncannot help and the offline "
              "pass corrects retroactively.)\n");
  std::printf("rows written to %s/ext_smoother.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
