// Ablation A5: radio-map staleness.  The paper's motivation names
// "temporal variations of wireless signals" as a root cause of
// fingerprint ambiguity; this sweep ages the radio map with a
// serving-time drift field and shows MoLoc degrading far more
// gracefully than memoryless fingerprinting.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Ablation A5: radio-map staleness (6 APs) ===\n");
  std::printf("%-12s %-12s %-12s %-12s %-12s\n", "drift_dB",
              "moloc_acc", "wifi_acc", "moloc_mean", "wifi_mean");

  util::CsvWriter csv(bench::resultsDir() + "/ablation_drift.csv",
                      {"drift_db", "moloc_accuracy", "wifi_accuracy",
                       "moloc_mean_err_m", "wifi_mean_err_m"});

  for (double drift : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    eval::WorldConfig config;
    config.propagation.driftSigmaDb = drift;
    const auto run = bench::runPaired(config);
    std::printf("%-12.1f %-12.3f %-12.3f %-12.2f %-12.2f\n", drift,
                run.moloc.accuracy(), run.wifi.accuracy(),
                run.moloc.meanError(), run.wifi.meanError());
    csv.cell(drift).cell(run.moloc.accuracy()).cell(run.wifi.accuracy())
        .cell(run.moloc.meanError()).cell(run.wifi.meanError()).endRow();
  }
  std::printf("rows written to %s/ablation_drift.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
