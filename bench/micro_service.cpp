// Throughput benchmark of the concurrent serving layer: aggregate
// queries/sec of LocalizationService::localizeBatch over the paper's
// office-hall world, swept across thread-pool sizes.  Each query is
// the full phone-side round (motion processing over a 3 s IMU trace +
// one engine round), so the numbers reflect the deployed hot path.
//
// Also cross-checks the service's determinism contract: every thread
// count must reproduce the single-thread results bitwise.
//
// Each run carries its own private MetricsRegistry, so the per-scan
// latency percentiles come from the same instrumentation production
// scrapes (see docs/observability.md) — which doubles as an
// end-to-end check that the observability layer measures what the
// benchmark measures.
//
// Output: paper-style rows plus a p50/p95/p99 latency table on
// stdout, bench_results/micro_service.csv (threads,queries,seconds,
// qps,speedup,p50_ms,p95_ms,p99_ms), the machine-readable sweep as
// bench_results/BENCH_micro_service.json (schema in
// docs/performance.md), and the final run's registry rendered to
// bench_results/micro_service_metrics.prom.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "kernel/fingerprint_kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/compass_model.hpp"
#include "service/localization_service.hpp"

namespace {

using namespace moloc;

constexpr std::size_t kSessions = 64;
constexpr std::size_t kImuSamples = 150;  // 3 s at 50 Hz.

/// Rounds per session; MOLOC_BENCH_ROUNDS overrides the default for
/// longer (less scheduler-noise-prone) measurements, e.g. when
/// comparing MOLOC_METRICS=ON vs OFF builds.
std::size_t roundsPerSession() {
  static const std::size_t rounds = moloc::bench::envRounds(20);
  return rounds;
}

/// One session's pre-generated scan sequence (first round has an empty
/// IMU trace — the first fix of a walk).
struct SessionWorkload {
  std::vector<radio::Fingerprint> scans;
  std::vector<sensors::ImuTrace> imu;
};

std::vector<SessionWorkload> makeWorkload(const eval::ExperimentWorld& world) {
  std::vector<SessionWorkload> sessions(kSessions);
  sensors::AccelerometerModel accel;
  sensors::CompassModel compass;
  for (std::size_t s = 0; s < kSessions; ++s) {
    util::Rng rng(1000 + s);
    auto& session = sessions[s];
    for (std::size_t r = 0; r < roundsPerSession(); ++r) {
      const double x = rng.uniform(2.0, 38.0);
      const double y = rng.uniform(2.0, 14.0);
      const double heading = rng.uniform(0.0, 360.0);
      session.scans.push_back(world.radio().scan({x, y}, heading, rng));
      sensors::ImuTrace trace(50.0);
      if (r > 0) {
        const auto accelSeries =
            accel.walkingSamples(kImuSamples, 1.8, rng);
        const auto compassSeries =
            compass.readings(heading, 0.0, kImuSamples, rng);
        for (std::size_t i = 0; i < kImuSamples; ++i)
          trace.append({i / 50.0, accelSeries[i], compassSeries[i]});
      }
      session.imu.push_back(std::move(trace));
    }
  }
  return sessions;
}

struct RunResult {
  double seconds = 0.0;
  std::vector<core::LocationEstimate> estimates;  // Round-major.
  // Per-scan latency percentiles from the service's own histogram
  // (milliseconds); negative when the build has metrics compiled out.
  double p50Ms = -1.0;
  double p95Ms = -1.0;
  double p99Ms = -1.0;
  std::string promText;  ///< Rendered registry snapshot.
};

RunResult runAtThreadCount(const eval::ExperimentWorld& world,
                           const std::vector<SessionWorkload>& workload,
                           std::size_t threads) {
  // A registry per run isolates each sweep point's series.
  obs::MetricsRegistry registry;
  service::ServiceConfig config;
  config.threadCount = threads;
  config.shardCount = 32;
  config.engine = world.config().moloc;
  config.motion = world.config().motionProc;
  config.metrics = &registry;
  service::LocalizationService svc(world.fingerprintDb(),
                                   world.motionDb(), config);

  RunResult result;
  result.estimates.reserve(kSessions * roundsPerSession());
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < roundsPerSession(); ++r) {
    std::vector<service::ScanRequest> batch;
    batch.reserve(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s)
      batch.push_back({static_cast<service::SessionId>(s),
                       workload[s].scans[r], workload[s].imu[r]});
    auto estimates = svc.localizeBatch(batch);
    for (auto& e : estimates) result.estimates.push_back(std::move(e));
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  if (const obs::Histogram* latency = registry.findHistogram(
          "moloc_service_scan_latency_seconds")) {
    result.p50Ms = latency->quantile(0.50) * 1e3;
    result.p95Ms = latency->quantile(0.95) * 1e3;
    result.p99Ms = latency->quantile(0.99) * 1e3;
  }
  result.promText = obs::renderPrometheus(registry);
  return result;
}

bool bitwiseEqual(const std::vector<core::LocationEstimate>& a,
                  const std::vector<core::LocationEstimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].location != b[i].location ||
        a[i].probability != b[i].probability ||
        a[i].candidates.size() != b[i].candidates.size())
      return false;
    for (std::size_t c = 0; c < a[i].candidates.size(); ++c)
      if (a[i].candidates[c].location != b[i].candidates[c].location ||
          a[i].candidates[c].probability != b[i].candidates[c].probability)
        return false;
  }
  return true;
}

}  // namespace

int main() {
  eval::ExperimentWorld world{eval::WorldConfig{}};
  const auto workload = makeWorkload(world);
  const std::size_t queries = kSessions * roundsPerSession();

  std::printf("LocalizationService throughput (%zu sessions x %zu rounds"
              " = %zu queries; hardware_concurrency=%u)\n",
              kSessions, roundsPerSession(), queries,
              std::thread::hardware_concurrency());
  if (!MOLOC_METRICS_ENABLED)
    std::printf("  note: built with MOLOC_METRICS=OFF — latency"
                " percentiles unavailable\n");

  util::CsvWriter csv(moloc::bench::resultsDir() + "/micro_service.csv",
                      {"threads", "queries", "seconds", "qps",
                       "speedup_vs_1", "p50_ms", "p95_ms", "p99_ms"});

  struct Row {
    std::size_t threads;
    RunResult run;
  };
  std::vector<Row> rows;
  RunResult baseline;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto run = runAtThreadCount(world, workload, threads);
    if (threads == 1) {
      baseline = run;
    } else if (!bitwiseEqual(run.estimates, baseline.estimates)) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread results differ from serial\n",
                   threads);
      return EXIT_FAILURE;
    }
    // Guarded: a sub-resolution run must emit 0, not inf, so the
    // BENCH_*.json stays schema-clean (finite numbers or null only).
    const double qps = run.seconds > 0.0
                           ? static_cast<double>(queries) / run.seconds
                           : 0.0;
    const double speedup = baseline.seconds > 0.0 && run.seconds > 0.0
                               ? baseline.seconds / run.seconds
                               : 0.0;
    std::printf("  threads=%2zu  %8.0f queries/sec  (%.3f s, %.2fx)\n",
                threads, qps, run.seconds, speedup);
    csv.cell(threads).cell(queries).cell(run.seconds).cell(qps)
        .cell(speedup).cell(run.p50Ms).cell(run.p95Ms).cell(run.p99Ms)
        .endRow();
    rows.push_back({threads, std::move(run)});
  }
  std::printf("  determinism: all thread counts bitwise-identical to"
              " serial\n");

  // Machine-readable sweep snapshot for the perf trajectory.
  {
    bench::JsonWriter json;
    json.beginObject()
        .field("bench", "micro_service")
        .field("schema_version", 1.0);
    json.beginObject("config")
        .field("sessions", static_cast<double>(kSessions))
        .field("rounds", static_cast<double>(roundsPerSession()))
        .field("queries", static_cast<double>(queries))
        .field("shards", 32.0)
        .field("simd_compiled", static_cast<bool>(MOLOC_SIMD_ENABLED))
        .field("simd_active",
               kernel::simdLevelName(kernel::activeSimdLevel()))
        .field("metrics_compiled",
               static_cast<bool>(MOLOC_METRICS_ENABLED))
        .field("hardware_concurrency",
               static_cast<double>(std::thread::hardware_concurrency()))
        .endObject();
    const auto qpsOf = [queries](const RunResult& run) {
      return run.seconds > 0.0
                 ? static_cast<double>(queries) / run.seconds
                 : 0.0;
    };
    const auto speedupOf = [&baseline](const RunResult& run) {
      return baseline.seconds > 0.0 && run.seconds > 0.0
                 ? baseline.seconds / run.seconds
                 : 0.0;
    };
    json.beginArray("sweep");
    for (const auto& row : rows) {
      json.beginObject()
          .field("threads", static_cast<double>(row.threads))
          .field("seconds", row.run.seconds)
          .field("qps", qpsOf(row.run))
          .field("speedup_vs_1", speedupOf(row.run))
          .field("p50_ms", row.run.p50Ms)
          .field("p95_ms", row.run.p95Ms)
          .field("p99_ms", row.run.p99Ms)
          .endObject();
    }
    json.endArray();
    // Flat scaling summary so CI (and the perf trajectory) can assert
    // multi-thread speedups without walking the sweep array.
    {
      json.beginObject("scaling").field("baseline_threads", 1.0);
      double maxSpeedup = 0.0;
      std::size_t maxThreads = 1;
      for (const auto& row : rows) {
        const std::string prefix =
            "threads_" + std::to_string(row.threads);
        json.field((prefix + "_qps").c_str(), qpsOf(row.run));
        json.field((prefix + "_speedup_vs_1").c_str(),
                   speedupOf(row.run));
        if (speedupOf(row.run) > maxSpeedup) {
          maxSpeedup = speedupOf(row.run);
          maxThreads = row.threads;
        }
      }
      json.field("max_speedup", maxSpeedup)
          .field("max_speedup_threads", static_cast<double>(maxThreads))
          .endObject();
    }
    json.field("determinism_bitwise", true).endObject();
    const std::string jsonPath =
        moloc::bench::resultsDir() + "/BENCH_micro_service.json";
    if (json.writeTo(jsonPath))
      std::printf("  perf trajectory: %s\n", jsonPath.c_str());
  }

  if (!rows.empty() && rows.front().run.p50Ms >= 0.0) {
    std::printf("\nPer-scan latency from moloc_service_scan_latency_"
                "seconds (ms):\n");
    std::printf("  %7s  %8s  %8s  %8s\n", "threads", "p50", "p95",
                "p99");
    for (const auto& row : rows)
      std::printf("  %7zu  %8.3f  %8.3f  %8.3f\n", row.threads,
                  row.run.p50Ms, row.run.p95Ms, row.run.p99Ms);
  }

  const std::string promPath =
      moloc::bench::resultsDir() + "/micro_service_metrics.prom";
  // The last sweep point's full registry (service + pool + engine
  // series), as a production scrape would see it.
  if (!rows.empty() && !rows.back().run.promText.empty()) {
    std::FILE* file = std::fopen(promPath.c_str(), "w");
    if (file) {
      std::fputs(rows.back().run.promText.c_str(), file);
      std::fclose(file);
      std::printf("\nregistry snapshot (threads=%zu run): %s\n",
                  rows.back().threads, promPath.c_str());
    }
  }
  return EXIT_SUCCESS;
}
