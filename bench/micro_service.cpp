// Throughput benchmark of the concurrent serving layer: aggregate
// queries/sec of LocalizationService::localizeBatch over the paper's
// office-hall world, swept across thread-pool sizes.  Each query is
// the full phone-side round (motion processing over a 3 s IMU trace +
// one engine round), so the numbers reflect the deployed hot path.
//
// Also cross-checks the service's determinism contract: every thread
// count must reproduce the single-thread results bitwise.
//
// Output: paper-style rows on stdout and
// bench_results/micro_service.csv (threads,queries,seconds,qps,speedup).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "sensors/accelerometer_model.hpp"
#include "sensors/compass_model.hpp"
#include "service/localization_service.hpp"

namespace {

using namespace moloc;

constexpr std::size_t kSessions = 64;
constexpr std::size_t kRounds = 20;
constexpr std::size_t kImuSamples = 150;  // 3 s at 50 Hz.

/// One session's pre-generated scan sequence (first round has an empty
/// IMU trace — the first fix of a walk).
struct SessionWorkload {
  std::vector<radio::Fingerprint> scans;
  std::vector<sensors::ImuTrace> imu;
};

std::vector<SessionWorkload> makeWorkload(const eval::ExperimentWorld& world) {
  std::vector<SessionWorkload> sessions(kSessions);
  sensors::AccelerometerModel accel;
  sensors::CompassModel compass;
  for (std::size_t s = 0; s < kSessions; ++s) {
    util::Rng rng(1000 + s);
    auto& session = sessions[s];
    for (std::size_t r = 0; r < kRounds; ++r) {
      const double x = rng.uniform(2.0, 38.0);
      const double y = rng.uniform(2.0, 14.0);
      const double heading = rng.uniform(0.0, 360.0);
      session.scans.push_back(world.radio().scan({x, y}, heading, rng));
      sensors::ImuTrace trace(50.0);
      if (r > 0) {
        const auto accelSeries =
            accel.walkingSamples(kImuSamples, 1.8, rng);
        const auto compassSeries =
            compass.readings(heading, 0.0, kImuSamples, rng);
        for (std::size_t i = 0; i < kImuSamples; ++i)
          trace.append({i / 50.0, accelSeries[i], compassSeries[i]});
      }
      session.imu.push_back(std::move(trace));
    }
  }
  return sessions;
}

struct RunResult {
  double seconds = 0.0;
  std::vector<core::LocationEstimate> estimates;  // Round-major.
};

RunResult runAtThreadCount(const eval::ExperimentWorld& world,
                           const std::vector<SessionWorkload>& workload,
                           std::size_t threads) {
  service::ServiceConfig config;
  config.threadCount = threads;
  config.shardCount = 32;
  config.engine = world.config().moloc;
  config.motion = world.config().motionProc;
  service::LocalizationService svc(world.fingerprintDb(),
                                   world.motionDb(), config);

  RunResult result;
  result.estimates.reserve(kSessions * kRounds);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < kRounds; ++r) {
    std::vector<service::ScanRequest> batch;
    batch.reserve(kSessions);
    for (std::size_t s = 0; s < kSessions; ++s)
      batch.push_back({static_cast<service::SessionId>(s),
                       workload[s].scans[r], workload[s].imu[r]});
    auto estimates = svc.localizeBatch(batch);
    for (auto& e : estimates) result.estimates.push_back(std::move(e));
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

bool bitwiseEqual(const std::vector<core::LocationEstimate>& a,
                  const std::vector<core::LocationEstimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].location != b[i].location ||
        a[i].probability != b[i].probability ||
        a[i].candidates.size() != b[i].candidates.size())
      return false;
    for (std::size_t c = 0; c < a[i].candidates.size(); ++c)
      if (a[i].candidates[c].location != b[i].candidates[c].location ||
          a[i].candidates[c].probability != b[i].candidates[c].probability)
        return false;
  }
  return true;
}

}  // namespace

int main() {
  eval::ExperimentWorld world{eval::WorldConfig{}};
  const auto workload = makeWorkload(world);
  const std::size_t queries = kSessions * kRounds;

  std::printf("LocalizationService throughput (%zu sessions x %zu rounds"
              " = %zu queries; hardware_concurrency=%u)\n",
              kSessions, kRounds, queries,
              std::thread::hardware_concurrency());

  util::CsvWriter csv(moloc::bench::resultsDir() + "/micro_service.csv",
                      {"threads", "queries", "seconds", "qps",
                       "speedup_vs_1"});

  RunResult baseline;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto run = runAtThreadCount(world, workload, threads);
    if (threads == 1) {
      baseline = run;
    } else if (!bitwiseEqual(run.estimates, baseline.estimates)) {
      std::fprintf(stderr,
                   "FAIL: %zu-thread results differ from serial\n",
                   threads);
      return EXIT_FAILURE;
    }
    const double qps = static_cast<double>(queries) / run.seconds;
    const double speedup =
        baseline.seconds > 0.0 ? baseline.seconds / run.seconds : 0.0;
    std::printf("  threads=%2zu  %8.0f queries/sec  (%.3f s, %.2fx)\n",
                threads, qps, run.seconds, speedup);
    csv.cell(threads).cell(queries).cell(run.seconds).cell(qps)
        .cell(speedup).endRow();
  }
  std::printf("  determinism: all thread counts bitwise-identical to"
              " serial\n");
  return EXIT_SUCCESS;
}
