// Robustness: the headline comparison across independent seeds.  Every
// figure in EXPERIMENTS.md reports seed 42; this bench re-runs the
// 6-AP evaluation over several seeds (fresh shadowing field, survey,
// training, and test walks each time) and reports across-seed means,
// spreads, and bootstrap confidence intervals — evidence the shape is
// a property of the system, not of one lucky world.

#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Robustness across seeds (6 APs, %d test walks "
              "each) ===\n",
              bench::kTestTraces);
  std::printf("%-8s %-12s %-12s %-14s %-14s\n", "seed", "moloc_acc",
              "wifi_acc", "moloc_mean_m", "wifi_mean_m");

  util::CsvWriter csv(bench::resultsDir() + "/robustness_seeds.csv",
                      {"seed", "moloc_accuracy", "wifi_accuracy",
                       "moloc_mean_err_m", "wifi_mean_err_m"});

  std::vector<double> molocAcc, wifiAcc, molocMean, wifiMean;
  for (std::uint64_t seed : {42u, 7u, 1234u, 2013u, 31337u, 555u, 90210u,
                             100u}) {
    eval::WorldConfig config;
    config.seed = seed;
    // Vary the shadowing realization with the seed as well, so every
    // run inhabits a genuinely different building.
    config.propagation.shadowingSeed = seed * 0x9e3779b9ULL + 1;
    const auto run = bench::runPaired(config);
    std::printf("%-8llu %-12.3f %-12.3f %-14.2f %-14.2f\n",
                static_cast<unsigned long long>(seed),
                run.moloc.accuracy(), run.wifi.accuracy(),
                run.moloc.meanError(), run.wifi.meanError());
    csv.cell(static_cast<std::size_t>(seed)).cell(run.moloc.accuracy())
        .cell(run.wifi.accuracy()).cell(run.moloc.meanError())
        .cell(run.wifi.meanError()).endRow();
    molocAcc.push_back(run.moloc.accuracy());
    wifiAcc.push_back(run.wifi.accuracy());
    molocMean.push_back(run.moloc.meanError());
    wifiMean.push_back(run.wifi.meanError());
  }

  util::Rng bootstrapRng(77);
  const auto ciMoloc = util::bootstrapMeanCi(molocAcc, 0.95, 2000,
                                             bootstrapRng);
  const auto ciWifi = util::bootstrapMeanCi(wifiAcc, 0.95, 2000,
                                            bootstrapRng);

  std::printf("\nacross seeds:\n");
  std::printf("  moloc accuracy: %.3f +- %.3f (95%% CI [%.3f, %.3f])\n",
              util::mean(molocAcc), util::stddev(molocAcc),
              ciMoloc.lower, ciMoloc.upper);
  std::printf("  wifi accuracy:  %.3f +- %.3f (95%% CI [%.3f, %.3f])\n",
              util::mean(wifiAcc), util::stddev(wifiAcc), ciWifi.lower,
              ciWifi.upper);
  std::printf("  moloc mean error: %.2f m +- %.2f | wifi: %.2f m +- "
              "%.2f\n",
              util::mean(molocMean), util::stddev(molocMean),
              util::mean(wifiMean), util::stddev(wifiMean));
  std::printf("  (the CIs must not overlap for the headline claim to "
              "be seed-robust)\n");
  std::printf("rows written to %s/robustness_seeds.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
