// Ablation A8: channel-noise sensitivity.  Sweeps the per-scan
// temporal RSS noise — the knob that manufactures fingerprint
// ambiguity — and shows where memoryless fingerprinting collapses
// while the motion term keeps MoLoc serviceable.  Also makes the
// calibration transparent: the default 6.5 dB was chosen to land the
// *baseline* in the paper's 40-55 % regime (see EXPERIMENTS.md).

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace moloc;

  std::printf("=== Ablation A8: per-scan RSS noise sweep (6 APs) ===\n");
  std::printf("%-12s %-12s %-12s %-12s %-12s\n", "noise_dB",
              "moloc_acc", "wifi_acc", "moloc_mean", "wifi_mean");

  util::CsvWriter csv(bench::resultsDir() + "/ablation_noise.csv",
                      {"temporal_sigma_db", "moloc_accuracy",
                       "wifi_accuracy", "moloc_mean_err_m",
                       "wifi_mean_err_m"});

  for (double noise : {3.0, 4.5, 5.5, 6.5, 7.5, 9.0}) {
    eval::WorldConfig config;
    config.propagation.temporalSigmaDb = noise;
    const auto run = bench::runPaired(config);
    std::printf("%-12.1f %-12.3f %-12.3f %-12.2f %-12.2f%s\n", noise,
                run.moloc.accuracy(), run.wifi.accuracy(),
                run.moloc.meanError(), run.wifi.meanError(),
                noise == 6.5 ? "   <- default" : "");
    csv.cell(noise).cell(run.moloc.accuracy()).cell(run.wifi.accuracy())
        .cell(run.moloc.meanError()).cell(run.wifi.meanError()).endRow();
  }
  std::printf("rows written to %s/ablation_noise.csv\n",
              bench::resultsDir().c_str());
  return 0;
}
