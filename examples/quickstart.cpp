// Quickstart: stand up the paper's office-hall experiment, train the
// databases, and localize one walk with MoLoc vs. plain WiFi
// fingerprinting.
//
// This is the smallest end-to-end tour of the public API:
//   ExperimentWorld   -- builds the hall, radio map and motion database
//   MoLocEngine       -- the paper's candidate-evaluation localizer
//   WifiFingerprinting-- the Eq. 2 baseline

#include <cstdio>

#include "baseline/wifi_fingerprinting.hpp"
#include "eval/experiment_world.hpp"

int main() {
  using namespace moloc;

  eval::WorldConfig config;
  config.apCount = 6;
  config.seed = 2013;  // ICDCS 2013 -- any seed reproduces exactly.

  std::printf("Building the office-hall world (survey + crowdsourced "
              "motion database)...\n");
  eval::ExperimentWorld world(config);

  const auto& report = world.builderReport();
  std::printf("  crowdsourced observations: %zu\n", report.observations);
  std::printf("  rejected by coarse filter: %zu\n", report.rejectedCoarse);
  std::printf("  rejected by fine filter:   %zu\n", report.rejectedFine);
  std::printf("  location pairs stored:     %zu\n\n", report.pairsStored);

  // One test walk by the first user.
  const auto& user = world.users().front();
  const auto trace = world.makeTrace(user, 10, world.evalRng());

  auto engine = world.makeEngine();
  const baseline::WifiFingerprinting wifi(world.fingerprintDb());

  std::printf("%-6s %-7s %-7s %-7s %-9s %-9s\n", "step", "truth", "moloc",
              "wifi", "err_moloc", "err_wifi");

  const auto initial = engine.localize(trace.initialScan, std::nullopt);
  const auto wifiInitial = wifi.localize(trace.initialScan);
  std::printf("%-6d %-7d %-7d %-7d %-9.2f %-9.2f\n", 0, trace.startTruth,
              initial.location, wifiInitial,
              world.locationDistance(initial.location, trace.startTruth),
              world.locationDistance(wifiInitial, trace.startTruth));

  int step = 1;
  for (const auto& interval : trace.intervals) {
    const auto motion = world.processInterval(interval, user);
    const auto estimate = engine.localize(interval.scanAtArrival, motion);
    const auto wifiEstimate = wifi.localize(interval.scanAtArrival);
    std::printf(
        "%-6d %-7d %-7d %-7d %-9.2f %-9.2f\n", step, interval.toTruth,
        estimate.location, wifiEstimate,
        world.locationDistance(estimate.location, interval.toTruth),
        world.locationDistance(wifiEstimate, interval.toTruth));
    ++step;
  }

  std::printf("\nDone. Location ids are 0-based; the paper's Fig. 5 ids "
              "are these plus one.\n");
  return 0;
}
