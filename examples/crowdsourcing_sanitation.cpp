// Walks through the motion-database construction pipeline of Sec. IV:
// crowdsourced intake, data reassembling (mirroring onto the smaller-ID
// endpoint), the coarse map-comparison filter, and the fine 2-sigma
// filter — showing what each stage rejects and what the final Gaussians
// look like next to the map's ground truth.  A final phase feeds the
// same crowd stream through the online intake with the durable store
// attached, then recovers from disk and shows the rebuilt state is
// bit-identical (see docs/persistence.md).

#include <cstdio>
#include <filesystem>

#include "core/motion_database_builder.hpp"
#include "core/online_motion_database.hpp"
#include "env/office_hall.hpp"
#include "geometry/angles.hpp"
#include "store/state_store.hpp"
#include "util/rng.hpp"

int main() {
  using namespace moloc;

  const auto hall = env::makeOfficeHall();
  core::MotionDatabaseBuilder builder(hall.plan);
  util::Rng rng(7);

  // Simulated crowd data for three legs: mostly honest measurements
  // with realistic sensor noise, plus the two classic corruption modes
  // the paper names — wrong location estimates (fingerprint ambiguity)
  // and junk sensor readings.
  const struct {
    env::LocationId from;
    env::LocationId to;
  } legs[] = {{0, 1}, {1, 8}, {8, 9}};

  int honest = 0;
  int mislocated = 0;
  int junk = 0;
  for (const auto& leg : legs) {
    const auto rlm = hall.graph.groundTruthRlm(leg.from, leg.to);
    for (int i = 0; i < 40; ++i) {
      // Honest: direction within a few degrees, offset within ~0.3 m.
      builder.addObservation(leg.from, leg.to,
                             rlm->directionDeg + rng.normal(0.0, 3.0),
                             rlm->offsetMeters + rng.normal(0.0, 0.2));
      ++honest;
    }
    for (int i = 0; i < 6; ++i) {
      // Mislocated: the walker thought she was on a *different* pair,
      // so her (perfectly fine) measurement lands on the wrong entry.
      builder.addObservation(leg.from, 27 - leg.to,
                             rlm->directionDeg + rng.normal(0.0, 3.0),
                             rlm->offsetMeters + rng.normal(0.0, 0.2));
      ++mislocated;
    }
    for (int i = 0; i < 3; ++i) {
      // Junk sensors: direction flipped, offset doubled.
      builder.addObservation(
          leg.from, leg.to,
          geometry::reverseHeadingDeg(rlm->directionDeg),
          rlm->offsetMeters * 2.2);
      ++junk;
    }
  }

  std::printf("=== Crowdsourcing sanitation walkthrough ===\n\n");
  std::printf("intake: %d honest + %d mislocated + %d junk "
              "observations\n\n",
              honest, mislocated, junk);

  core::BuilderReport report;
  const auto db = builder.build(report);

  std::printf("sanitation report:\n");
  std::printf("  rejected by coarse map filter: %zu\n",
              report.rejectedCoarse);
  std::printf("  rejected by fine 2-sigma filter: %zu\n",
              report.rejectedFine);
  std::printf("  pairs below the sample minimum: %zu\n",
              report.underMinSamples);
  std::printf("  pairs stored: %zu\n\n", report.pairsStored);

  std::printf("learned entries vs map ground truth:\n");
  std::printf("%-8s %-22s %-22s %-8s\n", "pair", "learned (dir, off)",
              "map (dir, off)", "samples");
  for (const auto& leg : legs) {
    const auto learned = db.entry(leg.from, leg.to);
    const auto truth = hall.graph.groundTruthRlm(leg.from, leg.to);
    if (!learned) {
      std::printf("%d-%d      (not learned)\n", leg.from, leg.to);
      continue;
    }
    std::printf("%d-%-6d (%6.1f deg, %5.2f m)   (%6.1f deg, %5.2f m)   "
                "%d\n",
                leg.from, leg.to, learned->muDirectionDeg,
                learned->muOffsetMeters, truth->directionDeg,
                truth->offsetMeters, learned->sampleCount);
    // The mirror entry comes for free via mutual reachability.
    const auto mirror = db.entry(leg.to, leg.from);
    std::printf("%d-%-6d (%6.1f deg, %5.2f m)   <- mirrored "
                "automatically\n",
                leg.to, leg.from, mirror->muDirectionDeg,
                mirror->muOffsetMeters);
  }

  // --- Durable intake: the same crowd stream, but through the online
  // database with a write-ahead log + checkpoint underneath, the way a
  // deployed installation survives restarts.
  std::printf("\n=== Durable intake (WAL + checkpoint) ===\n\n");
  const std::string storeDir =
      (std::filesystem::temp_directory_path() /
       "moloc_example_store").string();
  std::filesystem::remove_all(storeDir);

  core::OnlineMotionDatabase online(hall.plan, {}, 64, /*seed=*/7);
  {
    store::StoreConfig storeConfig;
    storeConfig.wal.fsync = store::FsyncPolicy::kEveryN;
    store::StateStore store(storeDir, storeConfig);
    online.setSink(&store);  // Accepted observations hit the log first.

    util::Rng crowdRng(7);
    for (const auto& leg : legs) {
      const auto rlm = hall.graph.groundTruthRlm(leg.from, leg.to);
      for (int i = 0; i < 40; ++i)
        online.addObservation(
            leg.from, leg.to,
            rlm->directionDeg + crowdRng.normal(0.0, 3.0),
            rlm->offsetMeters + crowdRng.normal(0.0, 0.2));
      for (int i = 0; i < 3; ++i)  // Junk: rejected, so never logged.
        online.addObservation(
            leg.from, leg.to,
            geometry::reverseHeadingDeg(rlm->directionDeg),
            rlm->offsetMeters * 2.2);
    }
    const auto info = store.checkpointNow(online);
    std::printf("logged %llu accepted observations, checkpoint through "
                "seq %llu (%zu WAL segment(s) compacted)\n",
                static_cast<unsigned long long>(store.lastSeq()),
                static_cast<unsigned long long>(info.throughSeq),
                info.compactedSegments);
    online.setSink(nullptr);
  }

  // Simulated restart: rebuild from disk alone and compare.
  core::OnlineMotionDatabase rebuilt(hall.plan, {}, 64, 7);
  const auto recovery = store::recover(storeDir, rebuilt);
  std::printf("recovered: checkpoint %s, %llu record(s) replayed from "
              "the WAL tail\n",
              recovery.checkpointLoaded ? "loaded" : "absent",
              static_cast<unsigned long long>(recovery.replayedRecords));

  const auto live = online.snapshot();
  const auto fromDisk = rebuilt.snapshot();
  bool identical = live.entries.size() == fromDisk.entries.size() &&
                   live.rngState == fromDisk.rngState;
  for (std::size_t e = 0; identical && e < live.entries.size(); ++e)
    identical =
        live.entries[e].stats.muDirectionDeg ==
            fromDisk.entries[e].stats.muDirectionDeg &&
        live.entries[e].stats.sigmaOffsetMeters ==
            fromDisk.entries[e].stats.sigmaOffsetMeters;
  std::printf("rebuilt state %s the live database (%zu published "
              "entries)\n",
              identical ? "bit-identically matches" : "DIFFERS FROM",
              fromDisk.entries.size());
  std::filesystem::remove_all(storeDir);
  return identical ? 0 : 1;
}
